"""Figure 14: register-file energy, SECDED-ECC vs Penny (parity)."""

from conftest import record_table

from repro.experiments import fig14


def test_fig14_rf_energy(benchmark):
    rows = benchmark.pedantic(fig14.run, rounds=1, iterations=1)
    lines = [
        "Fig. 14 — RF energy normalized to unprotected baseline",
        "paper averages: ECC ~1.224, Penny ~1.070",
        "(our miniature loop bodies make checkpoint traffic a larger RF",
        " share; see EXPERIMENTS.md)",
        "",
        f"{'bench':8}{'ECC':>8}{'Penny':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r['abbr']:8}{r['ecc_norm']:>8.3f}{r['penny_norm']:>8.3f}"
        )
    record_table("Fig. 14", "\n".join(lines))

    # the ECC bar reproduces the paper exactly (pure hardware cost)
    for r in rows:
        assert abs(r["ecc_norm"] - 1.211) < 0.02
    # Penny beats ECC on the majority of the suite
    wins = sum(1 for r in rows if r["penny_norm"] < r["ecc_norm"])
    assert wins > len(rows) / 2
    benchmark.extra_info["penny_wins"] = f"{wins}/{len(rows)}"
