"""Figure 10: cumulative impact of Penny's optimizations."""

from conftest import record_table

from repro.experiments import fig10
from repro.experiments.harness import format_overhead_table


def test_fig10_cumulative_opts(benchmark):
    table = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    record_table(
        "Fig. 10",
        format_overhead_table(
            table, "Fig. 10 — accumulated optimization impact"
        ),
    )
    names = list(fig10.CUMULATIVE_CONFIGS)
    gmeans = [table[n]["gmean"] for n in names]
    # fully optimized Penny must beat the unoptimized configuration,
    # and the paper's conclusion — all optimizations combined beat every
    # prefix — must hold
    assert gmeans[-1] <= min(gmeans) + 1e-9
    benchmark.extra_info["gmeans"] = dict(
        zip(names, (round(g, 4) for g in gmeans))
    )
