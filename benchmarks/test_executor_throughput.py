"""Executor throughput: the scalar interpreter vs the vectorized engine.

The first point on the repo's perf trajectory, now driven by the
:mod:`repro.perf` repeater: both engines run the ALU-burn kernel until
their medians carry a tight confidence interval, the schema-v2 record
(samples, CIs, environment fingerprint) is written to
``BENCH_executor.json`` at the repo root, and the speedup gate reads
the *medians* rather than a single-shot timing.
``EXECUTOR_BENCH_MIN_SPEEDUP`` stays the knob (default 10; CI sets 5
for noisy shared runners).
"""

import os

from conftest import record_table

from repro.perf import RepeatConfig, run_bench, validate_bench_result, write_result

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_executor.json")


def test_vector_engine_speedup():
    min_speedup = float(
        os.environ.get("EXECUTOR_BENCH_MIN_SPEEDUP", "10")
    )
    result = run_bench(
        "executor",
        RepeatConfig(
            warmup=1,
            min_reps=5,
            max_reps=12,
            target_rel_ci=0.10,
            wall_budget_s=240.0,
        ),
    )

    assert validate_bench_result(result.to_dict()) == []
    vector = result.series["vector"].summary
    scalar = result.series["scalar"].summary
    assert vector.n >= 5 and scalar.n >= 1
    assert vector.ci_lo <= vector.median <= vector.ci_hi

    write_result(result, BENCH_JSON)

    speedup = result.metrics["speedup"]
    record_table(
        "executor throughput",
        "executor throughput (median seconds per run)\n"
        f"  scalar: {scalar.median:.4f}s  "
        f"CI [{scalar.ci_lo:.4f}, {scalar.ci_hi:.4f}] ({scalar.n} reps)\n"
        f"  vector: {vector.median:.4f}s  "
        f"CI [{vector.ci_lo:.4f}, {vector.ci_hi:.4f}] ({vector.n} reps)\n"
        f"  speedup: {speedup:.1f}x (required >= {min_speedup}x)\n"
        f"  recorded in {os.path.basename(BENCH_JSON)}",
    )

    assert speedup >= min_speedup, (
        f"vector engine only {speedup:.1f}x faster than scalar "
        f"(required >= {min_speedup}x); see {BENCH_JSON}"
    )
