"""Executor throughput: the scalar interpreter vs the vectorized engine.

The first point on the repo's perf trajectory (ROADMAP: performance
benchmarks with recorded baselines).  An ALU-heavy grid-stride kernel at
full block width is executed by both engines; the ratio of dynamic
instructions per second is asserted against ``EXECUTOR_BENCH_MIN_SPEEDUP``
(default 10; CI sets 5 for noisy shared runners) and the measurement is
recorded in a versioned ``BENCH_executor.json`` at the repo root.
"""

import json
import os
import time

from conftest import record_table

from repro.gpusim import Launch, MemoryImage, make_executor
from repro.ir import KernelBuilder

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_executor.json")
SCHEMA_VERSION = 1

THREADS = 256
BLOCKS = 4
ITERS = 24
OPS_PER_ITER = 18


def _alu_kernel():
    """Grid-stride loop, ``OPS_PER_ITER`` dependent ALU ops per trip:
    the shape campaigns spend their cycles on."""
    b = KernelBuilder(
        "alu_burn", params=[("A", "ptr"), ("n", "u32")]
    )
    tid = b.special_u32("%tid.x")
    ntid = b.special_u32("%ntid.x")
    ctaid = b.special_u32("%ctaid.x")
    a = b.ld_param("A")
    n = b.ld_param("n")
    gtid = b.mad(ctaid, ntid, tid)
    off = b.shl(b.rem(gtid, n), 2)
    addr = b.add(a, off)
    acc = b.ld("global", addr, dtype="u32")
    i = b.mov(0, dst=b.reg("u32", "%i"))
    b.label("HEAD")
    p = b.setp("ge", i, ITERS)
    b.bra("EXIT", pred=p)
    cur = acc
    for k in range(OPS_PER_ITER // 6):
        cur = b.add(cur, 0x9E37)
        cur = b.xor(cur, b.shl(cur, 1))
        cur = b.mul(cur, 3)
        cur = b.and_(cur, 0xFFFFFF)
        cur = b.or_(cur, 1)
        cur = b.sub(cur, gtid)
    b.add(acc, cur, dst=acc)
    b.add(i, 1, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    b.st("global", addr, acc)
    b.ret()
    return b.finish()


def _memory(n=512):
    mem = MemoryImage()
    buf = mem.alloc_global(n)
    mem.upload(buf, range(1, n + 1))
    mem.set_param("A", buf)
    mem.set_param("n", n)
    return mem, buf


def _measure(kernel, backend):
    """One timed run → (instructions/second, ExecutionResult)."""
    mem, _ = _memory()
    ex = make_executor(kernel, backend=backend)
    start = time.perf_counter()
    result = ex.run(Launch(grid=BLOCKS, block=THREADS), mem)
    elapsed = time.perf_counter() - start
    return result.instructions / elapsed, result, mem.snapshot_global()


def test_vector_engine_speedup():
    min_speedup = float(
        os.environ.get("EXECUTOR_BENCH_MIN_SPEEDUP", "10")
    )
    kernel = _alu_kernel()

    # warm-up decodes/caches, then the timed runs
    _measure(kernel, "vector")
    scalar_ips, scalar_result, scalar_mem = _measure(kernel, "scalar")
    vector_ips, vector_result, vector_mem = _measure(kernel, "vector")

    # the benchmark is only meaningful if the engines agree
    assert scalar_result == vector_result
    assert scalar_mem == vector_mem

    speedup = vector_ips / scalar_ips
    record = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "executor_throughput",
        "kernel": {
            "name": "alu_burn",
            "threads_per_block": THREADS,
            "blocks": BLOCKS,
            "dynamic_instructions": scalar_result.instructions,
        },
        "scalar_instructions_per_sec": round(scalar_ips),
        "vector_instructions_per_sec": round(vector_ips),
        "speedup": round(speedup, 2),
        "min_speedup_required": min_speedup,
    }
    with open(BENCH_JSON, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")

    record_table(
        "executor throughput",
        "executor throughput (instructions/second)\n"
        f"  scalar: {scalar_ips:>12,.0f}\n"
        f"  vector: {vector_ips:>12,.0f}\n"
        f"  speedup: {speedup:.1f}x (required >= {min_speedup}x)\n"
        f"  recorded in {os.path.basename(BENCH_JSON)}",
    )

    assert speedup >= min_speedup, (
        f"vector engine only {speedup:.1f}x faster than scalar "
        f"(required >= {min_speedup}x); see {BENCH_JSON}"
    )
