"""Benchmark-harness configuration.

Each file regenerates one table/figure of the paper.  Heavy experiments run
once per session (``benchmark.pedantic`` with a single round) — the
interesting output is the regenerated rows, recorded in ``extra_info`` and
printed at the end of the run.
"""

import pytest

_PRINTED_TABLES = []


def record_table(title: str, text: str) -> None:
    _PRINTED_TABLES.append((title, text))


@pytest.fixture(scope="session", autouse=True)
def _dump_tables_at_end():
    yield
    if _PRINTED_TABLES:
        print("\n")
        print("=" * 72)
        print("REGENERATED PAPER ARTIFACTS")
        print("=" * 72)
        for title, text in _PRINTED_TABLES:
            print()
            print(text)
