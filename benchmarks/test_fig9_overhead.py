"""Figure 9: fault-free execution overhead of iGPU / Bolt / Penny across
all 25 benchmarks on the Fermi target."""

from conftest import record_table

from repro.experiments import fig9
from repro.experiments.harness import format_overhead_table


def test_fig9_overhead(benchmark):
    table = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    record_table(
        "Fig. 9",
        format_overhead_table(
            table,
            "Fig. 9 — fault-free execution time, normalized (Fermi)\n"
            "paper gmeans: iGPU 1.023, Bolt/Global 1.665, "
            "Bolt/Auto 1.385, Penny 1.033",
        ),
    )
    # the paper's headline orderings
    assert (
        table["Penny"]["gmean"]
        < table["Bolt/Auto_storage"]["gmean"]
        < table["Bolt/Global"]["gmean"]
    )
    # Penny's overhead is a few percent
    assert table["Penny"]["gmean"] < 1.10
    # iGPU (ECC-dependent) stays near baseline
    assert table["iGPU"]["gmean"] < 1.05
    benchmark.extra_info["gmeans"] = {
        scheme: round(table[scheme]["gmean"], 4) for scheme in table
    }
