"""Figure 12: checkpoints removed by basic vs optimal pruning."""

from conftest import record_table

from repro.experiments import fig12


def test_fig12_pruning_breakdown(benchmark):
    rows = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    lines = [
        "Fig. 12 — checkpoints removed by basic/optimal pruning",
        "paper averages: basic ~30%, optimal ~75%",
        "",
        f"{'bench':8}{'total':>7}{'basic':>7}{'extra':>7}{'commit':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r['abbr']:8}{r['total']:>7}{r['basic']:>7}"
            f"{r['additional']:>7}{r['committed']:>8}"
        )
    with_cps = [r for r in rows if r["total"]]
    avg_basic = sum(r["basic_frac"] for r in with_cps) / len(with_cps)
    avg_opt = sum(r["optimal_frac"] for r in with_cps) / len(with_cps)
    lines.append(
        f"avg pruned: basic {avg_basic * 100:.0f}%, optimal {avg_opt * 100:.0f}%"
    )
    record_table("Fig. 12", "\n".join(lines))

    # optimal pruning strictly dominates the random search
    assert avg_opt >= avg_basic
    # and removes a substantial fraction overall (paper: ~75%)
    assert avg_opt > 0.4
    benchmark.extra_info["avg_basic"] = round(avg_basic, 3)
    benchmark.extra_info["avg_optimal"] = round(avg_opt, 3)
