"""Table 3: the 25-application benchmark suite."""

from conftest import record_table

from repro.experiments import table3


def test_table3_suite(benchmark):
    rows = benchmark(table3.run)
    assert table3.verify()
    lines = ["Table 3 — applications used for evaluation", ""]
    for r in rows:
        lines.append(f"  {r['abbr']:7} {r['name']:42} {r['suite']}")
    record_table("Table 3", "\n".join(lines))
    assert len(rows) == 25
