"""Table 2: per-bank hardware overheads from the CACTI/synthesis stand-in."""

from conftest import record_table

from repro.coding.hwcost import format_hardware_cost_table
from repro.experiments import table2


def test_table2_hw_cost(benchmark):
    rows = benchmark(table2.run)
    assert table2.max_deviation() < 0.005  # within half a percentage point
    record_table(
        "Table 2",
        "Table 2 — hardware overheads per bank "
        f"(max deviation {table2.max_deviation() * 100:.2f} pp)\n\n"
        + format_hardware_cost_table(),
    )
    assert len(rows) == 3
