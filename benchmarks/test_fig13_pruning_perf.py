"""Figure 13: runtime impact of no/basic/optimal checkpoint pruning."""

from conftest import record_table

from repro.experiments import fig13
from repro.experiments.harness import format_overhead_table


def test_fig13_pruning_performance(benchmark):
    table = benchmark.pedantic(fig13.run, rounds=1, iterations=1)
    record_table(
        "Fig. 13",
        format_overhead_table(
            table,
            "Fig. 13 — pruning performance impact\n"
            "paper averages: none 1.562, basic 1.295, optimal 1.057",
        ),
    )
    assert (
        table["Opt_pruning"]["gmean"]
        <= table["Basic_pruning"]["gmean"] + 1e-9
        <= table["No_pruning"]["gmean"] + 1e-9
    )
    benchmark.extra_info["gmeans"] = {
        k: round(v["gmean"], 4) for k, v in table.items()
    }
