"""Figure 15: the scheme comparison on the Volta-class Titan V."""

from conftest import record_table

from repro.experiments import fig15
from repro.experiments.harness import format_overhead_table


def test_fig15_volta(benchmark):
    table = benchmark.pedantic(fig15.run, rounds=1, iterations=1)
    record_table(
        "Fig. 15",
        format_overhead_table(
            table,
            "Fig. 15 — fault-free overhead on Titan V (Volta, 19 apps)\n"
            "paper: same trend as Fermi, Penny ~3.6%",
        ),
    )
    # the paper's conclusion: Volta shows the same trend as Fermi
    assert (
        table["Penny"]["gmean"]
        < table["Bolt/Auto_storage"]["gmean"]
        < table["Bolt/Global"]["gmean"]
    )
    assert table["Penny"]["gmean"] < 1.10
    benchmark.extra_info["gmeans"] = {
        k: round(v["gmean"], 4) for k, v in table.items()
    }
