"""Appendix A: recovery correctness without in-region detection."""

from conftest import record_table

from repro.experiments import appendix_a


def test_appendix_a_campaigns(benchmark):
    rows = benchmark.pedantic(
        appendix_a.run,
        kwargs={"injections_per_app": 30},
        rounds=1,
        iterations=1,
    )
    lines = [
        "Appendix A — single-bit fault campaigns (parity RF, Penny recovery)",
        "",
        f"{'bench':8}{'masked':>8}{'recovered':>11}{'sdc':>6}{'due':>6}",
    ]
    for r in rows:
        lines.append(
            f"{r['abbr']:8}{r['masked']:>8}{r['recovered']:>11}"
            f"{r['sdc']:>6}{r['due']:>6}"
        )
    record_table("Appendix A", "\n".join(lines))

    for r in rows:
        assert r["sdc"] == 0, r
        assert r["due"] == 0, r
    assert any(r["recovered"] > 0 for r in rows)
