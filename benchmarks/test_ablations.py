"""Ablations of design choices DESIGN.md calls out (beyond the paper's own
figures): the detector-cost comparison behind §4, the checkpoint cost-model
base of §6.1, and the aliasing conservatism of region formation."""

from conftest import record_table

from repro.bench import ALL_BENCHMARKS, get_benchmark
from repro.core.pipeline import PennyConfig
from repro.experiments import detectors
from repro.experiments.harness import (
    format_overhead_table,
    geometric_mean,
    measure_baseline,
    measure_scheme,
    normalized_overheads,
)

FAST_SUBSET = ["BO", "STC", "FW", "SGEMM", "BS", "PF", "NW", "CS"]


def test_detector_ablation(benchmark):
    """SW-DMR (in-region detection by duplication) vs Penny (parity +
    idempotent recovery): the §4 motivation quantified."""
    benches = [get_benchmark(a) for a in FAST_SUBSET]
    table = benchmark.pedantic(
        detectors.run, args=(benches,), rounds=1, iterations=1
    )
    record_table(
        "Detector ablation",
        format_overhead_table(
            table, "Ablation — SW-DMR detection vs Penny (fault-free cost)"
        ),
    )
    # duplicating every instruction must cost far more than Penny (the
    # exact factor depends on how memory-bound each kernel is)
    assert table["SW-DMR"]["gmean"] > 1.2
    assert table["Penny"]["gmean"] < 1.15
    assert table["SW-DMR"]["gmean"] > 1.1 * table["Penny"]["gmean"]
    benchmark.extra_info["swdmr_over_penny"] = round(
        table["SW-DMR"]["gmean"] / table["Penny"]["gmean"], 3
    )


def test_cost_model_base_ablation(benchmark):
    """§6.1 sets C=64 to prioritize deep-loop checkpoints.  Compare C=64
    against a depth-blind C=1 under otherwise identical Penny configs."""

    def run():
        configs = {
            "C=1 (depth-blind)": PennyConfig(
                name="c1", overwrite="sa", cost_base=1
            ),
            "C=64 (paper)": PennyConfig(
                name="c64", overwrite="sa", cost_base=64
            ),
        }
        benches = [get_benchmark(a) for a in FAST_SUBSET]
        return normalized_overheads(
            benches, list(configs), configs=configs
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "Cost-base ablation",
        format_overhead_table(
            table, "Ablation — checkpoint cost-model base (§6.1)"
        ),
    )
    # the depth-weighted model must never lose
    assert (
        table["C=64 (paper)"]["gmean"]
        <= table["C=1 (depth-blind)"]["gmean"] + 1e-9
    )


def test_alias_conservatism_ablation(benchmark):
    """Faithful PTX aliasing (params may alias) vs restrict-style
    aliasing: restrict removes anti-dependences and with them regions,
    checkpoints, and overhead."""

    def run():
        configs = {
            "PTX aliasing": PennyConfig(
                name="strict", overwrite="sa", param_noalias=False
            ),
            "restrict params": PennyConfig(
                name="relaxed", overwrite="sa", param_noalias=True
            ),
        }
        benches = [get_benchmark(a) for a in FAST_SUBSET]
        return normalized_overheads(
            benches, list(configs), configs=configs
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "Aliasing ablation",
        format_overhead_table(
            table, "Ablation — pointer-parameter aliasing assumption"
        ),
    )
    assert (
        table["restrict params"]["gmean"]
        <= table["PTX aliasing"]["gmean"] + 1e-9
    )
