"""Figure 11: storage assignment x overwrite-prevention sensitivity."""

from conftest import record_table

from repro.experiments import fig11
from repro.experiments.harness import format_overhead_table


def test_fig11_storage_sensitivity(benchmark):
    table = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    record_table(
        "Fig. 11",
        format_overhead_table(
            table, "Fig. 11 — storage assignment / overwrite prevention"
        ),
    )
    # auto storage+selection beats both all-global variants (the paper's
    # point about automatic assignment)
    assert (
        table["Auto/Auto_select"]["gmean"]
        <= table["Global/RR"]["gmean"] + 1e-9
    )
    assert (
        table["Auto/Auto_select"]["gmean"]
        <= table["Global/SA"]["gmean"] + 1e-9
    )
    # overwrite prevention is nearly free (last two bars almost equal)
    gap = (
        table["Auto/Auto_select"]["gmean"]
        - table["Auto/No_protection"]["gmean"]
    )
    assert gap < 0.06
    benchmark.extra_info["protection_cost_pp"] = round(gap * 100, 2)
