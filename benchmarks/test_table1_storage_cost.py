"""Table 1: storage cost of ECC vs Penny coding per error magnitude."""

from conftest import record_table

from repro.coding.schemes import format_storage_cost_table
from repro.experiments import table1


def test_table1_storage_cost(benchmark):
    rows = benchmark(table1.run)
    assert table1.verify()
    record_table(
        "Table 1",
        "Table 1 — storage cost (matches paper exactly)\n\n"
        + format_storage_cost_table(),
    )
    assert len(rows) == 3
