"""Parallel campaign engine: multi-surface throughput and outcome mix."""

from conftest import record_table

from repro.gpusim.campaign import CampaignSpec, ParallelCampaign


def _run():
    spec = CampaignSpec(
        benchmark="STC",
        scheme="Penny",
        rf_code="parity",
        num_injections=120,
        seed=2020,
        surfaces=("rf", "ckpt", "recovery"),
        bits_per_fault=1,
    )
    return ParallelCampaign(spec, workers=2).run()


def test_multi_surface_campaign(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)

    outcomes = ("masked", "recovered", "sdc", "due")
    lines = [
        "Multi-surface campaign — STC, 120 injections, 2 workers",
        "",
        f"{'surface':10}" + "".join(f"{o:>11}" for o in outcomes),
    ]
    for surface, row in sorted(report.by_surface().items()):
        lines.append(
            f"{surface:10}" + "".join(f"{row[o]:>11}" for o in outcomes)
        )
    taxonomy = report.due_taxonomy()
    lines.append("")
    lines.append(f"DUE taxonomy: {taxonomy or 'none'}")
    p, lo, hi = report.rates()["sdc"]
    lines.append(f"SDC rate: {p:.4f}  (Wilson 95% CI [{lo:.4f}, {hi:.4f}])")
    record_table("Campaign engine", "\n".join(lines))

    assert len(report.records) == 120
    assert report.summary().get("sdc", 0) == 0
    assert all(
        rec.due_cause is not None
        for rec in report.records
        if rec.outcome == "due"
    )
