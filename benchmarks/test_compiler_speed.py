"""Compile-time benchmarks: the paper claims near-linear optimal pruning
(O(mn) with no SCCs in practice) and polynomial bimodal placement; these
micro-benchmarks keep the implementation honest about asymptotics."""

import pytest

from repro.analysis import CFG, AliasAnalysis, LoopInfo, ReachingDefs
from repro.analysis.postdom import ControlDependence
from repro.bench import get_benchmark
from repro.core import PennyCompiler, SCHEME_PENNY, scheme_config
from repro.core.checkpoints import eager_plan
from repro.core.hazards import materialize_instances
from repro.core.liveins import analyze_liveins
from repro.core.pddg import PddgValidator
from repro.core.pruning import prune_optimal
from repro.core.regions import form_regions
from repro.ir import KernelBuilder


def test_full_penny_compile_stc(benchmark):
    bench = get_benchmark("STC")
    wl = bench.workload()

    def compile_once():
        return PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
            bench.fresh_kernel(), wl.launch_config
        )

    result = benchmark(compile_once)
    assert result.stats["checkpoints_total"] > 0


def test_full_penny_compile_tpacf(benchmark):
    bench = get_benchmark("TPACF")
    wl = bench.workload()

    def compile_once():
        return PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
            bench.fresh_kernel(), wl.launch_config
        )

    benchmark(compile_once)


def _chain_kernel(n_regions: int):
    """A long chain of anti-dependent regions with recomputable live-ins:
    pruning workload scales linearly in n_regions."""
    b = KernelBuilder("chain", params=[("A", "ptr")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    x = b.mov(tid, dst=b.reg("u32", "%x"))
    for i in range(n_regions):
        off = b.shl(tid, 2)
        addr = b.add(a, off)
        b.ld("global", addr, dtype="u32")
        b.add(x, i + 1, dst=b.reg("u32", f"%x{i}"))
        x = b.reg("u32", f"%x{i}")
        b.st("global", addr, x)
    b.ret()
    return b.finish()


@pytest.mark.parametrize("n_regions", [8, 32])
def test_optimal_pruning_scales(benchmark, n_regions):
    kernel = _chain_kernel(n_regions)
    form_regions(kernel)
    cfg = CFG(kernel)
    rdefs = ReachingDefs(cfg)
    liveins = analyze_liveins(kernel, kernel.meta["region_info"], cfg=cfg,
                              rdefs=rdefs)
    validator_parts = (
        cfg,
        rdefs,
        AliasAnalysis(cfg, rdefs),
        LoopInfo(cfg),
        ControlDependence(cfg),
    )

    def prune_once():
        plan = eager_plan(liveins)
        instances = materialize_instances(plan, cfg)
        validator = PddgValidator(
            validator_parts[0],
            validator_parts[1],
            plan,
            instances,
            validator_parts[2],
            validator_parts[3],
            validator_parts[4],
            None,
        )
        prune_optimal(plan, validator)
        return plan

    plan = benchmark(prune_once)
    assert plan.stats["undecided_cycles"] == 0  # no SCCs, as the paper found
