"""Compile-time benchmarks: the paper claims near-linear optimal pruning
(O(mn) with no SCCs in practice) and polynomial bimodal placement; these
micro-benchmarks keep the implementation honest about asymptotics.

Timings go through the :mod:`repro.perf` repeater (warmup discard, GC
isolation, CI-driven stopping), so the recorded medians carry
confidence intervals instead of being one lucky — or unlucky — run."""

import pytest

from conftest import record_table

from repro.analysis import CFG, AliasAnalysis, LoopInfo, ReachingDefs
from repro.analysis.postdom import ControlDependence
from repro.bench import get_benchmark
from repro.core import PennyCompiler, SCHEME_PENNY, scheme_config
from repro.core.checkpoints import eager_plan
from repro.core.hazards import materialize_instances
from repro.core.liveins import analyze_liveins
from repro.core.pddg import PddgValidator
from repro.core.pruning import prune_optimal
from repro.core.regions import form_regions
from repro.ir import KernelBuilder
from repro.perf import RepeatConfig, repeat

_COMPILE_CFG = RepeatConfig(
    warmup=1, min_reps=5, max_reps=15, target_rel_ci=0.10,
    wall_budget_s=60.0,
)


def _timed_compile(abbr: str):
    bench = get_benchmark(abbr)
    launch = bench.workload().launch_config
    last = {}

    def compile_once():
        result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
            bench.fresh_kernel(), launch
        )
        last["result"] = result

    rep = repeat(compile_once, _COMPILE_CFG)
    return rep, last["result"]


@pytest.mark.parametrize("abbr", ["STC", "TPACF"])
def test_full_penny_compile(abbr):
    rep, result = _timed_compile(abbr)
    if abbr == "STC":
        assert result.stats["checkpoints_total"] > 0
    s = rep.summary
    assert s.n >= 1
    assert s.ci_lo <= s.median <= s.ci_hi
    record_table(
        f"penny compile ({abbr})",
        f"full Penny compile of {abbr}: median {s.median*1e3:.2f}ms "
        f"CI [{s.ci_lo*1e3:.2f}, {s.ci_hi*1e3:.2f}]ms over {s.n} reps "
        f"(stopped: {rep.stop_reason.value})",
    )


def _chain_kernel(n_regions: int):
    """A long chain of anti-dependent regions with recomputable live-ins:
    pruning workload scales linearly in n_regions."""
    b = KernelBuilder("chain", params=[("A", "ptr")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    x = b.mov(tid, dst=b.reg("u32", "%x"))
    for i in range(n_regions):
        off = b.shl(tid, 2)
        addr = b.add(a, off)
        b.ld("global", addr, dtype="u32")
        b.add(x, i + 1, dst=b.reg("u32", f"%x{i}"))
        x = b.reg("u32", f"%x{i}")
        b.st("global", addr, x)
    b.ret()
    return b.finish()


def _pruning_median(n_regions: int) -> float:
    kernel = _chain_kernel(n_regions)
    form_regions(kernel)
    cfg = CFG(kernel)
    rdefs = ReachingDefs(cfg)
    liveins = analyze_liveins(kernel, kernel.meta["region_info"], cfg=cfg,
                              rdefs=rdefs)
    alias = AliasAnalysis(cfg, rdefs)
    loops = LoopInfo(cfg)
    cdeps = ControlDependence(cfg)
    last = {}

    def prune_once():
        plan = eager_plan(liveins)
        instances = materialize_instances(plan, cfg)
        validator = PddgValidator(
            cfg, rdefs, plan, instances, alias, loops, cdeps, None
        )
        prune_optimal(plan, validator)
        last["plan"] = plan

    rep = repeat(
        prune_once,
        RepeatConfig(
            warmup=1, min_reps=5, max_reps=20, target_rel_ci=0.10,
            wall_budget_s=60.0,
        ),
    )
    assert last["plan"].stats["undecided_cycles"] == 0  # no SCCs, as found
    return rep.summary.median


def test_optimal_pruning_scales():
    small, large = _pruning_median(8), _pruning_median(32)
    growth = large / small
    record_table(
        "optimal pruning scaling",
        f"prune_optimal: 8 regions {small*1e3:.2f}ms -> "
        f"32 regions {large*1e3:.2f}ms ({growth:.1f}x for 4x regions)",
    )
    # Near-linear claim, generously gated: a 4x region count may not
    # exceed ~quadratic growth even on a noisy box.
    assert growth < 16.0, (
        f"pruning grew {growth:.1f}x for a 4x region increase "
        f"({small*1e3:.2f}ms -> {large*1e3:.2f}ms)"
    )
