"""Cold vs warm batch compilation through the compile cache.

The serving subsystem's headline number: a warm cache must make a
repeat compile of the same corpus *measurably* faster than the cold
pass (hits skip every pass in the pipeline and unpickle a stored
result).  The cold pass is necessarily a single shot — it is what
populates the cache — but the warm side now runs through the
:mod:`repro.perf` repeater, so the gate compares the cold time against
a warm *median* with a confidence interval rather than one lucky
unpickle.  Timings land in the metrics-schema JSONL so CI can archive
them next to the paper artifacts.
"""

import glob
import json
import os
import time

from conftest import record_table
from repro.bench.suite import get_benchmark
from repro.core.pipeline import LaunchConfig, PennyConfig
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.ir.printer import print_kernel
from repro.obs.export import validate_metrics_record
from repro.perf import RepeatConfig, repeat
from repro.serve.batch import CompileJob, compile_batch, jobs_from_source
from repro.serve.cache import CompileCache

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")
BENCH_ABBRS = ("BFS", "HS", "SGEMM", "STC", "NW", "SRAD")


def _corpus_jobs():
    jobs = []
    launch = LaunchConfig(threads_per_block=32, num_blocks=4)
    for path in sorted(glob.glob(os.path.join(EXAMPLES, "*.ptx"))):
        with open(path) as f:
            jobs.extend(
                jobs_from_source(
                    f.read(), PennyConfig(), launch=launch,
                    name=os.path.basename(path),
                )
            )
    penny = scheme_config(SCHEME_PENNY)
    for abbr in BENCH_ABBRS:
        bench = get_benchmark(abbr)
        jobs.append(
            CompileJob(
                ptx=print_kernel(bench.fresh_kernel()),
                config=penny,
                launch=bench.workload().launch_config,
                name=abbr,
            )
        )
    return jobs


def test_warm_cache_beats_cold(benchmark, tmp_path):
    jobs = _corpus_jobs()
    assert len(jobs) >= 6

    with CompileCache(directory=str(tmp_path)) as cache:
        cold_start = time.perf_counter()
        cold = compile_batch(jobs, workers=2)
        cold_seconds = time.perf_counter() - cold_start
        assert not cold.failures
        assert cold.cache_hits == 0

        last = {}

        def warm_pass():
            report = compile_batch(jobs, workers=2)
            assert not report.failures
            assert report.cache_hits == len(jobs)  # fully warm
            last["report"] = report
            return report.wall_seconds

        rep = repeat(
            warm_pass,
            RepeatConfig(
                warmup=1, min_reps=5, max_reps=12, target_rel_ci=0.10,
                wall_budget_s=60.0,
            ),
            self_timed=True,
        )
        warm = last["report"]
    warm_seconds = rep.summary.median

    # The headline claim: warm is strictly faster — generously gated
    # at 2x so a noisy CI box cannot flake the build.
    assert warm_seconds < cold_seconds / 2, (
        f"warm batch (median {warm_seconds:.3f}s over "
        f"{rep.summary.n} reps) not faster than cold "
        f"({cold_seconds:.3f}s)"
    )

    # Warm results are byte-identical to the cold compile.
    for a, b in zip(cold.results, warm.results):
        assert a.result.to_dict() == b.result.to_dict()

    benchmark.pedantic(
        lambda: compile_batch(jobs, workers=2), rounds=1, iterations=1
    )
    record = {
        "kind": "cache_benchmark",
        "jobs": len(jobs),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "warm_ci": [
            round(rep.summary.ci_lo, 6), round(rep.summary.ci_hi, 6),
        ],
        "warm_reps": rep.summary.n,
        "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 2),
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "hit_rate": round(cache.stats.hit_rate, 4),
    }
    assert validate_metrics_record(record) == []
    out = os.environ.get("CACHE_BENCH_JSONL")
    if out:
        with open(out, "a") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")
    benchmark.extra_info.update(record)
    record_table(
        "compile cache (cold vs warm)",
        "compile cache: "
        f"{len(jobs)} jobs, cold {cold_seconds:.2f}s -> warm median "
        f"{warm_seconds:.3f}s ({record['speedup']}x, {rep.summary.n} "
        f"reps), hit rate {record['hit_rate']:.0%}",
    )
