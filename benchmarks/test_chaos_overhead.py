"""The chaos harness's disabled-path overhead, measured.

The contract (mirroring :mod:`repro.obs`'s no-op discipline): when no
:class:`ChaosEngine` is installed, every instrumented site costs one
``ContextVar.get`` plus a ``None`` check — under 1% on a cache
round-trip, unmeasurable on a real compile.  The gate is now a proper
statistical verdict: :func:`repro.perf.compare` on interleaved repeater
samples, failing only when the engine-present side is *significantly*
slower beyond a 25% noise margin (a memory-tier hit is sub-microsecond,
so anything chaos-shaped — sleeps, file IO, hashing — blows far past
that; scheduler jitter does not).
"""

import json
import os
import time

from conftest import record_table
from repro.perf import RepeatConfig, Verdict, compare, repeat
from repro.serve.cache import CompileCache
from repro.serve.chaos import ChaosEngine, ChaosPlan
from repro.serve.key import CacheKey


def _key(tag: str) -> CacheKey:
    return CacheKey(
        ptx_sha=f"ptx-{tag}", config_sha=f"cfg-{tag}", code_sha="code"
    )


def _sweep_seconds(cache, keys, loops=30):
    best = float("inf")
    for _ in range(loops):
        start = time.perf_counter()
        for key in keys:
            cache.get(key)
        best = min(best, time.perf_counter() - start)
    return best


_SWEEP_CFG = RepeatConfig(
    warmup=2, min_reps=6, max_reps=20, target_rel_ci=0.05,
    wall_budget_s=30.0,
)


def test_disabled_chaos_overhead_within_noise(benchmark, tmp_path):
    payload = {"value": 42, "blob": "x" * 512}
    keys = [_key(f"k{i}") for i in range(64)]

    cache = CompileCache(directory=str(tmp_path / "plain"))
    for key in keys:
        cache.put(key, payload)

    engine = ChaosEngine(
        ChaosPlan.parse("cache.corrupt:p=1.0", seed=0)
    )  # constructed but never installed: sites must not notice it

    plain = repeat(lambda: _sweep_seconds(cache, keys), _SWEEP_CFG)
    assert engine is not None
    present = repeat(lambda: _sweep_seconds(cache, keys), _SWEEP_CFG)

    # Same code path on both sides; a regression verdict means an
    # uninstalled engine leaked globally-visible work into the fast
    # path (or the harness itself broke).
    verdict = compare(
        plain.samples, present.samples, noise_margin=0.25
    )
    assert verdict.verdict is not Verdict.REGRESSED, (
        f"uninstalled-chaos sweep significantly slower: "
        f"{verdict.median_baseline*1e6:.1f}us -> "
        f"{verdict.median_candidate*1e6:.1f}us "
        f"(ratio {verdict.ratio:.3f}, "
        f"log-CI [{verdict.log_ratio_lo:+.4f}, "
        f"{verdict.log_ratio_hi:+.4f}])"
    )

    benchmark.pedantic(
        lambda: _sweep_seconds(cache, keys, loops=1),
        rounds=3,
        iterations=1,
    )
    overhead = verdict.ratio - 1.0
    record = {
        "kind": "chaos_overhead",
        "keys": len(keys),
        "plain_us": round(verdict.median_baseline * 1e6, 3),
        "with_engine_object_us": round(
            verdict.median_candidate * 1e6, 3
        ),
        "overhead": round(overhead, 6),
        "verdict": verdict.verdict.value,
    }
    out = os.environ.get("CHAOS_BENCH_JSONL")
    if out:
        with open(out, "a") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")
    benchmark.extra_info.update(record)
    record_table(
        "chaos harness disabled-path overhead",
        f"chaos disabled path: {len(keys)}-key sweep "
        f"{verdict.median_baseline*1e6:.1f}us plain vs "
        f"{verdict.median_candidate*1e6:.1f}us with engine object "
        f"({overhead:+.2%}, verdict {verdict.verdict.value})",
    )


def test_installed_engine_decides_fast(benchmark):
    """Even *installed*, a no-fire plan (p=0) decides in ~a few
    microseconds per site visit — cheap enough to leave in soak runs."""
    engine = ChaosEngine(
        ChaosPlan.parse("worker.kill:p=0.0,cache.corrupt:p=0.0", seed=1)
    )

    def sweep():
        with engine:
            for _ in range(1000):
                engine.decide("worker.job")

    result = benchmark.pedantic(sweep, rounds=3, iterations=1)
    report = engine.report()
    assert report["injections"] == 0
    # --benchmark-disable collapses pedantic to a single call, so gate
    # on one sweep's worth of visits.
    assert report["site_visits"]["worker.job"] >= 1000
