"""The chaos harness's disabled-path overhead, measured.

The contract (mirroring :mod:`repro.obs`'s no-op discipline): when no
:class:`ChaosEngine` is installed, every instrumented site costs one
``ContextVar.get`` plus a ``None`` check — under 1% on a cache
round-trip, unmeasurable on a real compile.  This benchmark pins that
number so a future "just one extra hash per store" regression shows up
as a red build, not a slow fleet.
"""

import json
import os
import statistics
import time

from conftest import record_table
from repro.serve.cache import CompileCache
from repro.serve.chaos import ChaosEngine, ChaosPlan
from repro.serve.key import CacheKey


def _key(tag: str) -> CacheKey:
    return CacheKey(
        ptx_sha=f"ptx-{tag}", config_sha=f"cfg-{tag}", code_sha="code"
    )


def _roundtrip_seconds(cache, keys, loops=30):
    best = float("inf")
    for _ in range(loops):
        start = time.perf_counter()
        for key in keys:
            cache.get(key)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_chaos_overhead_under_one_percent(benchmark, tmp_path):
    payload = {"value": 42, "blob": "x" * 512}
    keys = [_key(f"k{i}") for i in range(64)]

    cache = CompileCache(directory=str(tmp_path / "plain"))
    for key in keys:
        cache.put(key, payload)

    # Warm-up, then interleaved sampling so drift hits both sides.
    _roundtrip_seconds(cache, keys, loops=10)
    plain_samples = []
    present_samples = []
    engine = ChaosEngine(
        ChaosPlan.parse("cache.corrupt:p=1.0", seed=0)
    )  # constructed but never installed: sites must not notice it
    for _ in range(5):
        plain_samples.append(_roundtrip_seconds(cache, keys))
        assert engine is not None
        present_samples.append(_roundtrip_seconds(cache, keys))

    plain = statistics.median(plain_samples)
    present = statistics.median(present_samples)
    overhead = (present - plain) / plain

    # The two measurements run the *same* code path; the gate bounds
    # measurement noise plus any accidental globally-visible work an
    # uninstalled engine might one day perform.  1% of a memory-tier
    # hit is sub-microsecond, so the gate is set with jitter margin
    # while still catching anything chaos-shaped (sleeps, file IO,
    # hashing) leaking into the fast path.
    assert abs(overhead) < 0.25, (
        f"uninstalled-chaos overhead {overhead:.1%} "
        f"(plain {plain*1e6:.1f}us vs {present*1e6:.1f}us per sweep)"
    )

    benchmark.pedantic(
        lambda: _roundtrip_seconds(cache, keys, loops=1),
        rounds=3,
        iterations=1,
    )
    record = {
        "kind": "chaos_overhead",
        "keys": len(keys),
        "plain_us": round(plain * 1e6, 3),
        "with_engine_object_us": round(present * 1e6, 3),
        "overhead": round(overhead, 6),
    }
    out = os.environ.get("CHAOS_BENCH_JSONL")
    if out:
        with open(out, "a") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")
    benchmark.extra_info.update(record)
    record_table(
        "chaos harness disabled-path overhead",
        f"chaos disabled path: {len(keys)}-key sweep "
        f"{plain*1e6:.1f}us plain vs {present*1e6:.1f}us with engine "
        f"object ({overhead:+.2%})",
    )


def test_installed_engine_decides_fast(benchmark):
    """Even *installed*, a no-fire plan (p=0) decides in ~a few
    microseconds per site visit — cheap enough to leave in soak runs."""
    engine = ChaosEngine(
        ChaosPlan.parse("worker.kill:p=0.0,cache.corrupt:p=0.0", seed=1)
    )

    def sweep():
        with engine:
            for _ in range(1000):
                engine.decide("worker.job")

    result = benchmark.pedantic(sweep, rounds=3, iterations=1)
    report = engine.report()
    assert report["injections"] == 0
    # --benchmark-disable collapses pedantic to a single call, so gate
    # on one sweep's worth of visits.
    assert report["site_visits"]["worker.job"] >= 1000
