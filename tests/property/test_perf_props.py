"""Property-based tests (hypothesis) for the perf comparison layer.

Three families, as the harness contract demands:

1. **Symmetry**: ``compare(a, b)`` and ``compare(b, a)`` always produce
   mirrored verdicts (improved <-> regressed) and exactly negated
   log-ratio intervals — for both methods.
2. **Synthetic regressions are flagged**: scaling a tight baseline by a
   factor far beyond the noise bound always yields REGRESSED.
3. **A/A runs are never flagged**: samples drawn from the same tight
   band never produce REGRESSED (or IMPROVED) at a margin wider than
   the band.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.stats import Summary, Verdict, compare

# Bootstrap resampling dominates runtime; keep CI wall-clock sane.
FAST = {"n_boot": 400}

durations = st.floats(
    min_value=1e-6,
    max_value=1e3,
    allow_nan=False,
    allow_infinity=False,
)
sample_sets = st.lists(durations, min_size=2, max_size=12)

# A tight band: +/-0.5% around 1.0 — far inside a 5% noise margin.
tight = st.floats(min_value=1.0, max_value=1.005)
tight_sets = st.lists(tight, min_size=5, max_size=10)

methods = st.sampled_from(["bootstrap", "welch"])
margins = st.floats(min_value=0.0, max_value=0.5)


@settings(max_examples=60, deadline=None)
@given(a=sample_sets, b=sample_sets, margin=margins, method=methods)
def test_swap_mirrors_verdict_and_negates_interval(a, b, margin, method):
    ab = compare(a, b, noise_margin=margin, method=method, **FAST)
    ba = compare(b, a, noise_margin=margin, method=method, **FAST)
    assert ba.verdict is ab.verdict.mirrored
    assert ba.log_ratio_lo == -ab.log_ratio_hi
    assert ba.log_ratio_hi == -ab.log_ratio_lo
    # point estimates are reciprocal (up to float noise in the logs)
    assert abs(math.log(ab.ratio) + math.log(ba.ratio)) < 1e-9


@settings(max_examples=60, deadline=None)
@given(a=sample_sets, method=methods)
def test_self_comparison_never_significant(a, method):
    # Comparing a sample set against (a copy of) itself: the effect is
    # exactly zero, so no margin can call it improved or regressed.
    c = compare(a, list(a), noise_margin=0.05, method=method, **FAST)
    assert c.verdict in (Verdict.UNCHANGED, Verdict.INCONCLUSIVE)
    assert c.log_ratio_lo <= 0.0 <= c.log_ratio_hi


@settings(max_examples=40, deadline=None)
@given(
    base=tight_sets,
    factor=st.floats(min_value=1.2, max_value=5.0),
)
def test_synthetic_regression_always_flagged(base, factor):
    # Baseline spread is <= 0.5%; the injected slowdown is >= 20%;
    # the margin is 5%.  The bootstrap CI of the log-ratio lives within
    # the samples' span, so it sits far above log1p(0.05): REGRESSED,
    # always.
    slowed = [x * factor for x in base]
    c = compare(base, slowed, noise_margin=0.05, **FAST)
    assert c.verdict is Verdict.REGRESSED
    # ... and the mirror image is always IMPROVED.
    m = compare(slowed, base, noise_margin=0.05, **FAST)
    assert m.verdict is Verdict.IMPROVED


@settings(max_examples=40, deadline=None)
@given(a=tight_sets, b=tight_sets)
def test_aa_runs_never_flagged(a, b):
    # Two independent draws from the same +/-0.5% band, judged at a 5%
    # margin: any log-ratio the bootstrap can produce is bounded by the
    # samples' total span (log 1.005 < log 1.05), so the verdict is
    # UNCHANGED — never a false regression, never inconclusive.
    c = compare(a, b, noise_margin=0.05, **FAST)
    assert c.verdict is Verdict.UNCHANGED


@settings(max_examples=60, deadline=None)
@given(xs=sample_sets, conf=st.floats(min_value=0.5, max_value=0.999))
def test_summary_invariants(xs, conf):
    s = Summary.from_samples(xs, confidence=conf, n_boot=400)
    assert s.minimum <= s.median <= s.maximum
    assert s.minimum <= s.trimmed_mean <= s.maximum
    assert s.ci_lo <= s.ci_hi
    # the bootstrap median CI stays inside the observed range
    assert s.minimum <= s.ci_lo and s.ci_hi <= s.maximum
    assert s.n == len(xs)


@settings(max_examples=60, deadline=None)
@given(xs=sample_sets)
def test_summary_order_invariance(xs):
    # Content-derived bootstrap seeds: sample order cannot change the CI.
    a = Summary.from_samples(xs, n_boot=400)
    b = Summary.from_samples(list(reversed(xs)), n_boot=400)
    assert (a.ci_lo, a.ci_hi) == (b.ci_lo, b.ci_hi)
    assert a.median == b.median
