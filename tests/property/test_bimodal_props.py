"""Bimodal placement's max-flow vertex cover vs brute force.

König's theorem says the max-flow solution is *optimal* on bipartite
graphs; verify against exhaustive enumeration on random small instances.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import networkx as nx


def _min_cover_flow(edges, lup_weights, bound_weights):
    """The same construction bimodal.py uses, on abstract vertices."""
    graph = nx.DiGraph()
    source, sink = "S", "T"
    for l, w in lup_weights.items():
        graph.add_edge(source, ("lup", l), capacity=w)
    for b, w in bound_weights.items():
        graph.add_edge(("bound", b), sink, capacity=w)
    for l, b in edges:
        graph.add_edge(("lup", l), ("bound", b), capacity=float("inf"))
    cut_value, (s_side, t_side) = nx.minimum_cut(graph, source, sink)
    chosen_lups = {l for l in lup_weights if ("lup", l) in t_side}
    chosen_bounds = {b for b in bound_weights if ("bound", b) in s_side}
    return cut_value, chosen_lups, chosen_bounds


def _min_cover_brute(edges, lup_weights, bound_weights):
    lups = sorted(lup_weights)
    bounds = sorted(bound_weights)
    best = None
    for l_mask in itertools.product((0, 1), repeat=len(lups)):
        picked_l = {l for l, bit in zip(lups, l_mask) if bit}
        for b_mask in itertools.product((0, 1), repeat=len(bounds)):
            picked_b = {b for b, bit in zip(bounds, b_mask) if bit}
            if all(l in picked_l or b in picked_b for l, b in edges):
                cost = sum(lup_weights[l] for l in picked_l) + sum(
                    bound_weights[b] for b in picked_b
                )
                if best is None or cost < best:
                    best = cost
    return best


@st.composite
def bipartite_instances(draw):
    n_l = draw(st.integers(1, 4))
    n_b = draw(st.integers(1, 4))
    lup_weights = {
        f"L{i}": draw(st.integers(1, 16)) for i in range(n_l)
    }
    bound_weights = {
        f"B{i}": draw(st.integers(1, 16)) for i in range(n_b)
    }
    all_edges = [(l, b) for l in lup_weights for b in bound_weights]
    k = draw(st.integers(1, len(all_edges)))
    edges = draw(
        st.lists(st.sampled_from(all_edges), min_size=k, max_size=k,
                 unique=True)
    )
    return edges, lup_weights, bound_weights


@settings(max_examples=120, deadline=None)
@given(instance=bipartite_instances())
def test_flow_cover_is_optimal(instance):
    edges, lup_weights, bound_weights = instance
    flow_cost, chosen_l, chosen_b = _min_cover_flow(
        edges, lup_weights, bound_weights
    )
    brute = _min_cover_brute(edges, lup_weights, bound_weights)
    # the cut value equals the optimal cover cost (König)
    assert flow_cost == brute
    # and the extracted vertex set is a valid cover of that cost
    assert all(l in chosen_l or b in chosen_b for l, b in edges)
    assert sum(lup_weights[l] for l in chosen_l) + sum(
        bound_weights[b] for b in chosen_b
    ) == brute


def test_paper_figure3_shape():
    """A Figure-3-like instance: hoisting beats per-LUP placement when the
    boundary is cheaper than the sum of deep-loop LUPs."""
    edges = [("L2", "RB3"), ("L3", "RB3")]
    lup_weights = {"L2", "L3"}
    cost, chosen_l, chosen_b = _min_cover_flow(
        edges, {"L2": 4, "L3": 2}, {"RB3": 1}
    )
    assert cost == 1
    assert chosen_b == {"RB3"} and chosen_l == set()
