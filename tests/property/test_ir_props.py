"""Property tests over randomly generated straight-line kernels: the
printer/parser round-trip, executor determinism, and Penny's semantic
preservation on arbitrary ALU dataflow."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.gpusim import Executor, Launch, MemoryImage
from repro.ir import KernelBuilder, parse_kernel, print_kernel

#: integer ops safe for arbitrary operands
OPS = ("add", "sub", "mul", "and", "or", "xor", "min", "max")


@st.composite
def straightline_kernels(draw):
    """A random dataflow DAG of integer ALU ops over tid and constants,
    storing 2 results; an extra load/store pair forces a region cut."""
    n_ops = draw(st.integers(3, 12))
    b = KernelBuilder("rand", params=[("A", "ptr")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    values = [tid, b.mov(draw(st.integers(0, 255)))]
    for _ in range(n_ops):
        op = draw(st.sampled_from(OPS))
        x = values[draw(st.integers(0, len(values) - 1))]
        y_choice = draw(st.integers(0, len(values)))
        y = (
            values[y_choice]
            if y_choice < len(values)
            else draw(st.integers(0, 1023))
        )
        values.append(getattr(b, {"and": "and_", "or": "or_",
                                  "min": "min_", "max": "max_"}.get(op, op))(x, y))
    off = b.shl(tid, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")  # forces an anti-dep with the sts
    out1 = values[-1]
    out2 = values[draw(st.integers(0, len(values) - 1))]
    b.st("global", addr, out1)
    b.st("global", addr, out2, offset=512)
    b.ret()
    return b.finish()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=straightline_kernels())
def test_print_parse_roundtrip(kernel):
    text = print_kernel(kernel)
    assert print_kernel(parse_kernel(text)) == text


def _run(kernel):
    mem = MemoryImage()
    addr = mem.alloc_global(256)
    mem.upload(addr, list(range(1, 257)))
    mem.set_param("A", addr)
    Executor(kernel, rf_code_factory=lambda: None).run(
        Launch(grid=1, block=16), mem
    )
    return mem.download(addr, 256)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=straightline_kernels())
def test_executor_deterministic(kernel):
    assert _run(kernel) == _run(parse_kernel(print_kernel(kernel)))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=straightline_kernels())
def test_penny_preserves_random_dataflow(kernel):
    golden = _run(kernel)
    result = PennyCompiler(PennyConfig(overwrite="sa")).compile(
        kernel, LaunchConfig(threads_per_block=16, num_blocks=1)
    )
    assert _run(result.kernel) == golden


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=straightline_kernels(), seed=st.integers(0, 2**16))
def test_penny_recovers_random_dataflow(kernel, seed):
    """Random kernel + random single-bit fault -> golden output."""
    from repro.gpusim import FaultCampaign, FaultOutcome

    result = PennyCompiler(PennyConfig(overwrite="sa")).compile(
        kernel, LaunchConfig(threads_per_block=16, num_blocks=1)
    )

    def make_memory():
        mem = MemoryImage()
        addr = mem.alloc_global(256)
        mem.upload(addr, list(range(1, 257)))
        mem.set_param("A", addr)
        return mem

    campaign = FaultCampaign(
        result.kernel, Launch(grid=1, block=16), make_memory, (0, 256)
    )
    report = campaign.run_random(4, seed=seed, bits_per_fault=1)
    for r in report.results:
        assert r.outcome in (
            FaultOutcome.MASKED,
            FaultOutcome.RECOVERED,
            FaultOutcome.NOT_INJECTED,
        ), r.outcome
