"""Property tests for the vectorized engine's divergence-mask scheduler.

Random forward-branching CFGs (guarded skips, nested join points,
data-dependent predicates) plus random loop trip counts are the shapes
that stress frontier splitting and reconvergence.  For every generated
kernel both engines must agree bit-for-bit on output memory and on the
:class:`ExecutionResult` — per-thread instruction counts included, which
pins down exactly which lanes executed which blocks."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.gpusim import Launch, MemoryImage, make_executor
from repro.gpusim.faults import FaultPlan
from repro.ir import KernelBuilder

OPS = ("add", "sub", "mul", "xor", "and_", "or_")


@st.composite
def forward_branchy_kernels(draw):
    """A chain of guarded forward-skip segments: each segment computes a
    few ALU ops, then conditionally jumps over the next segment on a
    data-dependent predicate.  Divergence masks split at every guarded
    branch and re-merge at each join label."""
    n_segments = draw(st.integers(2, 5))
    b = KernelBuilder("fwd", params=[("A", "ptr"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    off = b.shl(tid, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    acc = b.mov(v, dst=b.reg("u32", "%acc"))
    for s in range(n_segments):
        n_ops = draw(st.integers(1, 3))
        cur = acc
        for _ in range(n_ops):
            op = draw(st.sampled_from(OPS))
            operand = draw(st.integers(1, 255))
            cur = getattr(b, op)(cur, operand)
        b.add(acc, cur, dst=acc)
        threshold = draw(st.integers(0, 255))
        cmp = draw(st.sampled_from(("lt", "ge", "eq", "ne")))
        low = b.and_(acc, 255)
        p = b.setp(cmp, low, threshold)
        b.bra(f"SKIP{s}", pred=p)
        bump = draw(st.integers(1, 999))
        b.add(acc, bump, dst=acc)
        b.label(f"SKIP{s}")
    b.st("global", addr, acc)
    b.ret()
    return b.finish()


@st.composite
def diverging_loop_kernels(draw):
    """Per-lane trip counts: lane ``tid`` iterates ``tid % m + 1`` times,
    so lanes retire from the loop frontier at different iterations."""
    modulo = draw(st.integers(2, 7))
    n_ops = draw(st.integers(1, 3))
    b = KernelBuilder("vloop", params=[("A", "ptr"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    off = b.shl(tid, 2)
    addr = b.add(a, off)
    trips = b.add(b.rem(tid, modulo), 1)
    acc = b.ld("global", addr, dtype="u32")
    i = b.mov(0, dst=b.reg("u32", "%i"))
    b.label("HEAD")
    p_done = b.setp("ge", i, trips)
    b.bra("EXIT", pred=p_done)
    cur = acc
    for _ in range(n_ops):
        op = draw(st.sampled_from(OPS))
        operand = draw(st.integers(1, 99))
        cur = getattr(b, op)(cur, operand)
    b.add(acc, cur, dst=acc)
    b.add(i, 1, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    b.st("global", addr, acc)
    b.ret()
    return b.finish()


def _ab(kernel, threads=16, plan_factory=None):
    outcomes = []
    for backend in ("scalar", "vector"):
        mem = MemoryImage()
        addr = mem.alloc_global(256)
        mem.upload(addr, list(range(3, 3 + 64)))
        mem.set_param("A", addr)
        mem.set_param("n", threads)
        plan = plan_factory() if plan_factory else None
        if plan is None:
            ex = make_executor(
                kernel, backend=backend, rf_code_factory=lambda: None
            )
        else:
            # parity RF needed for detection: keep the factory default
            ex = make_executor(kernel, backend=backend, fault_plan=plan)
        try:
            result = ex.run(Launch(grid=1, block=threads), mem)
            outcomes.append(("ok", result, mem.snapshot_global()))
        except Exception as exc:
            outcomes.append(("exc", type(exc).__name__, str(exc)))
    assert outcomes[0] == outcomes[1]


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=forward_branchy_kernels())
def test_forward_divergence_masks_match_scalar(kernel):
    _ab(kernel)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=diverging_loop_kernels())
def test_per_lane_loop_retirement_matches_scalar(kernel):
    _ab(kernel)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=forward_branchy_kernels(), tid=st.integers(0, 15),
       after=st.integers(1, 40))
def test_penny_recovery_under_divergence_matches_scalar(
    kernel, tid, after
):
    """Protected compile + a targeted flip inside the divergent region:
    detection, restore, and re-execution must agree across engines."""
    compiled = PennyCompiler(PennyConfig()).compile(
        kernel, LaunchConfig(threads_per_block=16, num_blocks=1)
    )
    _ab(
        compiled.kernel,
        plan_factory=lambda: FaultPlan(
            ctaid=0, tid=tid, after_instructions=after, bits=(11,)
        ),
    )
