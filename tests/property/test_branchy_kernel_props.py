"""Property tests over random kernels with divergent branches inside
loops — the hardest shape: multi-LUP live-ins (Figure 2), predicate
dependences in the PDDG, select-linearized recovery slices, and storage
alternation, all under fault injection."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.gpusim import (
    Executor,
    FaultCampaign,
    FaultOutcome,
    Launch,
    MemoryImage,
)
from repro.ir import KernelBuilder

OPS = ("add", "sub", "mul", "xor")


@st.composite
def branchy_kernels(draw):
    """Grid-stride loop whose body diverges on a data-dependent predicate;
    both arms update a carried register differently (two LUPs per boundary),
    then an in-place store forces a region cut."""
    n_pre = draw(st.integers(1, 4))
    threshold = draw(st.integers(1, 64))

    b = KernelBuilder("branchy", params=[("A", "ptr"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    n = b.ld_param("n")
    acc = b.mov(draw(st.integers(0, 9)), dst=b.reg("u32", "%acc"))
    i = b.mov(tid, dst=b.reg("u32", "%i"))
    limit = b.mul(n, 3)
    b.label("HEAD")
    p_done = b.setp("ge", i, limit)
    b.bra("EXIT", pred=p_done)
    idx = b.rem(i, n)
    off = b.shl(idx, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    cur = v
    for _ in range(n_pre):
        op = draw(st.sampled_from(OPS))
        operand = draw(st.integers(1, 99))
        cur = getattr(b, op)(cur, operand)
    # divergent arms writing the same register differently
    low = b.and_(cur, 63)
    p_arm = b.setp("lt", low, threshold)
    x = b.reg("u32", "%x")
    b.bra("THEN", pred=p_arm)
    b.xor(cur, 0x5A5A, dst=x)
    b.bra("JOIN")
    b.label("THEN")
    b.add(cur, acc, dst=x)
    b.label("JOIN")
    b.add(acc, x, dst=acc)
    b.st("global", addr, x)  # in-place update: boundary per iteration
    b.add(i, n, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    out_off = b.shl(tid, 2)
    b.st("global", b.add(a, out_off), acc, offset=4096)
    b.ret()
    return b.finish()


def _run(kernel, threads=8):
    mem = MemoryImage()
    addr = mem.alloc_global(4096)
    mem.upload(addr, list(range(3, 3 + 64)))
    mem.set_param("A", addr)
    mem.set_param("n", threads)
    Executor(kernel, rf_code_factory=lambda: None).run(
        Launch(grid=1, block=threads), mem
    )
    return mem.download(addr, 4096)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=branchy_kernels())
def test_penny_preserves_branchy_kernels(kernel):
    golden = _run(kernel)
    result = PennyCompiler(PennyConfig(overwrite="sa")).compile(
        kernel, LaunchConfig(threads_per_block=8, num_blocks=1)
    )
    assert _run(result.kernel) == golden


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=branchy_kernels())
def test_branchy_kernels_verify_clean(kernel):
    from repro.core.verify import verify_compiled

    result = PennyCompiler(PennyConfig(overwrite="sa")).compile(
        kernel, LaunchConfig(threads_per_block=8, num_blocks=1)
    )
    assert verify_compiled(result.kernel) == []


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=branchy_kernels(), seed=st.integers(0, 2**16))
def test_branchy_kernels_recover(kernel, seed):
    result = PennyCompiler(PennyConfig(overwrite="sa")).compile(
        kernel, LaunchConfig(threads_per_block=8, num_blocks=1)
    )

    def make_memory():
        mem = MemoryImage()
        addr = mem.alloc_global(4096)
        mem.upload(addr, list(range(3, 3 + 64)))
        mem.set_param("A", addr)
        mem.set_param("n", 8)
        return mem

    campaign = FaultCampaign(
        result.kernel, Launch(grid=1, block=8), make_memory, (0, 4096)
    )
    report = campaign.run_random(4, seed=seed, bits_per_fault=1)
    for r in report.results:
        assert r.outcome in (
            FaultOutcome.MASKED,
            FaultOutcome.RECOVERED,
            FaultOutcome.NOT_INJECTED,
        ), r.outcome
