"""Property tests over randomly generated *loop* kernels — the hard case:
loop-carried registers, per-iteration regions, storage alternation, and
recovery all at once."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.gpusim import Executor, FaultCampaign, FaultOutcome, Launch, MemoryImage
from repro.ir import KernelBuilder

OPS = ("add", "sub", "mul", "xor", "min", "max")
_METHOD = {"min": "min_", "max": "max_"}


@st.composite
def loop_kernels(draw):
    """A grid-stride loop with a random number of carried accumulators
    updated by random ALU ops, an in-place memory update (anti-dependence),
    and a final store of every accumulator."""
    n_carried = draw(st.integers(1, 4))
    n_body = draw(st.integers(2, 8))
    trip = draw(st.integers(2, 6))

    b = KernelBuilder("randloop", params=[("A", "ptr"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    n = b.ld_param("n")
    carried = [
        b.mov(draw(st.integers(0, 99)), dst=b.reg("u32", f"%acc{i}"))
        for i in range(n_carried)
    ]
    i = b.mov(tid, dst=b.reg("u32", "%i"))
    limit = b.mul(n, trip)
    b.label("HEAD")
    p = b.setp("ge", i, limit)
    b.bra("EXIT", pred=p)
    idx = b.rem(i, n)
    off = b.shl(idx, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    cur = v
    for _ in range(n_body):
        op = draw(st.sampled_from(OPS))
        operand_pool = carried + [cur, i]
        x = operand_pool[draw(st.integers(0, len(operand_pool) - 1))]
        cur = getattr(b, _METHOD.get(op, op))(cur, x)
    target = draw(st.integers(0, n_carried - 1))
    op = draw(st.sampled_from(OPS))
    b.emit_acc = getattr(b, _METHOD.get(op, op))(
        carried[target], cur, dst=carried[target]
    )
    b.st("global", addr, cur)  # in-place update: anti-dependence
    b.add(i, n, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    out_off = b.shl(tid, 2)
    out_addr = b.add(a, out_off)
    for k, acc in enumerate(carried):
        b.st("global", out_addr, acc, offset=4096 + 4 * k * 64)
    b.ret()
    return b.finish()


def _run(kernel, threads=8):
    mem = MemoryImage()
    addr = mem.alloc_global(4096)
    mem.upload(addr, list(range(1, 65)))
    mem.set_param("A", addr)
    mem.set_param("n", threads)
    Executor(kernel, rf_code_factory=lambda: None).run(
        Launch(grid=1, block=threads), mem
    )
    return mem.download(addr, 4096)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=loop_kernels())
def test_penny_preserves_loop_kernels(kernel):
    golden = _run(kernel)
    result = PennyCompiler(PennyConfig(overwrite="sa")).compile(
        kernel, LaunchConfig(threads_per_block=8, num_blocks=1)
    )
    assert _run(result.kernel) == golden


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=loop_kernels())
def test_rr_mode_also_preserves(kernel):
    golden = _run(kernel)
    result = PennyCompiler(PennyConfig(overwrite="rr")).compile(
        kernel, LaunchConfig(threads_per_block=8, num_blocks=1)
    )
    assert _run(result.kernel) == golden


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel=loop_kernels(), seed=st.integers(0, 2**16))
def test_loop_kernels_recover_from_faults(kernel, seed):
    """Single-bit faults at random points of random loop kernels: the
    recovery invariant must hold through storage alternation."""
    result = PennyCompiler(PennyConfig(overwrite="sa")).compile(
        kernel, LaunchConfig(threads_per_block=8, num_blocks=1)
    )

    def make_memory():
        mem = MemoryImage()
        addr = mem.alloc_global(4096)
        mem.upload(addr, list(range(1, 65)))
        mem.set_param("A", addr)
        mem.set_param("n", 8)
        return mem

    campaign = FaultCampaign(
        result.kernel, Launch(grid=1, block=8), make_memory, (0, 4096)
    )
    report = campaign.run_random(4, seed=seed, bits_per_fault=1)
    for r in report.results:
        assert r.outcome in (
            FaultOutcome.MASKED,
            FaultOutcome.RECOVERED,
            FaultOutcome.NOT_INJECTED,
        ), r.outcome
