"""Property-based tests (hypothesis) for the coding substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    DectedCode,
    HammingCode,
    ParityCode,
    SecdedCode,
    TecqedCode,
)
from repro.coding.base import DecodeStatus, flip_bits

CODES = {
    "parity": ParityCode(32),
    "hamming": HammingCode(32),
    "secded": SecdedCode(32),
    "dected": DectedCode(32),
    "tecqed": TecqedCode(32),
}

data_words = st.integers(min_value=0, max_value=2**32 - 1)
code_names = st.sampled_from(sorted(CODES))


@given(name=code_names, data=data_words)
def test_roundtrip(name, data):
    code = CODES[name]
    cw = code.encode(data)
    assert code.extract_data(cw) == data
    assert not code.check(cw)
    r = code.decode(cw)
    assert r.status is DecodeStatus.CLEAN and r.data == data


@given(name=code_names, data=data_words, seed=st.integers(0, 2**20))
def test_detection_guarantee(name, data, seed):
    import random

    code = CODES[name]
    rng = random.Random(seed)
    nerr = rng.randint(1, code.guaranteed_detect)
    cw = code.encode(data)
    bad = flip_bits(cw, rng.sample(range(code.n), nerr))
    assert code.check(bad)


@given(name=code_names, data=data_words, seed=st.integers(0, 2**20))
def test_correction_guarantee(name, data, seed):
    import random

    code = CODES[name]
    if code.guaranteed_correct == 0:
        return
    rng = random.Random(seed)
    nerr = rng.randint(1, code.guaranteed_correct)
    cw = code.encode(data)
    bad = flip_bits(cw, rng.sample(range(code.n), nerr))
    r = code.decode(bad)
    assert r.status is DecodeStatus.CORRECTED
    assert r.data == data


@given(name=st.sampled_from(["secded", "dected", "tecqed"]),
       data=data_words, seed=st.integers(0, 2**20))
def test_extended_codes_never_miscorrect_t_plus_1(name, data, seed):
    import random

    code = CODES[name]
    rng = random.Random(seed)
    cw = code.encode(data)
    bad = flip_bits(
        cw, rng.sample(range(code.n), code.guaranteed_correct + 1)
    )
    assert code.decode(bad).status is DecodeStatus.DETECTED


@given(data=data_words)
def test_codeword_bit_budget(data):
    for code in CODES.values():
        cw = code.encode(data)
        assert cw < (1 << code.n)


@given(a=data_words, b=data_words)
def test_distinct_data_distinct_codewords(a, b):
    for code in CODES.values():
        if a != b:
            assert code.encode(a) != code.encode(b)
