"""Property-based fault injection: Appendix A as a hypothesis invariant.

For *any* single-bit flip on *any* register of *any* thread at *any*
dynamic point, the Penny-protected kernel produces the golden output.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import get_benchmark
from repro.core.pipeline import PennyCompiler
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.gpusim import FaultCampaign, FaultOutcome, FaultPlan


def _prepare(abbr):
    bench = get_benchmark(abbr)
    wl = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    campaign = FaultCampaign(
        result.kernel, wl.launch, wl.make_memory, wl.output_region()
    )
    campaign.golden_output()  # warm the golden cache
    return campaign


CAMPAIGNS = {}


def campaign_for(abbr):
    if abbr not in CAMPAIGNS:
        CAMPAIGNS[abbr] = _prepare(abbr)
    return CAMPAIGNS[abbr]


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    tid=st.integers(0, 31),
    ctaid=st.integers(0, 1),
    point=st.integers(1, 80),
    bit=st.integers(0, 32),
    reg_seed=st.integers(0, 2**16),
)
def test_stc_single_bit_invariant(tid, ctaid, point, bit, reg_seed):
    campaign = campaign_for("STC")
    plan = FaultPlan(
        ctaid=ctaid,
        tid=tid,
        after_instructions=point,
        bits=(bit,),
        rng_seed=reg_seed,
    )
    result = campaign.run_one(plan)
    assert result.outcome in (
        FaultOutcome.MASKED,
        FaultOutcome.RECOVERED,
        FaultOutcome.NOT_INJECTED,
    ), result.outcome


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    tid=st.integers(0, 31),
    point=st.integers(1, 300),
    bit=st.integers(0, 32),
    reg_seed=st.integers(0, 2**16),
)
def test_bo_single_bit_invariant(tid, point, bit, reg_seed):
    """BO exercises local-memory anti-dependences and inner-loop regions."""
    campaign = campaign_for("BO")
    plan = FaultPlan(
        ctaid=0,
        tid=tid,
        after_instructions=point,
        bits=(bit,),
        rng_seed=reg_seed,
    )
    result = campaign.run_one(plan)
    assert result.outcome in (
        FaultOutcome.MASKED,
        FaultOutcome.RECOVERED,
        FaultOutcome.NOT_INJECTED,
    ), result.outcome


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    tid=st.integers(0, 31),
    point=st.integers(1, 120),
    bit=st.integers(0, 32),
    reg_seed=st.integers(0, 2**16),
)
def test_fw_single_bit_invariant(tid, point, bit, reg_seed):
    """FW exercises shared-memory butterflies with barriers."""
    campaign = campaign_for("FW")
    plan = FaultPlan(
        ctaid=0,
        tid=tid,
        after_instructions=point,
        bits=(bit,),
        rng_seed=reg_seed,
    )
    result = campaign.run_one(plan)
    assert result.outcome in (
        FaultOutcome.MASKED,
        FaultOutcome.RECOVERED,
        FaultOutcome.NOT_INJECTED,
    ), result.outcome
