"""Checkpoint planning: eager placement, cost model, bimodal vertex cover,
hazard detection, renaming, and coloring."""

import pytest

from repro.analysis import CFG, ReachingDefs
from repro.core.bimodal import bimodal_plan
from repro.core.checkpoints import CheckpointKind, PruneState, eager_plan
from repro.core.coloring import (
    CURRENT_SLOT,
    SNAPSHOT_SLOT,
    color_checkpoints,
)
from repro.core.costmodel import CostModel
from repro.core.hazards import detect_hazards, materialize_instances
from repro.core.liveins import analyze_liveins
from repro.core.regions import form_regions
from repro.core.renaming import apply_renaming, compute_webs
from repro.ir import KernelBuilder
from repro.ir.types import Reg


def loop_update_kernel():
    """Loop with in-place A[i] update: per-iteration regions, loop-carried
    induction variable, live-in address/value registers."""
    b = KernelBuilder("k", params=[("A", "ptr"), ("n", "u32")])
    a = b.ld_param("A")
    n = b.ld_param("n")
    i = b.mov(0, dst=b.reg("u32", "%i"))
    b.label("HEAD")
    p = b.setp("ge", i, n)
    b.bra("EXIT", pred=p)
    off = b.shl(i, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    v2 = b.mul(v, 2)
    b.st("global", addr, v2)
    b.add(i, 1, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    b.ret()
    return b.finish()


def figure4_kernel():
    """The paper's Figure 4 shape: a register checkpointed, then redefined
    and checkpointed again within a region where it is live-in."""
    b = KernelBuilder("k", params=[("A", "ptr")])
    a = b.ld_param("A")
    r1 = b.mov(5, dst=b.reg("u32", "%r1"))
    v = b.ld("global", a, dtype="u32")
    b.st("global", a, r1)            # anti-dep: cut before this store (R2)
    r4 = b.mov(7, dst=b.reg("u32", "%r4"))
    b.add(r1, r4, dst=r1)            # redefinition of r1 (Figure 4 line 6)
    w = b.ld("global", a, dtype="u32")
    b.st("global", a, r1)            # second cut (R3); r1 live-in there
    b.ret()
    return b.finish()


def _prepare(kernel):
    regions = form_regions(kernel)
    cfg = CFG(kernel)
    rdefs = ReachingDefs(cfg)
    liveins = analyze_liveins(kernel, regions, cfg=cfg, rdefs=rdefs)
    return regions, cfg, rdefs, liveins


class TestEagerPlan:
    def test_one_checkpoint_per_lup(self):
        k = loop_update_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        plan = eager_plan(liveins)
        assert plan.checkpoints
        for cp in plan.checkpoints:
            assert cp.kind is CheckpointKind.LUP
            assert cp.covers

    def test_all_edges_covered(self):
        k = loop_update_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        plan = eager_plan(liveins)
        covered = set()
        for cp in plan.checkpoints:
            covered |= cp.covers
        all_edges = {
            (lup, b) for reg, edges in liveins.edges.items()
            for (lup, b) in edges
        }
        assert covered == all_edges


class TestCostModel:
    def test_exponential_in_depth(self):
        k = loop_update_kernel()
        _prepare(k)
        cfg = CFG(k)
        cost = CostModel.for_cfg(cfg, base=64)
        assert cost.block_cost("ENTRY") == 1
        assert cost.block_cost("HEAD") == 64

    def test_figure3_base(self):
        k = loop_update_kernel()
        _prepare(k)
        cost = CostModel.for_cfg(CFG(k), base=2)
        assert cost.block_cost("HEAD") == 2


class TestBimodal:
    def test_covers_all_edges(self):
        k = loop_update_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        cost = CostModel.for_cfg(cfg, base=2)
        plan = bimodal_plan(cfg, liveins, cost)
        covered = set()
        for cp in plan.checkpoints:
            covered |= cp.covers
        all_edges = {
            (lup, b) for reg, edges in liveins.edges.items()
            for (lup, b) in edges
        }
        assert covered == all_edges

    def test_never_costs_more_than_eager(self):
        k = loop_update_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        cost = CostModel.for_cfg(cfg, base=2)

        def plan_cost(plan):
            total = 0
            for cp in plan.checkpoints:
                for label in cp.insertion_blocks(cfg):
                    total += cost.block_cost(label)
            return total

        assert plan_cost(bimodal_plan(cfg, liveins, cost)) <= plan_cost(
            eager_plan(liveins)
        )

    def test_hoists_out_of_loop_when_possible(self):
        """A register defined before the loop but live-in to a post-loop
        boundary should be checkpointed outside the loop."""
        b = KernelBuilder("k", params=[("A", "ptr"), ("n", "u32")])
        a = b.ld_param("A")
        n = b.ld_param("n")
        x = b.mov(42, dst=b.reg("u32", "%x"))
        i = b.mov(0, dst=b.reg("u32", "%i"))
        b.label("HEAD")
        p = b.setp("ge", i, n)
        b.bra("EXIT", pred=p)
        off = b.shl(i, 2)
        addr = b.add(a, off)
        v = b.ld("global", addr, dtype="u32")
        b.st("global", addr, v)
        b.add(i, 1, dst=i)
        b.bra("HEAD")
        b.label("EXIT")
        b.st("global", a, x, offset=4096)
        w = b.ld("global", a, offset=4096, dtype="u32")
        b.st("global", a, w, offset=8192)
        b.ret()
        k = b.finish()
        regions, cfg, rdefs, liveins = _prepare(k)
        cost = CostModel.for_cfg(cfg, base=2)
        plan = bimodal_plan(cfg, liveins, cost)
        x_cps = plan.of_register(Reg("%x"))
        assert x_cps
        for cp in x_cps:
            for label in cp.insertion_blocks(cfg):
                assert cost.depth(label) == 0, "checkpoint left inside loop"


class TestHazards:
    def test_loop_carried_register_is_hazardous(self):
        k = loop_update_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        plan = bimodal_plan(cfg, liveins, CostModel.for_cfg(cfg))
        instances = materialize_instances(plan, cfg)
        hazardous = detect_hazards(cfg, regions, liveins, instances)
        assert Reg("%i") in hazardous

    def test_loop_invariant_register_not_hazardous(self):
        k = loop_update_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        plan = bimodal_plan(cfg, liveins, CostModel.for_cfg(cfg))
        instances = materialize_instances(plan, cfg)
        hazardous = detect_hazards(cfg, regions, liveins, instances)
        # the loop bound and base address are never redefined
        for reg in hazardous:
            assert reg.name not in ("%v0", "%v1")

    def test_figure4_redefinition_is_hazardous(self):
        k = figure4_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        plan = eager_plan(liveins)
        instances = materialize_instances(plan, cfg)
        hazardous = detect_hazards(cfg, regions, liveins, instances)
        assert Reg("%r1") in hazardous


class TestRenaming:
    def test_webs_merge_at_joins(self):
        k = loop_update_kernel()
        _prepare(k)
        cfg = CFG(k)
        rdefs = ReachingDefs(cfg)
        webs = compute_webs(cfg, rdefs)
        i_sites = [s for s in webs if s.reg == Reg("%i")]
        assert i_sites
        # init and increment belong to one web (they meet at the setp use)
        assert len({id(webs[s]) for s in i_sites}) == 1

    def test_figure4_resolved_by_renaming(self):
        """Renaming must break the Figure 4 hazard (the new value's web is
        disjoint from the live-in web)."""
        k = figure4_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        plan = eager_plan(liveins)
        instances = materialize_instances(plan, cfg)
        detect_hazards(cfg, regions, liveins, instances)
        renamed = apply_renaming(k, cfg, regions, liveins, rdefs, instances)
        assert renamed >= 1
        # after renaming, re-analysis shows %r1's redefinition is gone
        cfg2 = CFG(k)
        rdefs2 = ReachingDefs(cfg2)
        liveins2 = analyze_liveins(k, regions, cfg=cfg2, rdefs=rdefs2)
        plan2 = eager_plan(liveins2)
        instances2 = materialize_instances(plan2, cfg2)
        hazardous2 = detect_hazards(cfg2, regions, liveins2, instances2)
        assert Reg("%r1") not in hazardous2

    def test_loop_carried_not_renamable(self):
        k = loop_update_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        plan = bimodal_plan(cfg, liveins, CostModel.for_cfg(cfg))
        instances = materialize_instances(plan, cfg)
        detect_hazards(cfg, regions, liveins, instances)
        renamed = apply_renaming(k, cfg, regions, liveins, rdefs, instances)
        # %i's web supplies its own live-in: renaming must refuse it
        cfg2 = CFG(k)
        assert Reg("%i") in {r for r in cfg2.kernel.all_registers()}


class TestColoring:
    def test_snapshot_dummies_on_boundary_edges(self):
        k = loop_update_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        plan = bimodal_plan(cfg, liveins, CostModel.for_cfg(cfg))
        instances = materialize_instances(plan, cfg)
        hazardous = detect_hazards(cfg, regions, liveins, instances)
        coloring = color_checkpoints(cfg, regions, liveins, instances, hazardous)
        assert coloring.colored_registers == hazardous
        for adj in coloring.adjustments:
            assert adj.succ in regions.boundaries
            assert adj.color == SNAPSHOT_SLOT
            assert adj.restore_color == CURRENT_SLOT

    def test_restore_colors_point_at_snapshot_slot(self):
        k = loop_update_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        plan = bimodal_plan(cfg, liveins, CostModel.for_cfg(cfg))
        instances = materialize_instances(plan, cfg)
        hazardous = detect_hazards(cfg, regions, liveins, instances)
        coloring = color_checkpoints(cfg, regions, liveins, instances, hazardous)
        for reg in hazardous:
            for label, binfo in liveins.boundaries.items():
                if reg in binfo.live_ins and reg in binfo.lups:
                    assert coloring.restore_color(label, reg) == SNAPSHOT_SLOT

    def test_non_hazardous_registers_untouched(self):
        k = loop_update_kernel()
        regions, cfg, rdefs, liveins = _prepare(k)
        plan = bimodal_plan(cfg, liveins, CostModel.for_cfg(cfg))
        instances = materialize_instances(plan, cfg)
        hazardous = detect_hazards(cfg, regions, liveins, instances)
        coloring = color_checkpoints(cfg, regions, liveins, instances, hazardous)
        safe = Reg("%v1")
        assert coloring.restore_color("HEAD", safe) == 0
        assert all(a.reg != safe for a in coloring.adjustments)
