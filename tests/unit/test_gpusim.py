"""Simulator components: memory, register file, executor semantics,
occupancy, timing, energy."""

import math

import pytest

from repro.coding import ParityCode, SecdedCode
from repro.gpusim import (
    FERMI_C2050,
    VOLTA_TITAN_V,
    Executor,
    Launch,
    MemoryImage,
    ParityError,
    RegisterFile,
    TimingModel,
    occupancy,
    rf_energy,
)
from repro.gpusim.executor import (
    SimulationError,
    b2f,
    f2b,
    to_signed,
)
from repro.gpusim.memory import MemoryError32, WordStore
from repro.ir import KernelBuilder


class TestWordStore:
    def test_load_store(self):
        s = WordStore("t")
        s.store(8, 123)
        assert s.load(8) == 123
        assert s.load(4) == 0  # untouched words read zero

    def test_unaligned_rejected(self):
        s = WordStore("t")
        with pytest.raises(MemoryError32):
            s.load(3)
        with pytest.raises(MemoryError32):
            s.store(5, 1)

    def test_bounds(self):
        s = WordStore("t", size_bytes=16)
        with pytest.raises(MemoryError32):
            s.load(16)

    def test_allocator_is_aligned_and_disjoint(self):
        s = WordStore("t")
        a = s.allocate(100)
        b = s.allocate(100)
        assert a % 256 == 0 and b % 256 == 0
        assert b >= a + 100

    def test_values_truncated_to_32_bits(self):
        s = WordStore("t")
        s.store(0, 0x1_2345_6789)
        assert s.load(0) == 0x2345_6789

    def test_access_counters(self):
        s = WordStore("t")
        s.store(0, 1)
        s.load(0)
        s.load(0)
        assert (s.writes, s.reads) == (1, 2)


class TestRegisterFile:
    def test_write_read_roundtrip(self):
        rf = RegisterFile(ParityCode(32))
        rf.write("%r1", 0xDEADBEEF)
        assert rf.read("%r1") == 0xDEADBEEF

    def test_single_flip_detected(self):
        rf = RegisterFile(ParityCode(32))
        rf.write("%r1", 42)
        assert rf.flip_bits("%r1", [7])
        with pytest.raises(ParityError):
            rf.read("%r1")
        assert rf.detections == 1

    def test_rewrite_clears_corruption(self):
        rf = RegisterFile(ParityCode(32))
        rf.write("%r1", 42)
        rf.flip_bits("%r1", [7])
        rf.write("%r1", 43)
        assert rf.read("%r1") == 43

    def test_double_flip_escapes_parity_but_not_secded(self):
        rf_p = RegisterFile(ParityCode(32))
        rf_p.write("%r1", 42)
        rf_p.flip_bits("%r1", [3, 9])
        assert rf_p.read("%r1") != 42  # silent corruption

        rf_s = RegisterFile(SecdedCode(32))
        rf_s.write("%r1", 42)
        rf_s.flip_bits("%r1", [3, 9])
        with pytest.raises(ParityError):
            rf_s.read("%r1")

    def test_unprotected_rf_lets_everything_through(self):
        rf = RegisterFile(None)
        rf.write("%r1", 42)
        rf.flip_bits("%r1", [3])
        assert rf.read("%r1") == 42 ^ 8

    def test_flip_unknown_register_is_noop(self):
        rf = RegisterFile(ParityCode(32))
        assert not rf.flip_bits("%nope", [1])

    def test_read_of_unwritten_register_is_zero(self):
        rf = RegisterFile(ParityCode(32))
        assert rf.read("%fresh") == 0


class TestFloatConversion:
    def test_round_trip(self):
        for v in (0.0, 1.5, -3.25, 1e20, -1e-20):
            assert b2f(f2b(v)) == pytest.approx(v, rel=1e-6)

    def test_fp32_rounding(self):
        # 1e40 overflows fp32 to +inf
        assert math.isinf(b2f(f2b(1e40)))

    def test_to_signed(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x7FFFFFFF) == 2**31 - 1
        assert to_signed(5) == 5


class TestExecutorSemantics:
    def _run_expr(self, build_fn, params=None, buffers=1):
        b = KernelBuilder("t", params=[("OUT", "ptr")] + (params or []))
        out = b.ld_param("OUT")
        val = build_fn(b)
        b.st("global", out, val)
        b.ret()
        kernel = b.finish()
        mem = MemoryImage()
        addr = mem.alloc_global(buffers)
        mem.set_param("OUT", addr)
        Executor(kernel).run(Launch(grid=1, block=1), mem)
        return mem.download(addr, 1)[0]

    def test_integer_arithmetic(self):
        assert self._run_expr(lambda b: b.add(7, 5)) == 12
        assert self._run_expr(lambda b: b.sub(3, 5)) == (3 - 5) & 0xFFFFFFFF
        assert self._run_expr(lambda b: b.mul(6, 7)) == 42
        assert self._run_expr(lambda b: b.mad(3, 4, 5)) == 17
        assert self._run_expr(lambda b: b.div(17, 5)) == 3
        assert self._run_expr(lambda b: b.rem(17, 5)) == 2

    def test_signed_semantics(self):
        big = 0xFFFFFFF6  # -10 as two's complement
        assert self._run_expr(lambda b: b.div(big, 3, dtype="s32")) == (
            (-3) & 0xFFFFFFFF
        )
        assert self._run_expr(lambda b: b.abs_(big, dtype="s32")) == 10
        assert self._run_expr(lambda b: b.shr(big, 1, dtype="s32")) == (
            (-5) & 0xFFFFFFFF
        )
        assert self._run_expr(lambda b: b.shr(big, 1, dtype="u32")) == (
            big >> 1
        )

    def test_division_by_zero_defined(self):
        assert self._run_expr(lambda b: b.div(5, 0)) == 0
        assert self._run_expr(lambda b: b.rem(5, 0)) == 0

    def test_bitwise(self):
        assert self._run_expr(lambda b: b.and_(0b1100, 0b1010)) == 0b1000
        assert self._run_expr(lambda b: b.or_(0b1100, 0b1010)) == 0b1110
        assert self._run_expr(lambda b: b.xor(0b1100, 0b1010)) == 0b0110
        assert self._run_expr(lambda b: b.shl(1, 4)) == 16

    def test_float_arithmetic(self):
        got = self._run_expr(lambda b: b.fma(2.0, 3.0, 1.0))
        assert b2f(got) == pytest.approx(7.0)
        got = self._run_expr(lambda b: b.sqrt(b.mov(9.0, dtype="f32")))
        assert b2f(got) == pytest.approx(3.0)
        got = self._run_expr(lambda b: b.ex2(b.mov(3.0, dtype="f32")))
        assert b2f(got) == pytest.approx(8.0)

    def test_cvt_both_directions(self):
        got = self._run_expr(lambda b: b.cvt(b.mov(7), "f32"))
        assert b2f(got) == pytest.approx(7.0)
        got = self._run_expr(
            lambda b: b.cvt(b.mov(3.75, dtype="f32"), "u32")
        )
        assert got == 3

    def test_setp_and_selp(self):
        def build(b):
            p = b.setp("lt", 3, 5)
            return b.selp(111, 222, p)

        assert self._run_expr(build) == 111

    def test_special_registers(self):
        b = KernelBuilder("t", params=[("OUT", "ptr")])
        out = b.ld_param("OUT")
        tid = b.special_u32("%tid.x")
        ntid = b.special_u32("%ntid.x")
        ct = b.special_u32("%ctaid.x")
        g = b.mad(ct, ntid, tid)
        off = b.shl(g, 2)
        b.st("global", b.add(out, off), g)
        b.ret()
        kernel = b.finish()
        mem = MemoryImage()
        addr = mem.alloc_global(8)
        mem.set_param("OUT", addr)
        Executor(kernel).run(Launch(grid=2, block=4), mem)
        assert mem.download(addr, 8) == list(range(8))

    def test_atomics_accumulate(self):
        b = KernelBuilder("t", params=[("OUT", "ptr")])
        out = b.ld_param("OUT")
        b.atom("global", "add", out, 1)
        b.ret()
        kernel = b.finish()
        mem = MemoryImage()
        addr = mem.alloc_global(1)
        mem.set_param("OUT", addr)
        Executor(kernel).run(Launch(grid=2, block=16), mem)
        assert mem.download(addr, 1)[0] == 32

    def test_barrier_synchronizes_shared(self):
        """Thread 0 reads what thread 31 wrote before the barrier."""
        b = KernelBuilder("t", params=[("OUT", "ptr")], shared=[("s", 32)])
        out = b.ld_param("OUT")
        tid = b.special_u32("%tid.x")
        sbase = b.addr_of("s")
        off = b.shl(tid, 2)
        b.st("shared", b.add(sbase, off), tid)
        b.bar()
        rev = b.sub(31, tid)
        roff = b.shl(rev, 2)
        v = b.ld("shared", b.add(sbase, roff), dtype="u32")
        b.st("global", b.add(out, off), v)
        b.ret()
        kernel = b.finish()
        mem = MemoryImage()
        addr = mem.alloc_global(32)
        mem.set_param("OUT", addr)
        Executor(kernel).run(Launch(grid=1, block=32), mem)
        assert mem.download(addr, 32) == list(reversed(range(32)))

    def test_infinite_loop_detected(self):
        b = KernelBuilder("t", params=[])
        b.label("SPIN")
        b.mov(0)
        b.bra("SPIN")
        b.label("X")
        b.ret()
        kernel = b.finish()
        with pytest.raises(SimulationError):
            Executor(kernel, max_instructions_per_thread=1000).run(
                Launch(grid=1, block=1), MemoryImage()
            )

    def test_missing_param_reported(self):
        b = KernelBuilder("t", params=[("OUT", "ptr")])
        b.ld_param("OUT")
        b.ret()
        with pytest.raises(SimulationError):
            Executor(b.finish()).run(Launch(grid=1, block=1), MemoryImage())


class TestOccupancy:
    def test_block_limited(self):
        occ = occupancy(FERMI_C2050, threads_per_block=32,
                        regs_per_thread=8, shared_per_block=0)
        assert occ.blocks_per_sm == 8
        assert occ.limiter == "blocks"

    def test_thread_limited(self):
        occ = occupancy(FERMI_C2050, threads_per_block=512,
                        regs_per_thread=8, shared_per_block=0)
        assert occ.blocks_per_sm == 3
        assert occ.limiter == "threads"

    def test_register_limited(self):
        occ = occupancy(FERMI_C2050, threads_per_block=256,
                        regs_per_thread=63, shared_per_block=0)
        assert occ.limiter == "registers"
        assert occ.blocks_per_sm == 2

    def test_shared_limited(self):
        occ = occupancy(FERMI_C2050, threads_per_block=64,
                        regs_per_thread=8, shared_per_block=16 * 1024)
        assert occ.limiter == "shared"
        assert occ.blocks_per_sm == 3

    def test_volta_is_roomier(self):
        fermi = occupancy(FERMI_C2050, 256, 32, 8192)
        volta = occupancy(VOLTA_TITAN_V, 256, 32, 8192)
        assert volta.warps_per_sm >= fermi.warps_per_sm


class TestTiming:
    def _result_with(self, counts):
        from collections import Counter
        from repro.gpusim.executor import ExecutionResult

        r = ExecutionResult()
        r.warp_counts[(0, 0)] = Counter(counts)
        return r

    def test_adding_work_never_speeds_up(self):
        model = TimingModel(FERMI_C2050)
        base = self._result_with({"alu": 100, "ld_global": 10})
        more = self._result_with({"alu": 100, "ld_global": 10, "st_global": 5})
        t_base = model.estimate(base, 32, 2, 16, 0).cycles
        t_more = model.estimate(more, 32, 2, 16, 0).cycles
        assert t_more >= t_base

    def test_lower_occupancy_never_speeds_up(self):
        model = TimingModel(FERMI_C2050)
        r = self._result_with({"alu": 100, "ld_global": 10})
        fast = model.estimate(r, 256, 16, 16, 0).cycles
        slow = model.estimate(r, 256, 16, 63, 0).cycles  # register pressure
        assert slow >= fast

    def test_global_store_costs_more_than_shared(self):
        model = TimingModel(FERMI_C2050)
        shared = self._result_with({"alu": 20, "st_shared": 50})
        glob = self._result_with({"alu": 20, "st_global": 50})
        t_shared = model.estimate(shared, 32, 2, 16, 0).cycles
        t_global = model.estimate(glob, 32, 2, 16, 0).cycles
        assert t_global > t_shared

    def test_zero_occupancy_rejected(self):
        model = TimingModel(FERMI_C2050)
        r = self._result_with({"alu": 1})
        with pytest.raises(ValueError):
            model.estimate(r, 256, 1, 16, 10**9)


class TestEnergy:
    def test_parity_cheaper_than_secded(self):
        from repro.gpusim.executor import ExecutionResult

        r = ExecutionResult(rf_reads=1000, rf_writes=500)
        assert rf_energy(r, "Parity").total_pj < rf_energy(r, "SECDED").total_pj
        assert rf_energy(r, "None").total_pj < rf_energy(r, "Parity").total_pj

    def test_scales_with_accesses(self):
        from repro.gpusim.executor import ExecutionResult

        small = ExecutionResult(rf_reads=10, rf_writes=0)
        big = ExecutionResult(rf_reads=100, rf_writes=0)
        assert rf_energy(big, "Parity").total_pj == pytest.approx(
            10 * rf_energy(small, "Parity").total_pj
        )

    def test_total_gpu_energy_model(self):
        from repro.gpusim.energy import total_gpu_energy_norm

        # pure weighting: rf fraction of the rf term, rest of the cycles
        assert total_gpu_energy_norm(1.2, 1.0, 0.5) == pytest.approx(1.1)
        assert total_gpu_energy_norm(1.0, 1.0, 0.15) == pytest.approx(1.0)
        # an RF win can be wiped out by a run-time tax
        ecc = total_gpu_energy_norm(1.211, 1.0, 0.15)
        penny_slow = total_gpu_energy_norm(1.03, 1.06, 0.15)
        assert penny_slow > ecc - 0.05  # marginal, as §9.1 warns
        with pytest.raises(ValueError):
            total_gpu_energy_norm(1.0, 1.0, 0.0)
