"""CompileResult pickle-safety — the serving subsystem's load-bearing
invariant.

Results cross process boundaries (batch pool workers), live pickled in
the compile cache, and are unpickled fresh on every hit.  A result must
therefore survive ``pickle.loads(pickle.dumps(r))`` with *nothing* lost:
same ``to_dict()``, byte-identical protected kernel text, and the
recovery table (the paper's per-region REPLAY/SKIP metadata, stowed in
``kernel.meta``) intact and equal entry-for-entry.
"""

import pickle

import pytest

from repro.bench.suite import get_benchmark
from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.ir.parser import parse_module
from repro.ir.printer import print_kernel

PTX = """
.entry axpy (.param .ptr A, .param .u32 n) {
ENTRY:
  mov.u32 %tid, %tid.x;
  ld.param.u32 %a, [A];
  ld.param.u32 %n, [n];
  mov.u32 %i, %tid;
HEAD:
  setp.ge.u32 %p1, %i, %n;
  @%p1 bra EXIT;
BODY:
  shl.u32 %off, %i, 2;
  add.u32 %addr, %a, %off;
  ld.global.u32 %v, [%addr];
  mad.u32 %v2, %v, 3, 7;
  st.global.u32 [%addr], %v2;
  add.u32 %i, %i, 32;
  bra HEAD;
EXIT:
  ret;
}
"""


def _compile_ptx():
    kernel = parse_module(PTX).kernels[0]
    return PennyCompiler(PennyConfig()).compile(
        kernel, LaunchConfig(threads_per_block=32, num_blocks=2)
    )


def _round_trip(result):
    return pickle.loads(pickle.dumps(result))


def test_round_trip_preserves_report_dict():
    result = _compile_ptx()
    clone = _round_trip(result)
    assert clone.to_dict() == result.to_dict()
    assert clone.summary() == result.summary()


def test_round_trip_preserves_kernel_text():
    result = _compile_ptx()
    clone = _round_trip(result)
    assert print_kernel(clone.kernel) == print_kernel(result.kernel)


def test_round_trip_preserves_recovery_table():
    result = _compile_ptx()
    clone = _round_trip(result)
    table = result.kernel.meta["recovery_table"]
    cloned = clone.kernel.meta["recovery_table"]
    assert type(cloned) is type(table)
    assert sorted(cloned.regions) == sorted(table.regions)
    assert cloned == table
    assert clone.kernel.meta["region_boundaries"] == (
        result.kernel.meta["region_boundaries"]
    )
    assert clone.kernel.meta["protected"] is True


def test_clone_is_isolated():
    """Mutating an unpickled result must not reach the original (the
    cache hands out fresh copies for exactly this reason)."""
    result = _compile_ptx()
    clone = _round_trip(result)
    clone.kernel.meta["protected"] = "tampered"
    clone.stats["registers"] = -1
    assert result.kernel.meta["protected"] is True
    assert result.stats["registers"] != -1


@pytest.mark.parametrize("abbr", ["BFS", "SGEMM", "HS"])
def test_benchmark_results_survive_the_wire(abbr):
    bench = get_benchmark(abbr)
    result = PennyCompiler(PennyConfig()).compile(
        bench.fresh_kernel(), bench.workload().launch_config
    )
    clone = _round_trip(result)
    assert clone.to_dict() == result.to_dict()
    assert print_kernel(clone.kernel) == print_kernel(result.kernel)
    assert (
        clone.kernel.meta["recovery_table"]
        == result.kernel.meta["recovery_table"]
    )
