"""Compiler pipeline configuration, scheme presets, iGPU, and regalloc."""

import pytest

from repro.core.pipeline import (
    LaunchConfig,
    PennyCompiler,
    PennyConfig,
    clone_kernel,
)
from repro.core.schemes import (
    SCHEME_BOLT_AUTO,
    SCHEME_BOLT_GLOBAL,
    SCHEME_PENNY,
    igpu_transform,
    scheme_config,
)
from repro.ir import KernelBuilder, print_kernel
from repro.regalloc import allocate, count_registers


def little_kernel():
    b = KernelBuilder("k", params=[("A", "ptr"), ("n", "u32")])
    a = b.ld_param("A")
    n = b.ld_param("n")
    i = b.mov(0, dst=b.reg("u32", "%i"))
    b.label("HEAD")
    p = b.setp("ge", i, n)
    b.bra("EXIT", pred=p)
    off = b.shl(i, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    v2 = b.mul(v, 2)
    b.st("global", addr, v2)
    b.add(i, 1, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    b.ret()
    return b.finish()


class TestRegalloc:
    def test_allocation_within_budget(self):
        k = little_kernel()
        result = allocate(k, budget=8, rewrite=False)
        assert result.num_regs <= 8

    def test_rewrite_renames_to_physical(self):
        k = little_kernel()
        allocate(k, budget=16, rewrite=True)
        names = {r.name for r in k.all_registers()}
        assert all(n.startswith("%r") or n.startswith("%spill") for n in names)
        k.validate()

    def test_rewritten_kernel_still_runs(self):
        from repro.gpusim import Executor, Launch, MemoryImage

        k = little_kernel()
        mem = MemoryImage()
        addr = mem.alloc_global(8)
        mem.upload(addr, [1, 2, 3, 4, 5, 6, 7, 8])
        mem.set_param("A", addr)
        mem.set_param("n", 8)
        allocate(k, budget=16, rewrite=True)
        Executor(k, rf_code_factory=lambda: None).run(Launch(1, 1), mem)
        assert mem.download(addr, 8) == [2, 4, 6, 8, 10, 12, 14, 16]

    def test_count_registers_stable(self):
        k = little_kernel()
        before = print_kernel(k)
        n = count_registers(k)
        assert n > 0
        assert print_kernel(k) == before  # counting must not mutate

    def test_budget_too_small_rejected(self):
        with pytest.raises(ValueError):
            allocate(little_kernel(), budget=1)


class TestSchemePresets:
    def test_known_schemes(self):
        for name in (SCHEME_BOLT_GLOBAL, SCHEME_BOLT_AUTO, SCHEME_PENNY):
            cfg = scheme_config(name)
            assert cfg.name == name

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            scheme_config("Hope")

    def test_bolt_is_eager_basic(self):
        cfg = scheme_config(SCHEME_BOLT_GLOBAL)
        assert cfg.placement == "eager"
        assert cfg.pruning == "basic"
        assert cfg.storage_mode == "global"
        assert not cfg.low_opts

    def test_penny_fully_enabled(self):
        cfg = scheme_config(SCHEME_PENNY)
        assert cfg.placement == "bimodal"
        assert cfg.pruning == "optimal"
        assert cfg.storage_mode == "auto"
        assert cfg.low_opts

    def test_configs_are_copies(self):
        a = scheme_config(SCHEME_PENNY)
        a.low_opts = False
        assert scheme_config(SCHEME_PENNY).low_opts


class TestIgpu:
    def test_renames_antidependent_registers(self):
        k = little_kernel()
        renamed = igpu_transform(k)
        k.validate()
        # loop-carried %i cannot be renamed, but the transform must not
        # corrupt the kernel
        assert renamed >= 0

    def test_functionally_equivalent(self):
        from repro.gpusim import Executor, Launch, MemoryImage

        def run(kernel):
            mem = MemoryImage()
            addr = mem.alloc_global(8)
            mem.upload(addr, list(range(1, 9)))
            mem.set_param("A", addr)
            mem.set_param("n", 8)
            Executor(kernel, rf_code_factory=lambda: None).run(
                Launch(1, 1), mem
            )
            return mem.download(addr, 8)

        assert run(little_kernel()) == run(
            (lambda k: (igpu_transform(k), k)[1])(little_kernel())
        )


class TestPipeline:
    def test_clone_kernel_is_deep(self):
        k = little_kernel()
        c = clone_kernel(k)
        c.blocks[0].instructions.pop()
        assert len(k.blocks[0].instructions) != len(c.blocks[0].instructions)

    def test_compile_does_not_mutate_input_by_default(self):
        k = little_kernel()
        before = print_kernel(k)
        PennyCompiler(PennyConfig(overwrite="sa")).compile(k, LaunchConfig(32, 2))
        assert print_kernel(k) == before

    def test_all_pruning_modes_compile(self):
        for pruning in ("none", "basic", "optimal"):
            cfg = PennyConfig(pruning=pruning, overwrite="sa")
            result = PennyCompiler(cfg).compile(
                little_kernel(), LaunchConfig(32, 2)
            )
            assert result.stats["checkpoints_total"] >= 0

    def test_pruning_mode_ordering(self):
        committed = {}
        for pruning in ("none", "basic", "optimal"):
            cfg = PennyConfig(pruning=pruning, overwrite="sa")
            result = PennyCompiler(cfg).compile(
                little_kernel(), LaunchConfig(32, 2)
            )
            committed[pruning] = result.stats["checkpoints_committed"]
        assert committed["optimal"] <= committed["basic"] <= committed["none"]

    def test_auto_overwrite_picks_cheaper(self):
        cfg = PennyConfig(overwrite="auto")
        result = PennyCompiler(cfg).compile(little_kernel(), LaunchConfig(32, 2))
        assert result.stats["overwrite_scheme"] in ("rr", "sa")
        assert "auto_selected" in result.stats

    def test_invalid_pruning_mode(self):
        cfg = PennyConfig(pruning="psychic", overwrite="sa")
        with pytest.raises(ValueError):
            PennyCompiler(cfg).compile(little_kernel(), LaunchConfig(32, 2))

    def test_stats_populated(self):
        result = PennyCompiler(PennyConfig(overwrite="sa")).compile(
            little_kernel(), LaunchConfig(32, 2)
        )
        for key in (
            "estimated_cost",
            "checkpoints_total",
            "registers",
            "num_boundaries",
            "emitted_checkpoints",
        ):
            assert key in result.stats

    def test_param_noalias_reduces_boundaries(self):
        b = KernelBuilder("two", params=[("A", "ptr"), ("B", "ptr")])
        a = b.ld_param("A")
        bb = b.ld_param("B")
        v = b.ld("global", a, dtype="u32")
        b.st("global", bb, v)
        b.ret()
        k = b.finish()
        strict = PennyCompiler(
            PennyConfig(overwrite="sa", param_noalias=False)
        ).compile(k, LaunchConfig(32, 1))
        relaxed = PennyCompiler(
            PennyConfig(overwrite="sa", param_noalias=True)
        ).compile(k, LaunchConfig(32, 1))
        assert relaxed.stats["num_boundaries"] <= strict.stats["num_boundaries"]


class TestSpilling:
    def test_tight_budget_spills_and_still_computes(self):
        from repro.gpusim import Executor, Launch, MemoryImage

        def build():
            b = KernelBuilder("fat", params=[("A", "ptr")])
            a = b.ld_param("A")
            # more simultaneously-live values than a budget of 6 can hold
            vals = [b.ld("global", a, offset=4 * i, dtype="u32")
                    for i in range(10)]
            total = vals[0]
            for v in vals[1:]:
                total = b.add(total, v)
            b.st("global", a, total, offset=4096)
            b.ret()
            return b.finish()

        def run(kernel):
            mem = MemoryImage()
            addr = mem.alloc_global(2048)
            mem.upload(addr, list(range(1, 11)))
            mem.set_param("A", addr)
            Executor(kernel, rf_code_factory=lambda: None).run(
                Launch(1, 1), mem
            )
            return mem.download(addr + 4096, 1)[0]

        golden = run(build())
        assert golden == sum(range(1, 11))
        spilled_kernel = build()
        result = allocate(spilled_kernel, budget=6, rewrite=True)
        assert result.spilled, "budget 6 must force spills"
        assert run(spilled_kernel) == golden
