"""Alias analysis and memory anti-dependence detection."""

import pytest

from repro.analysis import (
    AliasAnalysis,
    AliasResult,
    CFG,
    find_memory_antideps,
)
from repro.ir import KernelBuilder


def make_two_buffer_kernel():
    """ld A[tid]; st B[tid] — aliasing depends on the param assumption."""
    b = KernelBuilder("k", params=[("A", "ptr"), ("B", "ptr")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    bb = b.ld_param("B")
    off = b.shl(tid, 2)
    aa_addr = b.add(a, off)
    bb_addr = b.add(bb, off)
    v = b.ld("global", aa_addr, dtype="u32")
    v2 = b.mul(v, 2)
    b.st("global", bb_addr, v2)
    b.ret()
    return b.finish()


def make_same_buffer_kernel(load_off=0, store_off=0):
    b = KernelBuilder("k", params=[("A", "ptr")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    off = b.shl(tid, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, offset=load_off, dtype="u32")
    v2 = b.mul(v, 2)
    b.st("global", addr, v2, offset=store_off)
    b.ret()
    return b.finish()


def _memory_positions(cfg):
    loads, stores = [], []
    for blk in cfg.blocks:
        for i, inst in enumerate(blk.instructions):
            if inst.is_memory_read and not inst.space.read_only:
                loads.append((blk.label, i))
            elif inst.is_memory_write:
                stores.append((blk.label, i))
    return loads, stores


class TestAliasJudgements:
    def test_same_address_must_alias(self):
        cfg = CFG(make_same_buffer_kernel())
        aa = AliasAnalysis(cfg)
        (load,), (store,) = _memory_positions(cfg)
        a = aa.address_of(*load)
        s = aa.address_of(*store)
        assert aa.alias(a, s) is AliasResult.MUST

    def test_disjoint_static_offsets_no_alias(self):
        cfg = CFG(make_same_buffer_kernel(load_off=0, store_off=8))
        aa = AliasAnalysis(cfg)
        (load,), (store,) = _memory_positions(cfg)
        assert aa.alias(
            aa.address_of(*load), aa.address_of(*store)
        ) is AliasResult.NO

    def test_different_params_conservative_by_default(self):
        cfg = CFG(make_two_buffer_kernel())
        aa = AliasAnalysis(cfg)
        (load,), (store,) = _memory_positions(cfg)
        assert aa.alias(
            aa.address_of(*load), aa.address_of(*store)
        ) is AliasResult.MAY

    def test_different_params_disjoint_with_noalias(self):
        cfg = CFG(make_two_buffer_kernel())
        aa = AliasAnalysis(cfg, param_noalias=True)
        (load,), (store,) = _memory_positions(cfg)
        assert aa.alias(
            aa.address_of(*load), aa.address_of(*store)
        ) is AliasResult.NO

    def test_spaces_never_alias(self):
        b = KernelBuilder("k", params=[("A", "ptr")], shared=[("s", 8)])
        a = b.ld_param("A")
        sbase = b.addr_of("s")
        v = b.ld("global", a, dtype="u32")
        b.st("shared", sbase, v)
        b.ret()
        cfg = CFG(b.finish())
        aa = AliasAnalysis(cfg)
        (load,), (store,) = _memory_positions(cfg)
        assert aa.alias(
            aa.address_of(*load), aa.address_of(*store)
        ) is AliasResult.NO

    def test_loop_induction_address_is_opaque_but_rooted(self):
        b = KernelBuilder("k", params=[("A", "ptr"), ("n", "u32")])
        a = b.ld_param("A")
        n = b.ld_param("n")
        i = b.mov(0, dst=b.reg("u32", "%i"))
        b.label("H")
        p = b.setp("ge", i, n)
        b.bra("X", pred=p)
        off = b.shl(i, 2)
        addr = b.add(a, off)
        v = b.ld("global", addr, dtype="u32")
        b.st("global", addr, v)
        b.add(i, 1, dst=i)
        b.bra("H")
        b.label("X")
        b.ret()
        cfg = CFG(b.finish())
        aa = AliasAnalysis(cfg)
        (load,), (store,) = _memory_positions(cfg)
        la = aa.address_of(*load)
        sa = aa.address_of(*store)
        assert la.root == "A"
        # same symbolic index within an iteration: must-alias
        assert aa.alias(la, sa) is AliasResult.MUST


class TestAntiDeps:
    def test_in_place_update_found(self):
        cfg = CFG(make_same_buffer_kernel())
        deps = find_memory_antideps(cfg)
        assert len(deps) == 1
        assert deps[0].result is AliasResult.MUST

    def test_no_antidep_without_alias(self):
        cfg = CFG(make_two_buffer_kernel())
        aa = AliasAnalysis(cfg, param_noalias=True)
        assert find_memory_antideps(cfg, aa) == []

    def test_store_before_load_not_reported_in_straightline(self):
        b = KernelBuilder("k", params=[("A", "ptr")])
        a = b.ld_param("A")
        b.st("global", a, 7)
        v = b.ld("global", a, dtype="u32")
        b.st("global", a, v, offset=64)
        b.ret()
        cfg = CFG(b.finish())
        aa = AliasAnalysis(cfg, param_noalias=True)
        deps = find_memory_antideps(cfg, aa)
        # only the load -> offset-64 store pair could be anti-dependent, and
        # offsets 0 vs 64 on the same root cannot alias
        assert deps == []

    def test_loop_carried_antidep_found(self):
        """store in iteration k, load in k+1 via the back edge."""
        b = KernelBuilder("k", params=[("A", "ptr"), ("n", "u32")])
        a = b.ld_param("A")
        n = b.ld_param("n")
        i = b.mov(0, dst=b.reg("u32", "%i"))
        b.label("H")
        p = b.setp("ge", i, n)
        b.bra("X", pred=p)
        off = b.shl(i, 2)
        addr = b.add(a, off)
        v = b.ld("global", addr, dtype="u32")
        b.st("global", addr, v)
        b.add(i, 1, dst=i)
        b.bra("H")
        b.label("X")
        b.ret()
        cfg = CFG(b.finish())
        deps = find_memory_antideps(cfg)
        assert len(deps) >= 1

    def test_readonly_loads_ignored(self):
        b = KernelBuilder("k", params=[("A", "ptr")])
        a = b.ld_param("A")  # param-space load
        b.st("global", a, 1)
        b.ret()
        cfg = CFG(b.finish())
        assert find_memory_antideps(cfg) == []
