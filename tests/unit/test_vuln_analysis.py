"""Unit tests for the register-vulnerability and address-criticality
analyses (:mod:`repro.analysis.vuln`).

The criticality analysis is the soundness anchor of the ``address-only``
policy: everything it misses is a register the policy will leave
unprotected, so these tests pin the chain semantics — backward closure
into address operands, guard predicates and barrier conditions, the
load barrier (values read *from* memory are data, not addresses), and
the per-point replay that catches intra-block chains.
"""

from repro.analysis.cfg import CFG
from repro.analysis.vuln import (
    address_critical_registers,
    register_vulnerability,
    solve_address_criticality,
)
from repro.ir.parser import parse_kernel


def _cfg(text: str) -> CFG:
    return CFG(parse_kernel(text))


STRAIGHT = """
.entry k (.param .ptr A) {
ENTRY:
  ld.param.u32 %a, [A];
  mov.u32 %t, %tid.x;
  mul.u32 %o, %t, 4;
  add.u32 %p, %a, %o;
  ld.global.u32 %x, [%p];
  add.u32 %y, %x, 1;
  st.global.u32 [%p], %y;
  ret;
}
"""


class TestAddressCriticality:
    def test_address_chain_is_closed_backward(self):
        crit = address_critical_registers(_cfg(STRAIGHT))
        # %p is the address; %a, %o, %t feed it transitively
        assert {"%a", "%t", "%o", "%p"} <= crit

    def test_loaded_data_is_not_critical(self):
        crit = address_critical_registers(_cfg(STRAIGHT))
        assert "%x" not in crit
        assert "%y" not in crit

    def test_branch_predicate_and_its_feeders_are_critical(self):
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %t, %tid.x;\n"
            "  setp.lt.u32 %c, %t, 16;\n"
            "  @%c bra DONE;\n"
            "BODY:\n"
            "  st.global.u32 [%a], %t;\n"
            "  ret;\n"
            "DONE:\n"
            "  ret;\n"
            "}\n"
        )
        crit = address_critical_registers(cfg)
        assert "%c" in crit  # the predicate itself
        assert "%t" in crit  # feeds the predicate

    def test_guarded_store_predicate_is_critical(self):
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %t, %tid.x;\n"
            "  setp.lt.u32 %g, %t, 8;\n"
            "  @%g st.global.u32 [%a], %t;\n"
            "  ret;\n"
            "}\n"
        )
        assert "%g" in address_critical_registers(cfg)

    def test_load_does_not_propagate_criticality(self):
        # %q's address comes out of memory: %v is critical (it IS the
        # address), but the chain stops there — the address that loaded
        # %v is independently seeded, not propagated through the load.
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  ld.global.u32 %v, [%a];\n"
            "  ld.global.u32 %w, [%v];\n"
            "  st.global.u32 [%a], %w;\n"
            "  ret;\n"
            "}\n"
        )
        crit = address_critical_registers(cfg)
        assert "%v" in crit and "%a" in crit

    def test_intra_block_chain_is_invisible_at_boundaries(self):
        # %o is defined and consumed as address-feed inside one block;
        # the block-boundary values never contain it, but the per-point
        # replay must.
        cfg = _cfg(STRAIGHT)
        solver = solve_address_criticality(cfg)
        assert "%o" not in solver.block_out["ENTRY"]
        assert "%o" in address_critical_registers(cfg)

    def test_unrelated_alu_register_is_not_critical(self):
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %dead, 42;\n"
            "  add.u32 %dead2, %dead, 1;\n"
            "  st.global.u32 [%a], %dead2;\n"
            "  ret;\n"
            "}\n"
        )
        crit = address_critical_registers(cfg)
        # stored VALUES are data, not addresses
        assert "%dead" not in crit and "%dead2" not in crit


class TestRegisterVulnerability:
    def test_scores_cover_live_registers(self):
        report = register_vulnerability(_cfg(STRAIGHT))
        assert report.scores["%p"] > 0
        assert report.scores["%a"] > 0

    def test_ranking_is_deterministic_and_sorted(self):
        cfg = _cfg(STRAIGHT)
        a = register_vulnerability(cfg).ranked()
        b = register_vulnerability(cfg).ranked()
        assert a == b
        scores = [s for _, s in a]
        assert scores == sorted(scores, reverse=True)

    def test_long_lived_register_outscores_short_lived(self):
        # %base stays live across the expensive global load + store;
        # %tmp lives for exactly one ALU instruction.
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %base, [A];\n"
            "  mov.u32 %tmp, 7;\n"
            "  add.u32 %t2, %tmp, 1;\n"
            "  ld.global.u32 %v, [%base];\n"
            "  add.u32 %s, %v, %t2;\n"
            "  st.global.u32 [%base], %s;\n"
            "  ret;\n"
            "}\n"
        )
        report = register_vulnerability(cfg)
        assert report.scores["%base"] > report.scores["%tmp"]

    def test_loop_residency_multiplies_exposure(self):
        looped = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %i, 0;\n"
            "L_TOP:\n"
            "  st.global.u32 [%a], %i;\n"
            "  add.u32 %i, %i, 1;\n"
            "  setp.lt.u32 %c, %i, 16;\n"
            "  @%c bra L_TOP;\n"
            "EXIT:\n"
            "  ret;\n"
            "}\n"
        )
        report = register_vulnerability(looped, loop_base=8)
        flat = register_vulnerability(looped, loop_base=1)
        # with trip-count weighting the loop-resident register's score
        # grows relative to its unweighted exposure
        assert report.scores["%a"] > flat.scores["%a"]

    def test_top_k_and_top_fraction(self):
        report = register_vulnerability(_cfg(STRAIGHT))
        ranked = [name for name, _ in report.ranked()]
        assert report.top_k(2) == frozenset(ranked[:2])
        n = len(ranked)
        half = report.top_fraction(0.5)
        assert len(half) == (n + 1) // 2
        assert half <= frozenset(ranked)

    def test_to_dict_is_json_friendly(self):
        import json

        report = register_vulnerability(_cfg(STRAIGHT))
        d = report.to_dict()
        assert d["kind"] == "vulnerability_report"
        assert d["registers"] == len(report.scores)
        assert d["ranked"][0] == report.ranked()[0][0]
        json.dumps(d)  # round-trippable
