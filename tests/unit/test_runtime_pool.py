"""The shared task runtime (:mod:`repro.runtime`): error-class
parameterization, the serve shim's dual-inheritance contract, the
``imap_supervised`` windowed iterator, and the campaign-side chaos
vocabulary.

Everything supervisor-shaped (crash recovery, backoff, hang reclaim) is
covered by ``test_pool.py`` through the serve shim — the pool under test
there *is* ``repro.runtime.pool``.  These tests pin down what the
refactor added.
"""

import os
import sys
import threading
import time
import types

import pytest

from repro.runtime.errors import (
    PoisonJobError,
    TaskRuntimeError,
    WorkerCrashError,
)
from repro.runtime.pool import DEFAULT_CHAOS_SITE, PoolConfig, WorkerPool

_RUNNER_MODULE = "penny_runtime_test_runner"


def _runner(payload):
    action = payload.get("action")
    if action == "crash":
        os.kill(os.getpid(), 9)
    if action == "raise":
        raise RuntimeError("runner blew up")
    if action == "sleep":
        time.sleep(float(payload.get("seconds", 10.0)))
    return payload.get("x")


def _install_runner():
    mod = types.ModuleType(_RUNNER_MODULE)
    mod.run = _runner
    sys.modules[_RUNNER_MODULE] = mod


_install_runner()


def _pool(**overrides):
    kwargs = dict(
        workers=2,
        use_threads=True,
        runner=f"{_RUNNER_MODULE}:run",
        restart_backoff_base=0.01,
        restart_backoff_cap=0.1,
    )
    kwargs.update(overrides)
    return WorkerPool(PoolConfig(**kwargs))


# -- config contract --------------------------------------------------------------


def test_runner_is_required():
    with pytest.raises(ValueError, match="runner is required"):
        PoolConfig(workers=1)


def test_default_chaos_site_is_the_serve_one():
    cfg = PoolConfig(workers=1, runner=f"{_RUNNER_MODULE}:run")
    assert cfg.chaos_site == DEFAULT_CHAOS_SITE == "worker.job"


def test_error_classes_are_parameterized():
    """A client that brings its own error types gets them back from the
    pool instead of the runtime defaults."""

    class MyCrash(WorkerCrashError):
        pass

    class MyPoison(PoisonJobError):
        pass

    with _pool(
        workers=1,
        use_threads=False,  # a SIGKILL "crash" in thread mode kills us
        poison_threshold=1,
        crash_error=MyCrash,
        poison_error=MyPoison,
    ) as pool:
        future = pool.submit({"action": "crash"}, key="bad")
        with pytest.raises(MyPoison):
            future.result(timeout=30)
    # Shutdown-time submission failures use the crash class.
    with pytest.raises(MyCrash):
        pool.submit({"x": 1}, key="late").result(timeout=1)


def test_serve_errors_are_both_runtime_and_serve_typed():
    """The serve shim's errors keep their wire shape (ServeError
    ``to_dict`` / ``error_from_dict`` round trip) while being catchable
    as runtime errors — campaign code and serve code can share the pool
    without sharing an error vocabulary."""
    from repro.serve.errors import (
        PoisonJobError as ServePoison,
        ServeError,
        WorkerCrashError as ServeCrash,
        error_from_dict,
    )

    err = ServeCrash("worker 3 died", slot=3, cause="crash")
    assert isinstance(err, TaskRuntimeError)
    assert isinstance(err, WorkerCrashError)
    assert isinstance(err, ServeError)
    wire = err.to_dict()
    assert wire["type"] == "WorkerCrashError"
    assert wire["detail"] == {"slot": 3, "cause": "crash"}
    revived = error_from_dict(wire)
    assert isinstance(revived, ServeCrash)
    assert revived.message == "worker 3 died"
    assert issubclass(ServePoison, PoisonJobError)
    assert issubclass(ServePoison, ServeError)


# -- imap_supervised --------------------------------------------------------------


def test_imap_supervised_yields_every_job_exactly_once():
    jobs = ((str(i), {"x": i}) for i in range(40))
    with _pool(workers=3) as pool:
        got = dict(pool.imap_supervised(jobs, window=8))
    assert got == {str(i): i for i in range(40)}


def test_imap_supervised_yields_exceptions_as_values():
    """A poisoned job surfaces as a typed exception *value* in the
    stream — the iteration continues, nothing raises."""
    jobs = [("good", {"x": 1}), ("bad", {"action": "crash"})]
    with _pool(workers=1, use_threads=False, poison_threshold=1) as pool:
        got = dict(pool.imap_supervised(iter(jobs)))
    assert got["good"] == 1
    assert isinstance(got["bad"], PoisonJobError)


def test_imap_supervised_stop_event_drains_early():
    """Setting the stop event mid-iteration cancels what it can and
    stops pulling from the (huge) job source."""
    stop = threading.Event()
    pulled = []

    def jobs():
        for i in range(10_000):
            pulled.append(i)
            yield str(i), {"x": i}

    with _pool(workers=2) as pool:
        results = []
        for key, outcome in pool.imap_supervised(
            jobs(), window=4, stop=stop
        ):
            results.append(key)
            if len(results) >= 5:
                stop.set()
    # Far fewer than 10k ran: the window bounds in-flight work and the
    # event stopped submission.
    assert 5 <= len(results) < 100
    assert len(pulled) < 200


# -- chaos vocabulary -------------------------------------------------------------


def test_campaign_chaos_kinds_and_sites_registered():
    from repro.serve.chaos import (
        KINDS,
        SITE_CAMPAIGN_WORKER,
        SITE_JOURNAL_WRITE,
        ChaosPlan,
    )

    assert KINDS["campaign.worker.kill"] == SITE_CAMPAIGN_WORKER
    assert KINDS["campaign.worker.hang"] == SITE_CAMPAIGN_WORKER
    assert KINDS["journal.torn"] == SITE_JOURNAL_WRITE
    assert KINDS["journal.enospc"] == SITE_JOURNAL_WRITE
    plan = ChaosPlan.parse(
        "campaign.worker.kill:p=1.0:max=2,journal.torn:p=0.5", seed=1
    )
    assert len(plan.rules) == 2


def test_chaos_action_is_last_dotted_component():
    """Three-part campaign kinds yield a bare action verb, and the
    original two-part kinds are unchanged."""
    from repro.serve.chaos import ChaosRule

    assert ChaosRule(kind="campaign.worker.kill").action == "kill"
    assert ChaosRule(kind="campaign.worker.hang").action == "hang"
    assert ChaosRule(kind="journal.torn").action == "torn"
    assert ChaosRule(kind="cache.slow_store").action == "slow_store"
    assert ChaosRule(kind="worker.kill").action == "kill"
