"""The parallel batch driver: ordering, error capture, cache coupling.

The acceptance bar: ``compile_batch(jobs, workers=4)`` must produce
results ``to_dict()``-identical to a serial run, a failing job must
yield its typed error without killing the batch, and a warm second run
must be served from the cache.
"""

import pytest

from repro.core.pipeline import LaunchConfig, PennyConfig
from repro.obs.export import validate_metrics_record
from repro.serve.batch import (
    BatchReport,
    CompileJob,
    compile_batch,
    jobs_from_source,
)
from repro.serve.cache import CompileCache

KERNEL_TEMPLATE = """
.entry k{i} (.param .ptr A, .param .u32 n) {{
ENTRY:
  mov.u32 %tid, %tid.x;
  ld.param.u32 %a, [A];
  ld.param.u32 %n, [n];
  mov.u32 %i, %tid;
HEAD:
  setp.ge.u32 %p1, %i, %n;
  @%p1 bra EXIT;
BODY:
  shl.u32 %off, %i, 2;
  add.u32 %addr, %a, %off;
  ld.global.u32 %v, [%addr];
  mad.u32 %v2, %v, {mult}, 7;
  st.global.u32 [%addr], %v2;
  add.u32 %i, %i, 32;
  bra HEAD;
EXIT:
  ret;
}}
"""

BAD_PTX = """
.entry broken (.param .ptr A) {
ENTRY:
  bra NOWHERE;
}
"""

LAUNCH = LaunchConfig(threads_per_block=32, num_blocks=2)


def _module(n=4):
    return "\n".join(
        KERNEL_TEMPLATE.format(i=i, mult=3 + i) for i in range(n)
    )


def _jobs(n=4):
    return jobs_from_source(_module(n), PennyConfig(), launch=LAUNCH)


def test_jobs_from_source_one_job_per_kernel():
    jobs = _jobs(3)
    assert [j.name for j in jobs] == ["k0", "k1", "k2"]
    assert all(isinstance(j, CompileJob) for j in jobs)


def test_job_round_trips_through_dict():
    job = _jobs(1)[0]
    assert CompileJob.from_dict(job.to_dict()) == job


def test_parallel_results_identical_to_serial():
    jobs = _jobs(4)
    serial = compile_batch(jobs, workers=1, cache=None)
    parallel = compile_batch(jobs, workers=4, cache=None)
    assert all(r.ok for r in serial.results)
    assert all(r.ok for r in parallel.results)
    assert [r.name for r in parallel.results] == [
        r.name for r in serial.results
    ]
    for a, b in zip(serial.results, parallel.results):
        assert a.result.to_dict() == b.result.to_dict()


def test_failed_job_is_captured_not_fatal():
    jobs = _jobs(2) + [
        CompileJob(ptx=BAD_PTX, config=PennyConfig(), launch=LAUNCH)
    ]
    report = compile_batch(jobs, workers=2, cache=None)
    assert len(report.results) == 3
    assert [r.ok for r in report.results] == [True, True, False]
    failure = report.results[2]
    assert failure.error is not None
    assert "NOWHERE" in failure.error["message"]
    assert report.compile_results()[2] is None
    assert len(report.failures) == 1


def test_unparseable_job_fails_as_that_job():
    jobs = [
        CompileJob(ptx="this is not ptx", config=PennyConfig()),
        _jobs(1)[0],
    ]
    # Even with a cache installed (key derivation parses the text), the
    # malformed job must fail alone.
    with CompileCache():
        report = compile_batch(jobs, workers=1)
    assert [r.ok for r in report.results] == [False, True]


def test_warm_batch_is_all_hits():
    jobs = _jobs(3)
    with CompileCache() as cache:
        cold = compile_batch(jobs, workers=2)
        assert cold.cache_hits == 0 and cold.cache_misses == 3
        warm = compile_batch(jobs, workers=2)
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert all(r.cached for r in warm.results)
        assert cache.stats.hits == 3
    for a, b in zip(cold.results, warm.results):
        assert a.result.to_dict() == b.result.to_dict()


def test_batch_matches_pipeline_cache_keys():
    """A batch warms the same keys ``PennyCompiler.compile`` consults —
    one shared cache serves both entry points."""
    from repro.core.pipeline import PennyCompiler
    from repro.ir.parser import parse_module

    with CompileCache() as cache:
        compile_batch(_jobs(1), workers=1)
        kernel = parse_module(_module(1)).kernels[0]
        PennyCompiler(PennyConfig()).compile(kernel, LAUNCH)
        assert cache.stats.hits == 1


def test_report_is_reportable():
    report = compile_batch(_jobs(2), workers=1, cache=None)
    d = report.to_dict()
    assert d["kind"] == "batch_report"
    assert d["jobs"] == 2 and d["ok"] == 2 and d["failed"] == 0
    assert validate_metrics_record(d) == []
    summary = report.summary()
    assert summary["jobs"] == 2 and summary["workers"] == 1


def test_workers_must_be_positive():
    with pytest.raises(ValueError):
        compile_batch([], workers=0)
