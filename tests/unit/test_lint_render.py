"""Renderers: caret text, metrics-sink JSONL, and SARIF 2.1.0."""

import json

from repro.ir.parser import parse_module
from repro.lint import lint_kernel
from repro.lint.render import (
    SARIF_VERSION,
    render_jsonl,
    render_sarif,
    render_text,
    sarif_report,
    validate_sarif,
)
from repro.obs.export import validate_metrics_jsonl

BAD = """\
.entry k (.param .ptr A) {
ENTRY:
  ld.param.u32 %a, [A];
  add.u32 %r1, %r0, %a;
  st.global.u32 [%a], %r1;
  ret;
}
"""


def _report(text=BAD, **kwargs):
    (kernel,) = parse_module(text).kernels
    return lint_kernel(kernel, source=text, **kwargs)


class TestText:
    def test_caret_points_at_the_offending_line(self):
        out = render_text(_report(), source=BAD, path="bad.ptx")
        lines = out.splitlines()
        head = next(l for l in lines if "uninit-read" in l)
        assert head.startswith("bad.ptx:4:")
        assert "error" in head
        i = lines.index(head)
        assert lines[i + 1].strip() == "add.u32 %r1, %r0, %a;"
        assert set(lines[i + 2].strip()) == {"^"}

    def test_summary_line_counts_by_severity(self):
        out = render_text(_report())
        assert out.splitlines()[-1].startswith("1 error(s)")

    def test_clean_report_says_so(self):
        text = BAD.replace("%r0", "%a")
        out = render_text(_report(text))
        assert out.splitlines()[-1] == "clean: no findings"

    def test_without_locs_falls_back_to_logical_location(self):
        (kernel,) = parse_module(BAD).kernels
        for blk in kernel.blocks:
            for inst in blk.instructions:
                inst.loc = None
        out = render_text(lint_kernel(kernel))
        assert "k:ENTRY:1:" in out
        assert "^" not in out


class TestJsonl:
    def test_lines_pass_the_metrics_validator(self):
        lines = render_jsonl(_report()).splitlines()
        assert validate_metrics_jsonl(lines) == []

    def test_one_record_per_diagnostic_plus_summary(self):
        report = _report()
        rows = [json.loads(l) for l in render_jsonl(report).splitlines()]
        assert [r["kind"] for r in rows[:-1]] == ["diagnostic"] * len(
            report.diagnostics
        )
        tail = rows[-1]
        assert tail["kind"] == "lint_report"
        assert tail["counts"]["error"] == 1
        assert "uninit-read" in tail["rules_run"]

    def test_diagnostic_rows_carry_source_spans(self):
        row = json.loads(render_jsonl(_report()).splitlines()[0])
        assert row["kernel"] == "k" and row["block"] == "ENTRY"
        assert row["line"] == 4


class TestSarif:
    def test_emitted_sarif_validates(self):
        out = render_sarif(_report(), path="bad.ptx")
        assert validate_sarif(out) == []

    def test_run_shape(self):
        log = sarif_report(_report(), path="bad.ptx")
        assert log["version"] == SARIF_VERSION
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "penny-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert "uninit-read" in rule_ids
        (result,) = [
            r for r in run["results"] if r["ruleId"] == "uninit-read"
        ]
        assert result["level"] == "error"
        assert result["ruleIndex"] == rule_ids.index("uninit-read")
        (loc,) = result["locations"]
        assert loc["logicalLocations"][0]["fullyQualifiedName"] == (
            "k:ENTRY:1"
        )
        phys = loc["physicalLocation"]
        assert phys["artifactLocation"]["uri"] == "bad.ptx"
        assert phys["region"]["startLine"] == 4

    def test_severity_override_is_reflected_in_level(self):
        text = (
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  ld.global.u32 %x, [%a];\n"
            "  st.global.u32 [%a], %x;\n"
            "  ret;\n"
            "}\n"
        )
        # the only finding here is the uncut-antidep note...
        base = sarif_report(_report(text))
        levels = {r["level"] for r in base["runs"][0]["results"]}
        assert levels == {"note"}
        # ...which an override must surface as a SARIF error
        promoted = sarif_report(
            _report(text, severity={"uncut-antidep": "error"})
        )
        levels = {r["level"] for r in promoted["runs"][0]["results"]}
        assert levels == {"error"}

    def test_validator_rejects_broken_logs(self):
        good = sarif_report(_report())
        assert validate_sarif(good) == []

        wrong_version = dict(good, version="2.0.0")
        assert any(
            "version" in p for p in validate_sarif(wrong_version)
        )

        assert validate_sarif("not json {")[0].startswith("not JSON")

        no_runs = {"version": SARIF_VERSION, "runs": "oops"}
        assert "'runs' must be an array" in validate_sarif(no_runs)

        orphan_rule = json.loads(json.dumps(good))
        orphan_rule["runs"][0]["results"][0]["ruleId"] = "ghost-rule"
        assert any(
            "not among driver rules" in p
            for p in validate_sarif(orphan_rule)
        )

        bad_level = json.loads(json.dumps(good))
        bad_level["runs"][0]["results"][0]["level"] = "fatal"
        assert any("level invalid" in p for p in validate_sarif(bad_level))

        bad_line = json.loads(json.dumps(good))
        region = bad_line["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        region["startLine"] = 0
        assert any("startLine" in p for p in validate_sarif(bad_line))
