"""The fuzz oracle's backend cross-check stage.

With ``cross_check=True`` the oracle re-runs the zero-fault protected
execution on the *other* engine and compares statistics and output
buffers — turning every fuzz iteration into a differential test of the
vectorized engine against the scalar oracle (or vice versa).  These
tests pin that the stage runs clean on generated cases, that a
divergence is reported as a ``BackendMismatch`` finding, and that the
knobs thread through :class:`FuzzSpec` and the harness.
"""

from repro.fuzz.generator import generate_case
from repro.fuzz.harness import FuzzRunner, FuzzSpec
from repro.fuzz.oracle import run_case


class TestCrossCheckStage:
    def test_generated_cases_cross_check_clean(self):
        """A handful of generated cases: the cross-check stage must not
        produce findings (the engines are equivalent) and must not
        change the oracle verdict."""
        for seed in (1, 7, 42, 99, 123):
            case = generate_case(seed)
            plain = run_case(case, fault=False)
            checked = run_case(case, fault=False, cross_check=True)
            assert checked.status == plain.status
            if plain.finding is None:
                assert checked.finding is None

    def test_cross_check_runs_from_either_backend(self):
        case = generate_case(42)
        for backend in ("scalar", "vector"):
            result = run_case(
                case, fault=False, backend=backend, cross_check=True
            )
            finding = result.finding
            assert finding is None or finding.exc_type != "BackendMismatch"

    def test_backend_choice_does_not_change_verdict(self):
        """Fuzz findings must be backend-invariant: the same case gets
        the same outcome and fingerprint on both engines."""
        for seed in (3, 17, 56):
            case = generate_case(seed)
            results = [
                run_case(case, backend=backend)
                for backend in ("scalar", "vector")
            ]
            assert results[0].status == results[1].status
            fps = [
                r.finding.fingerprint if r.finding else None
                for r in results
            ]
            assert fps[0] == fps[1]


class TestSpecPlumbing:
    def test_spec_carries_backend_and_cross_check(self):
        spec = FuzzSpec(backend="vector", cross_check=True)
        restored = FuzzSpec.from_dict(spec.to_dict())
        assert restored.backend == "vector"
        assert restored.cross_check is True

    def test_spec_rejects_unknown_backend(self):
        import pytest

        with pytest.raises(ValueError, match="backend"):
            FuzzSpec(backend="gpu")

    def test_small_cross_checked_sweep(self):
        """An end-to-end sweep with the cross-check armed: no
        BackendMismatch buckets may appear."""
        spec = FuzzSpec(
            iterations=6, seed=2024, fault=False, cross_check=True
        )
        report = FuzzRunner(spec).run()
        assert report.iterations_run == 6
        for finding in report.findings:
            assert finding.exc_type != "BackendMismatch"
