"""Journal integrity: CRC trailers, fsck accounting, reconciliation,
and write-fault containment (injected ``journal.torn`` /
``journal.enospc`` chaos followed by end-of-run repair)."""

from repro.gpusim.campaign import (
    CampaignSpec,
    InjectionRecord,
    _Journal,
    fsck_journal,
)
from repro.serve.chaos import ChaosEngine, ChaosPlan


def _spec(n=4):
    return CampaignSpec(benchmark="STC", num_injections=n)


def _records(n):
    return [
        InjectionRecord(
            index=i, surface="rf", outcome="masked", seed=100 + i
        )
        for i in range(n)
    ]


def _write(path, spec, records):
    journal = _Journal(str(path), spec, fresh=True)
    for record in records:
        journal.append(record)
    journal.close()
    return journal


# -- fsck accounting --------------------------------------------------------------


def test_clean_journal_fscks_complete(tmp_path):
    path = tmp_path / "clean.jsonl"
    _write(path, _spec(4), _records(4))
    fsck = fsck_journal(str(path))
    assert fsck.header is not None and fsck.header["version"] == 2
    assert fsck.record_lines == 4
    assert fsck.corrupt_lines == 0
    assert fsck.legacy_lines == 0
    recon = fsck.reconcile()
    assert recon["complete"] is True
    assert recon["expected"] == 4 and recon["recorded"] == 4
    assert recon["missing"] == [] and recon["duplicates"] == []


def test_fsck_counts_duplicates_and_last_occurrence_wins(tmp_path):
    path = tmp_path / "dup.jsonl"
    records = _records(3)
    retry = InjectionRecord(
        index=1, surface="rf", outcome="sdc", seed=101
    )
    _write(path, _spec(3), records + [retry])
    fsck = fsck_journal(str(path))
    assert fsck.duplicate_indices == [1]
    assert fsck.records[1].outcome == "sdc"  # later supersedes earlier
    recon = fsck.reconcile()
    assert recon["complete"] is False
    assert recon["duplicates"] == [1]


def test_fsck_missing_journal_is_empty_not_fatal(tmp_path):
    fsck = fsck_journal(str(tmp_path / "absent.jsonl"))
    assert fsck.header is None and fsck.records == {}
    assert fsck.reconcile(expected=5)["missing"] == [0, 1, 2, 3, 4]


def test_fsck_to_dict_shape(tmp_path):
    path = tmp_path / "shape.jsonl"
    _write(path, _spec(2), _records(2))
    d = fsck_journal(str(path)).to_dict()
    assert d["kind"] == "journal_fsck"
    assert d["version"] == 2
    assert d["reconciliation"]["complete"] is True
    for key in ("total_lines", "record_lines", "corrupt_lines",
                "legacy_lines"):
        assert isinstance(d[key], int)


# -- write-fault containment ------------------------------------------------------


def test_enospc_chaos_drops_the_write_and_repair_restores_it(tmp_path):
    path = tmp_path / "enospc.jsonl"
    spec = _spec(3)
    records = _records(3)
    journal = _Journal(str(path), spec, fresh=True)
    plan = ChaosPlan.parse("journal.enospc:p=1.0:max=1", seed=3)
    with ChaosEngine(plan):
        ok = [journal.append(r) for r in records]
    assert ok == [False, True, True]  # first write hit ENOSPC
    assert journal.write_errors == 1

    fsck = fsck_journal(str(path))
    assert sorted(fsck.records) == [1, 2]
    assert fsck.corrupt_lines == 0  # ENOSPC is a clean hole, not a tear

    repaired = journal.repair(records)
    journal.close()
    assert repaired == 1
    fsck = fsck_journal(str(path))
    assert sorted(fsck.records) == [0, 1, 2]
    assert fsck.reconcile()["complete"] is True


def test_torn_chaos_leaves_one_corrupt_line_and_repair_restores(tmp_path):
    """A torn write leaves a half-line on disk; the *next* append must
    start on a fresh line (exactly one corrupt line, not two merged
    ones), and repair re-appends the lost record."""
    path = tmp_path / "torn.jsonl"
    spec = _spec(3)
    records = _records(3)
    journal = _Journal(str(path), spec, fresh=True)
    plan = ChaosPlan.parse("journal.torn:p=1.0:max=1", seed=5)
    with ChaosEngine(plan):
        ok = [journal.append(r) for r in records]
    assert ok == [False, True, True]
    assert journal.write_errors == 1

    fsck = fsck_journal(str(path))
    assert fsck.corrupt_lines == 1  # the fragment, and only it
    assert sorted(fsck.records) == [1, 2]

    repaired = journal.repair(records)
    journal.close()
    assert repaired == 1
    fsck = fsck_journal(str(path))
    assert fsck.reconcile()["complete"] is True
    assert fsck.corrupt_lines == 1  # the tear stays on disk, accounted


def test_repair_is_a_noop_on_a_complete_journal(tmp_path):
    path = tmp_path / "noop.jsonl"
    spec = _spec(2)
    records = _records(2)
    journal = _Journal(str(path), spec, fresh=True)
    for record in records:
        journal.append(record)
    assert journal.repair(records) == 0
    journal.close()


def test_resume_append_mode_keeps_existing_records(tmp_path):
    path = tmp_path / "resume.jsonl"
    spec = _spec(4)
    records = _records(4)
    _write(path, spec, records[:2])
    journal = _Journal(str(path), spec, fresh=False)
    for record in records[2:]:
        journal.append(record)
    journal.close()
    fsck = fsck_journal(str(path))
    assert sorted(fsck.records) == [0, 1, 2, 3]
    assert fsck.reconcile()["complete"] is True
