"""The generic worklist solver and the shipped lint analyses."""

from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.ir.parser import parse_kernel
from repro.lint.dataflow import (
    Analysis,
    Direction,
    Solver,
    solve_definite_assignment,
    solve_symbol_taint,
    solve_thread_taint,
    uninitialized_reads,
)


def _cfg(text: str) -> CFG:
    return CFG(parse_kernel(text))


DIAMOND = """
.entry k (.param .ptr A) {
ENTRY:
  ld.param.u32 %a, [A];
  mov.u32 %t, %tid.x;
  setp.lt.u32 %p, %t, 16;
  @%p bra LEFT;
RIGHT:
  mov.u32 %x, 1;
  mov.u32 %y, 2;
  bra JOIN;
LEFT:
  mov.u32 %y, 3;
  bra JOIN;
JOIN:
  add.u32 %z, %y, 1;
  st.global.u32 [%a], %z;
  ret;
}
"""


class TestDefiniteAssignment:
    def test_one_armed_def_is_not_definite_at_join(self):
        solver = solve_definite_assignment(_cfg(DIAMOND))
        assert "%x" not in solver.block_in["JOIN"]

    def test_both_armed_def_is_definite_at_join(self):
        solver = solve_definite_assignment(_cfg(DIAMOND))
        assert "%y" in solver.block_in["JOIN"]

    def test_before_after_replay_mid_block(self):
        solver = solve_definite_assignment(_cfg(DIAMOND))
        # ENTRY: %a defined by instruction 0, %t by 1
        assert "%a" not in solver.before("ENTRY", 0)
        assert "%a" in solver.after("ENTRY", 0)
        assert "%t" not in solver.before("ENTRY", 1)
        assert "%t" in solver.before("ENTRY", 2)

    def test_unreachable_block_starts_at_boundary(self):
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  ret;\n"
            "DEAD:\n"
            "  ret;\n"
            "}\n"
        )
        solver = solve_definite_assignment(cfg)
        # a must-analysis treats unreachable code as having established
        # nothing, not everything
        assert solver.block_in["DEAD"] == frozenset()


class TestUninitializedReads:
    def test_clean_kernel_has_none(self):
        assert uninitialized_reads(_cfg(DIAMOND)) == []

    def test_never_written_register_is_flagged(self):
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  add.u32 %r1, %r0, %a;\n"
            "  st.global.u32 [%a], %r1;\n"
            "  ret;\n"
            "}\n"
        )
        flagged = uninitialized_reads(cfg)
        assert [(l, i, r.name) for l, i, r in flagged] == [
            ("ENTRY", 1, "%r0")
        ]

    def test_guarded_def_does_not_count(self):
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  setp.lt.u32 %p, %a, 16;\n"
            "  @%p mov.u32 %x, 1;\n"
            "  st.global.u32 [%a], %x;\n"
            "  ret;\n"
            "}\n"
        )
        assert any(r.name == "%x" for _, _, r in uninitialized_reads(cfg))

    def test_same_guard_chain_is_accepted(self):
        # @%p ld %v; @%p add %w, %v — whenever the read executes, so did
        # the def: the predicated butterfly idiom must stay clean.
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  setp.lt.u32 %p, %a, 16;\n"
            "  @%p ld.global.u32 %v, [%a];\n"
            "  @%p add.u32 %w, %v, 1;\n"
            "  @%p st.global.u32 [%a], %w;\n"
            "  ret;\n"
            "}\n"
        )
        assert uninitialized_reads(cfg) == []

    def test_predicate_redefinition_invalidates_the_chain(self):
        # The guard is recomputed between the def and the use, so the
        # use may execute without its def.
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  setp.lt.u32 %p, %a, 16;\n"
            "  @%p ld.global.u32 %v, [%a];\n"
            "  setp.ge.u32 %p, %a, 8;\n"
            "  @%p add.u32 %w, %v, 1;\n"
            "  @%p st.global.u32 [%a], %w;\n"
            "  ret;\n"
            "}\n"
        )
        assert any(r.name == "%v" for _, _, r in uninitialized_reads(cfg))

    def test_opposite_sense_guard_is_not_accepted(self):
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  setp.lt.u32 %p, %a, 16;\n"
            "  @%p ld.global.u32 %v, [%a];\n"
            "  @!%p add.u32 %w, %v, 1;\n"
            "  @!%p st.global.u32 [%a], %w;\n"
            "  ret;\n"
            "}\n"
        )
        assert any(r.name == "%v" for _, _, r in uninitialized_reads(cfg))


class TestThreadTaint:
    def test_tid_derivation_chain_is_tainted(self):
        solver = solve_thread_taint(_cfg(DIAMOND))
        out = solver.block_out["ENTRY"]
        assert "%t" in out
        assert "%p" in out  # setp over a tainted operand
        assert "%a" not in out  # param load is uniform

    def test_guarded_write_under_tainted_guard_taints_dst(self):
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %t, %tid.x;\n"
            "  setp.lt.u32 %p, %t, 16;\n"
            "  mov.u32 %x, 0;\n"
            "  @%p mov.u32 %x, 1;\n"
            "  st.global.u32 [%a], %x;\n"
            "  ret;\n"
            "}\n"
        )
        solver = solve_thread_taint(cfg)
        assert "%x" in solver.block_out["ENTRY"]
        # ...but only from the guarded write on: the unconditional zero
        # is still uniform
        assert "%x" not in solver.before("ENTRY", 4)
        assert "%x" in solver.after("ENTRY", 4)

    def test_uniform_redefinition_clears_taint(self):
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %x, %tid.x;\n"
            "  mov.u32 %x, 7;\n"
            "  st.global.u32 [%a], %x;\n"
            "  ret;\n"
            "}\n"
        )
        solver = solve_thread_taint(cfg)
        assert "%x" not in solver.block_out["ENTRY"]

    def test_load_taints_only_through_address(self):
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %t, %tid.x;\n"
            "  add.u32 %pa, %a, %t;\n"
            "  ld.global.u32 %v, [%pa];\n"
            "  ld.global.u32 %u, [%a];\n"
            "  st.global.u32 [%a], %v;\n"
            "  ret;\n"
            "}\n"
        )
        solver = solve_thread_taint(cfg)
        out = solver.block_out["ENTRY"]
        assert "%v" in out  # per-thread address: per-thread value
        assert "%u" not in out  # same address for all threads


class TestSymbolTaint:
    def test_symbol_address_arithmetic_is_tracked(self):
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "  .shared .b32 buf[16];\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %b, buf;\n"
            "  add.u32 %pb, %b, 4;\n"
            "  ld.shared.u32 %v, [%pb];\n"
            "  st.global.u32 [%a], %v;\n"
            "  ret;\n"
            "}\n"
        )
        solver = solve_symbol_taint(cfg, ["buf"])
        out = solver.block_out["ENTRY"]
        assert "%b" in out and "%pb" in out
        # a value loaded *from* the buffer is data, not an address
        assert "%v" not in out


class _LiveRegs(Analysis):
    """Classic backward live-variables, expressed over the solver."""

    direction = Direction.BACKWARD

    def meet(self, a, b):
        return a | b

    def transfer(self, label, index, inst, value):
        if inst.guard is None:
            value = value - frozenset(r.name for r in inst.defs())
        return value | frozenset(r.name for r in inst.reg_uses())


class TestBackwardDirection:
    def test_backward_liveness_matches_the_dedicated_pass(self):
        cfg = _cfg(DIAMOND)
        solver = Solver(cfg, _LiveRegs())
        reference = Liveness(cfg)
        for blk in cfg.blocks:
            assert solver.block_in[blk.label] == {
                r.name for r in reference.live_in[blk.label]
            }, blk.label
            assert solver.block_out[blk.label] == {
                r.name for r in reference.live_out[blk.label]
            }, blk.label

    def test_backward_before_after_replay(self):
        cfg = _cfg(DIAMOND)
        solver = Solver(cfg, _LiveRegs())
        # JOIN: add %z, %y, 1; st [%a], %z; ret
        assert "%y" in solver.before("JOIN", 0)
        assert "%y" not in solver.after("JOIN", 0)
        assert "%z" in solver.before("JOIN", 1)
        assert "%z" not in solver.after("JOIN", 1)


class TestTaintEdgeCases:
    """Select joins, loop-carried taint, and taint across compiled
    checkpoint/restore code — the shapes the selective-protection
    analyses lean on."""

    def test_selp_joins_taint_from_either_value_operand(self):
        # dst = pred ? a : b — taint flows in through a, b, or the
        # predicate; a fully uniform selp stays clean.
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %t, %tid.x;\n"
            "  mov.u32 %u, 7;\n"
            "  setp.lt.u32 %pc, %u, 16;\n"
            "  selp.u32 %m1, %t, %u, %pc;\n"
            "  selp.u32 %m2, %u, %u, %pc;\n"
            "  st.global.u32 [%a], %m1;\n"
            "  st.global.u32 [%a], %m2;\n"
            "  ret;\n"
            "}\n"
        )
        solver = solve_thread_taint(cfg)
        out = solver.block_out["ENTRY"]
        assert "%m1" in out  # one arm is %tid-derived
        assert "%m2" not in out  # both arms and predicate uniform

    def test_selp_tainted_predicate_taints_dst(self):
        # the selected value differs per thread even when both arms are
        # uniform, because *which* arm is picked varies
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %t, %tid.x;\n"
            "  setp.lt.u32 %pc, %t, 16;\n"
            "  selp.u32 %m, 1, 2, %pc;\n"
            "  st.global.u32 [%a], %m;\n"
            "  ret;\n"
            "}\n"
        )
        assert "%m" in solve_thread_taint(cfg).block_out["ENTRY"]

    def test_symbol_taint_joins_through_selp(self):
        # either arm holding a buf-derived address taints the select
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "  .shared .b32 buf[16];\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %b, buf;\n"
            "  mov.u32 %c, 64;\n"
            "  setp.lt.u32 %pc, %c, 16;\n"
            "  selp.u32 %sel, %b, %c, %pc;\n"
            "  ld.shared.u32 %v, [%sel];\n"
            "  st.global.u32 [%a], %v;\n"
            "  ret;\n"
            "}\n"
        )
        solver = solve_symbol_taint(cfg, ["buf"])
        assert "%sel" in solver.block_out["ENTRY"]

    def test_loop_carried_taint_reaches_fixpoint(self):
        # %x starts uniform and picks up taint on the backedge (from
        # %t); only the second worklist pass over the loop can see it —
        # the solver must iterate to a fixpoint, not stop after one
        # sweep.
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %t, %tid.x;\n"
            "  mov.u32 %x, 0;\n"
            "  mov.u32 %i, 0;\n"
            "L_TOP:\n"
            "  add.u32 %x, %x, %t;\n"
            "  add.u32 %i, %i, 1;\n"
            "  setp.lt.u32 %c, %i, 4;\n"
            "  @%c bra L_TOP;\n"
            "EXIT:\n"
            "  st.global.u32 [%a], %x;\n"
            "  ret;\n"
            "}\n"
        )
        solver = solve_thread_taint(cfg)
        assert "%x" in solver.block_in["L_TOP"]  # carried around
        assert "%x" in solver.block_in["EXIT"]

    def test_loop_carried_uniform_stays_uniform(self):
        # the dual: a loop-carried accumulator fed only by uniform
        # values must NOT be tainted by mere loop membership
        cfg = _cfg(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %x, 0;\n"
            "  mov.u32 %i, 0;\n"
            "L_TOP:\n"
            "  add.u32 %x, %x, 3;\n"
            "  add.u32 %i, %i, 1;\n"
            "  setp.lt.u32 %c, %i, 4;\n"
            "  @%c bra L_TOP;\n"
            "EXIT:\n"
            "  st.global.u32 [%a], %x;\n"
            "  ret;\n"
            "}\n"
        )
        solver = solve_thread_taint(cfg)
        assert "%x" not in solver.block_in["EXIT"]

    def test_taint_across_compiled_checkpoint_restore(self):
        # Penny's emitted checkpoint/restore code (shared-memory stores
        # indexed by %tid, slot-base arithmetic on %ckb_*) must not
        # confuse either taint analysis: the compiled kernel's dataflow
        # still solves to a fixpoint, the checkpoint base register is
        # thread-varying (tid-indexed slots), and restoring a uniform
        # register does not invent taint for it.
        from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
        from repro.ir.parser import parse_kernel

        src = (
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %t, %tid.x;\n"
            "  mul.u32 %o, %t, 4;\n"
            "  add.u32 %p, %a, %o;\n"
            "  mov.u32 %i, 0;\n"
            "L_TOP:\n"
            "  ld.global.u32 %v, [%p];\n"
            "  add.u32 %v, %v, 1;\n"
            "  st.global.u32 [%p], %v;\n"
            "  add.u32 %i, %i, 1;\n"
            "  setp.lt.u32 %c, %i, 4;\n"
            "  @%c bra L_TOP;\n"
            "EXIT:\n"
            "  ret;\n"
            "}\n"
        )
        result = PennyCompiler(PennyConfig()).compile(
            parse_kernel(src),
            LaunchConfig(threads_per_block=32, num_blocks=1),
        )
        cfg = CFG(result.kernel)
        taint = solve_thread_taint(cfg)
        # the fixpoint exists and per-thread state stayed per-thread
        exit_in = taint.block_in["EXIT"]
        assert "%p" in taint.block_out["ENTRY"]
        # checkpoint-base registers index shared slots by %tid: tainted
        ckb = [
            r
            for blk in cfg.blocks
            for i in blk.instructions
            for r in i.defs()
            if r.name.startswith("%ckb_")
        ]
        assert ckb, "compiled kernel emitted no checkpoint base"
        for reg in ckb:
            assert any(
                reg.name in taint.block_out[blk.label]
                for blk in cfg.blocks
            )
        # the uniform trip counter is restored from a checkpoint slot
        # (a tid-indexed shared load) — conservative taint is fine, but
        # the solver must still classify the never-checkpointed uniform
        # param load as uniform
        assert "%a" not in exit_in
