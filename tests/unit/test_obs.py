"""The observability layer: tracer scoping, span nesting, counter-merge
algebra, and both exporters' schemas."""

import json
import time

import pytest

import repro.obs as obs
from repro.obs.metrics import Counters, pow2_bucket
from repro.obs.tracer import NULL_SPAN, Tracer, current_tracer


class FakeClock:
    """A deterministic clock: every read advances by one tick."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


# -- the no-op default -----------------------------------------------------------


class TestNoopDefault:
    def test_no_tracer_installed_by_default(self):
        assert current_tracer() is None

    def test_span_returns_shared_singleton(self):
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("else", tag=1) is NULL_SPAN

    def test_null_span_is_inert_context_manager(self):
        with obs.span("unobserved") as s:
            assert s is NULL_SPAN
            assert s.tag(k=1) is s

    def test_metrics_calls_are_noops(self):
        obs.inc("nope")
        obs.gauge("nope", 1.0)
        obs.observe("nope", "0")
        obs.event("nope")
        assert current_tracer() is None

    def test_unobserved_overhead_is_tiny(self):
        # The real guard is benchmarks/test_compiler_speed.py; this is a
        # smoke bound generous enough to never flake: 200k unobserved
        # instrumentation sites in well under a second.
        start = time.perf_counter()
        for _ in range(200_000):
            with obs.span("x"):
                pass
        assert time.perf_counter() - start < 1.0

    def test_tracer_uninstalls_on_exit(self):
        t = Tracer()
        with t:
            assert current_tracer() is t
        assert current_tracer() is None

    def test_tracer_uninstalls_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t:
                raise RuntimeError("boom")
        assert current_tracer() is None


# -- span nesting and ordering ---------------------------------------------------


class TestSpans:
    def test_nesting_parent_links(self):
        t = Tracer(clock=FakeClock())
        with t:
            with obs.span("outer"):
                with obs.span("inner.a"):
                    pass
                with obs.span("inner.b"):
                    pass
        outer = t.find("outer")[0]
        a = t.find("inner.a")[0]
        b = t.find("inner.b")[0]
        assert outer.parent_id is None
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id
        assert t.roots() == [outer] != []
        assert t.children_of(outer) == [a, b]

    def test_children_close_before_parents(self):
        t = Tracer(clock=FakeClock())
        with t:
            with obs.span("p"):
                with obs.span("c"):
                    pass
        p = t.find("p")[0]
        c = t.find("c")[0]
        assert p.start < c.start < c.end < p.end
        # Children are appended (closed) before their parents.
        assert t.spans.index(c) < t.spans.index(p)

    def test_tags_and_late_tags(self):
        t = Tracer(clock=FakeClock())
        with t:
            with obs.span("s", a=1) as s:
                s.tag(b=2)
        rec = t.find("s")[0]
        assert rec.tags == {"a": 1, "b": 2}

    def test_exception_tags_error_and_propagates(self):
        t = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with t:
                with obs.span("failing"):
                    raise ValueError("x")
        assert t.find("failing")[0].tags["error"] == "ValueError"

    def test_mis_nested_exit_pops_back_to_self(self):
        t = Tracer(clock=FakeClock())
        with t:
            outer = t.span("outer")
            inner = t.span("inner")
            outer.__enter__()
            inner.__enter__()
            # Exit outer first: inner must be popped too, and a
            # subsequent span must not claim a stale parent.
            outer.__exit__(None, None, None)
            with obs.span("after"):
                pass
        assert t.find("after")[0].parent_id is None

    def test_events_carry_parent(self):
        t = Tracer(clock=FakeClock())
        with t:
            with obs.span("p"):
                obs.event("blip", reason="test")
        ev = t.events[0]
        assert ev.name == "blip"
        assert ev.parent_id == t.find("p")[0].span_id
        assert ev.tags == {"reason": "test"}

    def test_record_spans_false_keeps_only_metrics(self):
        t = Tracer(record_spans=False)
        with t:
            with obs.span("s"):
                obs.inc("n")
            obs.event("e")
        assert t.spans == [] and t.events == []
        assert t.counters.counts == {"n": 1}

    def test_tracers_nest_innermost_wins(self):
        a, b = Tracer(), Tracer()
        with a:
            with b:
                obs.inc("x")
            obs.inc("y")
        assert b.counters.counts == {"x": 1}
        assert a.counters.counts == {"y": 1}


# -- counter algebra -------------------------------------------------------------


class TestCounters:
    def _sample(self, lo, hi):
        c = Counters()
        for i in range(lo, hi):
            c.inc("n", i)
            c.gauge("g", float(i))
            c.observe_value("h", i)
        return c

    def test_merge_matches_serial(self):
        serial = self._sample(0, 30)
        sharded = Counters.merged(
            [self._sample(0, 11), self._sample(11, 23), self._sample(23, 30)]
        )
        assert sharded == serial
        assert sharded.to_dict() == serial.to_dict()

    def test_merge_is_commutative(self):
        shards = [self._sample(0, 7), self._sample(7, 20), self._sample(20, 30)]
        fwd = Counters.merged(shards)
        rev = Counters.merged(reversed(shards))
        assert fwd == rev

    def test_merge_is_associative(self):
        a, b, c = (
            self._sample(0, 5),
            self._sample(5, 12),
            self._sample(12, 30),
        )
        left = Counters.merged([Counters.merged([a, b]), c])
        a2, b2, c2 = (
            self._sample(0, 5),
            self._sample(5, 12),
            self._sample(12, 30),
        )
        right = Counters.merged([a2, Counters.merged([b2, c2])])
        assert left == right

    def test_gauges_merge_as_max(self):
        a, b = Counters(), Counters()
        a.gauge("g", 3.0)
        b.gauge("g", 9.0)
        assert Counters.merged([a, b]).gauges["g"] == 9.0

    def test_round_trip(self):
        c = self._sample(0, 10)
        assert Counters.from_dict(c.to_dict()) == c
        json.dumps(c.to_dict())  # JSON-safe

    def test_bool(self):
        assert not Counters()
        c = Counters()
        c.inc("x")
        assert c

    def test_pow2_buckets(self):
        assert pow2_bucket(0) == "0"
        assert pow2_bucket(1) == "1"
        assert pow2_bucket(2) == "2-3"
        assert pow2_bucket(3) == "2-3"
        assert pow2_bucket(4) == "4-7"
        assert pow2_bucket(1000) == "512-1023"


# -- Chrome trace exporter -------------------------------------------------------


def _traced_tracer():
    t = Tracer(clock=FakeClock())
    with t:
        with obs.span("compile", kernel="k"):
            with obs.span("pass.regions"):
                pass
            with obs.span("pass.codegen"):
                obs.event("fallback.degrade", rung="sa")
    return t


class TestChromeTrace:
    def test_valid_against_schema(self):
        trace = obs.chrome_trace(_traced_tracer())
        assert obs.validate_chrome_trace(trace) == []

    def test_structure(self):
        trace = obs.chrome_trace(_traced_tracer(), process_name="unit")
        assert obs.span_names(trace) == [
            "compile",
            "pass.regions",
            "pass.codegen",
        ]
        compile_ev = obs.find_span(trace, "compile")
        regions = obs.find_span(trace, "pass.regions")
        assert regions["cat"] == "pass"
        assert regions["args"]["parent_id"] == compile_ev["args"]["span_id"]
        # Containment: child window inside parent window.
        assert compile_ev["ts"] <= regions["ts"]
        assert (
            regions["ts"] + regions["dur"]
            <= compile_ev["ts"] + compile_ev["dur"]
        )
        phases = {ev["ph"] for ev in trace["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_json_serializable_and_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(str(path), _traced_tracer())
        loaded = obs.load_chrome_trace(str(path))
        assert obs.validate_chrome_trace(loaded) == []

    def test_validator_rejects_bad_phase(self):
        bad = {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 1, "name": "x"}]}
        assert obs.validate_chrome_trace(bad)

    def test_validator_rejects_escaping_child(self):
        bad = {
            "traceEvents": [
                {
                    "ph": "X", "pid": 1, "tid": 1, "name": "p",
                    "ts": 0, "dur": 5, "args": {"span_id": 1},
                },
                {
                    "ph": "X", "pid": 1, "tid": 1, "name": "c",
                    "ts": 3, "dur": 9,
                    "args": {"span_id": 2, "parent_id": 1},
                },
            ]
        }
        assert any("escapes" in p for p in obs.validate_chrome_trace(bad))


# -- metrics sink ----------------------------------------------------------------


class TestMetricsSink:
    def test_counters_and_reports_validate(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        c = Counters()
        c.inc("compile.kernels")
        c.observe_value("sim.reexec.R", 12)

        class R:
            def to_dict(self):
                return {"kind": "compile_result", "kernel": "k"}

            def summary(self):
                return {"kernel": "k"}

        with obs.MetricsSink(str(path)) as sink:
            sink.write_counters(c, scope="unit")
            sink.write_report(R())
        assert obs.validate_metrics_jsonl(str(path)) == []
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [r["kind"] for r in records] == ["counters", "compile_result"]
        assert records[0]["scope"] == "unit"
        assert records[0]["data"]["counters"] == {"compile.kernels": 1}

    def test_validator_rejects_unknown_kind(self):
        assert obs.validate_metrics_record({"kind": "mystery"})
        assert obs.validate_metrics_record([1, 2])

    def test_validator_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert obs.validate_metrics_jsonl(str(path)) == ["no records"]
