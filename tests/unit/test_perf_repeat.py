"""Unit tests for the repeater (repro.perf.repeat): stopping-criterion
edge cases under a fake clock, warmup discard, GC isolation, obs spans."""

import gc

import pytest

from repro import obs
from repro.perf.repeat import RepeatConfig, RepeatResult, StopReason, repeat


class FakeClock:
    """A deterministic clock: each call advances by the next tick."""

    def __init__(self, tick=1.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self):
        self.now += self.tick
        return self.now


def _noop():
    pass


class TestConfigValidation:
    def test_defaults_valid(self):
        cfg = RepeatConfig()
        assert cfg.min_reps == 5 and cfg.warmup == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"warmup": -1},
            {"min_reps": 0},
            {"min_reps": 10, "max_reps": 5},
            {"target_rel_ci": 0.0},
            {"wall_budget_s": 0.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RepeatConfig(**kwargs)

    def test_dict_roundtrip_excludes_clock(self):
        cfg = RepeatConfig(min_reps=3, max_reps=7, wall_budget_s=2.5)
        d = cfg.to_dict()
        assert "clock" not in d
        back = RepeatConfig.from_dict(d)
        assert back.min_reps == 3 and back.max_reps == 7
        assert back.wall_budget_s == 2.5


class TestStopping:
    def test_zero_variance_stops_at_min_reps(self):
        # A constant-duration body has a point CI: the target is met
        # the moment min_reps samples exist.
        clock = FakeClock(tick=0.5)
        cfg = RepeatConfig(
            warmup=1, min_reps=4, max_reps=50, target_rel_ci=0.01,
            clock=clock, gc_isolation=False,
        )
        r = repeat(_noop, cfg)
        assert r.stop_reason is StopReason.CI_TARGET
        assert len(r.samples) == 4
        assert len(r.warmup_samples) == 1
        assert r.summary.rel_ci_half_width == 0.0

    def test_max_reps_before_ci_target(self, monkeypatch):
        # Force the CI to never meet the target: noisy self-timed body.
        durations = iter(
            [1.0, 5.0, 0.5, 8.0, 0.2, 9.0, 0.1, 7.0] * 10
        )
        cfg = RepeatConfig(
            warmup=0, min_reps=3, max_reps=8, target_rel_ci=0.0001,
            gc_isolation=False,
        )
        r = repeat(lambda: next(durations), cfg, self_timed=True)
        assert r.stop_reason is StopReason.MAX_REPS
        assert len(r.samples) == 8
        assert r.summary.rel_ci_half_width > 0.0001

    def test_wall_budget_exhaustion(self):
        # Each rep costs 1.0 fake seconds (start+stop ticks at 0.5);
        # budget of 3.2 cuts the run well below min_reps=50.
        clock = FakeClock(tick=0.5)
        cfg = RepeatConfig(
            warmup=0, min_reps=50, max_reps=100, target_rel_ci=0.01,
            wall_budget_s=3.2, clock=clock, gc_isolation=False,
        )
        r = repeat(_noop, cfg)
        assert r.stop_reason is StopReason.WALL_BUDGET
        assert 1 <= len(r.samples) < 50
        assert r.wall_seconds >= 3.2

    def test_wall_budget_always_retains_one_sample(self):
        clock = FakeClock(tick=10.0)  # every rep blows the budget
        cfg = RepeatConfig(
            warmup=0, min_reps=5, max_reps=10, target_rel_ci=0.01,
            wall_budget_s=1.0, clock=clock, gc_isolation=False,
        )
        r = repeat(_noop, cfg)
        assert r.stop_reason is StopReason.WALL_BUDGET
        assert len(r.samples) == 1
        assert r.summary.n == 1

    def test_warmup_budget_headroom(self):
        # Warmup must not eat the whole budget: after the first warmup
        # rep, further warmups are skipped when the budget is gone.
        clock = FakeClock(tick=10.0)
        cfg = RepeatConfig(
            warmup=5, min_reps=1, max_reps=10, target_rel_ci=0.01,
            wall_budget_s=1.0, clock=clock, gc_isolation=False,
        )
        r = repeat(_noop, cfg)
        assert len(r.warmup_samples) == 1  # the rest were skipped
        assert len(r.samples) >= 1


class TestMeasurement:
    def test_warmup_discarded_from_samples(self):
        calls = []
        cfg = RepeatConfig(
            warmup=2, min_reps=3, max_reps=3, target_rel_ci=0.5,
            gc_isolation=False,
        )
        r = repeat(lambda: calls.append(len(calls)), cfg)
        assert len(calls) == 5  # 2 warmup + 3 measured
        assert len(r.warmup_samples) == 2
        assert len(r.samples) == 3

    def test_self_timed_uses_returned_seconds(self):
        durations = iter([0.25, 0.5, 0.75])
        cfg = RepeatConfig(
            warmup=0, min_reps=3, max_reps=3, target_rel_ci=10.0,
            gc_isolation=False,
        )
        r = repeat(lambda: next(durations), cfg, self_timed=True)
        assert r.samples == [0.25, 0.5, 0.75]

    def test_self_timed_rejects_nonpositive(self):
        cfg = RepeatConfig(warmup=0, min_reps=1, max_reps=1)
        with pytest.raises(ValueError):
            repeat(lambda: 0.0, cfg, self_timed=True)
        with pytest.raises(ValueError):
            repeat(lambda: None, cfg, self_timed=True)

    def test_gc_disabled_during_rep_and_restored(self):
        states = []
        assert gc.isenabled()
        cfg = RepeatConfig(warmup=0, min_reps=2, max_reps=2,
                           target_rel_ci=10.0)
        repeat(lambda: states.append(gc.isenabled()), cfg)
        assert states == [False, False]  # GC off inside every rep
        assert gc.isenabled()  # restored afterwards

    def test_gc_isolation_off(self):
        states = []
        cfg = RepeatConfig(
            warmup=0, min_reps=1, max_reps=1, gc_isolation=False
        )
        repeat(lambda: states.append(gc.isenabled()), cfg)
        assert states == [True]

    def test_body_exception_restores_gc(self):
        assert gc.isenabled()
        cfg = RepeatConfig(warmup=0, min_reps=1, max_reps=1)

        def boom():
            raise RuntimeError("bench body failed")

        with pytest.raises(RuntimeError):
            repeat(boom, cfg)
        assert gc.isenabled()

    def test_result_is_frozen(self):
        cfg = RepeatConfig(warmup=0, min_reps=1, max_reps=1,
                           gc_isolation=False)
        r = repeat(_noop, cfg)
        assert isinstance(r, RepeatResult)
        with pytest.raises(AttributeError):
            r.samples = []


class TestObservability:
    def test_spans_and_counters(self):
        cfg = RepeatConfig(
            warmup=1, min_reps=3, max_reps=3, target_rel_ci=10.0,
            gc_isolation=False,
        )
        with obs.Tracer() as tracer:
            repeat(_noop, cfg)
        assert len(tracer.find("perf.repeat")) == 1
        assert len(tracer.find("perf.rep")) == 4  # 1 warmup + 3 measured
        counts = tracer.counters.counts
        assert counts["perf.reps"] == 3
        assert counts["perf.warmup_reps"] == 1
        assert counts["perf.stop.ci_target"] == 1

    def test_unobserved_by_default(self):
        # No tracer installed: repeat must not blow up or leak state.
        cfg = RepeatConfig(warmup=0, min_reps=1, max_reps=1,
                           gc_isolation=False)
        r = repeat(_noop, cfg)
        assert r.summary.n == 1
