"""The SW-DMR detector pass (§4's expensive alternative)."""

import pytest

from repro.bench import get_benchmark
from repro.core.swdmr import DETECT_LABEL, apply_swdmr
from repro.gpusim import Executor, Launch, MemoryImage
from repro.gpusim.executor import SimulationError
from repro.ir import Bra, KernelBuilder, Setp


def little_kernel():
    b = KernelBuilder("k", params=[("A", "ptr"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    n = b.ld_param("n")
    i = b.mov(tid, dst=b.reg("u32", "%i"))
    b.label("HEAD")
    p = b.setp("ge", i, n)
    b.bra("EXIT", pred=p)
    off = b.shl(i, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    v2 = b.mad(v, 5, 1)
    b.st("global", addr, v2)
    b.add(i, 32, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    b.ret()
    return b.finish()


def run(kernel, n=64):
    mem = MemoryImage()
    addr = mem.alloc_global(n)
    mem.upload(addr, list(range(1, n + 1)))
    mem.set_param("A", addr)
    mem.set_param("n", n)
    Executor(kernel, rf_code_factory=lambda: None).run(
        Launch(grid=2, block=32), mem
    )
    return mem.download(addr, n)


class TestTransformation:
    def test_preserves_semantics(self):
        golden = run(little_kernel())
        k = little_kernel()
        apply_swdmr(k)
        assert run(k) == golden

    def test_duplicates_computation(self):
        k = little_kernel()
        result = apply_swdmr(k)
        assert result.duplicated > 0
        assert result.shadow_registers > 0
        names = {r.name for r in k.all_registers()}
        assert any(n.startswith("%dmr_") for n in names)

    def test_checks_guard_externalization(self):
        k = little_kernel()
        result = apply_swdmr(k)
        assert result.checks > 0
        # every check is a setp.ne + guarded branch to the detect block
        detect_branches = [
            inst
            for blk in k.blocks
            if blk.label != DETECT_LABEL  # its self-loop is not a check
            for inst in blk.instructions
            if isinstance(inst, Bra) and inst.target == DETECT_LABEL
        ]
        assert len(detect_branches) == result.checks

    def test_detect_block_added(self):
        k = little_kernel()
        apply_swdmr(k)
        labels = [blk.label for blk in k.blocks]
        assert DETECT_LABEL in labels
        k.validate()

    def test_instruction_count_roughly_doubles(self):
        k = little_kernel()
        before = sum(len(blk.instructions) for blk in k.blocks)
        apply_swdmr(k)
        after = sum(len(blk.instructions) for blk in k.blocks)
        assert after > 1.6 * before

    def test_fault_free_never_reaches_detect(self):
        """Detection block spins forever; a fault-free run must finish."""
        k = little_kernel()
        apply_swdmr(k)
        run(k)  # SimulationError would fire if DETECT were entered

    def test_detects_shadow_divergence(self):
        """Corrupting a master register after its shadow copy diverges the
        pair; the next externalization check must trap."""
        from repro.gpusim.faults import FaultPlan

        k = little_kernel()
        apply_swdmr(k)
        plan = FaultPlan(
            ctaid=0, tid=1, after_instructions=12, reg_name="%i", bits=(2,)
        )
        mem = MemoryImage()
        addr = mem.alloc_global(64)
        mem.upload(addr, list(range(1, 65)))
        mem.set_param("A", addr)
        mem.set_param("n", 64)
        with pytest.raises(SimulationError):
            # unprotected RF lets the corrupt value flow; the DMR check
            # catches the divergence and spins in DETECT until the
            # instruction budget trips
            Executor(
                k,
                rf_code_factory=lambda: None,
                max_instructions_per_thread=20_000,
                fault_plan=plan,
            ).run(Launch(grid=2, block=32), mem)


class TestOnBenchmarks:
    @pytest.mark.parametrize("abbr", ["BS", "STC", "FW", "NQU"])
    def test_benchmark_equivalence(self, abbr):
        bench = get_benchmark(abbr)
        wl = bench.workload()
        mem, _, out = wl.make()
        Executor(bench.fresh_kernel(), rf_code_factory=lambda: None).run(
            wl.launch, mem
        )
        golden = mem.download(*out)
        k = bench.fresh_kernel()
        apply_swdmr(k)
        mem2 = wl.make_memory()
        Executor(k, rf_code_factory=lambda: None).run(wl.launch, mem2)
        assert mem2.download(*out) == golden

    def test_costs_more_than_penny(self):
        from repro.experiments.detectors import run as run_detectors

        table = run_detectors([get_benchmark("STC"), get_benchmark("BS")])
        assert table["SW-DMR"]["gmean"] > table["Penny"]["gmean"]
