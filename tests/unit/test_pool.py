"""The supervised worker pool: dispatch, crash recovery, backoff,
hang reclaim, poison quarantine, and its health snapshot.

Process-mode tests use a tiny runner module defined here (forked
children inherit ``sys.modules``, and the runner is resolved by its
``module:attr`` path inside the worker).  Thread-mode tests exercise
the same supervisor logic without process machinery.
"""

import os
import sys
import time
import types

import pytest

from repro.serve.errors import PoisonJobError, WorkerCrashError
from repro.serve.pool import PoolConfig, WorkerPool

# -- the test runner (importable from forked workers) -----------------------------

_RUNNER_MODULE = "penny_pool_test_runner"


def _runner(payload):
    action = payload.get("action")
    if action == "crash":
        os.kill(os.getpid(), 9)
    if action == "raise":
        raise RuntimeError("runner blew up")
    if action == "sleep":
        time.sleep(float(payload.get("seconds", 10.0)))
    return ("ok", {"echo": payload.get("x")})


def _install_runner():
    mod = types.ModuleType(_RUNNER_MODULE)
    mod.run = _runner
    sys.modules[_RUNNER_MODULE] = mod


_install_runner()


def _pool(**overrides):
    kwargs = dict(
        workers=2,
        runner=f"{_RUNNER_MODULE}:run",
        restart_backoff_base=0.01,
        restart_backoff_cap=0.1,
    )
    kwargs.update(overrides)
    return WorkerPool(PoolConfig(**kwargs))


# -- basic dispatch ---------------------------------------------------------------


@pytest.mark.parametrize("use_threads", [False, True])
def test_jobs_round_trip(use_threads):
    with _pool(use_threads=use_threads) as pool:
        futures = [
            pool.submit({"x": i}, key=f"k{i}") for i in range(6)
        ]
        results = [f.result(timeout=15) for f in futures]
    assert results == [("ok", {"echo": i}) for i in range(6)]


def test_runner_exception_is_a_typed_error_result():
    """A runner that raises (contract violation) yields an error tuple,
    not a crashed worker."""
    with _pool(workers=1) as pool:
        status, payload = pool.submit(
            {"action": "raise"}, key="boom"
        ).result(timeout=15)
        assert status == "error"
        assert payload["type"] == "RuntimeError"
        # The worker survived: the next job runs on the same pool.
        assert pool.submit({"x": 1}, key="next").result(timeout=15) == (
            "ok",
            {"echo": 1},
        )
        assert pool.metrics.crashes == 0


def test_submit_after_shutdown_fails_fast():
    pool = _pool(use_threads=True)
    pool.start()
    pool.shutdown()
    future = pool.submit({"x": 1}, key="late")
    with pytest.raises(WorkerCrashError):
        future.result(timeout=1)


# -- crash recovery ---------------------------------------------------------------


def test_crashed_worker_restarts_and_job_retries():
    """One crash is absorbed: the job is retried on a fresh worker (the
    second attempt succeeds because the directive rides in the payload
    only via chaos — here the crash is one-shot via a mutating key)."""
    with _pool(workers=1, poison_threshold=2) as pool:
        # First job crashes its worker; with poison_threshold=2 it is
        # retried once — and crashes again, quarantining the key.
        future = pool.submit({"action": "crash"}, key="killer")
        with pytest.raises(PoisonJobError) as exc_info:
            future.result(timeout=30)
        assert exc_info.value.detail["strikes"] == 2
        assert pool.metrics.crashes == 2
        # The pool recovered: a clean job still completes (which proves
        # at least the final respawn happened).
        assert pool.submit({"x": 7}, key="clean").result(timeout=30) == (
            "ok",
            {"echo": 7},
        )
        assert pool.metrics.restarts >= 2


def test_quarantined_key_fails_fast_without_touching_a_worker():
    with _pool(workers=1, poison_threshold=1) as pool:
        with pytest.raises(PoisonJobError):
            pool.submit({"action": "crash"}, key="poison").result(
                timeout=30
            )
        jobs_before = pool.metrics.jobs_completed
        started = time.monotonic()
        with pytest.raises(PoisonJobError) as exc_info:
            pool.submit({"action": "crash"}, key="poison").result(
                timeout=5
            )
        assert time.monotonic() - started < 2.0
        assert exc_info.value.detail.get("quarantined") is True
        assert pool.metrics.jobs_completed == jobs_before
        assert "poison" in pool.health()["quarantined_keys"]


def test_crashes_of_different_keys_do_not_share_strikes():
    """Strikes are per key: two different jobs each crashing once (with
    threshold 2) are both retried, neither quarantined."""
    with _pool(workers=2, poison_threshold=3) as pool:
        f1 = pool.submit({"action": "crash"}, key="a")
        f2 = pool.submit({"action": "crash"}, key="b")
        with pytest.raises(PoisonJobError):
            f1.result(timeout=60)
        with pytest.raises(PoisonJobError):
            f2.result(timeout=60)
        health = pool.health()
        assert set(health["quarantined_keys"]) == {"a", "b"}
        # 3 strikes each.
        assert pool.metrics.crashes == 6


def test_restart_backoff_grows_per_slot():
    cfg = PoolConfig(
        workers=1,
        runner=f"{_RUNNER_MODULE}:run",
        restart_backoff_base=0.05,
        restart_backoff_cap=10.0,
        poison_threshold=100,
    )
    pool = WorkerPool(cfg)
    slot = pool._slots[0]
    now = 100.0
    delays = []
    for _ in range(5):
        slot.state = "busy"
        slot.proc = types.SimpleNamespace(is_alive=lambda: False, kill=lambda: None)
        pool._on_worker_death(slot, now, cause="crash")
        delays.append(slot.restart_at - now)
        slot.state = "busy"  # pretend it respawned and died again
    assert delays == sorted(delays)
    assert delays[0] == pytest.approx(0.05)
    assert delays[1] == pytest.approx(0.10)
    assert delays[2] == pytest.approx(0.20)


# -- hang reclaim -----------------------------------------------------------------


def test_hung_worker_is_reclaimed():
    with _pool(
        workers=1, job_timeout=0.5, poison_threshold=1
    ) as pool:
        future = pool.submit(
            {"action": "sleep", "seconds": 60.0}, key="hang"
        )
        with pytest.raises(PoisonJobError):
            future.result(timeout=30)
        assert pool.metrics.hung_kills == 1
        # A fresh worker serves the next job.
        assert pool.submit({"x": 2}, key="ok").result(timeout=30) == (
            "ok",
            {"echo": 2},
        )


def test_thread_mode_hang_is_abandoned_not_killed():
    """Threads cannot be killed; the slot is abandoned and replaced, and
    the stale incarnation's late messages are ignored."""
    with _pool(
        workers=1,
        use_threads=True,
        job_timeout=0.3,
        poison_threshold=1,
    ) as pool:
        future = pool.submit(
            {"action": "sleep", "seconds": 1.0}, key="hang"
        )
        with pytest.raises(PoisonJobError):
            future.result(timeout=10)
        # After the stale thread wakes and reports, the pool still works.
        time.sleep(1.2)
        assert pool.submit({"x": 3}, key="ok").result(timeout=10) == (
            "ok",
            {"echo": 3},
        )


# -- health -----------------------------------------------------------------------


def test_health_snapshot_shape():
    with _pool(use_threads=True) as pool:
        pool.submit({"x": 0}, key="k").result(timeout=10)
        health = pool.health()
    assert health["workers"] == 2
    assert health["alive"] == 2
    assert health["jobs_completed"] == 1
    assert health["quarantined_keys"] == []
    assert health["use_threads"] is True
    for key in ("restarts", "crashes", "hung_kills", "pending"):
        assert isinstance(health[key], int)


def test_cancelled_future_does_not_strike_the_key():
    """A client that walks away (future cancelled) before the worker
    dies must not poison a legitimate key."""
    with _pool(workers=1, use_threads=True, poison_threshold=1) as pool:
        future = pool.submit(
            {"action": "sleep", "seconds": 0.4}, key="slowkey"
        )
        time.sleep(0.1)  # let it dispatch
        future.cancel()
        # Force the supervisor down the death path for this slot.
        slot = pool._slots[0]
        with pool._lock:
            if slot.job is not None:
                pool._on_worker_death(
                    slot, time.monotonic(), cause="hung"
                )
        time.sleep(0.3)
        assert "slowkey" not in pool.health()["quarantined_keys"]
