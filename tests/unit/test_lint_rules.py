"""Rule registry semantics and the pre-compile rule set."""

import pytest

from repro import obs
from repro.ir.parser import parse_kernel
from repro.lint import (
    AnalyzerError,
    LintContext,
    Severity,
    UnknownRuleError,
    lint_kernel,
    lint_source,
    run_rules,
)
from repro.lint.registry import (
    DEFAULT_REGISTRY,
    PRE,
    Rule,
    RuleRegistry,
)


def _lint(text: str, **kwargs):
    return lint_kernel(parse_kernel(text), **kwargs)


def _rules_fired(report):
    return {d.rule for d in report.diagnostics}


class TestRegistry:
    def test_default_registry_has_both_phases(self):
        pre = {r.id for r in DEFAULT_REGISTRY.rules(PRE)}
        assert {
            "uninit-read",
            "unreachable-block",
            "divergent-barrier",
            "shared-race",
            "uncut-antidep",
        } <= pre
        post = {r.id for r in DEFAULT_REGISTRY.rules("post")}
        assert {
            "penny-restore",
            "penny-coverage",
            "penny-barrier",
            "penny-slice",
            "penny-adjustment",
            "ckpt-loop-overwrite",
            "ckpt-slot-alias",
            "ckpt-space-write",
            "restore-live-mismatch",
        } <= post

    def test_select_only(self):
        rules = DEFAULT_REGISTRY.select(phase=PRE, only=["uninit-read"])
        assert [r.id for r in rules] == ["uninit-read"]

    def test_select_disable(self):
        rules = DEFAULT_REGISTRY.select(
            phase=PRE, disable=("uncut-antidep",)
        )
        ids = [r.id for r in rules]
        assert "uncut-antidep" not in ids and "uninit-read" in ids

    def test_select_severity_override(self):
        rules = DEFAULT_REGISTRY.select(
            phase=PRE, severity={"uncut-antidep": "error"}
        )
        by_id = {r.id: r for r in rules}
        assert by_id["uncut-antidep"].severity is Severity.ERROR
        # the registry itself is untouched
        assert (
            DEFAULT_REGISTRY.get("uncut-antidep").severity is Severity.NOTE
        )

    def test_unknown_rule_everywhere_raises(self):
        with pytest.raises(UnknownRuleError):
            DEFAULT_REGISTRY.select(phase=PRE, only=["no-such-rule"])
        with pytest.raises(UnknownRuleError):
            DEFAULT_REGISTRY.select(phase=PRE, disable=("no-such-rule",))
        with pytest.raises(UnknownRuleError):
            DEFAULT_REGISTRY.select(
                phase=PRE, severity={"no-such-rule": "error"}
            )

    def test_duplicate_registration_rejected(self):
        reg = RuleRegistry()
        r = Rule(
            id="x",
            phase=PRE,
            severity=Severity.NOTE,
            description="",
            check=lambda ctx: iter(()),
        )
        reg.add(r)
        with pytest.raises(ValueError):
            reg.add(r)


class TestEngine:
    def test_engine_stamps_rule_and_severity(self):
        report = _lint(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  add.u32 %r1, %r0, %a;\n"
            "  st.global.u32 [%a], %r1;\n"
            "  ret;\n"
            "}\n"
        )
        (d,) = report.errors
        assert d.rule == "uninit-read"
        assert d.severity is Severity.ERROR
        assert str(d.location) == "k:ENTRY:1"
        assert d.fixit

    def test_severity_override_flows_through(self):
        text = (
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  ld.global.u32 %x, [%a];\n"
            "  st.global.u32 [%a], %x;\n"
            "  ret;\n"
            "}\n"
        )
        base = _lint(text)
        assert _rules_fired(base) == {"uncut-antidep"}
        assert base.errors == []
        promoted = _lint(text, severity={"uncut-antidep": "error"})
        assert len(promoted.errors) == 1

    def test_crashing_rule_raises_analyzer_error(self):
        reg = RuleRegistry()

        def boom(ctx):
            raise ZeroDivisionError("rule bug")
            yield  # pragma: no cover

        reg.add(
            Rule(
                id="crashy",
                phase=PRE,
                severity=Severity.NOTE,
                description="",
                check=boom,
            )
        )
        kernel = parse_kernel(
            ".entry k (.param .ptr A) {\nENTRY:\n  ret;\n}\n"
        )
        with pytest.raises(AnalyzerError) as exc_info:
            run_rules(LintContext(kernel), reg.rules(PRE))
        assert exc_info.value.rule_id == "crashy"

    def test_rules_run_under_obs_spans_and_counters(self):
        kernel = parse_kernel(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  add.u32 %r1, %r0, %a;\n"
            "  st.global.u32 [%a], %r1;\n"
            "  ret;\n"
            "}\n"
        )
        with obs.Tracer() as tracer:
            lint_kernel(kernel)
        assert tracer.find("lint.rule")
        counts = tracer.counters.to_dict()["counters"]
        assert counts.get("lint.rules_run", 0) >= 5
        assert counts.get("lint.findings.uninit-read") == 1
        assert counts.get("lint.severity.error") == 1


class TestPreRules:
    def test_uniform_barrier_is_clean(self):
        report = _lint(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  setp.lt.u32 %p, %a, 16;\n"
            "  @%p bra WORK;\n"
            "SKIP:\n"
            "  bra EXIT;\n"
            "WORK:\n"
            "  bar.sync;\n"
            "  bra EXIT;\n"
            "EXIT:\n"
            "  ret;\n"
            "}\n"
        )
        # the predicate comes from a param: uniform across the block
        assert "divergent-barrier" not in _rules_fired(report)

    def test_tid_guarded_barrier_is_flagged(self):
        report = _lint(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  mov.u32 %t, %tid.x;\n"
            "  setp.lt.u32 %p, %t, 16;\n"
            "  @%p bar.sync;\n"
            "  ret;\n"
            "}\n"
        )
        assert "divergent-barrier" in _rules_fired(report)

    def test_shared_store_with_varying_address_is_clean(self):
        report = _lint(
            ".entry k (.param .ptr A) {\n"
            "  .shared .b32 buf[64];\n"
            "ENTRY:\n"
            "  mov.u32 %t, %tid.x;\n"
            "  shl.u32 %off, %t, 2;\n"
            "  mov.u32 %b, buf;\n"
            "  add.u32 %pb, %b, %off;\n"
            "  st.shared.u32 [%pb], %t;\n"
            "  ret;\n"
            "}\n"
        )
        assert "shared-race" not in _rules_fired(report)

    def test_shared_store_guarded_by_tid_is_clean(self):
        report = _lint(
            ".entry k (.param .ptr A) {\n"
            "  .shared .b32 buf[4];\n"
            "ENTRY:\n"
            "  mov.u32 %t, %tid.x;\n"
            "  setp.eq.u32 %p, %t, 0;\n"
            "  @%p st.shared.u32 [buf], %t;\n"
            "  ret;\n"
            "}\n"
        )
        assert "shared-race" not in _rules_fired(report)

    def test_uniform_value_broadcast_is_clean(self):
        report = _lint(
            ".entry k (.param .ptr A) {\n"
            "  .shared .b32 buf[4];\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  st.shared.u32 [buf], %a;\n"
            "  ret;\n"
            "}\n"
        )
        assert "shared-race" not in _rules_fired(report)

    def test_varying_value_to_uniform_address_is_a_race(self):
        report = _lint(
            ".entry k (.param .ptr A) {\n"
            "  .shared .b32 buf[4];\n"
            "ENTRY:\n"
            "  mov.u32 %t, %tid.x;\n"
            "  st.shared.u32 [buf], %t;\n"
            "  ret;\n"
            "}\n"
        )
        assert "shared-race" in _rules_fired(report)

    def test_atomic_to_uniform_address_is_clean(self):
        report = _lint(
            ".entry k (.param .ptr A) {\n"
            "  .shared .b32 buf[4];\n"
            "ENTRY:\n"
            "  mov.u32 %t, %tid.x;\n"
            "  atom.shared.add.u32 %old, [buf], %t;\n"
            "  ret;\n"
            "}\n"
        )
        assert "shared-race" not in _rules_fired(report)


class TestLintSource:
    def test_lints_every_kernel_and_attaches_locs(self):
        report = lint_source(
            ".entry k1 (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  add.u32 %r1, %r0, %a;\n"
            "  st.global.u32 [%a], %r1;\n"
            "  ret;\n"
            "}\n"
            ".entry k2 (.param .ptr B) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %b, [B];\n"
            "  add.u32 %r2, %q0, %b;\n"
            "  st.global.u32 [%b], %r2;\n"
            "  ret;\n"
            "}\n"
        )
        kernels = {d.location.kernel for d in report.errors}
        assert kernels == {"k1", "k2"}
        for d in report.errors:
            assert d.location.loc is not None
            assert d.location.loc.line in (4, 11)
