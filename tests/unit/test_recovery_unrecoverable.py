"""The recovery runtime's UnrecoverableError branches, each with its
DUE-taxonomy cause: missing region entry, missing checkpoint slot, missing
storage map, unsupported slice node."""

from types import SimpleNamespace

import pytest

from repro.coding import ParityCode
from repro.core.recovery_meta import (
    RecoveryTable,
    RegionRecovery,
    RestoreAction,
)
from repro.core.storage import StorageAssignment
from repro.gpusim.executor import (
    Launch,
    ThreadContext,
    UnrecoverableError,
    _BlockEnv,
)
from repro.gpusim.faults import DueType, classify_due
from repro.gpusim.memory import MemoryImage, WordStore
from repro.gpusim.recovery import RecoveryRuntime
from repro.gpusim.regfile import ParityError, RegisterFile


def _thread(region="entry"):
    t = ThreadContext(0, 0, RegisterFile(ParityCode(32)))
    t.region_label = region
    return t


def _env():
    return _BlockEnv(
        launch=Launch(grid=1, block=4),
        mem=MemoryImage(),
        shared=WordStore("shared"),
        shared_bases={"__ckpt_shared": 0},
        ckpt_global_base=0,
    )


def _kernel(meta=None):
    return SimpleNamespace(meta=meta or {})


ERR = ParityError("%r1")


def test_missing_region_entry_is_missing_metadata():
    runtime = RecoveryRuntime(_kernel(), RecoveryTable())
    with pytest.raises(UnrecoverableError) as exc_info:
        runtime.recover(_thread(), _env(), ERR)
    assert exc_info.value.cause == "missing_metadata"
    assert classify_due(exc_info.value) is DueType.MISSING_METADATA
    assert "no recovery entry" in str(exc_info.value)


def _slot_table():
    return RecoveryTable(
        regions={
            "entry": RegionRecovery(
                entry_label="entry",
                restores=[
                    RestoreAction("%r1", "s32", slot_color=0)
                ],
            )
        }
    )


def test_kernel_without_storage_map_is_missing_metadata():
    # A slot restore on a kernel whose meta carries no storage assignment.
    runtime = RecoveryRuntime(_kernel(), _slot_table())
    assert runtime.storage is None
    with pytest.raises(UnrecoverableError) as exc_info:
        runtime.recover(_thread(), _env(), ERR)
    assert exc_info.value.cause == "missing_metadata"
    assert "no checkpoint storage map" in str(exc_info.value)


def test_missing_checkpoint_slot_is_missing_metadata():
    # Storage map exists but the (register, color) slot was never assigned.
    meta = {"storage_assignment": StorageAssignment()}
    runtime = RecoveryRuntime(_kernel(meta), _slot_table())
    with pytest.raises(UnrecoverableError) as exc_info:
        runtime.recover(_thread(), _env(), ERR)
    assert exc_info.value.cause == "missing_metadata"
    assert "no checkpoint slot" in str(exc_info.value)


def test_unsupported_slice_node_is_slice_failure():
    table = RecoveryTable(
        regions={
            "entry": RegionRecovery(
                entry_label="entry",
                restores=[
                    RestoreAction(
                        "%r1", "s32", slice_expr="not-a-slice-node"
                    )
                ],
            )
        }
    )
    runtime = RecoveryRuntime(_kernel(), table)
    with pytest.raises(UnrecoverableError) as exc_info:
        runtime.recover(_thread(), _env(), ERR)
    assert exc_info.value.cause == "slice_failure"
    assert classify_due(exc_info.value) is DueType.SLICE_FAILURE
    assert "cannot evaluate slice node" in str(exc_info.value)


def test_untagged_unrecoverable_defaults_to_slice_failure():
    # The constructor default keeps even hand-raised errors classifiable.
    assert classify_due(UnrecoverableError("x")) is DueType.SLICE_FAILURE
