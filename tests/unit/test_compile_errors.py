"""The typed CompileError hierarchy and its carrying of pass context."""

import pytest

from repro.core.errors import (
    CloneError,
    CompileError,
    ConfigError,
    FallbackExhaustedError,
    InvalidKernelError,
    PruningError,
    StorageError,
)
from repro.core.pipeline import (
    LaunchConfig,
    PennyCompiler,
    PennyConfig,
    clone_kernel,
)
from repro.core.storage import StorageBudget
from repro.ir import KernelBuilder


def tiny_kernel():
    b = KernelBuilder("t", params=[("A", "ptr")])
    a = b.ld_param("A")
    v = b.ld("global", a, dtype="u32")
    b.st("global", a, b.add(v, 1))
    b.ret()
    return b.finish()


LAUNCH = LaunchConfig(threads_per_block=32, num_blocks=1)


class TestErrorHierarchy:
    def test_config_error_is_value_error(self):
        # pre-existing callers catch ValueError for bad knob values
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, CompileError)

    def test_unknown_pruning_mode(self):
        cfg = PennyConfig(pruning="wat")
        with pytest.raises(ConfigError) as ei:
            PennyCompiler(cfg).compile(tiny_kernel(), LAUNCH)
        assert ei.value.pass_name == "pruning"
        assert "wat" in str(ei.value)

    def test_unknown_storage_mode(self):
        cfg = PennyConfig(storage_mode="floppy")
        with pytest.raises(ConfigError) as ei:
            PennyCompiler(cfg).compile(tiny_kernel(), LAUNCH)
        assert ei.value.pass_name == "storage"

    def test_error_carries_kernel_snapshot(self):
        cfg = PennyConfig(pruning="nope")
        with pytest.raises(CompileError) as ei:
            PennyCompiler(cfg).compile(tiny_kernel(), LAUNCH)
        err = ei.value
        assert err.kernel_name == "t"
        assert err.kernel_ptx and ".entry t" in err.kernel_ptx

    def test_to_dict_round_trips_fields(self):
        err = PruningError(
            "no slice for cp", scheme="Penny", detail={"key": "x"}
        )
        d = err.to_dict()
        assert d["type"] == "PruningError"
        assert d["pass"] == "pruning"
        assert d["scheme"] == "Penny"
        assert d["detail"] == {"key": "x"}

    def test_str_includes_pass_and_scheme(self):
        err = StorageError("over capacity", scheme="Penny")
        assert "storage" in str(err)
        assert "Penny" in str(err)

    def test_invalid_kernel_error(self):
        kernel = tiny_kernel()
        kernel.blocks[-1].instructions.pop()  # drop ret: falls off the end
        with pytest.raises(InvalidKernelError) as ei:
            PennyCompiler(PennyConfig()).compile(kernel, LAUNCH)
        assert isinstance(ei.value, ValueError)  # legacy contract


class TestCloneGuard:
    def test_clone_of_compiled_kernel_raises(self):
        result = PennyCompiler(PennyConfig()).compile(tiny_kernel(), LAUNCH)
        with pytest.raises(CloneError) as ei:
            clone_kernel(result.kernel)
        # names the compiled-meta keys so the misuse is diagnosable
        assert "recovery_table" in str(ei.value)

    def test_clone_of_fresh_kernel_is_fine(self):
        clone = clone_kernel(tiny_kernel())
        clone.validate()

    def test_recompiling_compiled_output_raises_typed(self):
        compiler = PennyCompiler(PennyConfig())
        result = compiler.compile(tiny_kernel(), LAUNCH)
        with pytest.raises(CompileError):
            compiler.compile(result.kernel, LAUNCH)


class TestStorageCapacity:
    def test_shared_capacity_overflow_is_typed(self):
        # a budget with almost no shared memory cannot hold any slots
        budget = StorageBudget(shared_per_sm=8)
        cfg = PennyConfig(storage_mode="shared")
        with pytest.raises(StorageError) as ei:
            PennyCompiler(cfg, budget=budget).compile(
                tiny_kernel(), LaunchConfig(threads_per_block=256,
                                            num_blocks=4)
            )
        assert ei.value.pass_name == "storage"

    def test_global_storage_immune_to_shared_budget(self):
        budget = StorageBudget(shared_per_sm=8)
        cfg = PennyConfig(storage_mode="global")
        result = PennyCompiler(cfg, budget=budget).compile(
            tiny_kernel(), LAUNCH
        )
        assert result.kernel.meta.get("recovery_table") is not None


class TestFallbackExhausted:
    def test_terminal_cause(self):
        causes = [
            ("as-configured", PruningError("boom")),
            ("sa", StorageError("bang")),
        ]
        err = FallbackExhaustedError("all rungs failed", causes)
        assert isinstance(err.terminal_cause, StorageError)
        assert err.causes == causes

    def test_empty_causes(self):
        err = FallbackExhaustedError("nothing attempted", [])
        assert err.terminal_cause is None
