"""Post-compile lint rules and the ``verify_compiled`` shim.

Covers the satellite bugfix too: every V1–V5 violation message is
normalized to the ``kernel:block:index: message`` form (the legacy
"no recovery metadata" string is the single deliberate exception).
"""

import re

import pytest

from repro.bench import get_benchmark
from repro.core import PennyCompiler, SCHEME_PENNY, scheme_config
from repro.core.codegen import SHARED_CKPT_SYMBOL
from repro.core.pipeline import PennyConfig
from repro.core.recovery_meta import RestoreAction
from repro.core.verify import (
    VERIFY_RULES,
    VerificationError,
    check,
    verify_compiled,
)
from repro.ir.instructions import Alu, St
from repro.ir.types import DType, MemSpace, Reg, SymRef
from repro.lint import lint_compiled

#: every normalized violation starts with kernel:block:index:
LOCATED = re.compile(r"^[^\s:]+:[^\s:]+:\d+: \S")


def _compiled(abbr="STC", **cfg):
    bench = get_benchmark(abbr)
    wl = bench.workload()
    config = scheme_config(SCHEME_PENNY) if not cfg else PennyConfig(**cfg)
    return PennyCompiler(config).compile(
        bench.fresh_kernel(), wl.launch_config
    )


class TestVerifyShim:
    def test_clean_compile_is_clean(self):
        assert verify_compiled(_compiled().kernel) == []

    def test_uncompiled_kernel_keeps_the_legacy_message(self):
        kernel = get_benchmark("STC").fresh_kernel()
        assert verify_compiled(kernel) == [
            "kernel carries no recovery metadata (not compiled?)"
        ]

    def test_check_raises_with_counted_message(self):
        result = _compiled()
        boundary = next(iter(result.regions.boundaries))
        del result.recovery.regions[boundary]
        with pytest.raises(VerificationError, match=r"\d+ violation\(s\)"):
            check(result.kernel)

    def test_shim_runs_only_the_v_rules(self):
        # A doctored rogue write trips ckpt-space-write under the full
        # post rule set but must NOT leak into verify_compiled: the
        # fallback lattice's acceptance gate is pinned to V1-V5.
        result = _compiled()
        kernel = result.kernel
        kernel.blocks[0].instructions.insert(
            0,
            St(
                MemSpace.SHARED,
                DType.U32,
                SymRef(SHARED_CKPT_SYMBOL),
                Reg("%nosuchreg", DType.U32),
                999996,
            ),
        )
        assert verify_compiled(kernel) == []
        report = lint_compiled(kernel, only=["ckpt-space-write"])
        assert len(report.diagnostics) == 1

    def test_all_violations_are_located(self):
        """Satellite: every V1-V5 message is kernel:block:index-formed."""
        result = _compiled()
        # break three obligations at once
        boundary = next(iter(result.regions.boundaries))
        del result.recovery.regions[boundary]
        for entry in result.recovery.regions.values():
            slot_actions = [a for a in entry.restores if a.is_slot]
            if slot_actions:
                slot_actions[0].slot_color = 7
                break
        problems = verify_compiled(result.kernel)
        assert problems
        for p in problems:
            assert LOCATED.match(p), p

    def test_problems_grouped_in_historical_rule_order(self):
        result = _compiled()
        boundary = sorted(result.regions.boundaries)[0]
        del result.recovery.regions[boundary]
        report = lint_compiled(result.kernel, only=VERIFY_RULES)
        order = [VERIFY_RULES.index(d.rule) for d in report.diagnostics]
        assert order == sorted(order)
        problems = verify_compiled(result.kernel)
        assert any("no recovery entry" in p for p in problems)


class TestNewPostRules:
    def test_clean_on_penny_compile(self):
        report = lint_compiled(_compiled().kernel)
        assert report.diagnostics == []

    def test_loop_overwrite_caught_when_prevention_disabled(self):
        """The §3.1 hazard the 2-coloring/renaming schemes exist to
        prevent: with ``overwrite='none'`` the rule must expose it."""
        result = _compiled("BO", overwrite="none", pruning="none")
        report = lint_compiled(
            result.kernel, only=["ckpt-loop-overwrite"]
        )
        assert report.diagnostics
        for d in report.diagnostics:
            assert "recovery would restore the overwritten value" in (
                d.message
            )

    def test_loop_overwrite_clean_under_both_schemes(self):
        for overwrite in ("rr", "sa"):
            result = _compiled("BO", overwrite=overwrite)
            report = lint_compiled(
                result.kernel, only=["ckpt-loop-overwrite"]
            )
            assert report.diagnostics == [], overwrite

    def test_rogue_ckpt_space_write_flagged(self):
        result = _compiled()
        kernel = result.kernel
        kernel.blocks[0].instructions.insert(
            0,
            St(
                MemSpace.SHARED,
                DType.U32,
                SymRef(SHARED_CKPT_SYMBOL),
                Reg("%nosuchreg", DType.U32),
                999996,
            ),
        )
        report = lint_compiled(kernel, only=["ckpt-space-write"])
        (d,) = report.diagnostics
        assert "rogue write" in d.message
        assert d.location.block == kernel.blocks[0].label

    def test_slot_alias_store_flagged(self):
        result = _compiled()
        kernel = result.kernel
        evil = Reg("%evil", DType.U32)
        kernel.blocks[0].instructions[0:0] = [
            Alu("mov", DType.U32, evil, [SymRef(SHARED_CKPT_SYMBOL)]),
            St(MemSpace.SHARED, DType.U32, evil, Reg("%evil", DType.U32)),
        ]
        report = lint_compiled(kernel, only=["ckpt-slot-alias"])
        assert len(report.diagnostics) == 1
        assert "derived from a checkpoint base symbol" in (
            report.diagnostics[0].message
        )

    def test_dead_restore_flagged_as_warning(self):
        result = _compiled()
        entry = next(
            e
            for e in result.recovery.regions.values()
            if not e.mini_region
        )
        entry.restores.append(
            RestoreAction(reg_name="%never_live", dtype="u32", slot_color=0)
        )
        report = lint_compiled(
            result.kernel, only=["restore-live-mismatch"]
        )
        (d,) = report.diagnostics
        assert d.severity.value == "warning"
        assert "%never_live" in d.message

    def test_checkpoint_store_classifiers(self):
        from repro.lint.rules_post import (
            is_checkpoint_addressing,
            is_checkpoint_store,
        )

        sym_store = St(
            MemSpace.SHARED,
            DType.U32,
            SymRef(SHARED_CKPT_SYMBOL),
            Reg("%r", DType.U32),
        )
        ckb_store = St(
            MemSpace.SHARED,
            DType.U32,
            Reg("%ckb_s0", DType.U32),
            Reg("%r", DType.U32),
        )
        plain_store = St(
            MemSpace.GLOBAL,
            DType.U32,
            Reg("%a", DType.U32),
            Reg("%r", DType.U32),
        )
        assert is_checkpoint_store(sym_store)
        assert is_checkpoint_store(ckb_store)
        assert not is_checkpoint_store(plain_store)

        addr = Alu(
            "mov",
            DType.U32,
            Reg("%ca0", DType.U32),
            [SymRef(SHARED_CKPT_SYMBOL)],
        )
        assert is_checkpoint_addressing(addr)
        leak = Alu(
            "add",
            DType.U32,
            Reg("%ca1", DType.U32),
            [Reg("%ca0", DType.U32), Reg("%v5", DType.U32)],
        )
        assert not is_checkpoint_addressing(leak)


class TestPolicyUncoveredAddr:
    """The ``policy-uncovered-addr`` gate: ERROR when a register on an
    address-feeding chain is left unprotected by the active policy."""

    def test_address_only_is_clean_by_construction(self):
        report = lint_compiled(
            _compiled(policy="address-only").kernel,
            only=["policy-uncovered-addr"],
        )
        assert report.diagnostics == []

    def test_full_policy_is_clean(self):
        report = lint_compiled(
            _compiled().kernel, only=["policy-uncovered-addr"]
        )
        assert report.diagnostics == []

    def test_starved_top_k_fires(self):
        # protect a single register: some address chain is necessarily
        # uncovered on a real kernel
        result = _compiled(policy="top-k-vulnerable:1")
        report = lint_compiled(
            result.kernel, only=["policy-uncovered-addr"]
        )
        assert report.diagnostics, "expected uncovered address chains"
        assert all(
            d.rule == "policy-uncovered-addr" for d in report.diagnostics
        )

    def test_opted_out_policies_stay_silent(self):
        # none / detection-only explicitly opt out of address protection
        for policy in ("none", "detection-only"):
            report = lint_compiled(
                _compiled(policy=policy).kernel,
                only=["policy-uncovered-addr"],
            )
            assert report.diagnostics == []

    def test_rule_not_in_verify_shim(self):
        # the fallback lattice must accept top-k kernels: the rule gates
        # full lint runs (CLI / SARIF / CI), not verify_compiled
        from repro.core.verify import VERIFY_RULES

        assert "policy-uncovered-addr" not in VERIFY_RULES
        result = _compiled(policy="top-k-vulnerable:1")
        assert verify_compiled(result.kernel) == []
