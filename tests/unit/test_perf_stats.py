"""Unit tests for the perf statistics layer (repro.perf.stats)."""

import math

import pytest

from repro.perf.stats import (
    Comparison,
    Summary,
    Verdict,
    compare,
    mad,
    median,
    t_quantile,
    t_sf,
    trimmed_mean,
)


class TestEstimators:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        # median 3, deviations [2, 1, 0, 1, 2] -> mad 1
        assert mad([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0

    def test_mad_robust_to_outlier(self):
        clean = mad([1.0, 2.0, 3.0, 4.0, 5.0])
        dirty = mad([1.0, 2.0, 3.0, 4.0, 500.0])
        assert dirty == clean  # one outlier cannot move the MAD

    def test_trimmed_mean_drops_tails(self):
        xs = [1.0] * 8 + [100.0, -100.0]
        assert trimmed_mean(xs, trim=0.1) == 1.0

    def test_trimmed_mean_bad_trim(self):
        with pytest.raises(ValueError):
            trimmed_mean([1.0, 2.0], trim=0.5)


class TestTDistribution:
    def test_t_quantile_matches_tables(self):
        # Standard two-sided 95% critical values.
        for df, expected in ((5, 2.571), (10, 2.228), (30, 2.042)):
            assert t_quantile(df, 0.95) == pytest.approx(
                expected, abs=5e-3
            )

    def test_t_quantile_normal_limit(self):
        assert t_quantile(1e9, 0.95) == pytest.approx(1.95996, abs=1e-4)

    def test_t_sf_symmetry_and_tables(self):
        assert t_sf(0.0, 7) == pytest.approx(0.5, abs=1e-9)
        assert t_sf(2.571, 5) == pytest.approx(0.025, abs=1e-3)
        assert t_sf(-2.571, 5) == pytest.approx(0.975, abs=1e-3)

    def test_invalid_df(self):
        with pytest.raises(ValueError):
            t_quantile(0)
        with pytest.raises(ValueError):
            t_sf(1.0, -1)


class TestSummary:
    def test_from_samples_fields(self):
        s = Summary.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.median == 3.0
        assert s.mean == 3.0
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert s.ci_lo <= s.median <= s.ci_hi

    def test_zero_variance_point_ci(self):
        s = Summary.from_samples([2.0] * 6)
        assert s.ci_lo == s.ci_hi == 2.0
        assert s.rel_ci_half_width == 0.0

    def test_single_sample_point_ci(self):
        s = Summary.from_samples([1.5])
        assert s.ci_lo == s.ci_hi == 1.5

    def test_t_method(self):
        s = Summary.from_samples(
            [1.0, 1.1, 0.9, 1.05, 0.95], method="t"
        )
        assert s.method == "t"
        assert s.ci_lo < s.mean < s.ci_hi

    def test_bootstrap_deterministic(self):
        xs = [1.0, 1.2, 0.9, 1.1, 1.05, 0.98]
        a = Summary.from_samples(xs)
        b = Summary.from_samples(list(reversed(xs)))  # order-free seed
        assert (a.ci_lo, a.ci_hi) == (b.ci_lo, b.ci_hi)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Summary.from_samples([])

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            Summary.from_samples([1.0], confidence=1.0)

    def test_bad_method(self):
        with pytest.raises(ValueError):
            Summary.from_samples([1.0, 2.0], method="magic")

    def test_rel_ci_half_width_nonpositive_center(self):
        s = Summary.from_samples([-1.0, -2.0, -3.0])
        assert math.isinf(s.rel_ci_half_width)

    def test_dict_roundtrip(self):
        s = Summary.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert Summary.from_dict(s.to_dict()) == s


class TestCompare:
    def test_identical_samples_unchanged(self):
        xs = [1.0, 1.1, 0.9, 1.05, 0.95]
        c = compare(xs, list(xs))
        assert c.verdict is Verdict.UNCHANGED
        assert c.ratio == pytest.approx(1.0)

    def test_clear_regression(self):
        base = [1.0, 1.01, 0.99, 1.0, 1.005] * 2
        slow = [x * 1.5 for x in base]
        c = compare(base, slow, noise_margin=0.05)
        assert c.verdict is Verdict.REGRESSED
        assert c.log_ratio_lo > math.log1p(0.05)

    def test_clear_improvement(self):
        base = [1.0, 1.01, 0.99, 1.0, 1.005] * 2
        fast = [x / 1.5 for x in base]
        c = compare(base, fast, noise_margin=0.05)
        assert c.verdict is Verdict.IMPROVED

    def test_within_margin_unchanged(self):
        base = [1.0, 1.002, 0.998, 1.001, 0.999] * 3
        near = [x * 1.01 for x in base]
        c = compare(base, near, noise_margin=0.10)
        assert c.verdict is Verdict.UNCHANGED

    def test_wide_spread_inconclusive(self):
        # Few, widely-spread samples straddling the margin.
        base = [1.0, 2.0, 0.5, 1.5, 0.8]
        cand = [1.1, 2.3, 0.6, 1.4, 0.9]
        c = compare(base, cand, noise_margin=0.01)
        assert c.verdict is Verdict.INCONCLUSIVE

    def test_swap_mirrors_bootstrap(self):
        base = [1.0, 1.05, 0.97, 1.02, 0.99, 1.01]
        slow = [x * 1.4 for x in base]
        ab = compare(base, slow, noise_margin=0.05)
        ba = compare(slow, base, noise_margin=0.05)
        assert ba.verdict is ab.verdict.mirrored
        assert ba.log_ratio_lo == pytest.approx(-ab.log_ratio_hi)
        assert ba.log_ratio_hi == pytest.approx(-ab.log_ratio_lo)

    def test_welch_method(self):
        base = [1.0, 1.02, 0.98, 1.01, 0.99] * 2
        slow = [x * 1.5 for x in base]
        c = compare(base, slow, noise_margin=0.05, method="welch")
        assert c.verdict is Verdict.REGRESSED
        assert c.p_value is not None and c.p_value < 0.01
        assert c.t_stat is not None and c.t_stat > 0
        assert c.df is not None and c.df >= 1

    def test_welch_swap_mirrors(self):
        base = [1.0, 1.03, 0.96, 1.02, 0.99, 1.01]
        slow = [x * 1.3 for x in base]
        ab = compare(base, slow, method="welch")
        ba = compare(slow, base, method="welch")
        assert ba.verdict is ab.verdict.mirrored
        assert ba.log_ratio_lo == pytest.approx(-ab.log_ratio_hi)
        assert ba.p_value == pytest.approx(ab.p_value)

    def test_welch_degenerate_zero_variance(self):
        c = compare([1.0] * 5, [2.0] * 5, method="welch")
        assert c.verdict is Verdict.REGRESSED
        assert c.p_value == 0.0

    def test_welch_degenerate_identical(self):
        c = compare([1.0] * 5, [1.0] * 5, method="welch")
        assert c.verdict is Verdict.UNCHANGED
        assert c.p_value == 1.0

    def test_zero_variance_bootstrap_point(self):
        c = compare([2.0] * 4, [2.0] * 4)
        assert c.verdict is Verdict.UNCHANGED
        assert c.log_ratio_lo == c.log_ratio_hi == 0.0

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            compare([], [1.0])
        with pytest.raises(ValueError):
            compare([1.0], [])
        with pytest.raises(ValueError):
            compare([0.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            compare([1.0], [1.0], noise_margin=-0.1)
        with pytest.raises(ValueError):
            compare([1.0], [1.0], method="magic")

    def test_to_dict(self):
        c = compare([1.0, 1.1, 0.9], [1.0, 1.1, 0.9])
        d = c.to_dict()
        assert d["verdict"] == "unchanged"
        assert d["method"] == "bootstrap"
        assert d["n_baseline"] == d["n_candidate"] == 3

    def test_verdict_mirrored(self):
        assert Verdict.IMPROVED.mirrored is Verdict.REGRESSED
        assert Verdict.REGRESSED.mirrored is Verdict.IMPROVED
        assert Verdict.UNCHANGED.mirrored is Verdict.UNCHANGED
        assert Verdict.INCONCLUSIVE.mirrored is Verdict.INCONCLUSIVE

    def test_comparison_is_frozen(self):
        c = compare([1.0, 1.1], [1.0, 1.1])
        assert isinstance(c, Comparison)
        with pytest.raises(AttributeError):
            c.verdict = Verdict.REGRESSED
