"""Selective register-file protection in both simulator backends.

The policy layer publishes ``kernel.meta["protected_registers"]``; the
register files honor it: covered registers store encoded codewords and
raise :class:`ParityError` on corrupted reads, uncovered registers store
bare 32-bit values — faults on them propagate silently (SDC-capable),
exactly the exposure the policy chose.  Both backends must implement
identical semantics or A/B campaigns would diverge.
"""

import dataclasses

import pytest

from repro.coding.parity import ParityCode
from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.gpusim import MemoryImage, make_executor
from repro.gpusim.executor import Launch
from repro.gpusim.regfile import ParityError, RegisterFile
from repro.ir.parser import parse_kernel

PTX = """
.entry k (.param .ptr A) {
ENTRY:
  ld.param.u32 %a, [A];
  mov.u32 %t, %tid.x;
  mul.u32 %o, %t, 4;
  add.u32 %p, %a, %o;
  ld.global.u32 %x, [%p];
  add.u32 %y, %x, 1;
  st.global.u32 [%p], %y;
  ret;
}
"""

LAUNCH = LaunchConfig(threads_per_block=32, num_blocks=1)


class TestScalarRegisterFile:
    def test_protected_none_covers_everything(self):
        rf = RegisterFile(ParityCode())
        rf.write("%r", 5)
        rf.flip_bits("%r", [3])
        with pytest.raises(ParityError):
            rf.read("%r")

    def test_empty_protected_set_covers_nothing(self):
        rf = RegisterFile(ParityCode(), protected=frozenset())
        rf.write("%r", 5)
        rf.flip_bits("%r", [3])
        assert rf.read("%r") == 5 ^ (1 << 3)  # silent corruption
        assert rf.detections == 0

    def test_partial_coverage(self):
        rf = RegisterFile(ParityCode(), protected=frozenset({"%p"}))
        rf.write("%p", 1)
        rf.write("%x", 2)
        rf.flip_bits("%x", [0])
        assert rf.read("%x") == 3  # flip lands, undetected
        rf.flip_bits("%p", [0])
        with pytest.raises(ParityError):
            rf.read("%p")

    def test_uncovered_out_of_range_flip_is_masked(self):
        # a flip on the (nonexistent) parity bit of a bare register
        # must not leak into the architectural value
        rf = RegisterFile(ParityCode(), protected=frozenset())
        rf.write("%r", 7)
        rf.flip_bits("%r", [32])
        assert rf.read("%r") == 7

    def test_peek_respects_coverage(self):
        rf = RegisterFile(ParityCode(), protected=frozenset({"%p"}))
        rf.write("%p", 9)
        rf.write("%x", 11)
        assert rf.peek("%p") == 9
        assert rf.peek("%x") == 11


def _run(kernel, backend, code_factory=ParityCode):
    mem = MemoryImage()
    buf = mem.alloc_global(32)
    mem.upload(buf, range(32))
    mem.set_param("A", buf)
    result = make_executor(
        kernel, backend=backend, rf_code_factory=code_factory
    ).run(Launch(grid=1, block=32), mem)
    return result, mem.download(buf, 32)


def _compile(policy):
    config = dataclasses.replace(PennyConfig(), policy=policy)
    return PennyCompiler(config).compile(parse_kernel(PTX), LAUNCH)


class TestPolicyExecution:
    @pytest.mark.parametrize(
        "policy",
        ["full", "address-only", "top-k-vulnerable:0.5",
         "detection-only", "none"],
    )
    def test_backends_agree_and_compute_correctly(self, policy):
        result = _compile(policy)
        outs = []
        for backend in ("scalar", "vector"):
            _, data = _run(result.kernel, backend)
            outs.append(data)
        assert outs[0] == outs[1] == [v + 1 for v in range(32)]

    def test_counters_match_across_backends_under_partial_policy(self):
        result = _compile("address-only")
        runs = [
            _run(result.kernel, backend)[0]
            for backend in ("scalar", "vector")
        ]
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("backend", ["scalar", "vector"])
    def test_unprotected_register_fault_is_silent(self, backend):
        # under policy none nothing is covered: a bit flip mid-run is
        # never detected (no ParityError; the run completes)
        from repro.gpusim.faults import FaultPlan

        result = _compile("none")
        assert result.kernel.meta["protected_registers"] == frozenset()
        mem = MemoryImage()
        buf = mem.alloc_global(32)
        mem.upload(buf, range(32))
        mem.set_param("A", buf)
        plan = FaultPlan(
            ctaid=0, tid=0, after_instructions=1, bits=(4,),
            reg_name="%y",
        )
        ex = make_executor(
            result.kernel,
            backend=backend,
            rf_code_factory=ParityCode,
            fault_plan=plan,
        )
        run = ex.run(Launch(grid=1, block=32), mem)
        data = mem.download(buf, 32)
        assert plan.injected
        assert run.detections == 0  # nothing covered, nothing detected
        assert data != [v + 1 for v in range(32)]  # silent corruption
