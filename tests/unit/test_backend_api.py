"""Unit tests for the backend-selectable execution API.

Covers :func:`repro.gpusim.make_executor` / :func:`resolve_backend`
(explicit names, ``auto`` resolution, the ``REPRO_SIM_BACKEND``
environment override, rejection of unknown names), the
:class:`ExecutorBackend` protocol, the :func:`repro.simulate` facade,
the ``backend`` field on :class:`ExecutionResult`, and the fault-plan
``HOOK_API`` version negotiation (declared version beats the signature
probe; legacy plans without either still work).
"""

import pytest

import repro
from repro.gpusim import (
    BACKEND_CHOICES,
    Executor,
    ExecutorBackend,
    MemoryImage,
    make_executor,
    resolve_backend,
)
from repro.gpusim.backend import BACKEND_ENV_VAR
from repro.gpusim.executor import Launch, _plan_takes_env
from repro.gpusim.faults import FaultPlan
from repro.gpusim.vexec import VectorExecutor
from repro.ir.builder import KernelBuilder


def _tiny_kernel():
    b = KernelBuilder("tiny", params=[("A", "ptr")])
    tid = b.special_u32("%tid.x")
    base = b.ld_param("A")
    addr = b.add(base, b.shl(tid, 2))
    v = b.ld("global", addr, dtype="u32")
    b.st("global", addr, b.add(v, 1))
    b.ret()
    return b.finish()


def _memory(n=32):
    mem = MemoryImage()
    buf = mem.alloc_global(n)
    mem.upload(buf, range(n))
    mem.set_param("A", buf)
    return mem, buf


# -- resolve_backend ---------------------------------------------------------


def test_resolve_explicit_names():
    assert resolve_backend("scalar") == "scalar"
    assert resolve_backend("vector") == "vector"


def test_resolve_auto_defaults_to_vector(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert resolve_backend("auto") == "vector"
    assert resolve_backend(None) == "vector"


def test_resolve_auto_honors_environment(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
    assert resolve_backend("auto") == "scalar"
    # explicit names ignore the environment
    assert resolve_backend("vector") == "vector"


def test_resolve_rejects_unknown():
    with pytest.raises(ValueError, match="unknown executor backend"):
        resolve_backend("cuda")


def test_backend_choices_cover_registry():
    assert set(BACKEND_CHOICES) == {"auto", "scalar", "vector"}


# -- make_executor -----------------------------------------------------------


def test_make_executor_classes():
    kernel = _tiny_kernel()
    assert isinstance(make_executor(kernel, backend="scalar"), Executor)
    assert isinstance(
        make_executor(kernel, backend="vector"), VectorExecutor
    )


def test_both_engines_satisfy_protocol():
    kernel = _tiny_kernel()
    for backend in ("scalar", "vector"):
        ex = make_executor(kernel, backend=backend)
        assert isinstance(ex, ExecutorBackend)
        assert ex.backend_name == backend


def test_execution_result_records_backend():
    kernel = _tiny_kernel()
    for backend in ("scalar", "vector"):
        mem, _ = _memory()
        result = make_executor(kernel, backend=backend).run(
            Launch(grid=1, block=32), mem
        )
        assert result.backend == backend
        assert result.to_dict()["backend"] == backend


def test_backend_excluded_from_equality():
    """The A/B contract compares results across engines; the provenance
    field must not defeat it."""
    kernel = _tiny_kernel()
    results = []
    for backend in ("scalar", "vector"):
        mem, _ = _memory()
        results.append(
            make_executor(kernel, backend=backend).run(
                Launch(grid=1, block=32), mem
            )
        )
    assert results[0] == results[1]


def test_executor_direct_construction_still_works():
    """The pre-redesign spelling stays available for downstream code."""
    kernel = _tiny_kernel()
    mem, buf = _memory()
    result = Executor(kernel).run(Launch(grid=1, block=32), mem)
    assert result.backend == "scalar"
    assert mem.download(buf, 32) == [v + 1 for v in range(32)]


# -- repro.simulate ----------------------------------------------------------


def test_simulate_facade_accepts_kernel_and_compile_result():
    kernel = _tiny_kernel()
    mem, buf = _memory()
    stats = repro.simulate(
        kernel, launch=Launch(grid=1, block=32), mem=mem
    )
    assert stats.instructions > 0
    assert mem.download(buf, 32) == [v + 1 for v in range(32)]

    compiled = repro.protect(_tiny_kernel())
    mem2, buf2 = _memory()
    stats2 = repro.simulate(
        compiled, launch=Launch(grid=1, block=32), mem=mem2
    )
    assert mem2.download(buf2, 32) == [v + 1 for v in range(32)]
    assert stats2.backend == resolve_backend("auto")


def test_simulate_fault_plan_recovers():
    compiled = repro.protect(_tiny_kernel())
    for backend in ("scalar", "vector"):
        mem, buf = _memory()
        plan = FaultPlan(ctaid=0, tid=3, after_instructions=4, bits=(13,))
        stats = repro.simulate(
            compiled,
            launch=Launch(grid=1, block=32),
            mem=mem,
            backend=backend,
            fault_plan=plan,
        )
        assert stats.detections == stats.recoveries == 1
        assert mem.download(buf, 32) == [v + 1 for v in range(32)]


# -- HOOK_API negotiation ----------------------------------------------------


def test_hook_api_version_beats_signature_probe():
    class Declared:
        HOOK_API = 2

        def after_instruction(self, thread, env):
            pass

    assert _plan_takes_env(Declared()) is True


def test_hook_api_future_versions_accepted():
    class Future:
        HOOK_API = 3

    assert _plan_takes_env(Future()) is True


def test_legacy_plan_probed_by_signature():
    class LegacyOneArg:
        def after_instruction(self, thread):
            pass

    class LegacyTwoArg:
        def after_instruction(self, thread, env):
            pass

    assert _plan_takes_env(LegacyOneArg()) is False
    assert _plan_takes_env(LegacyTwoArg()) is True


def test_unprobeable_plan_defaults_to_env():
    class Weird:
        # builtins have no inspectable signature on some platforms;
        # simulate that with a C-level callable
        after_instruction = len

    assert _plan_takes_env(Weird()) in (True, False)  # must not raise


def test_shipped_plans_declare_hook_api():
    from repro.gpusim import faults

    for cls in (
        faults.FaultPlan,
        faults.RateFaultPlan,
        faults.CheckpointFaultPlan,
        faults.RecoveryFaultPlan,
        faults.ComposedFaultPlan,
    ):
        assert getattr(cls, "HOOK_API", 0) >= 2
