"""Edge cases for checkpoint-overwrite hazard detection.

Two shapes the main checkpoint-pass tests do not cover: *back-to-back*
memory anti-dependences inside a single basic block (both cuts land
mid-block, splitting it twice), and a loop whose induction update sits on
the *header* block itself, so the loop-carried hazard is witnessed by a
boundary checkpoint instance in the latch.
"""

from repro.analysis import CFG, ReachingDefs
from repro.analysis.alias import AliasAnalysis
from repro.analysis.antidep import find_memory_antideps
from repro.core.bimodal import bimodal_plan
from repro.core.checkpoints import eager_plan
from repro.core.costmodel import CostModel
from repro.core.hazards import detect_hazards, materialize_instances
from repro.core.liveins import analyze_liveins
from repro.core.regions import form_regions
from repro.ir import KernelBuilder
from repro.ir.types import Reg


def back_to_back_kernel():
    """Two read-modify-write pairs on the same address in one block."""
    b = KernelBuilder("k", params=[("A", "ptr")])
    a = b.ld_param("A")
    v1 = b.ld("global", a, dtype="u32")
    w1 = b.mul(v1, 2)
    b.st("global", a, w1)
    v2 = b.ld("global", a, dtype="u32")
    w2 = b.mul(v2, 3)
    b.st("global", a, w2)
    b.ret()
    return b.finish()


def header_update_kernel():
    """In-place loop update with the induction increment on the header."""
    b = KernelBuilder("k", params=[("A", "ptr"), ("n", "u32")])
    a = b.ld_param("A")
    n = b.ld_param("n")
    i = b.mov(0, dst=b.reg("u32", "%i"))
    b.bra("HEAD")
    b.label("HEAD")
    b.add(i, 1, dst=i)
    p = b.setp("ge", i, n)
    b.bra("EXIT", pred=p)
    b.label("BODY")
    off = b.shl(i, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    v2 = b.mul(v, 2)
    b.st("global", addr, v2)
    b.bra("HEAD")
    b.label("EXIT")
    b.ret()
    return b.finish()


def _prepare(kernel):
    regions = form_regions(kernel)
    cfg = CFG(kernel)
    rdefs = ReachingDefs(cfg)
    liveins = analyze_liveins(kernel, regions, cfg=cfg, rdefs=rdefs)
    return regions, cfg, rdefs, liveins


class TestBackToBackAntideps:
    def test_both_pairs_found_in_one_block(self):
        k = back_to_back_kernel()
        cfg = CFG(k)
        deps = find_memory_antideps(cfg, AliasAnalysis(cfg))
        same_block = [
            d for d in deps if d.load_at[0] == d.store_at[0] == "ENTRY"
        ]
        # ld1->st1, ld1->st2 and ld2->st2 all live in ENTRY
        assert len(same_block) == 3
        assert {(d.load_at[1], d.store_at[1]) for d in same_block} >= {
            (1, 3),
            (4, 6),
        }

    def test_two_cuts_split_the_block_twice(self):
        k = back_to_back_kernel()
        regions, _, _, _ = _prepare(k)
        assert regions.num_cuts == 2
        assert len(regions.boundaries) == 3  # entry + one per cut

    def test_straight_line_rmw_chain_has_no_hazard(self):
        # Every checkpointed value is defined in the region *before* the
        # one where it is live-in, so no checkpoint can clobber a value
        # recovery still needs — for either planning mode.
        k = back_to_back_kernel()
        regions, cfg, _, liveins = _prepare(k)
        for plan in (
            eager_plan(liveins),
            bimodal_plan(cfg, liveins, CostModel.for_cfg(cfg)),
        ):
            instances = materialize_instances(plan, cfg)
            assert detect_hazards(cfg, regions, liveins, instances) == set()


class TestHeaderLoopHazard:
    def test_loop_carried_induction_on_header_is_hazardous(self):
        k = header_update_kernel()
        regions, cfg, _, liveins = _prepare(k)
        plan = bimodal_plan(cfg, liveins, CostModel.for_cfg(cfg))
        instances = materialize_instances(plan, cfg)
        hazardous = detect_hazards(cfg, regions, liveins, instances)
        assert Reg("%i") in hazardous

    def test_hazard_witness_is_a_boundary_instance_in_the_latch(self):
        k = header_update_kernel()
        regions, cfg, _, liveins = _prepare(k)
        plan = bimodal_plan(cfg, liveins, CostModel.for_cfg(cfg))
        instances = materialize_instances(plan, cfg)
        detect_hazards(cfg, regions, liveins, instances)
        witnesses = [
            x for x in instances if x.hazardous and x.reg == Reg("%i")
        ]
        assert witnesses
        # the increment lives on HEAD, so the clobbering store is the
        # block-bottom boundary checkpoint in the loop body (the latch)
        assert all(x.at_block_end for x in witnesses)
        assert {x.block for x in witnesses} == {"BODY"}

    def test_loop_invariant_bases_stay_safe(self):
        k = header_update_kernel()
        regions, cfg, _, liveins = _prepare(k)
        plan = bimodal_plan(cfg, liveins, CostModel.for_cfg(cfg))
        instances = materialize_instances(plan, cfg)
        hazardous = detect_hazards(cfg, regions, liveins, instances)
        # the array base and the bound are never redefined
        assert Reg("%v0") not in hazardous
        assert Reg("%v1") not in hazardous
