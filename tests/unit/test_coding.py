"""Block-code guarantees: detection, correction, and Table 1/2 accounting."""

import random

import pytest

from repro.coding import (
    BchCode,
    DectedCode,
    HammingCode,
    ParityCode,
    SecdedCode,
    TecqedCode,
)
from repro.coding.base import DecodeStatus, flip_bits, popcount
from repro.coding.hwcost import RegisterFileBankModel, hardware_cost_table
from repro.coding.schemes import (
    conventional_ecc_scheme,
    penny_scheme,
    storage_cost_table,
)

ALL_CODES = [
    ParityCode(32),
    HammingCode(32),
    SecdedCode(32),
    DectedCode(32),
    TecqedCode(32),
]

#: codes with distance >= 2t+2, which guarantee detect-not-miscorrect at t+1
EXTENDED = (SecdedCode, DectedCode, TecqedCode)


@pytest.fixture(params=ALL_CODES, ids=lambda c: type(c).__name__)
def code(request):
    return request.param


class TestRoundTrip:
    def test_encode_decode_clean(self, code):
        rng = random.Random(1)
        for _ in range(50):
            d = rng.getrandbits(32)
            cw = code.encode(d)
            assert code.extract_data(cw) == d
            assert not code.check(cw)
            r = code.decode(cw)
            assert r.status is DecodeStatus.CLEAN
            assert r.data == d

    def test_edge_data_words(self, code):
        for d in (0, 1, 0xFFFFFFFF, 0x80000000, 0x55555555):
            cw = code.encode(d)
            assert code.decode(cw).data == d

    def test_data_out_of_range_rejected(self, code):
        with pytest.raises(ValueError):
            code.encode(1 << 32)
        with pytest.raises(ValueError):
            code.encode(-1)

    def test_codeword_out_of_range_rejected(self, code):
        with pytest.raises(ValueError):
            code.check(1 << code.n)


class TestDetection:
    def test_detects_up_to_guarantee(self, code):
        rng = random.Random(2)
        for _ in range(60):
            d = rng.getrandbits(32)
            cw = code.encode(d)
            for nerr in range(1, code.guaranteed_detect + 1):
                bad = flip_bits(cw, rng.sample(range(code.n), nerr))
                assert code.check(bad), (
                    f"{type(code).__name__} missed a {nerr}-bit error"
                )

    def test_single_parity_misses_even_flips(self):
        # The known limitation Table 1 is about: parity cannot see 2 flips.
        code = ParityCode(32)
        cw = code.encode(0xDEADBEEF)
        bad = flip_bits(cw, [3, 17])
        assert not code.check(bad)


class TestCorrection:
    def test_corrects_up_to_guarantee(self, code):
        rng = random.Random(3)
        for _ in range(40):
            d = rng.getrandbits(32)
            cw = code.encode(d)
            for nerr in range(1, code.guaranteed_correct + 1):
                bad = flip_bits(cw, rng.sample(range(code.n), nerr))
                r = code.decode(bad)
                assert r.status is DecodeStatus.CORRECTED
                assert r.data == d

    def test_extended_codes_detect_t_plus_1(self, code):
        if not isinstance(code, EXTENDED):
            pytest.skip("only distance-2t+2 codes guarantee DUE at t+1")
        rng = random.Random(4)
        for _ in range(40):
            d = rng.getrandbits(32)
            cw = code.encode(d)
            bad = flip_bits(
                cw, rng.sample(range(code.n), code.guaranteed_correct + 1)
            )
            assert code.decode(bad).status is DecodeStatus.DETECTED

    def test_every_single_bit_position_correctable(self):
        for code in (HammingCode(32), SecdedCode(32), DectedCode(32)):
            cw = code.encode(0xCAFEBABE)
            for pos in range(code.n):
                r = code.decode(cw ^ (1 << pos))
                assert r.status is DecodeStatus.CORRECTED
                assert r.data == 0xCAFEBABE


class TestParameters:
    def test_parity_shape(self):
        c = ParityCode(32)
        assert (c.n, c.k, c.check_bits) == (33, 32, 1)

    def test_hamming_shape(self):
        c = HammingCode(32)
        assert (c.n, c.k, c.check_bits) == (38, 32, 6)

    def test_secded_shape(self):
        c = SecdedCode(32)
        assert (c.n, c.k, c.check_bits) == (39, 32, 7)

    def test_bch_t_bounds(self):
        with pytest.raises(ValueError):
            BchCode(k=32, t=0)
        with pytest.raises(ValueError):
            BchCode(k=60, t=2, m=6)  # exceeds shortened capacity

    def test_parity_even(self):
        c = ParityCode(8)
        assert popcount(c.encode(0b1011)) % 2 == 0


class TestSchemes:
    def test_table1_values(self):
        rows = storage_cost_table()
        assert [r["ecc_coding"] for r in rows] == ["SECDED", "DECTED", "TECQED"]
        assert [r["penny_coding"] for r in rows] == ["Parity", "Hamming", "SECDED"]
        assert abs(rows[0]["ecc_overhead"] - 0.219) < 0.001
        assert abs(rows[0]["penny_overhead"] - 0.031) < 0.001
        assert abs(rows[1]["ecc_overhead"] - 0.719) < 0.001
        assert abs(rows[2]["ecc_overhead"] - 0.875) < 0.001

    def test_penny_needs_strictly_fewer_bits(self):
        for bits in (1, 2, 3):
            ecc = conventional_ecc_scheme(bits)
            penny = penny_scheme(bits)
            assert penny.quoted_check_bits < ecc.quoted_check_bits

    def test_functional_code_matches_detection_goal(self):
        # Penny's code for b-bit errors must *detect* b bits.
        for bits in (1, 2, 3):
            code = penny_scheme(bits).build()
            assert code.guaranteed_detect >= bits

    def test_conventional_code_matches_correction_goal(self):
        for bits in (1, 2, 3):
            code = conventional_ecc_scheme(bits).build()
            assert code.guaranteed_correct >= bits

    def test_unknown_magnitude(self):
        with pytest.raises(ValueError):
            penny_scheme(4)


class TestHwCost:
    def test_baseline_matches_paper_synthesis(self):
        base = RegisterFileBankModel.BASELINE
        assert base.area_mm2 == pytest.approx(0.105)
        assert base.access_latency_ns == pytest.approx(1.01)
        assert base.access_energy_pj == pytest.approx(9.64)
        assert base.leakage_nw == pytest.approx(4.7)

    @pytest.mark.parametrize(
        "scheme,area,lat",
        [
            ("Parity", 0.031, 0.035),
            ("Hamming", 0.188, 0.218),
            ("SECDED", 0.219, 0.256),
            ("DECTED", 0.406, 0.492),
            ("TECQED", 0.875, 0.743),
        ],
    )
    def test_table2_overheads(self, scheme, area, lat):
        oh = RegisterFileBankModel().overhead(scheme)
        assert oh.area == pytest.approx(area, abs=0.002)
        assert oh.access_latency == pytest.approx(lat, abs=0.002)

    def test_energy_and_leakage_track_area(self):
        model = RegisterFileBankModel()
        for scheme in ("Parity", "SECDED", "TECQED"):
            oh = model.overhead(scheme)
            assert 0 < oh.access_energy < oh.area + 1e-9
            assert 0 < oh.leakage < oh.access_energy

    def test_table_rows(self):
        rows = hardware_cost_table()
        assert [r["ecc_coding"] for r in rows] == ["SECDED", "DECTED", "TECQED"]
        assert all(r["penny_area"] < r["ecc_area"] for r in rows)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            RegisterFileBankModel().cost("TripleModular")
