"""Unit tests for the protection-policy layer (:mod:`repro.policy`).

Covers the policy grammar (kinds, aliases, top-k parameters, per-region
overrides, the address-guard opt-out), the canonical string form that
config hashing depends on, the selection semantics
(``checkpoint_selection`` / ``protected_names``), and how the policy
threads through :class:`PennyConfig`, :class:`CompileResult` and
:class:`CampaignSpec`.
"""

import dataclasses

import pytest

from repro.core.errors import ConfigError
from repro.core.pipeline import (
    LaunchConfig,
    PennyCompiler,
    PennyConfig,
)
from repro.ir.parser import parse_kernel
from repro.policy import (
    KIND_ADDRESS,
    KIND_DETECTION,
    KIND_FULL,
    KIND_NONE,
    KIND_TOPK,
    PolicyError,
    ProtectionPolicy,
)

PTX = """
.entry k (.param .ptr A) {
ENTRY:
  ld.param.u32 %a, [A];
  mov.u32 %t, %tid.x;
  mul.u32 %o, %t, 4;
  add.u32 %p, %a, %o;
  ld.global.u32 %x, [%p];
  add.u32 %y, %x, 1;
  st.global.u32 [%p], %y;
  ret;
}
"""

LAUNCH = LaunchConfig(threads_per_block=32, num_blocks=1)


class TestParsing:
    def test_default_is_full(self):
        p = ProtectionPolicy.parse(None)
        assert p.kind == KIND_FULL and p.is_full

    def test_aliases(self):
        assert ProtectionPolicy.parse("penny").kind == KIND_FULL
        assert ProtectionPolicy.parse("addr").kind == KIND_ADDRESS
        assert ProtectionPolicy.parse("presage").kind == KIND_ADDRESS
        assert ProtectionPolicy.parse("topk").kind == KIND_TOPK
        assert ProtectionPolicy.parse("detect").kind == KIND_DETECTION
        assert ProtectionPolicy.parse("off").kind == KIND_NONE

    def test_topk_parameters(self):
        assert ProtectionPolicy.parse("top-k:4").top_k == 4.0
        assert ProtectionPolicy.parse("top-k:0.25").top_k == 0.25

    def test_canonical_string_round_trips(self):
        for text in (
            "full",
            "address-only",
            "top-k-vulnerable:0.5",
            "detection-only",
            "none",
            "address-only;L_1=none",
            "full;no-addr-guard",
        ):
            p = ProtectionPolicy.parse(text)
            assert ProtectionPolicy.parse(str(p)) == p

    def test_parse_is_idempotent_on_policy_objects(self):
        p = ProtectionPolicy.parse("address-only")
        assert ProtectionPolicy.parse(p) is p

    def test_overrides(self):
        p = ProtectionPolicy.parse("full;L_1=none;L_2=address-only")
        assert p.kind_at("L_1") == KIND_NONE
        assert p.kind_at("L_2") == KIND_ADDRESS
        assert p.kind_at("ENTRY") == KIND_FULL
        assert not p.is_full  # overrides make it non-uniform

    def test_rejects_garbage(self):
        for bad in (
            "frobnicate",
            "top-k:-1",
            "top-k:0",
            "top-k:1.5.2",
            "full:3",  # only top-k takes a parameter
            "L_1=top-k:2",  # top-k is not overridable per region
        ):
            with pytest.raises(PolicyError):
                ProtectionPolicy.parse(bad)

    def test_unprotected_predicate(self):
        assert ProtectionPolicy.parse("none").unprotected
        assert ProtectionPolicy.parse("detection-only").unprotected
        assert not ProtectionPolicy.parse("address-only").unprotected
        # a protected base with an unprotected override is NOT globally
        # unprotected
        assert not ProtectionPolicy.parse("full;L_1=none").unprotected


class TestSelection:
    def test_checkpoint_selection_full_keeps_all(self):
        p = ProtectionPolicy.parse("full")
        names = {"%a", "%b"}
        assert p.checkpoint_selection("L", names, None, None) == names

    def test_checkpoint_selection_address_intersects(self):
        p = ProtectionPolicy.parse("address-only")
        kept = p.checkpoint_selection(
            "L", {"%a", "%b"}, frozenset({"%a"}), None
        )
        assert kept == {"%a"}

    def test_checkpoint_selection_override_wins(self):
        p = ProtectionPolicy.parse("full;L_1=none")
        assert p.checkpoint_selection("L_1", {"%a"}, None, None) == set()
        assert p.checkpoint_selection("L_2", {"%a"}, None, None) == {"%a"}

    def test_protected_names_kinds(self):
        crit, top = frozenset({"%a"}), frozenset({"%b"})
        full = ProtectionPolicy.parse("full")
        assert full.protected_names(crit, top, set(), set()) is None
        det = ProtectionPolicy.parse("detection-only")
        assert det.protected_names(crit, top, set(), set()) is None
        none = ProtectionPolicy.parse("none")
        assert none.protected_names(crit, top, set(), set()) == frozenset()
        addr = ProtectionPolicy.parse("address-only")
        assert addr.protected_names(crit, top, set(), set()) == crit

    def test_protected_names_unions_reserved_and_restores(self):
        addr = ProtectionPolicy.parse("address-only")
        out = addr.protected_names(
            frozenset({"%a"}), None, {"%ckb_s"}, {"%v1"}
        )
        assert out == frozenset({"%a", "%ckb_s", "%v1"})


class TestConfigThreading:
    def test_config_normalizes_policy(self):
        config = PennyConfig(policy="addr")
        assert config.policy == "address-only"

    def test_config_rejects_bad_policy(self):
        with pytest.raises(ConfigError):
            PennyConfig(policy="frobnicate")

    def test_to_dict_canonicalizes_post_construction_assignment(self):
        config = PennyConfig()
        config.policy = "topk:2"  # raw alias, assigned after init
        assert config.to_dict()["policy"] == "top-k-vulnerable:2"

    def test_compile_result_reports_policy(self):
        config = PennyConfig(policy="address-only")
        result = PennyCompiler(config).compile(parse_kernel(PTX), LAUNCH)
        assert result.to_dict()["policy"] == "address-only"
        assert result.stats["protection_policy"] == "address-only"

    def test_unprotected_policies_skip_checkpointing(self):
        for policy in ("none", "detection-only"):
            config = PennyConfig(policy=policy)
            result = PennyCompiler(config).compile(
                parse_kernel(PTX), LAUNCH
            )
            assert result.stats["emitted_checkpoints"] == 0.0
            assert not result.regions.boundaries
            assert result.kernel.meta["protection_policy"] == policy

    def test_none_policy_exposes_empty_protected_set(self):
        result = PennyCompiler(PennyConfig(policy="none")).compile(
            parse_kernel(PTX), LAUNCH
        )
        assert result.kernel.meta["protected_registers"] == frozenset()

    def test_detection_only_leaves_every_register_covered(self):
        result = PennyCompiler(
            PennyConfig(policy="detection-only")
        ).compile(parse_kernel(PTX), LAUNCH)
        # absent key = the register file covers everything
        assert "protected_registers" not in result.kernel.meta

    def test_address_only_protects_a_subset(self):
        result = PennyCompiler(
            PennyConfig(policy="address-only")
        ).compile(parse_kernel(PTX), LAUNCH)
        protected = result.kernel.meta["protected_registers"]
        assert protected is not None
        # the address chain is in; the loaded data value is not
        assert "%p" in protected
        assert "%y" not in protected


class TestCampaignSpec:
    def test_spec_normalizes_policy(self):
        from repro.gpusim.campaign import CampaignSpec

        spec = CampaignSpec(
            benchmark="STC", scheme="Penny", num_injections=1,
            policy="addr",
        )
        assert spec.policy == "address-only"

    def test_spec_rejects_bad_policy(self):
        from repro.gpusim.campaign import CampaignSpec

        with pytest.raises(PolicyError):
            CampaignSpec(
                benchmark="STC", scheme="Penny", num_injections=1,
                policy="frobnicate",
            )

    def test_spec_round_trips_and_defaults_old_journals(self):
        from repro.gpusim.campaign import CampaignSpec

        spec = CampaignSpec(
            benchmark="STC", scheme="Penny", num_injections=1,
            policy="address-only",
        )
        d = spec.to_dict()
        assert d["policy"] == "address-only"
        assert CampaignSpec.from_dict(d) == spec
        # journals written before the policy field default to full
        d.pop("policy")
        assert CampaignSpec.from_dict(d).policy == "full"
