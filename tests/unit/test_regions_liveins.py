"""Region formation and live-in / LUP analysis."""

import pytest

from repro.analysis import CFG, AliasAnalysis
from repro.core.liveins import analyze_liveins
from repro.core.regions import form_regions
from repro.ir import Bar, KernelBuilder
from repro.ir.types import Reg


def antidep_kernel():
    """ld A[tid]; st A[tid] — must be cut between load and store."""
    b = KernelBuilder("k", params=[("A", "ptr")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    off = b.shl(tid, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    v2 = b.mul(v, 2)
    b.st("global", addr, v2)
    b.ret()
    return b.finish()


def barrier_kernel():
    b = KernelBuilder("k", params=[("A", "ptr")], shared=[("s", 32)])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    sbase = b.addr_of("s")
    off = b.shl(tid, 2)
    v = b.ld("global", b.add(a, off), dtype="u32")
    b.st("shared", b.add(sbase, off), v)
    b.bar()
    w = b.ld("shared", sbase, dtype="u32")
    b.st("global", b.add(a, off), w)
    b.ret()
    return b.finish()


class TestRegionFormation:
    def test_antidep_gets_cut(self):
        k = antidep_kernel()
        info = form_regions(k)
        # entry is always a boundary + one cut before the store
        assert len(info.boundaries) == 2
        assert info.num_cuts >= 1
        k.validate()

    def test_cut_separates_load_from_store(self):
        k = antidep_kernel()
        info = form_regions(k)
        cfg = CFG(k)
        non_entry = next(b for b in info.boundaries if b != cfg.entry)
        boundary_block = cfg.block(non_entry)
        # the store must be at or after the boundary
        assert any(
            inst.is_memory_write for inst in boundary_block.instructions
        )
        # the load must be strictly before it
        entry_insts = cfg.block(cfg.entry).instructions
        assert any(
            inst.is_memory_read and not inst.space.read_only
            for inst in entry_insts
        )

    def test_barriers_are_boundaries(self):
        k = barrier_kernel()
        info = form_regions(k)
        cfg = CFG(k)
        # the bar.sync must start its own region: a boundary block whose
        # first instruction is the barrier, and another boundary after it
        bar_blocks = [
            blk.label
            for blk in cfg.blocks
            if blk.instructions and isinstance(blk.instructions[0], Bar)
        ]
        assert bar_blocks
        assert set(bar_blocks) <= info.boundaries

    def test_no_region_reexecutes_a_barrier(self):
        """A region containing a barrier would deadlock on re-execution:
        verify every barrier is immediately followed by a boundary."""
        k = barrier_kernel()
        info = form_regions(k)
        cfg = CFG(k)
        for blk in cfg.blocks:
            for i, inst in enumerate(blk.instructions):
                if isinstance(inst, Bar):
                    if i + 1 < len(blk.instructions):
                        pytest.fail("barrier not at end of its block")
                    for succ in cfg.successors(blk.label):
                        assert succ in info.boundaries

    def test_entries_of_tracks_paths(self):
        k = antidep_kernel()
        info = form_regions(k)
        cfg = CFG(k)
        assert info.region_entry_candidates(cfg.entry) == {cfg.entry}
        non_entry = next(b for b in info.boundaries if b != cfg.entry)
        assert info.region_entry_candidates(non_entry) == {non_entry}

    def test_idempotent_when_no_antideps(self):
        b = KernelBuilder("pure", params=[("A", "ptr"), ("B", "ptr")])
        a = b.ld_param("A")
        bb = b.ld_param("B")
        v = b.ld("global", a, dtype="u32")
        b.st("global", bb, v, offset=4)
        b.ret()
        k = b.finish()
        cfg = CFG(k)
        aa = AliasAnalysis(cfg, param_noalias=True)
        info = form_regions(k, aa)
        assert info.boundaries == {"ENTRY"}
        assert info.num_cuts == 0


class TestLiveins:
    def test_region_live_ins(self):
        k = antidep_kernel()
        info = form_regions(k)
        cfg = CFG(k)
        liveins = analyze_liveins(k, info)
        non_entry = next(b for b in info.boundaries if b != cfg.entry)
        binfo = liveins.boundaries[non_entry]
        # the store needs the address and the value
        names = {r.name for r in binfo.live_ins}
        assert len(names) >= 2

    def test_entry_has_no_live_ins(self):
        k = antidep_kernel()
        info = form_regions(k)
        liveins = analyze_liveins(k, info)
        assert liveins.boundaries["ENTRY"].live_ins == set()

    def test_lups_reach_their_boundary(self):
        k = antidep_kernel()
        info = form_regions(k)
        cfg = CFG(k)
        liveins = analyze_liveins(k, info)
        for label, binfo in liveins.boundaries.items():
            for reg, lups in binfo.lups.items():
                for lup in lups:
                    inst = cfg.block(lup.label).instructions[lup.index]
                    assert reg in inst.defs()

    def test_multiple_lups_on_divergent_paths(self):
        b = KernelBuilder("k", params=[("A", "ptr"), ("n", "u32")])
        tid = b.special_u32("%tid.x")
        a = b.ld_param("A")
        n = b.ld_param("n")
        x = b.reg("u32", "%x")
        p = b.setp("lt", tid, n)
        b.bra("T", pred=p)
        b.mov(2, dst=x)
        b.bra("J")
        b.label("T")
        b.mov(1, dst=x)
        b.label("J")
        off = b.shl(tid, 2)
        addr = b.add(a, off)
        v = b.ld("global", addr, dtype="u32")
        s = b.add(v, x)
        b.st("global", addr, s)
        # keep %x live past the anti-dependence cut so it is a region
        # live-in with one LUP per branch arm (Figure 2 of the paper)
        s2 = b.add(x, 1)
        b.st("global", addr, s2, offset=1024)
        b.ret()
        k = b.finish()
        info = form_regions(k)
        liveins = analyze_liveins(k, info)
        x_edges = liveins.edges.get(Reg("%x"), set())
        lups = {lup for lup, _ in x_edges}
        assert len(lups) == 2  # one per arm (Figure 2 of the paper)

    def test_checkpointed_registers(self):
        k = antidep_kernel()
        info = form_regions(k)
        liveins = analyze_liveins(k, info)
        assert liveins.checkpointed_registers() == set(liveins.edges)
