"""The experiment harness's measurement plumbing."""

import math

import pytest

from repro.bench import get_benchmark
from repro.experiments.harness import (
    SCHEMES_FIG9,
    format_overhead_table,
    geometric_mean,
    measure_baseline,
    measure_scheme,
    normalized_overheads,
)
from repro.gpusim.config import FERMI_C2050, VOLTA_TITAN_V


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)
        assert geometric_mean([1.0, 1.0, 8.0]) == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))

    def test_insensitive_to_order(self):
        a = geometric_mean([1.2, 3.4, 0.9])
        b = geometric_mean([0.9, 1.2, 3.4])
        assert a == pytest.approx(b)


class TestMeasurements:
    def test_baseline_deterministic(self):
        bench = get_benchmark("CS")
        m1 = measure_baseline(bench)
        m2 = measure_baseline(bench)
        assert m1.cycles == m2.cycles

    def test_schemes_are_at_least_baseline(self):
        bench = get_benchmark("CS")
        base = measure_baseline(bench)
        for scheme in SCHEMES_FIG9:
            m = measure_scheme(bench, scheme, baseline_cycles=base.cycles)
            assert m.normalized >= 1.0 - 1e-9, scheme

    def test_gpu_config_changes_absolute_cycles(self):
        bench = get_benchmark("SGEMM")
        fermi = measure_baseline(bench, FERMI_C2050)
        volta = measure_baseline(bench, VOLTA_TITAN_V)
        assert fermi.cycles != volta.cycles

    def test_matrix_includes_gmean(self):
        table = normalized_overheads(
            [get_benchmark("BS")], ["Penny", "Bolt/Global"]
        )
        for scheme in table:
            assert "gmean" in table[scheme]
            assert "BS" in table[scheme]

    def test_timing_report_carried(self):
        m = measure_baseline(get_benchmark("SGEMM"))
        assert m.timing.occupancy.warps_per_sm > 0
        assert m.timing.bound in ("issue", "lsu", "latency")


class TestFormatting:
    def test_table_alignment(self):
        table = {
            "A": {"X": 1.0, "YLONGNAME": 2.345, "gmean": 1.5},
            "B": {"X": 1.1, "YLONGNAME": 0.9, "gmean": 1.0},
        }
        text = format_overhead_table(table, "title")
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "gmean" in lines[-1]
        # every scheme column appears in the header
        assert "A" in lines[2] and "B" in lines[2]
