"""The fallback lattice: degrade instead of dying, verify before return.

Pass failures are forced by monkeypatching pipeline passes; each test
asserts three things the robustness contract promises: (1) strict mode
raises the typed error, (2) non-strict mode returns a *verified* result,
(3) the degradation path is recorded in ``CompileResult.stats``.
"""

import pytest

from repro.core import pipeline as pl
from repro.core.errors import (
    FallbackExhaustedError,
    PruningError,
    RenamingError,
    StorageError,
)
from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.core.storage import StorageBudget
from repro.core.verify import verify_compiled
from repro.ir import KernelBuilder

LAUNCH = LaunchConfig(threads_per_block=32, num_blocks=1)


def hazard_kernel():
    """A kernel with a real overwrite hazard: a loop-carried accumulator
    overwritten after an in-loop region boundary, which forces the rr
    scheme through ``apply_renaming``."""
    b = KernelBuilder("hz", params=[("A", "ptr")])
    a = b.ld_param("A")
    acc = b.ld("global", a, dtype="u32")
    i = b.mov(0, dst=b.reg("u32"))
    b.label("H")
    p = b.setp("ge", i, 3)
    b.bra("X", pred=p)
    b.st("global", a, acc)  # boundary inside the loop
    b.add(acc, 1, dst=acc)  # overwrites a live-in of its own region
    b.add(i, 1, dst=i)
    b.bra("H")
    b.label("X")
    b.st("global", a, acc, offset=4)
    b.ret()
    return b.finish()


def _fail_pruning(*args, **kwargs):
    raise PruningError("forced pruning failure (test)")


def _fail_renaming(*args, **kwargs):
    raise RenamingError("forced renaming failure (test)", scheme="rr")


class TestDegradation:
    def test_pruning_failure_degrades(self, monkeypatch):
        monkeypatch.setattr(pl, "prune_optimal", _fail_pruning)
        cfg = PennyConfig(pruning="optimal")

        with pytest.raises(PruningError):
            PennyCompiler(cfg, strict=True).compile(hazard_kernel(), LAUNCH)

        result = PennyCompiler(cfg, strict=False).compile(
            hazard_kernel(), LAUNCH
        )
        stats = result.stats
        assert stats["degraded"] == 1.0
        assert stats["fallback_level"] >= 1.0
        assert stats["fallback_path"].startswith("as-configured->")
        assert "PruningError" in stats["fallback_errors"]
        assert stats["verified"] == 1.0
        assert verify_compiled(result.kernel) == []

    def test_renaming_failure_falls_back_to_sa(self, monkeypatch):
        monkeypatch.setattr(pl, "apply_renaming", _fail_renaming)
        cfg = PennyConfig(overwrite="rr")

        with pytest.raises(RenamingError):
            PennyCompiler(cfg, strict=True).compile(hazard_kernel(), LAUNCH)

        result = PennyCompiler(cfg, strict=False).compile(
            hazard_kernel(), LAUNCH
        )
        # SA does not rename, so the patched pass is never reached
        assert result.stats["fallback_path"] == "as-configured->sa"
        assert result.stats["overwrite_scheme"] == "sa"
        assert verify_compiled(result.kernel) == []

    def test_shared_capacity_degrades_to_global(self):
        # no monkeypatching: a real failure mode — shared storage cannot
        # fit, the terminal rung switches to global storage
        budget = StorageBudget(shared_per_sm=8)
        cfg = PennyConfig(storage_mode="shared")

        with pytest.raises(StorageError):
            PennyCompiler(cfg, budget=budget, strict=True).compile(
                hazard_kernel(), LAUNCH
            )

        result = PennyCompiler(cfg, budget=budget, strict=False).compile(
            hazard_kernel(), LAUNCH
        )
        assert result.stats["fallback_path"].endswith("boundary-global")
        storage = result.kernel.meta["storage_assignment"]
        assert storage.shared_slots == 0
        assert verify_compiled(result.kernel) == []

    def test_no_degradation_when_healthy(self):
        result = PennyCompiler(PennyConfig(), strict=False).compile(
            hazard_kernel(), LAUNCH
        )
        assert result.stats["degraded"] == 0.0
        assert result.stats["fallback_level"] == 0.0
        assert result.stats["fallback_path"] == "as-configured"
        assert "fallback_errors" not in result.stats
        assert result.stats["verified"] == 1.0


class TestExhaustion:
    def test_all_rungs_fail(self, monkeypatch):
        def explode(*args, **kwargs):
            raise StorageError("forced storage failure (test)")

        monkeypatch.setattr(pl, "assign_storage", explode)
        cfg = PennyConfig()
        with pytest.raises(FallbackExhaustedError) as ei:
            PennyCompiler(cfg, strict=False).compile(
                hazard_kernel(), LAUNCH
            )
        err = ei.value
        # one cause per attempted rung, terminal cause typed
        assert len(err.causes) == len(
            PennyCompiler(cfg).fallback_lattice()
        )
        assert isinstance(err.terminal_cause, StorageError)
        assert err.kernel_name == "hz"

    def test_unprotected_config_never_gains_protection(self):
        cfg = PennyConfig(overwrite="none")
        compiler = PennyCompiler(cfg, strict=False)
        for _, rung_cfg in compiler.fallback_lattice():
            assert rung_cfg.overwrite == "none"


class TestLatticeShape:
    def test_rungs_deduplicated(self):
        # the terminal rung config equals eager-noprune for a config that
        # already uses global storage without low-opts
        cfg = PennyConfig(
            placement="eager",
            pruning="none",
            storage_mode="global",
            low_opts=False,
            overwrite="sa",
        )
        lattice = PennyCompiler(cfg).fallback_lattice()
        names = [name for name, _ in lattice]
        assert names == ["as-configured"]

    def test_full_lattice_for_default_config(self):
        lattice = PennyCompiler(PennyConfig()).fallback_lattice()
        names = [name for name, _ in lattice]
        assert names == [
            "as-configured",
            "sa",
            "eager-noprune",
            "boundary-global",
        ]
