"""The command-line front end."""

import json

import pytest

from repro.cli import main

PTX = """
.entry axpy (.param .ptr A, .param .u32 n) {
ENTRY:
  mov.u32 %tid, %tid.x;
  ld.param.u32 %a, [A];
  ld.param.u32 %n, [n];
  mov.u32 %i, %tid;
HEAD:
  setp.ge.u32 %p1, %i, %n;
  @%p1 bra EXIT;
BODY:
  shl.u32 %off, %i, 2;
  add.u32 %addr, %a, %off;
  ld.global.u32 %v, [%addr];
  mad.u32 %v2, %v, 3, 7;
  st.global.u32 [%addr], %v2;
  add.u32 %i, %i, 32;
  bra HEAD;
EXIT:
  ret;
}
"""


@pytest.fixture
def ptx_file(tmp_path):
    path = tmp_path / "axpy.ptx"
    path.write_text(PTX)
    return str(path)


def test_schemes_listing(capsys):
    assert main(["schemes"]) == 0
    out = capsys.readouterr().out
    assert "Penny" in out and "Bolt/Global" in out


def test_compile_prints_protected_ptx(ptx_file, capsys):
    assert main(["compile", ptx_file, "--block", "32", "--grid", "2"]) == 0
    out = capsys.readouterr().out
    assert ".entry axpy" in out
    assert "__ckpt" in out  # checkpoint storage appeared
    assert "// checkpoints_total" in out


def test_compile_respects_overrides(ptx_file, capsys):
    assert (
        main(
            [
                "compile", ptx_file, "--pruning", "none",
                "--storage", "global", "--overwrite", "sa",
                "--no-low-opts", "--block", "32", "--grid", "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "st.global" in out
    assert "__ckpt_shared" not in out


def test_report_emits_json(ptx_file, capsys):
    assert main(["report", ptx_file, "--block", "32", "--grid", "2"]) == 0
    reports = json.loads(capsys.readouterr().out)
    assert reports[0]["kernel"] == "axpy"
    assert "checkpoints_total" in reports[0]["stats"]
    assert reports[0]["boundaries"]


def test_policy_flag_threads_into_report(ptx_file, capsys):
    assert (
        main(
            [
                "report", ptx_file, "--block", "32", "--grid", "2",
                "--policy", "addr",
            ]
        )
        == 0
    )
    reports = json.loads(capsys.readouterr().out)
    assert reports[0]["policy"] == "address-only"  # alias canonicalized
    assert reports[0]["stats"]["protection_policy"] == "address-only"


def test_policy_flag_rejects_garbage(ptx_file):
    with pytest.raises(SystemExit, match="invalid --policy"):
        main(["compile", ptx_file, "--policy", "frobnicate"])


def test_param_noalias_flag(ptx_file, capsys):
    assert (
        main(
            [
                "report", ptx_file, "--param-noalias",
                "--block", "32", "--grid", "2",
            ]
        )
        == 0
    )
    json.loads(capsys.readouterr().out)


def test_stdin_input(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO(PTX))
    assert main(["compile", "-", "--block", "32", "--grid", "2"]) == 0
    assert ".entry axpy" in capsys.readouterr().out


def test_verify_subcommand(ptx_file, capsys):
    assert main(["verify", ptx_file, "--block", "32", "--grid", "2"]) == 0
    assert "verified clean" in capsys.readouterr().out
