"""Campaign-engine primitives: seeding, Wilson intervals, specs, records,
report merging and journal parsing — everything that must hold before the
integration campaigns mean anything."""

import json

import pytest

from repro.gpusim.campaign import (
    CampaignReport,
    CampaignSpec,
    InjectionRecord,
    load_journal,
    stable_seed,
    wilson_interval,
)
from repro.gpusim.faults import (
    DueType,
    classify_due,
)
from repro.gpusim.executor import (
    SimulationError,
    UnrecoverableError,
    WatchdogTimeout,
)
from repro.gpusim.memory import EccUncorrectableError, MemoryError32


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed(2020, 7) == stable_seed(2020, 7)

    def test_index_and_seed_sensitive(self):
        seeds = {stable_seed(2020, i) for i in range(100)}
        seeds |= {stable_seed(2021, i) for i in range(100)}
        assert len(seeds) == 200

    def test_fits_in_63_bits(self):
        assert 0 <= stable_seed(0, 0) < 1 << 63


class TestWilson:
    def test_zero_trials(self):
        assert wilson_interval(0, 0) == (0.0, 0.0, 1.0)

    def test_contains_point_estimate(self):
        for k, n in [(0, 50), (3, 50), (50, 50), (1, 1)]:
            p, lo, hi = wilson_interval(k, n)
            assert 0.0 <= lo <= p <= hi <= 1.0

    def test_zero_successes_upper_bound_shrinks_with_n(self):
        _, _, hi_small = wilson_interval(0, 40)
        _, _, hi_big = wilson_interval(0, 400)
        assert hi_big < hi_small < 0.15

    def test_symmetry(self):
        _, lo_a, hi_a = wilson_interval(10, 40)
        _, lo_b, hi_b = wilson_interval(30, 40)
        assert lo_a == pytest.approx(1 - hi_b)
        assert hi_a == pytest.approx(1 - lo_b)


class TestCampaignSpec:
    def test_roundtrip(self):
        spec = CampaignSpec(
            benchmark="STC",
            surfaces=("rf", "ckpt"),
            ckpt_bits=(1, 2, 3),
            num_injections=7,
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        # dict form is JSON-safe (journal header, worker initargs)
        json.dumps(spec.to_dict())

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(benchmark="STC", surfaces=("bogus",))
        with pytest.raises(ValueError):
            CampaignSpec(benchmark="STC", surfaces=())
        with pytest.raises(ValueError):
            CampaignSpec(benchmark="STC", pattern="diagonal")
        with pytest.raises(ValueError):
            CampaignSpec(benchmark="STC", rf_code="crc")
        with pytest.raises(ValueError):
            CampaignSpec(benchmark="STC", num_injections=-1)


class TestClassifyDue:
    def test_tagged_unrecoverable(self):
        for cause in DueType:
            exc = UnrecoverableError("x", cause=cause.value)
            assert classify_due(exc) is cause

    def test_watchdog(self):
        assert (
            classify_due(WatchdogTimeout("budget"))
            is DueType.WATCHDOG_TIMEOUT
        )

    def test_memory(self):
        assert (
            classify_due(EccUncorrectableError("global", 64))
            is DueType.MEMORY_EXCEPTION
        )
        assert (
            classify_due(MemoryError32("unaligned"))
            is DueType.MEMORY_EXCEPTION
        )

    def test_generic_simulation_error_is_watchdog_territory(self):
        assert (
            classify_due(SimulationError("deadlock in block 0"))
            is DueType.WATCHDOG_TIMEOUT
        )

    def test_unclassifiable_raises(self):
        with pytest.raises(TypeError):
            classify_due(KeyError("nope"))


def _rec(index, outcome="masked", cause=None, surface="rf"):
    return InjectionRecord(
        index=index, surface=surface, outcome=outcome, due_cause=cause
    )


class TestReport:
    def test_record_json_roundtrip(self):
        rec = _rec(3, "due", "budget_exhausted")
        assert InjectionRecord.from_json(rec.to_json()) == rec

    def test_summary_and_taxonomy(self):
        report = CampaignReport(
            records=[
                _rec(0),
                _rec(1, "recovered"),
                _rec(2, "due", "no_runtime"),
                _rec(3, "due", "memory_exception"),
                _rec(4, "due", "memory_exception"),
            ]
        )
        assert report.summary()["due"] == 3
        assert report.due_taxonomy() == {
            "no_runtime": 1,
            "memory_exception": 2,
        }

    def test_rates_exclude_not_injected(self):
        report = CampaignReport(
            records=[_rec(0), _rec(1, "not_injected"), _rec(2, "sdc")]
        )
        assert report.injected_runs == 2
        p, lo, hi = report.rates()["sdc"]
        assert p == 0.5

    def test_merge_dedupes_by_index_and_sorts(self):
        shard_a = CampaignReport(records=[_rec(2), _rec(0)])
        shard_b = CampaignReport(records=[_rec(1), _rec(2, "recovered")])
        merged = CampaignReport.merge([shard_a, shard_b])
        assert [r.index for r in merged.records] == [0, 1, 2]
        # first occurrence wins (identical seeds → identical records)
        assert merged.records[2].outcome == "masked"


class TestJournal:
    def test_load_skips_corrupt_and_torn_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [
            json.dumps({"spec": {"benchmark": "STC"}, "version": 1}),
            _rec(0).to_json(),
            "not json at all {{",
            _rec(1, "recovered").to_json(),
            '{"index": 2, "outco',  # torn tail from a kill
        ]
        path.write_text("\n".join(lines))
        header, records = load_journal(str(path))
        assert header["spec"]["benchmark"] == "STC"
        assert sorted(records) == [0, 1]
        assert records[1].outcome == "recovered"

    def test_load_missing_file(self, tmp_path):
        header, records = load_journal(str(tmp_path / "absent.jsonl"))
        assert header is None and records == {}
