"""The chaos harness itself: plan parsing, deterministic seeding, rule
knobs, and the no-chaos discipline (an uninstalled engine costs one
context-var read and changes nothing).
"""

import json
import pickle
import time

import pytest

from repro.core.pipeline import PennyConfig
from repro.serve.cache import CompileCache
from repro.serve.chaos import (
    DEFAULT_HANG_SECONDS,
    KINDS,
    SITE_CACHE_READ,
    SITE_CACHE_STORE,
    SITE_WORKER_JOB,
    ChaosEngine,
    ChaosPlan,
    ChaosRule,
    active_chaos,
)
from repro.serve.key import CacheKey

# -- plan construction ------------------------------------------------------------


def test_parse_compact_spec():
    plan = ChaosPlan.parse(
        "worker.kill:p=0.25:max=3,cache.corrupt:p=0.5,"
        "worker.hang:delay=2:after=10",
        seed=7,
    )
    assert plan.seed == 7
    assert [r.kind for r in plan.rules] == [
        "worker.kill",
        "cache.corrupt",
        "worker.hang",
    ]
    kill, corrupt, hang = plan.rules
    assert kill.probability == 0.25 and kill.max_injections == 3
    assert corrupt.probability == 0.5 and corrupt.max_injections is None
    assert hang.delay_s == 2.0 and hang.after == 10


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        ChaosPlan.parse("worker.explode")
    with pytest.raises(ValueError):
        ChaosPlan.parse("worker.kill:p")
    with pytest.raises(ValueError):
        ChaosPlan.parse("worker.kill:frequency=2")
    with pytest.raises(ValueError):
        ChaosPlan.parse("")
    with pytest.raises(ValueError):
        ChaosRule(kind="worker.kill", probability=1.5)
    with pytest.raises(ValueError):
        ChaosRule(kind="worker.kill", after=-1)


def test_plan_round_trips_through_dict_and_file(tmp_path):
    plan = ChaosPlan.parse("worker.kill:p=0.2:max=5,conn.drop:p=0.1", seed=11)
    assert ChaosPlan.from_dict(plan.to_dict()) == plan
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_dict()))
    assert ChaosPlan.parse(f"@{path}") == plan


def test_every_kind_maps_to_a_site():
    for kind, site in KINDS.items():
        rule = ChaosRule(kind=kind)
        assert rule.site == site
        # The action is the last dotted component (three-part campaign
        # kinds included), and only stall-shaped actions default to a
        # nonzero delay.
        assert rule.action == kind.rsplit(".", 1)[1]
        if rule.action in ("hang", "slow_store", "slow_read"):
            assert rule.delay_s == DEFAULT_HANG_SECONDS
        else:
            assert rule.delay_s == 0.0


# -- determinism ------------------------------------------------------------------


def _decision_trace(plan, visits=200):
    engine = ChaosEngine(plan)
    trace = []
    for i in range(visits):
        rule = engine.decide(SITE_WORKER_JOB, visit=i)
        trace.append(rule.kind if rule else None)
    return trace, engine


def test_same_seed_same_fault_sequence():
    plan = ChaosPlan.parse("worker.kill:p=0.3,worker.hang:p=0.2", seed=42)
    trace_a, engine_a = _decision_trace(plan)
    trace_b, engine_b = _decision_trace(plan)
    assert trace_a == trace_b
    assert any(trace_a), "a p=0.3 rule over 200 visits must fire"
    assert engine_a.injected_counts() == engine_b.injected_counts()
    assert [e.to_dict() for e in engine_a.injected] == [
        e.to_dict() for e in engine_b.injected
    ]


def test_different_seed_different_sequence():
    spec = "worker.kill:p=0.3,worker.hang:p=0.2"
    trace_a, _ = _decision_trace(ChaosPlan.parse(spec, seed=1))
    trace_b, _ = _decision_trace(ChaosPlan.parse(spec, seed=2))
    assert trace_a != trace_b


def test_rule_sequence_is_independent_of_other_rules():
    """Whether a rule fires on visit N depends only on its own seed and
    N — adding another rule to the plan must not shift its draws."""
    alone, _ = _decision_trace(
        ChaosPlan.parse("worker.hang:p=0.3", seed=9)
    )
    # worker.kill first in plan order: it *masks* hang where both fire,
    # but hang's own draw sequence is unchanged — compare where kill
    # did not fire.
    paired, _ = _decision_trace(
        ChaosPlan.parse("worker.kill:p=0.0,worker.hang:p=0.3", seed=9)
    )
    assert paired == alone


def test_budget_after_and_probability_knobs():
    # p=1, max=2: exactly the first two visits fire.
    plan = ChaosPlan.parse("worker.kill:p=1.0:max=2", seed=0)
    trace, engine = _decision_trace(plan, visits=10)
    assert trace == ["worker.kill"] * 2 + [None] * 8
    assert engine.injected_counts() == {"worker.kill": 2}

    # after=3: warm-up visits never fire.
    plan = ChaosPlan.parse("worker.kill:p=1.0:after=3:max=1", seed=0)
    trace, _ = _decision_trace(plan, visits=6)
    assert trace == [None] * 3 + ["worker.kill"] + [None] * 2

    # p=0 never fires.
    plan = ChaosPlan.parse("worker.kill:p=0.0", seed=0)
    trace, engine = _decision_trace(plan, visits=50)
    assert trace == [None] * 50
    assert engine.injected_counts() == {}


def test_sites_count_independently():
    plan = ChaosPlan.parse("worker.kill:p=1.0:max=1,cache.corrupt:p=1.0:max=1")
    engine = ChaosEngine(plan)
    assert engine.decide(SITE_WORKER_JOB).kind == "worker.kill"
    assert engine.decide(SITE_CACHE_READ).kind == "cache.corrupt"
    report = engine.report()
    assert report["site_visits"] == {"worker.job": 1, "cache.read": 1}
    assert report["injections"] == 2
    assert [e["site"] for e in report["events"]] == [
        "worker.job",
        "cache.read",
    ]


# -- installation discipline ------------------------------------------------------


def test_context_var_install_and_nesting():
    assert active_chaos() is None
    plan = ChaosPlan.parse("worker.kill:p=1.0")
    with ChaosEngine(plan) as outer:
        assert active_chaos() is outer
        with ChaosEngine(plan) as inner:
            assert active_chaos() is inner
        assert active_chaos() is outer
    assert active_chaos() is None


def _fresh_key(tag: str) -> CacheKey:
    return CacheKey(
        ptx_sha=f"ptx-{tag}", config_sha=f"cfg-{tag}", code_sha="code"
    )


def test_no_chaos_run_is_byte_identical(tmp_path):
    """Without an installed engine the cache's behavior and on-disk
    bytes are exactly the plain run's."""
    payloads = {f"k{i}": {"value": i, "blob": "x" * 50} for i in range(8)}

    def drive(directory):
        cache = CompileCache(directory=str(directory))
        for tag, value in payloads.items():
            cache.put(_fresh_key(tag), value)
        out = {
            tag: cache.get(_fresh_key(tag)) for tag in payloads
        }
        return out, cache.stats.to_dict()

    plain_dir = tmp_path / "plain"
    quiet_dir = tmp_path / "quiet"
    plain_out, plain_stats = drive(plain_dir)
    # "quiet": chaos module imported, engine constructed but NOT
    # installed — the decide path must never be reached.
    ChaosEngine(ChaosPlan.parse("cache.corrupt:p=1.0"))
    quiet_out, quiet_stats = drive(quiet_dir)

    assert plain_out == quiet_out == payloads
    assert plain_stats == quiet_stats
    plain_files = {
        p.name: p.read_bytes() for p in sorted(plain_dir.iterdir())
    }
    quiet_files = {
        p.name: p.read_bytes() for p in sorted(quiet_dir.iterdir())
    }
    assert plain_files == quiet_files


def test_disabled_overhead_is_negligible(tmp_path):
    """The uninstalled fast path (one ContextVar.get + None check) adds
    <1% to a cache round-trip; measured coarsely but with margin."""
    cache = CompileCache(directory=str(tmp_path / "c"))
    key = _fresh_key("hot")
    cache.put(key, {"v": 1})

    def loop(n=2000):
        start = time.perf_counter()
        for _ in range(n):
            cache.get(key)
        return time.perf_counter() - start

    loop(200)  # warm-up
    base = min(loop() for _ in range(3))
    again = min(loop() for _ in range(3))
    # Same code path twice: the run-to-run jitter bound. The point of
    # the assertion is that nothing chaos-shaped (sleep, file IO,
    # hashing) runs when no engine is installed.
    assert abs(base - again) / max(base, again) < 0.5


def test_engine_decide_threadsafe_smoke():
    import threading

    plan = ChaosPlan.parse("worker.kill:p=0.5")
    engine = ChaosEngine(plan)
    results = []

    def hammer():
        for _ in range(200):
            engine.decide(SITE_WORKER_JOB)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report = engine.report()
    assert report["site_visits"]["worker.job"] == 800
    assert 0 < report["injections"] < 800
