"""The Reportable protocol: every report object serializes with a
``kind`` discriminator, consistent keys, and JSON-safe values."""

import json

import pytest

import repro
import repro.obs as obs
from repro.fuzz.harness import FuzzReport, FuzzSpec
from repro.fuzz.triage import Finding, fingerprint
from repro.gpusim.campaign import CampaignReport, CampaignSpec, InjectionRecord
from repro.gpusim.executor import Executor, Launch
from repro.gpusim.memory import MemoryImage
from repro.ir.builder import KernelBuilder
from repro.obs.report import Reportable, as_report_dict


def _scale_kernel():
    b = KernelBuilder("scale", params=[("A", "ptr"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    n = b.ld_param("n")
    base = b.ld_param("A")
    i = b.mov(tid, dst=b.reg("u32", "%i"))
    b.label("HEAD")
    done = b.setp("ge", i, n)
    b.bra("EXIT", pred=done)
    off = b.shl(i, 2)
    addr = b.add(base, off)
    v = b.ld("global", addr, dtype="u32")
    v = b.mad(v, 3, 7)
    b.st("global", addr, v)
    b.add(i, 8, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    b.ret()
    return b.finish()


@pytest.fixture(scope="module")
def compile_result():
    return repro.protect(
        _scale_kernel(),
        launch=repro.LaunchConfig(threads_per_block=8, num_blocks=1),
    )


@pytest.fixture(scope="module")
def execution_result(compile_result):
    mem = MemoryImage()
    addr = mem.alloc_global(16)
    mem.upload(addr, list(range(1, 17)))
    mem.set_param("A", addr)
    mem.set_param("n", 16)
    return Executor(compile_result.kernel).run(
        Launch(grid=1, block=8), mem
    )


def _finding():
    fp = fingerprint("compile", "ValueError", "pass.pruning", "bad 7")
    return Finding(
        iteration=3,
        seed=99,
        stage="compile",
        exc_type="ValueError",
        pass_name="pass.pruning",
        message="bad 7",
        fingerprint=fp,
    )


def _campaign_report():
    spec = CampaignSpec(benchmark="STC", num_injections=2)
    records = [
        InjectionRecord(
            index=i,
            surface="rf",
            outcome="masked",
            detections=0,
            recoveries=0,
            counters={
                "counters": {"sim.runs": 1},
                "gauges": {},
                "histograms": {},
            },
        )
        for i in range(2)
    ]
    return CampaignReport(records=records, spec=spec)


class TestProtocol:
    def test_all_report_types_satisfy_reportable(
        self, compile_result, execution_result
    ):
        for obj in (
            compile_result,
            execution_result,
            _campaign_report(),
            FuzzReport(spec=FuzzSpec(iterations=0)),
            _finding(),
        ):
            assert isinstance(obj, Reportable)

    def test_as_report_dict(self, compile_result):
        assert as_report_dict(compile_result)["kind"] == "compile_result"

    def test_kinds_are_sink_kinds(
        self, compile_result, execution_result
    ):
        for obj in (
            compile_result,
            execution_result,
            _campaign_report(),
            FuzzReport(spec=FuzzSpec(iterations=0)),
            _finding(),
        ):
            assert obj.to_dict()["kind"] in obs.METRIC_KINDS


class TestRoundTrips:
    def test_compile_result(self, compile_result):
        d = json.loads(json.dumps(compile_result.to_dict()))
        assert d["kind"] == "compile_result"
        assert d["kernel"] == "scale"
        assert d["scheme"] == "Penny"
        assert d["stats"]["checkpoints_total"] >= d["stats"][
            "checkpoints_committed"
        ]
        assert d["boundaries"] == sorted(d["boundaries"])
        summary = compile_result.summary()
        assert summary["kernel"] == "scale"
        assert summary["scheme"] == "Penny"

    def test_execution_result(self, execution_result):
        d = json.loads(json.dumps(execution_result.to_dict()))
        assert d["kind"] == "execution_result"
        assert d["instructions"] > 0
        assert d["threads"] == 8
        # inst_classes count warp-level issues, not per-thread retires.
        assert d["inst_classes"]["alu"] > 0
        assert all(v > 0 for v in d["inst_classes"].values())
        assert execution_result.summary()["instructions"] == d[
            "instructions"
        ]

    def test_campaign_report(self):
        report = _campaign_report()
        d = json.loads(json.dumps(report.to_dict()))
        assert d["kind"] == "campaign_report"
        assert d["injections"] == 2
        assert d["summary"]["masked"] == 2
        assert d["counters"]["counters"] == {"sim.runs": 2}

    def test_fuzz_report(self):
        report = FuzzReport(spec=FuzzSpec(iterations=0))
        report.outcomes["ok"] = 4
        report.findings.append(_finding())
        d = json.loads(json.dumps(report.to_dict()))
        assert d["kind"] == "fuzz_report"
        assert d["outcomes"] == {"ok": 4}
        assert len(d["buckets"]) == 1
        assert report.summary()["findings"] == 1

    def test_finding(self):
        d = json.loads(json.dumps(_finding().to_dict()))
        assert d["kind"] == "finding"
        assert d["stage"] == "compile"
        assert d["pass"] == "pass.pruning"
        assert _finding().summary()["exc_type"] == "ValueError"
