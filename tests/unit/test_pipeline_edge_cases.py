"""Pipeline robustness on degenerate and unusual kernels."""

import pytest

from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.gpusim import Executor, Launch, MemoryImage
from repro.ir import KernelBuilder

LAUNCH = LaunchConfig(threads_per_block=8, num_blocks=1)


def compile_(kernel, **cfg):
    defaults = dict(overwrite="sa")
    defaults.update(cfg)
    return PennyCompiler(PennyConfig(**defaults)).compile(kernel, LAUNCH)


def run(kernel, words=16, params=()):
    mem = MemoryImage()
    addr = mem.alloc_global(words)
    mem.upload(addr, list(range(1, words + 1)))
    for name in params:
        mem.set_param(name, addr)
    Executor(kernel, rf_code_factory=lambda: None).run(Launch(1, 8), mem)
    return mem.download(addr, words)


class TestDegenerateKernels:
    def test_empty_kernel(self):
        b = KernelBuilder("empty", params=[])
        b.ret()
        result = compile_(b.finish())
        assert result.stats["checkpoints_total"] == 0
        Executor(result.kernel).run(Launch(1, 8), MemoryImage())

    def test_pure_compute_no_memory(self):
        b = KernelBuilder("compute", params=[])
        x = b.mov(1)
        for _ in range(5):
            x = b.add(x, x)
        b.ret()
        result = compile_(b.finish())
        assert result.stats["num_boundaries"] == 1  # just the entry
        assert result.stats["checkpoints_total"] == 0

    def test_barrier_only_kernel(self):
        b = KernelBuilder("sync", params=[])
        b.bar()
        b.bar()
        b.ret()
        result = compile_(b.finish())
        Executor(result.kernel).run(Launch(1, 8), MemoryImage())

    def test_store_only_kernel(self):
        b = KernelBuilder("wo", params=[("A", "ptr")])
        a = b.ld_param("A")
        tid = b.special_u32("%tid.x")
        off = b.shl(tid, 2)
        b.st("global", b.add(a, off), 7)
        b.ret()
        golden = run(b.finish(), params=("A",))
        b2 = KernelBuilder("wo", params=[("A", "ptr")])
        a = b2.ld_param("A")
        tid = b2.special_u32("%tid.x")
        off = b2.shl(tid, 2)
        b2.st("global", b2.add(a, off), 7)
        b2.ret()
        result = compile_(b2.finish())
        assert run(result.kernel, params=("A",)) == golden

    def test_uninitialized_register_read(self):
        """Reading a never-written register is defined (zero) and must not
        break compilation — its restore is simply skipped."""
        b = KernelBuilder("uninit", params=[("A", "ptr")])
        a = b.ld_param("A")
        ghost = b.reg("u32", "%ghost")
        v = b.ld("global", a, dtype="u32")
        s = b.add(v, ghost)
        b.st("global", a, s)
        b.ret()
        result = compile_(b.finish())
        out = run(result.kernel, params=("A",))
        assert out[0] == 1  # 1 + 0

    def test_back_to_back_boundaries(self):
        """Consecutive anti-dependences produce adjacent tiny regions."""

        def build():
            b = KernelBuilder("tight", params=[("A", "ptr")])
            a = b.ld_param("A")
            for i in range(3):
                v = b.ld("global", a, dtype="u32")
                b.st("global", a, b.add(v, 1))
            b.ret()
            return b.finish()

        golden = run(build(), params=("A",))
        result = compile_(build())
        assert result.stats["num_boundaries"] >= 3
        assert run(result.kernel, params=("A",)) == golden

    def test_deeply_nested_loops(self):
        b = KernelBuilder("deep", params=[("A", "ptr")])
        a = b.ld_param("A")
        regs = []
        for depth in range(3):
            i = b.mov(0, dst=b.reg("u32", f"%i{depth}"))
            regs.append(i)
            b.label(f"L{depth}")
            p = b.setp("ge", i, 2)
            b.bra(f"X{depth}", pred=p)
        v = b.ld("global", a, dtype="u32")
        b.st("global", a, b.add(v, 1))
        for depth in reversed(range(3)):
            b.add(regs[depth], 1, dst=regs[depth])
            b.bra(f"L{depth}")
            b.label(f"X{depth}")
            if depth:
                b.add(regs[depth - 1], 1, dst=regs[depth - 1])
                b.bra(f"L{depth - 1}")
        b.ret()
        kernel = b.finish()
        golden = run(kernel, params=("A",))
        b_copy = compile_(kernel)  # compile(copy=True) leaves input intact
        assert run(b_copy.kernel, params=("A",)) == golden

    def test_self_loop_block(self):
        """A block that branches to itself (single-block loop)."""
        b = KernelBuilder("selfloop", params=[("A", "ptr")])
        a = b.ld_param("A")
        i = b.mov(0, dst=b.reg("u32", "%i"))
        b.label("SPIN")
        v = b.ld("global", a, dtype="u32")
        b.st("global", a, b.add(v, 1))
        b.add(i, 1, dst=i)
        p = b.setp("lt", i, 3)
        b.bra("SPIN", pred=p)
        b.ret()
        result = compile_(b.finish())
        run(result.kernel, params=("A",))

    def test_unreachable_block_tolerated(self):
        from repro.ir import parse_kernel

        kernel = parse_kernel(
            ".entry k (.param .ptr A) {\n"
            "ENTRY:\n"
            "  ld.param.u32 %a, [A];\n"
            "  ld.global.u32 %v, [%a];\n"
            "  st.global.u32 [%a], %v;\n"
            "  ret;\n"
            "DEAD:\n"
            "  mov.u32 %z, 1;\n"
            "  ret;\n"
            "}"
        )
        result = compile_(kernel)
        run(result.kernel, params=("A",))


class TestConfigurationCorners:
    def _loop_kernel(self):
        b = KernelBuilder("k", params=[("A", "ptr")])
        a = b.ld_param("A")
        i = b.mov(0, dst=b.reg("u32", "%i"))
        b.label("H")
        p = b.setp("ge", i, 4)
        b.bra("X", pred=p)
        off = b.shl(i, 2)
        addr = b.add(a, off)
        v = b.ld("global", addr, dtype="u32")
        b.st("global", addr, b.add(v, 10))
        b.add(i, 1, dst=i)
        b.bra("H")
        b.label("X")
        b.ret()
        return b.finish()

    def test_every_config_combination_compiles_and_runs(self):
        golden = run(self._loop_kernel(), params=("A",))
        for placement in ("eager", "bimodal"):
            for pruning in ("none", "basic", "optimal"):
                for low_opts in (True, False):
                    result = compile_(
                        self._loop_kernel(),
                        placement=placement,
                        pruning=pruning,
                        low_opts=low_opts,
                    )
                    got = run(result.kernel, params=("A",))
                    assert got == golden, (placement, pruning, low_opts)

    def test_overwrite_none_is_unsafe_but_runs(self):
        golden = run(self._loop_kernel(), params=("A",))
        result = compile_(self._loop_kernel(), overwrite="none")
        assert run(result.kernel, params=("A",)) == golden
