"""The 25-application benchmark suite: registry sanity, workload
determinism, and per-app structural signatures the evaluation relies on."""

import pytest

from repro.analysis import CFG, LoopInfo
from repro.bench import ALL_BENCHMARKS, get_benchmark
from repro.bench.suite import Workload
from repro.ir import Atom, Bar


class TestRegistry:
    def test_twenty_five_apps(self):
        assert len(ALL_BENCHMARKS) == 25

    def test_all_abbrs_unique(self):
        abbrs = [b.abbr for b in ALL_BENCHMARKS]
        assert len(abbrs) == len(set(abbrs))

    def test_suites_match_table3(self):
        suites = {b.suite for b in ALL_BENCHMARKS}
        assert suites == {
            "GPGPU-Sim bench",
            "Parboil",
            "Rodinia",
            "CUDA toolkit samples",
        }

    def test_unknown_abbr(self):
        with pytest.raises(KeyError):
            get_benchmark("NOPE")

    def test_kernels_validate(self):
        for bench in ALL_BENCHMARKS:
            bench.fresh_kernel().validate()

    def test_fresh_kernel_is_fresh(self):
        bench = get_benchmark("BS")
        k1, k2 = bench.fresh_kernel(), bench.fresh_kernel()
        assert k1 is not k2


class TestWorkloads:
    def test_deterministic_memory(self):
        for abbr in ("CP", "SGEMM", "NQU"):
            wl = get_benchmark(abbr).workload()
            m1, a1, o1 = wl.make()
            m2, a2, o2 = wl.make()
            assert a1 == a2 and o1 == o2
            assert m1.snapshot_global() == m2.snapshot_global()
            assert m1.params == m2.params

    def test_param_references_resolve(self):
        for bench in ALL_BENCHMARKS:
            wl = bench.workload()
            mem, addrs, out = wl.make()
            kernel = bench.fresh_kernel()
            for p in kernel.params:
                assert p.name in mem.params, (bench.abbr, p.name)

    def test_output_region_within_allocation(self):
        for bench in ALL_BENCHMARKS:
            wl = bench.workload()
            _, addrs, (addr, words) = wl.make()
            assert words > 0
            assert addr in addrs.values()

    def test_bad_buffer_fill_rejected(self):
        wl = Workload(
            grid=1,
            block=1,
            buffers=[("x", 4, lambda r: [1, 2])],  # wrong length
            params={},
            output="x",
        )
        with pytest.raises(ValueError):
            wl.make()

    def test_bad_param_ref_rejected(self):
        wl = Workload(
            grid=1, block=1, buffers=[("x", 1, None)],
            params={"A": "x"},  # missing '&'
            output="x",
        )
        with pytest.raises(ValueError):
            wl.make()


class TestStructuralSignatures:
    """Each app must exhibit the structure its paper role depends on."""

    def test_stc_has_loop(self):
        li = LoopInfo(CFG(get_benchmark("STC").fresh_kernel()))
        assert li.loops

    def test_bo_has_nested_loops(self):
        """BO's backward induction is the paper's doubly-nested motivator."""
        li = LoopInfo(CFG(get_benchmark("BO").fresh_kernel()))
        assert max(l.depth for l in li.loops) >= 2

    def test_bs_is_loop_free(self):
        """Black-Scholes is straight-line — Penny's trivial case."""
        li = LoopInfo(CFG(get_benchmark("BS").fresh_kernel()))
        assert not li.loops

    def test_barrier_apps_have_barriers(self):
        for abbr in ("LPS", "SGEMM", "HS", "PF", "SP", "FW", "MT", "CS"):
            kernel = get_benchmark(abbr).fresh_kernel()
            has_bar = any(
                isinstance(inst, Bar)
                for blk in kernel.blocks
                for inst in blk.instructions
            )
            assert has_bar, abbr

    def test_tpacf_uses_atomics(self):
        kernel = get_benchmark("TPACF").fresh_kernel()
        has_atom = any(
            isinstance(inst, Atom)
            for blk in kernel.blocks
            for inst in blk.instructions
        )
        assert has_atom

    def test_volta_subset_flags(self):
        from repro.experiments.fig15 import VOLTA_APPS

        for abbr in VOLTA_APPS:
            assert get_benchmark(abbr).on_volta

    def test_gau_updates_in_place(self):
        """GAU reads and writes the same matrix — anti-dependences."""
        from repro.analysis import find_memory_antideps

        kernel = get_benchmark("GAU").fresh_kernel()
        assert find_memory_antideps(CFG(kernel))

    def test_nqu_is_divergent(self):
        """N-Queens threads take wildly different dynamic paths."""
        from repro.gpusim import Executor

        bench = get_benchmark("NQU")
        wl = bench.workload()
        mem = wl.make_memory()
        result = Executor(
            bench.fresh_kernel(), rf_code_factory=lambda: None
        ).run(wl.launch, mem)
        lengths = set(result.thread_instructions.values())
        # one search tree per pinned first-queen column -> several distinct
        # dynamic path lengths
        assert len(lengths) >= 3
