"""The differential fuzzer: generator, mutators, oracle, triage, reducer.

The acceptance test at the bottom injects a deliberate pass bug and
checks the whole chain end to end: the fuzzer catches it, triage lands
every repetition in one bucket, and ddmin shrinks the representative to
a small fraction of the original kernel.
"""

import pytest

from repro.core import pipeline as pl
from repro.core.errors import PruningError
from repro.fuzz.generator import FuzzCase, GeneratorConfig, generate_case
from repro.fuzz.harness import FuzzRunner, FuzzSpec
from repro.fuzz.mutators import _address_taint, mutate_case
from repro.fuzz.oracle import _reads_uninitialized, run_case
from repro.fuzz.reducer import instruction_count, reduce_case
from repro.fuzz.triage import (
    Finding,
    TriageCorpus,
    fingerprint,
    normalize_message,
)
from repro.ir.instructions import Bra
from repro.ir.parser import parse_kernel


class TestGenerator:
    def test_deterministic(self):
        a = generate_case(1234)
        b = generate_case(1234)
        assert a.kernel_text == b.kernel_text
        assert a.buffers == b.buffers
        assert (a.block, a.grid, a.scalars) == (b.block, b.grid, b.scalars)

    def test_different_seeds_differ(self):
        assert generate_case(1).kernel_text != generate_case(2).kernel_text

    def test_generated_kernel_is_valid(self):
        for seed in range(5):
            kernel = generate_case(seed).kernel()
            kernel.validate()
            assert not _reads_uninitialized(kernel)

    def test_buffer_words_bound_enforced(self):
        # 32 threads/block * 2 blocks needs 2*64+4 words minimum
        cfg = GeneratorConfig(buffer_words=16)
        with pytest.raises(ValueError, match="race-free layout"):
            for seed in range(20):
                generate_case(seed, cfg)

    def test_case_round_trips_through_dict(self):
        case = generate_case(7)
        clone = FuzzCase.from_dict(case.to_dict())
        assert clone == case

    def test_make_memory_is_reproducible(self):
        case = generate_case(11)
        mem1, out1 = case.make_memory()
        mem2, out2 = case.make_memory()
        assert out1 == out2
        for name, (addr, words) in out1.items():
            assert mem1.download(addr, words) == mem2.download(addr, words)


class TestMutators:
    def test_deterministic(self):
        case = generate_case(42)
        m1 = mutate_case(case, seed=99, rounds=3)
        m2 = mutate_case(case, seed=99, rounds=3)
        assert m1.kernel_text == m2.kernel_text
        assert m1.mutations == m2.mutations

    def test_original_case_untouched(self):
        case = generate_case(42)
        before = case.kernel_text
        mutate_case(case, seed=99, rounds=3)
        assert case.kernel_text == before
        assert case.mutations == []

    def test_mutant_still_parses(self):
        case = generate_case(42)
        for seed in range(10):
            mutant = mutate_case(case, seed=seed, rounds=2)
            parse_kernel(mutant.kernel_text)  # must not raise

    def test_address_taint_covers_base_feeders(self):
        kernel = parse_kernel(
            ".entry t (.param .ptr A) {\n"
            "  ld.param.u32 %a, [A];\n"
            "  mov.u32 %i, 8;\n"
            "  add.u32 %addr, %a, %i;\n"
            "  ld.global.u32 %v, [%addr];\n"
            "  add.u32 %w, %v, 1;\n"
            "  st.global.u32 [%addr], %w;\n"
            "  ret;\n"
            "}\n"
        )
        taint = _address_taint(kernel)
        # the base and everything feeding it are tainted ...
        assert {"%addr", "%a", "%i"} <= taint
        # ... but the loaded value and its derivative are fair game
        assert "%w" not in taint

    def test_mutations_never_rewrite_addresses(self):
        case = generate_case(13)
        original = parse_kernel(case.kernel_text)
        taint = _address_taint(original)

        def address_insts(kernel):
            return [
                str(inst)
                for blk in kernel.blocks
                for inst in blk.instructions
                if any(r.name in taint for r in inst.defs())
            ]

        expected = address_insts(original)
        for seed in range(20):
            mutant = mutate_case(case, seed=seed, rounds=2)
            got = address_insts(parse_kernel(mutant.kernel_text))
            # dup/drop never touch tainted defs; the multiset survives
            assert sorted(got) == sorted(expected), mutant.mutations


class TestTriage:
    def test_normalize_strips_identifiers(self):
        msg = "no slice for %v17 at LOOP3 offset 0x40 round 12"
        norm = normalize_message(msg)
        assert "%v17" not in norm
        assert "0x40" not in norm
        assert "12" not in norm
        # two kernels hitting the same defect bucket identically
        assert norm == normalize_message(
            "no slice for %acc2 at LEXIT9 offset 0x80 round 3"
        )

    def test_fingerprint_fields(self):
        fp = fingerprint("compile", "PruningError", "pruning", "boom %v1")
        assert fp.startswith("compile:PruningError:pruning:")
        assert "%v1" not in fp

    def test_corpus_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        corpus = TriageCorpus(path)
        f = Finding(
            iteration=3,
            seed=77,
            stage="compile",
            exc_type="PruningError",
            pass_name="pruning",
            message="boom",
            fingerprint="compile:PruningError:pruning:boom",
            case=generate_case(77).to_dict(),
        )
        corpus.append(f)
        corpus.close()
        loaded = TriageCorpus.load(path)
        assert len(loaded.findings) == 1
        got = loaded.findings[0]
        assert got == f
        assert got.fuzz_case().kernel_text == f.fuzz_case().kernel_text

    def test_corpus_load_skips_torn_tail(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        f = Finding(
            iteration=0, seed=1, stage="compile", exc_type="E",
            pass_name="p", message="m", fingerprint="fp",
        )
        path.write_text(f.to_json() + "\n" + '{"iteration": 5, "tr')
        loaded = TriageCorpus.load(str(path))
        assert len(loaded.findings) == 1


class TestReducer:
    def test_reduces_while_preserving_marker(self):
        case = generate_case(21)
        original = instruction_count(case.kernel_text)

        def has_loop(candidate: FuzzCase) -> bool:
            kernel = parse_kernel(candidate.kernel_text)
            return any(
                isinstance(inst, Bra) and inst.guard is None
                for blk in kernel.blocks
                for inst in blk.instructions
            )

        if not has_loop(case):
            pytest.skip("seed produced no back edge")
        reduced = reduce_case(case, has_loop)
        assert has_loop(reduced)
        assert instruction_count(reduced.kernel_text) < original

    def test_nothing_removable_returns_original(self):
        case = generate_case(21)

        def never(candidate: FuzzCase) -> bool:
            return False

        assert reduce_case(case, never).kernel_text == case.kernel_text


class TestOracle:
    def test_good_case_is_ok(self):
        result = run_case(generate_case(5), scheme="Penny", strict=False)
        assert result.status == "ok"
        assert result.finding is None

    def test_uninitialized_read_is_invalid_case(self):
        case = generate_case(5)
        text = case.kernel_text.replace(
            "ret;", "add.u32 %zz9, %zz8, 1;\n  ret;"
        )
        bad = FuzzCase.from_dict({**case.to_dict(), "kernel_text": text})
        assert run_case(bad).status == "invalid_case"

    def test_reads_uninitialized_analysis(self):
        good = parse_kernel(
            ".entry g (.param .ptr A) {\n"
            "  ld.param.u32 %a, [A];\n"
            "  ld.global.u32 %v, [%a];\n"
            "  st.global.u32 [%a], %v;\n"
            "  ret;\n"
            "}\n"
        )
        assert not _reads_uninitialized(good)
        # %v is only written when the guard holds; the read is unprotected
        conditional = parse_kernel(
            ".entry c (.param .ptr A) {\n"
            "  ld.param.u32 %a, [A];\n"
            "  setp.ge.u32 %p1, %a, 0;\n"
            "  @%p1 mov.u32 %v, 1;\n"
            "  st.global.u32 [%a], %v;\n"
            "  ret;\n"
            "}\n"
        )
        assert _reads_uninitialized(conditional)


class TestHarness:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FuzzSpec(iterations=-1)
        with pytest.raises(ValueError):
            FuzzSpec(mutate_rate=1.5)

    def test_case_for_iteration_deterministic(self):
        spec = FuzzSpec(iterations=10, seed=4, mutate_rate=1.0)
        a = spec.case_for_iteration(6)
        b = spec.case_for_iteration(6)
        assert a.kernel_text == b.kernel_text
        assert a.mutations == b.mutations

    def test_clean_sweep_has_no_findings(self):
        spec = FuzzSpec(iterations=4, seed=2020, mutate_rate=0.0,
                        fault=False)
        report = FuzzRunner(spec).run()
        assert report.iterations_run == 4
        assert report.findings == []
        assert report.outcomes.get("ok", 0) >= 3


class TestHarnessCrash:
    """A worker dying mid-iteration becomes a Finding, not a hole."""

    def test_crash_finding_carries_the_generating_seed(self):
        from repro.fuzz.harness import (
            OUTCOME_HARNESS_CRASH,
            _crash_finding,
        )
        from repro.gpusim.campaign import stable_seed
        from repro.runtime.errors import PoisonJobError

        spec = FuzzSpec(iterations=10, seed=77)
        exc = PoisonJobError("worker died 2x", key="4", strikes=2)
        finding = _crash_finding(spec, 4, exc)
        assert finding.stage == OUTCOME_HARNESS_CRASH
        assert finding.pass_name == "harness"
        assert finding.iteration == 4
        assert finding.seed == stable_seed(77, 4)
        assert finding.case == {}
        assert finding.error["type"] == "PoisonJobError"
        assert finding.fingerprint  # triageable like any other failure

    def test_supervised_sweep_records_crashes_as_findings(self):
        """Chaos kills every worker; with poison_threshold=1 each
        iteration quarantines into a harness_crash finding — the sweep
        still completes and (with reduce=True) reduction skips the
        case-less findings instead of crashing."""
        from repro.fuzz.harness import OUTCOME_HARNESS_CRASH
        from repro.serve.chaos import ChaosEngine, ChaosPlan

        spec = FuzzSpec(iterations=4, seed=2020, mutate_rate=0.0,
                        fault=False)
        plan = ChaosPlan.parse("campaign.worker.kill:p=1.0", seed=9)
        with ChaosEngine(plan):
            report = FuzzRunner(
                spec, workers=2, poison_threshold=1
            ).run(reduce=True)
        assert report.outcomes == {OUTCOME_HARNESS_CRASH: 4}
        assert len(report.findings) == 4
        stages = {f.stage for f in report.findings}
        assert stages == {OUTCOME_HARNESS_CRASH}
        # One bucket: same fingerprint for the same failure mode.
        assert len(report.buckets()) == 1

    def test_transient_kills_below_threshold_lose_nothing(self):
        from repro.serve.chaos import ChaosEngine, ChaosPlan

        spec = FuzzSpec(iterations=6, seed=2020, mutate_rate=0.0,
                        fault=False)
        clean = FuzzRunner(spec).run()
        plan = ChaosPlan.parse(
            "campaign.worker.kill:p=0.4:max=2", seed=13
        )
        with ChaosEngine(plan):
            chaotic = FuzzRunner(
                spec, workers=2, poison_threshold=4
            ).run()
        # Retried iterations are deterministic: same outcomes as the
        # uninterrupted inline sweep.
        assert chaotic.outcomes == clean.outcomes


class TestInjectedBugAcceptance:
    """ISSUE acceptance: a deliberately-injected pass bug is caught,
    triaged into the correct bucket, and reduced to <= 25% of the
    original instruction count."""

    def test_injected_pruning_bug_caught_triaged_reduced(
        self, monkeypatch, tmp_path
    ):
        def buggy_prune(*args, **kwargs):
            raise PruningError("injected defect for %v0 (test)")

        monkeypatch.setattr(pl, "prune_optimal", buggy_prune)
        journal = str(tmp_path / "findings.jsonl")
        # strict: the lattice would otherwise degrade around the bug
        spec = FuzzSpec(iterations=3, seed=8, strict=True,
                        mutate_rate=0.0, fault=False)
        report = FuzzRunner(spec, journal_path=journal).run(reduce=True)

        assert len(report.findings) == 3
        buckets = report.buckets()
        assert len(buckets) == 1  # one defect -> one bucket
        fp = next(iter(buckets))
        assert "PruningError" in fp
        assert ":pruning:" in fp

        rep = buckets[fp][0]
        assert rep.original_instructions is not None
        assert rep.reduced_instructions is not None
        assert rep.reduced_instructions <= rep.original_instructions * 0.25
        assert rep.reduced_kernel is not None
        parse_kernel(rep.reduced_kernel)  # reduced repro still parses

        # the journal carries the shrunk reproducer
        corpus = TriageCorpus.load(journal)
        assert len(corpus.findings) == 3
        assert any(
            f.reduced_kernel is not None for f in corpus.findings
        )
