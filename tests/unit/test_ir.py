"""IR construction, printing, parsing, and structural invariants."""

import pytest

from repro.ir import (
    Alu,
    Atom,
    Bar,
    Bra,
    Checkpoint,
    DType,
    Imm,
    KernelBuilder,
    Ld,
    MemSpace,
    Membar,
    Reg,
    Ret,
    Selp,
    Setp,
    Special,
    St,
    parse_kernel,
    parse_module,
    print_kernel,
    PtxParseError,
)
from repro.ir.module import BasicBlock, Kernel, KernelParam
from repro.ir.types import SymRef


def saxpy_kernel():
    b = KernelBuilder(
        "saxpy",
        params=[("X", "ptr"), ("Y", "ptr"), ("alpha", "f32"), ("n", "u32")],
        shared=[("smem", 64)],
    )
    tid = b.special_u32("%tid.x")
    n = b.ld_param("n")
    p = b.setp("ge", tid, n)
    b.bra("DONE", pred=p)
    x = b.ld_param("X")
    y = b.ld_param("Y")
    off = b.shl(tid, 2)
    xa = b.add(x, off)
    ya = b.add(y, off)
    xv = b.ld("global", xa, dtype="f32")
    yv = b.ld("global", ya, dtype="f32")
    alpha = b.ld_param("alpha")
    r = b.fma(alpha, xv, yv)
    b.st("global", ya, r, dtype="f32")
    b.bar()
    b.label("DONE")
    b.ret()
    return b.finish()


class TestRegisterIdentity:
    def test_name_based_equality(self):
        assert Reg("%r1", DType.U32) == Reg("%r1", DType.S32)
        assert hash(Reg("%r1", DType.U32)) == hash(Reg("%r1", DType.F32))
        assert Reg("%r1") != Reg("%r2")

    def test_special_register_validation(self):
        Special("%tid.x")
        with pytest.raises(ValueError):
            Special("%bogus")


class TestInstructions:
    def test_alu_defs_uses(self):
        dst = Reg("%d")
        inst = Alu("add", DType.U32, dst, [Reg("%a"), Imm(3)])
        assert inst.defs() == (dst,)
        assert Reg("%a") in inst.uses()
        assert inst.reg_uses() == (Reg("%a"),)

    def test_alu_arity_checked(self):
        with pytest.raises(ValueError):
            Alu("add", DType.U32, Reg("%d"), [Reg("%a")])
        with pytest.raises(ValueError):
            Alu("mov", DType.U32, Reg("%d"), [Reg("%a"), Reg("%b")])
        with pytest.raises(ValueError):
            Alu("frobnicate", DType.U32, Reg("%d"), [Reg("%a")])

    def test_guard_is_a_use(self):
        p = Reg("%p", DType.PRED)
        inst = Alu("mov", DType.U32, Reg("%d"), [Imm(1)], guard=(p, True))
        assert p in inst.reg_uses()

    def test_store_to_readonly_space_rejected(self):
        with pytest.raises(ValueError):
            St(MemSpace.PARAM, DType.U32, Reg("%a"), Reg("%v"))

    def test_atom_cas_requires_second_source(self):
        with pytest.raises(ValueError):
            Atom(MemSpace.GLOBAL, "cas", DType.U32, Reg("%d"), Reg("%a"),
                 Reg("%v"))

    def test_memory_classification(self):
        ld = Ld(MemSpace.GLOBAL, DType.U32, Reg("%d"), Reg("%a"))
        st = St(MemSpace.GLOBAL, DType.U32, Reg("%a"), Reg("%v"))
        atom = Atom(MemSpace.GLOBAL, "add", DType.U32, Reg("%d"), Reg("%a"),
                    Reg("%v"))
        assert ld.is_memory_read and not ld.is_memory_write
        assert st.is_memory_write and not st.is_memory_read
        assert atom.is_memory_read and atom.is_memory_write
        assert atom.is_barrier_like

    def test_barriers_are_barrier_like(self):
        assert Bar().is_barrier_like
        assert Membar().is_barrier_like
        assert not Ret().is_barrier_like

    def test_replace_uses_and_defs(self):
        a, b_, d = Reg("%a"), Reg("%b"), Reg("%d")
        inst = Alu("add", DType.U32, d, [a, a])
        inst.replace_uses({a: b_})
        assert inst.srcs == [b_, b_]
        inst.replace_defs({d: a})
        assert inst.dst == a

    def test_checkpoint_pseudo(self):
        cp = Checkpoint(Reg("%r5"), color=1)
        assert cp.is_memory_write
        assert Reg("%r5") in cp.uses()
        assert "K1" in str(cp)


class TestBuilder:
    def test_builds_valid_kernel(self):
        k = saxpy_kernel()
        k.validate()
        assert k.name == "saxpy"
        assert [p.name for p in k.params] == ["X", "Y", "alpha", "n"]
        assert k.shared[0].name == "smem"

    def test_blocks_after_branches(self):
        k = saxpy_kernel()
        labels = [blk.label for blk in k.blocks]
        assert labels[0] == "ENTRY"
        assert "DONE" in labels

    def test_fresh_names_unique(self):
        k = saxpy_kernel()
        regs = [r.name for r in k.all_registers()]
        assert len(regs) == len(set(regs))

    def test_guarded_branch_ends_block(self):
        k = saxpy_kernel()
        for blk in k.blocks:
            for i, inst in enumerate(blk.instructions):
                if isinstance(inst, Bra):
                    assert i == len(blk.instructions) - 1


class TestKernelStructure:
    def test_split_block(self):
        k = saxpy_kernel()
        blk = k.blocks[1]
        n = len(blk.instructions)
        tail = k.split_block(blk.label, 2)
        assert len(blk.instructions) == 2
        assert len(tail.instructions) == n - 2
        k.validate()

    def test_split_out_of_range(self):
        k = saxpy_kernel()
        with pytest.raises(IndexError):
            k.split_block("ENTRY", 99)

    def test_duplicate_labels_rejected(self):
        k = Kernel("bad", blocks=[BasicBlock("A", [Ret()]),
                                  BasicBlock("A", [Ret()])])
        with pytest.raises(ValueError):
            k.validate()

    def test_branch_to_unknown_label_rejected(self):
        k = Kernel("bad", blocks=[BasicBlock("A", [Bra("NOWHERE")])])
        with pytest.raises(ValueError):
            k.validate()

    def test_fallthrough_off_end_rejected(self):
        k = Kernel("bad", blocks=[BasicBlock("A", [Alu("mov", DType.U32,
                                                       Reg("%a"), [Imm(0)])])])
        with pytest.raises(ValueError):
            k.validate()

    def test_lookup_errors(self):
        k = saxpy_kernel()
        with pytest.raises(KeyError):
            k.block("nope")
        with pytest.raises(KeyError):
            k.param("nope")


class TestParserPrinter:
    def test_round_trip(self):
        k = saxpy_kernel()
        text = print_kernel(k)
        again = print_kernel(parse_kernel(text))
        assert text == again

    def test_parse_multi_kernel_module(self):
        text = print_kernel(saxpy_kernel())
        module = parse_module(text + "\n\n" + text.replace("saxpy", "saxpy2"))
        assert [k.name for k in module.kernels] == ["saxpy", "saxpy2"]

    def test_parse_errors_carry_line_numbers(self):
        with pytest.raises(PtxParseError) as err:
            parse_kernel(".entry k () {\n  bogus.u32 %r1;\n}")
        assert "line 2" in str(err.value)

    def test_missing_semicolon(self):
        with pytest.raises(PtxParseError):
            parse_kernel(".entry k () {\n  mov.u32 %r1, 0\n  ret;\n}")

    def test_unterminated_kernel(self):
        with pytest.raises(PtxParseError):
            parse_kernel(".entry k () {\n  ret;")

    def test_comments_and_blank_lines(self):
        k = parse_kernel(
            ".entry k () {\n"
            "  // a comment\n"
            "\n"
            "  mov.u32 %r1, 7; // trailing comment\n"
            "  ret;\n"
            "}"
        )
        assert len(k.blocks[0].instructions) == 2

    def test_negative_offsets(self):
        k = parse_kernel(
            ".entry k (.param .ptr A) {\n"
            "  ld.param.u32 %r1, [A];\n"
            "  ld.global.u32 %r2, [%r1+-4];\n"
            "  ret;\n"
            "}"
        )
        ld = k.blocks[0].instructions[1]
        assert ld.offset == -4

    def test_pred_registers_typed(self):
        k = parse_kernel(
            ".entry k () {\n"
            "  mov.u32 %r1, 3;\n"
            "  setp.lt.u32 %p1, %r1, 5;\n"
            "  @%p1 bra OUT;\n"
            "OUT:\n"
            "  ret;\n"
            "}"
        )
        setp = k.blocks[0].instructions[1]
        assert setp.dst.dtype is DType.PRED

    def test_symbol_operands(self):
        k = parse_kernel(
            ".entry k (.param .ptr A) {\n"
            "  .shared .b32 buf[16];\n"
            "  mov.u32 %r1, buf;\n"
            "  ret;\n"
            "}"
        )
        mov = k.blocks[0].instructions[0]
        assert isinstance(mov.srcs[0], SymRef)
