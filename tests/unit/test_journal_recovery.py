"""Campaign-journal torn-write recovery, exhaustively.

A campaign killed mid-``append`` leaves the journal's final line
truncated at an arbitrary byte.  ``load_journal`` must drop exactly the
partial record (and only it), and an append-mode ``_Journal`` opened on
the torn file must terminate the fragment so resumed records do not
merge into it.  The main test truncates at *every* byte offset of the
final record.

Since journal v2 every line carries a ``\\t<crc32>`` trailer, so a torn
fragment survives at exactly two offsets: the cut that drops only the
trailing newline (the CRC line is whole) and the cut that lands exactly
between payload and trailer (the bare JSON payload is accepted as a
legacy v1 line).  Every other prefix fails the checksum or the schema.
"""

import json

from repro.gpusim.campaign import (
    CampaignSpec,
    InjectionRecord,
    _crc_line,
    _Journal,
    _parse_journal_line,
    load_journal,
)


def _spec(n=4):
    return CampaignSpec(benchmark="STC", num_injections=n)


def _records(n):
    return [
        InjectionRecord(
            index=i,
            surface="rf",
            outcome="masked" if i % 2 else "detected_recovered",
            detections=i,
            recoveries=i % 3,
            instructions=1000 + i,
            seed=100 + i,
            detail=f"répro-№{i}",
        )
        for i in range(n)
    ]


def _fragment_is_whole(fragment: bytes) -> bool:
    """Does this torn prefix still read back as a valid record line?"""
    line = fragment.decode("utf-8", errors="replace").strip()
    if not line:
        return False
    obj, status = _parse_journal_line(line)
    if obj is None:
        return False
    try:
        InjectionRecord(**obj)
    except TypeError:
        return False
    return True


def _write_journal(path, spec, records):
    journal = _Journal(str(path), spec, fresh=True)
    for record in records:
        assert journal.append(record)
    journal.close()


def test_truncation_at_every_byte_of_the_final_record(tmp_path):
    spec = _spec()
    records = _records(4)
    path = tmp_path / "journal.jsonl"
    _write_journal(path, spec, records)

    blob = path.read_bytes()
    payload = records[-1].to_json()
    final_line = _crc_line(payload).encode() + b"\n"
    assert blob.endswith(final_line)
    base = len(blob) - len(final_line)

    for cut in range(len(final_line)):
        torn = tmp_path / f"torn-{cut}.jsonl"
        torn.write_bytes(blob[: base + cut])
        header, loaded = load_journal(str(torn))
        assert header is not None and "spec" in header, cut
        # Exactly the complete records survive; the torn one is gone —
        # except at the offsets where the fragment is genuinely whole.
        fragment_is_whole = _fragment_is_whole(final_line[:cut])
        expected = [0, 1, 2, 3] if fragment_is_whole else [0, 1, 2]
        assert sorted(loaded) == expected, f"cut at byte {cut}"
        for i in (0, 1, 2):
            assert loaded[i] == records[i], f"cut at byte {cut}"
    # Sanity: the whole-record offsets are exactly the payload/trailer
    # boundary (legacy acceptance, with or without the dangling tab —
    # line stripping eats it) and the newline-only truncation, so the
    # loop above really covered both branches.
    whole = [
        cut
        for cut in range(len(final_line))
        if _fragment_is_whole(final_line[:cut])
    ]
    n = len(payload.encode())
    assert whole == [n, n + 1, len(final_line) - 1]


def test_crc_catches_bitrot_legacy_parsing_would_accept(tmp_path):
    """The v1 loader accepted any line that parsed as record JSON; the
    CRC trailer rejects a line whose payload was altered after write."""
    spec = _spec(1)
    record = _records(1)[0]
    path = tmp_path / "rot.jsonl"
    _write_journal(path, spec, [record])

    blob = path.read_bytes()
    # Flip the record's seed digit inside the payload: still valid JSON,
    # still a valid InjectionRecord — only the checksum knows.
    rotted = blob.replace(b'"seed": 100', b'"seed": 900')
    assert rotted != blob
    path.write_bytes(rotted)
    header, loaded = load_journal(str(path))
    assert header is not None
    assert loaded == {}  # dropped as corrupt, not mis-loaded as seed=900


def test_append_resume_after_every_truncation_completes_the_set(tmp_path):
    """Opening the torn journal in append mode and re-running the
    missing index yields the full record set — the torn fragment never
    corrupts its successor."""
    spec = _spec()
    records = _records(4)
    path = tmp_path / "journal.jsonl"
    _write_journal(path, spec, records)
    blob = path.read_bytes()
    final_line = _crc_line(records[-1].to_json()).encode() + b"\n"
    base = len(blob) - len(final_line)

    # Every offset is cheap enough to run exhaustively here too.
    for cut in range(len(final_line)):
        torn = tmp_path / f"resume-{cut}.jsonl"
        torn.write_bytes(blob[: base + cut])
        _, loaded = load_journal(str(torn))
        missing = [r for r in records if r.index not in loaded]
        journal = _Journal(str(torn), spec, fresh=False)
        for record in missing:
            journal.append(record)
        journal.close()
        header, completed = load_journal(str(torn))
        assert header is not None, cut
        assert sorted(completed) == [0, 1, 2, 3], f"cut at byte {cut}"
        for record in records:
            assert completed[record.index] == record, f"cut at byte {cut}"


def test_garbage_lines_are_skipped_not_fatal(tmp_path):
    """Non-object JSON, binary noise and half-written headers are all
    skipped: recovery never throws on journal content.  CRC-less record
    lines (a v1 journal) still load, tagged legacy."""
    path = tmp_path / "garbage.jsonl"
    good = _records(2)
    lines = [
        json.dumps({"spec": _spec().to_dict(), "version": 1}),
        "12345",  # parses, but is not a record object
        '"just a string"',
        good[0].to_json(),  # v1-style line, no trailer
        "{\"index\": 9, \"unknown_field\": true}",  # wrong shape
        "\xff\xfe binary noise",
        _crc_line(good[1].to_json()),  # v2-style line
    ]
    path.write_text("\n".join(lines) + "\n", errors="replace")
    header, loaded = load_journal(str(path))
    assert header is not None
    assert sorted(loaded) == [0, 1]


def test_first_line_non_dict_is_not_a_header_crash(tmp_path):
    """A journal whose first line tore down to a bare JSON scalar used
    to raise TypeError on the header check; it must load as empty."""
    path = tmp_path / "scalar-head.jsonl"
    path.write_text("7\n" + _records(1)[0].to_json() + "\n")
    header, loaded = load_journal(str(path))
    assert header is None
    assert sorted(loaded) == [0]
