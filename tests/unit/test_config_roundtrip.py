"""PennyConfig's canonical dict round-trip (the cache-key substrate).

The compile cache keys on ``json.dumps(config.to_dict(), sort_keys=True)``,
so the serialization must be (a) lossless — ``from_dict(to_dict(c)) == c``
for every config the evaluation exercises, (b) canonical — enums render
as stable strings, mappings in sorted order — and (c) strict on the way
in — unknown keys are a typed error, not silently-different knobs.
"""

import json
from dataclasses import fields, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.core.pipeline import PennyConfig
from repro.core.schemes import (
    SCHEME_BOLT_AUTO,
    SCHEME_BOLT_GLOBAL,
    SCHEME_PENNY,
    Scheme,
    scheme_config,
)

EVALUATED = (SCHEME_BOLT_GLOBAL, SCHEME_BOLT_AUTO, SCHEME_PENNY)


# -- the evaluated variants -------------------------------------------------------


@pytest.mark.parametrize("scheme", EVALUATED)
def test_preset_round_trips(scheme):
    config = scheme_config(scheme)
    rebuilt = PennyConfig.from_dict(config.to_dict())
    assert rebuilt == config


@pytest.mark.parametrize("scheme", EVALUATED)
def test_preset_dict_is_json_canonical(scheme):
    d = scheme_config(scheme).to_dict()
    # JSON-serializable without default= hooks...
    text = json.dumps(d, sort_keys=True)
    # ...and stable: encode -> decode -> encode is a fixed point.
    assert json.dumps(json.loads(text), sort_keys=True) == text


def test_default_config_round_trips():
    config = PennyConfig()
    assert PennyConfig.from_dict(config.to_dict()) == config


def test_dict_covers_every_field():
    d = PennyConfig().to_dict()
    assert set(d) == {f.name for f in fields(PennyConfig)}


def test_overwrite_scheme_serializes_as_enum_value_string():
    for raw, expected in (("rr", "rr"), (Scheme.SA, "sa"), ("auto", "auto")):
        d = PennyConfig(overwrite=raw).to_dict()
        assert d["overwrite"] == expected
        assert isinstance(d["overwrite"], str)
        assert PennyConfig.from_dict(d).to_dict()["overwrite"] == expected


def test_unknown_key_is_a_typed_error():
    payload = PennyConfig().to_dict()
    payload["turbo_mode"] = True
    with pytest.raises(ConfigError, match="turbo_mode"):
        PennyConfig.from_dict(payload)


def test_knob_flip_changes_canonical_json():
    base = json.dumps(PennyConfig().to_dict(), sort_keys=True)
    for change in (
        {"pruning": "none"},
        {"storage_mode": "global"},
        {"overwrite": "sa"},
        {"low_opts": False},
        {"param_noalias": True},
        {"lint_disable": ("W001",)},
    ):
        flipped = replace(PennyConfig(), **change)
        assert json.dumps(flipped.to_dict(), sort_keys=True) != base


# -- property test over the whole knob space --------------------------------------

configs = st.builds(
    PennyConfig,
    placement=st.sampled_from(["bimodal", "eager"]),
    pruning=st.sampled_from(["optimal", "basic", "none"]),
    storage_mode=st.sampled_from(["auto", "shared", "global"]),
    overwrite=st.sampled_from(["auto", "rr", "sa", "none"]),
    low_opts=st.booleans(),
    cost_base=st.integers(min_value=1, max_value=1024),
    cover_base=st.integers(min_value=1, max_value=16),
    basic_prune_attempts=st.integers(min_value=1, max_value=256),
    basic_prune_seed=st.integers(min_value=0, max_value=2**31 - 1),
    max_rename_rounds=st.integers(min_value=1, max_value=32),
    max_replan_rounds=st.integers(min_value=1, max_value=32),
    param_noalias=st.booleans(),
    verify=st.booleans(),
    lint=st.booleans(),
    lint_disable=st.tuples(st.sampled_from(["W001", "W002", "E001"])),
    lint_severity=st.dictionaries(
        st.sampled_from(["W001", "W002"]),
        st.sampled_from(["error", "warning", "note"]),
        max_size=2,
    ),
)


@settings(max_examples=60, deadline=None)
@given(config=configs)
def test_round_trip_is_lossless_and_canonical(config):
    d = config.to_dict()
    rebuilt = PennyConfig.from_dict(d)
    assert rebuilt == config
    # Canonical: the same config always renders the same JSON.
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
        d, sort_keys=True
    )
