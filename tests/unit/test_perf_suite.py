"""Unit tests for the benchmark registry (repro.perf.suite)."""

import pytest

from repro import obs
from repro.perf.repeat import RepeatConfig
from repro.perf.schema import validate_bench_result
from repro.perf.suite import (
    fast_bench_names,
    get_bench,
    list_benches,
    run_bench,
)

FAST_CFG = RepeatConfig(
    warmup=1, min_reps=3, max_reps=5, target_rel_ci=0.5
)


class TestRegistry:
    def test_expected_benches_registered(self):
        names = {s.name for s in list_benches()}
        assert {
            "selftest", "executor", "compile", "cache", "batch",
            "tracer",
        } <= names

    def test_fast_subset(self):
        fast = set(fast_bench_names())
        assert "selftest" in fast
        assert "compile" in fast and "cache" in fast
        assert "tracer" in fast
        # the heavyweights stay out of the CI gate subset
        assert "executor" not in fast and "batch" not in fast

    def test_unknown_bench_lists_known(self):
        with pytest.raises(KeyError, match="selftest"):
            get_bench("nope")

    def test_specs_have_descriptions(self):
        for spec in list_benches():
            assert spec.description
            assert spec.area


class TestRunBench:
    def test_selftest_produces_valid_result(self):
        r = run_bench("selftest", FAST_CFG, {"n": 2000})
        assert validate_bench_result(r.to_dict()) == []
        assert r.benchmark == "selftest"
        assert r.primary == "work"
        assert r.primary_series.summary.n >= 3
        assert r.wall_seconds > 0
        assert r.environment["code_sha"]
        assert r.repeat_config["min_reps"] == 3

    def test_option_override(self):
        r = run_bench("selftest", FAST_CFG, {"n": 1000})
        assert r.primary_series.summary.median < 1.0

    def test_bench_span_emitted(self):
        with obs.Tracer() as tracer:
            run_bench("selftest", FAST_CFG, {"n": 1000})
        bench_spans = tracer.find("perf.bench")
        assert len(bench_spans) == 1
        assert bench_spans[0].tags["benchmark"] == "selftest"
        # reps nest under the bench span via perf.repeat
        assert tracer.counters.counts["perf.benches"] == 1
        assert tracer.counters.counts["perf.reps"] >= 3

    def test_cache_bench_shape(self):
        r = run_bench(
            "cache",
            FAST_CFG,
            {"keys": 8, "sweeps": 2, "payload_bytes": 64},
        )
        assert validate_bench_result(r.to_dict()) == []
        assert set(r.series) == {"warm_hit", "cold_miss"}
        assert r.primary == "warm_hit"
        # a memory-tier hit must beat a double-tier miss
        assert (
            r.series["warm_hit"].summary.median
            < r.series["cold_miss"].summary.median * 5
        )

    def test_tracer_bench_shape(self):
        r = run_bench("tracer", FAST_CFG, {"chunks": 4, "chunk": 200})
        assert validate_bench_result(r.to_dict()) == []
        assert set(r.series) == {"instrumented_untraced", "plain"}
        assert "disabled_overhead_rel" in r.metrics

    def test_tracer_bench_measures_disabled_path_under_tracer(self):
        # Even when the *caller* runs traced, the bench must measure
        # the uninstalled (disabled) path.
        with obs.Tracer():
            r = run_bench(
                "tracer", FAST_CFG, {"chunks": 4, "chunk": 200}
            )
        # an enabled-path measurement would show massive overhead
        assert r.metrics["disabled_overhead_rel"] < 1.0
