"""The Scheme enum: parsing, aliases, string compatibility, and its
threading through PennyConfig and the compile pipeline."""

import json

import pytest

import repro
from repro.core.pipeline import PennyConfig
from repro.core.schemes import Scheme


class TestParse:
    def test_canonical_values(self):
        assert Scheme.parse("rr") is Scheme.RR
        assert Scheme.parse("sa") is Scheme.SA
        assert Scheme.parse("auto") is Scheme.AUTO
        assert Scheme.parse("none") is Scheme.NONE

    def test_enum_passthrough(self):
        assert Scheme.parse(Scheme.SA) is Scheme.SA

    def test_none_means_auto(self):
        assert Scheme.parse(None) is Scheme.AUTO

    def test_aliases(self):
        assert Scheme.parse("renaming") is Scheme.RR
        assert Scheme.parse("rename") is Scheme.RR
        assert Scheme.parse("storage-alternation") is Scheme.SA
        assert Scheme.parse("storage_alternation") is Scheme.SA
        assert Scheme.parse("alternation") is Scheme.SA
        assert Scheme.parse("best") is Scheme.AUTO
        assert Scheme.parse("off") is Scheme.NONE

    def test_case_and_whitespace_insensitive(self):
        assert Scheme.parse("  SA ") is Scheme.SA
        assert Scheme.parse("Renaming") is Scheme.RR

    def test_unknown_raises_with_known_values(self):
        with pytest.raises(ValueError, match="unknown overwrite scheme"):
            Scheme.parse("xor")
        with pytest.raises(ValueError):
            Scheme.parse(42)


class TestStringCompat:
    def test_equals_plain_string(self):
        assert Scheme.SA == "sa"
        assert Scheme.RR in ("rr", "sa")

    def test_str_and_format_render_value(self):
        assert str(Scheme.SA) == "sa"
        assert f"{Scheme.RR:5}" == "rr   "

    def test_json_renders_value(self):
        assert json.dumps({"overwrite": Scheme.AUTO}) == '{"overwrite": "auto"}'

    def test_usable_as_dict_key(self):
        assert {Scheme.SA: 1}["sa"] == 1


class TestThreading:
    def test_config_normalizes_string(self):
        assert PennyConfig(overwrite="renaming").overwrite is Scheme.RR
        assert PennyConfig(overwrite=Scheme.SA).overwrite is Scheme.SA

    def test_config_rejects_garbage(self):
        with pytest.raises(ValueError):
            PennyConfig(overwrite="xor")

    def test_compile_stats_carry_value(self):
        k = repro.parse_kernel(open("examples/scale.ptx").read())
        result = repro.protect(
            k,
            overwrite=Scheme.SA,
            launch=repro.LaunchConfig(threads_per_block=16, num_blocks=2),
        )
        assert result.stats["overwrite_scheme"] == "sa"

    def test_alias_and_enum_compile_identically(self):
        launch = repro.LaunchConfig(threads_per_block=16, num_blocks=2)
        src = open("examples/scale.ptx").read()
        via_alias = repro.protect(
            repro.parse_kernel(src), overwrite="storage-alternation",
            launch=launch,
        )
        via_enum = repro.protect(
            repro.parse_kernel(src), overwrite=Scheme.SA, launch=launch
        )
        assert repro.print_kernel(via_alias.kernel) == repro.print_kernel(
            via_enum.kernel
        )
        assert via_alias.stats == via_enum.stats
