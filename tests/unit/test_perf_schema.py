"""Unit tests for the BENCH schema layer (repro.perf.schema) and the
result-level comparison (repro.perf.compare)."""

import json
import os

import pytest

from repro.perf.compare import (
    compare_results,
    gate_exit_code,
    render_comparison,
)
from repro.perf.env import ENV_KEYS, environment_fingerprint
from repro.perf.repeat import RepeatConfig, RepeatResult, StopReason
from repro.perf.schema import (
    SCHEMA_VERSION,
    BenchResult,
    Series,
    bench_filename,
    load_result,
    validate_bench_result,
    write_result,
)
from repro.perf.stats import Summary, Verdict


def _series(samples, name="work", unit="s"):
    return Series(
        name=name,
        unit=unit,
        samples=list(samples),
        warmup_samples=[samples[0]],
        stop_reason=StopReason.CI_TARGET.value,
        summary=Summary.from_samples(samples),
    )


def _result(samples=(1.0, 1.1, 0.9, 1.05, 0.95), **kwargs):
    defaults = dict(
        benchmark="selftest",
        area="selftest",
        primary="work",
        series={"work": _series(list(samples))},
        metrics={"n": len(samples)},
        environment=environment_fingerprint(),
        repeat_config=RepeatConfig().to_dict(),
        wall_seconds=1.0,
    )
    defaults.update(kwargs)
    return BenchResult(**defaults)


class TestSchema:
    def test_valid_result_passes(self):
        assert validate_bench_result(_result().to_dict()) == []

    def test_dict_roundtrip(self):
        r = _result()
        back = BenchResult.from_dict(r.to_dict())
        assert back.benchmark == r.benchmark
        assert back.primary_series.samples == r.primary_series.samples
        assert back.primary_series.summary == r.primary_series.summary

    def test_series_from_repeat(self):
        rep = RepeatResult(
            samples=[1.0, 1.1, 0.9],
            warmup_samples=[1.2],
            stop_reason=StopReason.MAX_REPS,
            summary=Summary.from_samples([1.0, 1.1, 0.9]),
            wall_seconds=4.2,
        )
        s = Series.from_repeat("x", "s", rep)
        assert s.stop_reason == "max_reps"
        assert s.samples == [1.0, 1.1, 0.9]

    def test_primary_must_exist(self):
        with pytest.raises(ValueError):
            _result(primary="nope")

    def test_bench_filename(self):
        assert bench_filename("executor") == "BENCH_executor.json"

    def test_v1_record_rejected_with_hint(self):
        problems = validate_bench_result(
            {"schema_version": 1, "benchmark": "executor_throughput"}
        )
        assert len(problems) == 1
        assert "regenerated" in problems[0]

    def test_not_an_object(self):
        assert validate_bench_result([1, 2]) != []

    @pytest.mark.parametrize(
        "mutate,needle",
        [
            (lambda d: d.update(kind="other"), "kind"),
            (lambda d: d.update(benchmark=""), "benchmark"),
            (lambda d: d.update(series={}), "series"),
            (lambda d: d.update(primary="ghost"), "primary"),
            (lambda d: d.pop("environment"), "environment"),
            (lambda d: d.pop("repeat_config"), "repeat_config"),
            (lambda d: d.pop("metrics"), "metrics"),
        ],
    )
    def test_structural_problems(self, mutate, needle):
        d = _result().to_dict()
        mutate(d)
        problems = validate_bench_result(d)
        assert any(needle in p for p in problems), problems

    def test_nonpositive_samples_flagged(self):
        d = _result().to_dict()
        d["series"]["work"]["samples"][0] = -1.0
        assert any("nonpositive" in p for p in validate_bench_result(d))

    def test_bad_stop_reason_flagged(self):
        d = _result().to_dict()
        d["series"]["work"]["stop_reason"] = "gave_up"
        assert any("stop_reason" in p for p in validate_bench_result(d))

    def test_summary_n_mismatch_flagged(self):
        d = _result().to_dict()
        d["series"]["work"]["summary"]["n"] = 99
        assert any("summary.n" in p for p in validate_bench_result(d))

    def test_missing_env_key_flagged(self):
        d = _result().to_dict()
        del d["environment"]["numpy_version"]
        assert any(
            "numpy_version" in p for p in validate_bench_result(d)
        )

    def test_env_fingerprint_complete(self):
        env = environment_fingerprint()
        for key in ENV_KEYS:
            assert key in env
        assert env["code_sha"]  # reused from the serve-tier CacheKey

    def test_write_and_load_roundtrip(self, tmp_path):
        path = os.path.join(str(tmp_path), "BENCH_selftest.json")
        r = _result()
        write_result(r, path)
        with open(path) as f:
            on_disk = json.load(f)
        assert on_disk["schema_version"] == SCHEMA_VERSION
        back = load_result(path)
        assert back.primary_series.samples == r.primary_series.samples

    def test_write_refuses_invalid(self, tmp_path):
        r = _result()
        r.environment = {}  # strip the fingerprint
        with pytest.raises(ValueError):
            write_result(r, os.path.join(str(tmp_path), "bad.json"))

    def test_load_rejects_invalid(self, tmp_path):
        # A structurally-loadable record with a stale schema version.
        d = _result().to_dict()
        d["schema_version"] = 1
        path = os.path.join(str(tmp_path), "BENCH_x.json")
        with open(path, "w") as f:
            json.dump(d, f)
        with pytest.raises(ValueError):
            load_result(path)
        # validate=False loads anyway (for migration tooling)
        assert load_result(path, validate=False).schema_version == 1


class TestCompareResults:
    def test_aa_unchanged(self):
        base = _result()
        cand = _result()
        rc = compare_results(base, cand, noise_margin=0.10)
        assert rc.verdict is Verdict.UNCHANGED
        assert not rc.downgraded
        assert gate_exit_code([rc]) == 0

    def test_synthetic_slowdown_regresses(self):
        base = _result()
        slow = _result(
            samples=[x * 1.5 for x in (1.0, 1.1, 0.9, 1.05, 0.95)]
        )
        rc = compare_results(base, slow, noise_margin=0.05)
        assert rc.verdict is Verdict.REGRESSED
        assert gate_exit_code([rc]) == 1

    def test_speedup_improves(self):
        base = _result()
        fast = _result(
            samples=[x / 2 for x in (1.0, 1.1, 0.9, 1.05, 0.95)]
        )
        rc = compare_results(base, fast, noise_margin=0.05)
        assert rc.verdict is Verdict.IMPROVED
        assert gate_exit_code([rc]) == 0

    def test_env_drift_downgrades_significant_verdict(self):
        base = _result()
        slow = _result(
            samples=[x * 1.5 for x in (1.0, 1.1, 0.9, 1.05, 0.95)]
        )
        slow.environment = dict(slow.environment)
        slow.environment["node"] = "another-box"
        rc = compare_results(base, slow, noise_margin=0.05)
        assert rc.verdict is Verdict.INCONCLUSIVE
        assert rc.downgraded
        assert "node" in rc.env_drift
        assert gate_exit_code([rc]) == 0  # incomparable, not failing

    def test_ignore_env_keeps_verdict(self):
        base = _result()
        slow = _result(
            samples=[x * 1.5 for x in (1.0, 1.1, 0.9, 1.05, 0.95)]
        )
        slow.environment = dict(slow.environment)
        slow.environment["node"] = "another-box"
        rc = compare_results(
            base, slow, noise_margin=0.05, ignore_env=True
        )
        assert rc.verdict is Verdict.REGRESSED

    def test_code_sha_drift_does_not_downgrade(self):
        # Code drift is the point of the comparison.
        base = _result()
        slow = _result(
            samples=[x * 1.5 for x in (1.0, 1.1, 0.9, 1.05, 0.95)]
        )
        slow.environment = dict(slow.environment)
        slow.environment["code_sha"] = "deadbeef"
        slow.environment["git_rev"] = "cafebabe"
        rc = compare_results(base, slow, noise_margin=0.05)
        assert rc.verdict is Verdict.REGRESSED
        assert rc.env_drift == {}

    def test_unchanged_never_downgraded_by_drift(self):
        base = _result()
        cand = _result()
        cand.environment = dict(cand.environment)
        cand.environment["node"] = "elsewhere"
        rc = compare_results(base, cand, noise_margin=0.10)
        assert rc.verdict is Verdict.UNCHANGED
        assert not rc.downgraded

    def test_secondary_series_compared_but_not_gating(self):
        samples = (1.0, 1.1, 0.9, 1.05, 0.95)
        base = _result(
            series={
                "work": _series(list(samples)),
                "aux": _series(list(samples), name="aux"),
            }
        )
        cand = _result(
            series={
                "work": _series(list(samples)),
                # the *secondary* series regresses badly
                "aux": _series([x * 5 for x in samples], name="aux"),
            }
        )
        rc = compare_results(base, cand, noise_margin=0.05)
        assert rc.verdict is Verdict.UNCHANGED  # primary gates
        aux = next(sc for sc in rc.series if sc.series == "aux")
        assert aux.comparison.verdict is Verdict.REGRESSED
        assert gate_exit_code([rc]) == 0

    def test_different_benchmarks_rejected(self):
        with pytest.raises(ValueError):
            compare_results(_result(), _result(benchmark="other"))

    def test_primary_missing_from_baseline_rejected(self):
        base = _result()
        cand = _result(
            primary="other",
            series={"other": _series([1.0, 1.1, 0.9], name="other")},
        )
        with pytest.raises(ValueError):
            compare_results(base, cand)

    def test_to_dict_and_render(self):
        rc = compare_results(_result(), _result())
        d = rc.to_dict()
        assert d["kind"] == "bench_comparison"
        assert d["verdict"] == "unchanged"
        text = render_comparison(rc)
        assert "selftest" in text and "UNCHANGED" in text

    def test_gate_exit_code_mixed(self):
        base = _result()
        slow = _result(
            samples=[x * 1.5 for x in (1.0, 1.1, 0.9, 1.05, 0.95)]
        )
        ok = compare_results(base, _result(), noise_margin=0.10)
        bad = compare_results(base, slow, noise_margin=0.05)
        assert gate_exit_code([ok]) == 0
        assert gate_exit_code([ok, bad]) == 1
