"""The content-addressed compile cache: keys, tiers, corruption, LRU.

The load-bearing guarantees:

- **warm == cold** — a cache hit is byte-identical to recompiling
  (``print_kernel`` text and the full ``to_dict()`` report);
- **any input change misses** — flipping one config knob or editing one
  character of the kernel text changes the key;
- **corruption is a miss, never a crash** — truncated/garbage disk
  entries are detected on read, unlinked, counted, and recompiled;
- the memory tier is an **LRU with a byte budget**.
"""

import os
import pickle

import pytest

from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.ir.parser import parse_module
from repro.ir.printer import print_kernel
from repro.serve.cache import CompileCache, active_cache
from repro.serve.key import (
    KEY_SCHEMA_VERSION,
    CacheKey,
    compile_cache_key,
)

PTX = """
.entry axpy (.param .ptr A, .param .u32 n) {
ENTRY:
  mov.u32 %tid, %tid.x;
  ld.param.u32 %a, [A];
  ld.param.u32 %n, [n];
  mov.u32 %i, %tid;
HEAD:
  setp.ge.u32 %p1, %i, %n;
  @%p1 bra EXIT;
BODY:
  shl.u32 %off, %i, 2;
  add.u32 %addr, %a, %off;
  ld.global.u32 %v, [%addr];
  mad.u32 %v2, %v, 3, 7;
  st.global.u32 [%addr], %v2;
  add.u32 %i, %i, 32;
  bra HEAD;
EXIT:
  ret;
}
"""

LAUNCH = LaunchConfig(threads_per_block=32, num_blocks=2)


def _kernel(source=PTX):
    return parse_module(source).kernels[0]


def _compile(cache=None, source=PTX, config=None):
    compiler = PennyCompiler(config or PennyConfig(), cache=cache)
    return compiler.compile(_kernel(source), LAUNCH)


# -- keys -------------------------------------------------------------------------


def test_key_is_deterministic():
    a = compile_cache_key(_kernel(), PennyConfig(), launch=LAUNCH)
    b = compile_cache_key(_kernel(), PennyConfig(), launch=LAUNCH)
    assert a == b and a.digest == b.digest
    assert a.schema == KEY_SCHEMA_VERSION


def test_key_misses_on_config_knob_flip():
    base = compile_cache_key(_kernel(), PennyConfig(), launch=LAUNCH)
    flipped = compile_cache_key(
        _kernel(), PennyConfig(pruning="none"), launch=LAUNCH
    )
    assert base.ptx_sha == flipped.ptx_sha  # same kernel...
    assert base.config_sha != flipped.config_sha  # ...different knobs
    assert base.digest != flipped.digest


def test_key_misses_on_policy_flip():
    # the protection policy is a compilation input: two configs that
    # differ only in policy must never share a cache entry
    base = compile_cache_key(_kernel(), PennyConfig(), launch=LAUNCH)
    flipped = compile_cache_key(
        _kernel(), PennyConfig(policy="address-only"), launch=LAUNCH
    )
    assert base.ptx_sha == flipped.ptx_sha
    assert base.config_sha != flipped.config_sha
    assert base.digest != flipped.digest
    # aliases canonicalize: "addr" and "address-only" are the SAME key
    aliased = compile_cache_key(
        _kernel(), PennyConfig(policy="addr"), launch=LAUNCH
    )
    assert aliased.digest == flipped.digest


def test_key_misses_on_one_character_ptx_edit():
    edited = PTX.replace("mad.u32 %v2, %v, 3, 7", "mad.u32 %v2, %v, 3, 8")
    assert edited != PTX
    base = compile_cache_key(_kernel(), PennyConfig(), launch=LAUNCH)
    other = compile_cache_key(_kernel(edited), PennyConfig(), launch=LAUNCH)
    assert base.ptx_sha != other.ptx_sha
    assert base.digest != other.digest


def test_key_includes_launch_and_strict():
    base = compile_cache_key(_kernel(), PennyConfig(), launch=LAUNCH)
    other_launch = compile_cache_key(
        _kernel(),
        PennyConfig(),
        launch=LaunchConfig(threads_per_block=64, num_blocks=2),
    )
    lax = compile_cache_key(
        _kernel(), PennyConfig(), launch=LAUNCH, strict=False
    )
    assert base.digest != other_launch.digest
    assert base.digest != lax.digest


# -- warm == cold -----------------------------------------------------------------


def test_warm_hit_is_byte_identical_to_cold_compile(tmp_path):
    with CompileCache(directory=str(tmp_path)) as cache:
        cold = _compile(cache)
        assert cache.stats.misses == 1 and cache.stats.stores == 1
        warm = _compile(cache)
        assert cache.stats.hits == 1
    assert print_kernel(warm.kernel) == print_kernel(cold.kernel)
    assert warm.to_dict() == cold.to_dict()


def test_disk_tier_survives_process_restart(tmp_path):
    with CompileCache(directory=str(tmp_path)) as first:
        cold = _compile(first)
    # A "new process": fresh cache object, empty memory tier.
    with CompileCache(directory=str(tmp_path)) as second:
        warm = _compile(second)
        assert second.stats.hits == 1 and second.stats.misses == 0
    assert warm.to_dict() == cold.to_dict()


def test_config_flip_recompiles(tmp_path):
    with CompileCache(directory=str(tmp_path)) as cache:
        _compile(cache)
        _compile(cache, config=PennyConfig(pruning="none"))
        assert cache.stats.misses == 2 and cache.stats.hits == 0


def test_context_installation_and_nesting(tmp_path):
    assert active_cache() is None
    with CompileCache() as outer:
        assert active_cache() is outer
        with CompileCache(directory=str(tmp_path)) as inner:
            assert active_cache() is inner
        assert active_cache() is outer
    assert active_cache() is None


def test_compiler_uses_context_cache():
    with CompileCache() as cache:
        _compile()  # no explicit cache argument
        _compile()
        assert cache.stats.misses == 1 and cache.stats.hits == 1


def test_copy_false_bypasses_cache():
    """``copy=False`` hands the caller's kernel to the passes for
    in-place mutation — a cached result could not honor that."""
    with CompileCache() as cache:
        kernel = _kernel()
        PennyCompiler(PennyConfig()).compile(kernel, LAUNCH, copy=False)
        assert cache.stats.hits + cache.stats.misses == 0


# -- corruption tolerance ---------------------------------------------------------


def _sole_entry(tmp_path):
    entries = [p for p in os.listdir(tmp_path) if p.endswith(".pkl")]
    assert len(entries) == 1
    return os.path.join(str(tmp_path), entries[0])


@pytest.mark.parametrize(
    "damage",
    [
        lambda raw: raw[: len(raw) // 2],  # truncated
        lambda raw: b"not a pickle at all",  # garbage
        lambda raw: b"",  # empty file
    ],
    ids=["truncated", "garbage", "empty"],
)
def test_corrupt_disk_entry_is_a_miss_not_a_crash(tmp_path, damage):
    with CompileCache(directory=str(tmp_path)) as cache:
        cold = _compile(cache)
        path = _sole_entry(tmp_path)
        with open(path, "rb") as f:
            raw = f.read()
        with open(path, "wb") as f:
            f.write(damage(raw))

    # Fresh cache (no memory tier) forced onto the damaged file.
    with CompileCache(directory=str(tmp_path)) as cache:
        warm = _compile(cache)
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
    assert warm.to_dict() == cold.to_dict()
    # The bad file was replaced by the recompile's store.
    with open(_sole_entry(tmp_path), "rb") as f:
        pickle.load(f)  # must unpickle cleanly now


# -- LRU + maintenance ------------------------------------------------------------


def test_memory_lru_evicts_cold_entries():
    entry_bytes = len(pickle.dumps("x" * 60, pickle.HIGHEST_PROTOCOL))
    cache = CompileCache(max_memory_bytes=2 * entry_bytes)  # room for two
    key = lambda i: CacheKey(f"p{i}", "c", "v", 1)  # noqa: E731
    cache.put(key(0), "x" * 60)
    cache.put(key(1), "y" * 60)
    cache.get(key(0))  # touch 0: now 1 is the cold end
    cache.put(key(2), "z" * 60)  # must evict exactly one
    assert cache.stats.evictions == 1
    assert cache.get(key(0)) == "x" * 60
    assert cache.get(key(1)) is None  # the untouched one went
    assert cache.get(key(2)) == "z" * 60


def test_oversized_entry_does_not_wipe_the_cache():
    cache = CompileCache(max_memory_bytes=200)
    cache.put(CacheKey("small", "c", "v", 1), "s")
    cache.put(CacheKey("huge", "c", "v", 1), "x" * 10_000)
    assert cache.get(CacheKey("small", "c", "v", 1)) == "s"
    assert cache.get(CacheKey("huge", "c", "v", 1)) is None


def test_clear_and_gc(tmp_path):
    cache = CompileCache(directory=str(tmp_path))
    for i in range(4):
        cache.put(CacheKey(f"p{i}", "c", "v", 1), "x" * 100)
    entries, total = cache.disk_usage()
    assert entries == 4
    # Size-bounded gc keeps the newest entries.
    removed = cache.gc(max_bytes=total // 2)
    assert removed >= 1
    assert cache.disk_usage()[1] <= total // 2
    assert cache.clear() >= cache.disk_usage()[0]
    assert cache.disk_usage() == (0, 0)
    assert cache.gc(max_age_seconds=0.0) == 0  # empty dir: nothing to do


def test_report_is_metrics_schema_valid(tmp_path):
    from repro.obs.export import validate_metrics_record

    with CompileCache(directory=str(tmp_path)) as cache:
        _compile(cache)
        _compile(cache)
    assert validate_metrics_record(cache.report()) == []
