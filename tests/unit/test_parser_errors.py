"""Malformed-PTX corpus: every parse failure must carry line context.

``PtxParseError`` is the contract between the fuzzer's triage layer and
the parser — buckets key on the normalized message, reducers re-parse
candidates constantly, and a bare ``ValueError`` with no position would
make a parser defect unactionable.  Each corpus entry asserts both that
the typed error is raised and that ``lineno``/``line`` point at the
offending text.
"""

import pytest

from repro.ir.parser import PtxParseError, parse_kernel, parse_module

GOOD = """\
.entry k (.param .ptr A) {
ENTRY:
  ld.param.u32 %a, [A];
  mov.u32 %v, 7;
  st.global.u32 [%a], %v;
  ret;
}
"""


def _parse_error(source: str) -> PtxParseError:
    with pytest.raises(PtxParseError) as exc_info:
        parse_kernel(source)
    return exc_info.value


class TestPtxParseErrorContext:
    def test_good_kernel_parses(self):
        kernel = parse_kernel(GOOD)
        assert kernel.name == "k"

    def test_is_value_error(self):
        # pre-existing callers catch ValueError; the typed error must
        # stay inside that contract
        err = _parse_error("garbage that is not ptx")
        assert isinstance(err, ValueError)

    def test_unknown_instruction_line(self):
        src = GOOD.replace("  mov.u32 %v, 7;", "  frobnicate %v, 7;")
        err = _parse_error(src)
        assert err.lineno == 4
        assert "frobnicate" in (err.line or "")

    def test_bad_operand_line(self):
        src = GOOD.replace("  mov.u32 %v, 7;", "  mov.u32 %v, @@;")
        err = _parse_error(src)
        assert err.lineno == 4
        assert "@@" in (err.line or "")

    def test_missing_entry_header(self):
        err = _parse_error("ENTRY:\n  ret;\n")
        assert err.lineno is not None

    def test_multi_kernel_points_at_second_entry(self):
        src = GOOD + "\n" + GOOD.replace(".entry k ", ".entry k2 ")
        err = _parse_error(src)
        assert "exactly one kernel" in str(err)
        # lineno points at the second .entry, not the end of input
        assert err.lineno == 9
        assert ".entry k2" in (err.line or "")
        # the same source is fine for the module-level entry point
        assert len(parse_module(src).kernels) == 2

    def test_message_mentions_count(self):
        src = GOOD + "\n" + GOOD.replace(".entry k ", ".entry k2 ")
        err = _parse_error(src)
        assert "got 2" in str(err)


@pytest.mark.parametrize(
    "mangle",
    [
        lambda s: s.replace("ld.param.u32 %a, [A];", "ld.param.u32 %a A;"),
        lambda s: s.replace("st.global.u32 [%a], %v;",
                            "st.global.u32 [%a} %v;"),
        lambda s: s.replace("mov.u32 %v, 7;", "mov.u99 %v, 7;"),
        lambda s: s.replace("ret;", "ret"),
    ],
    ids=["param-brackets", "store-brace", "bad-dtype", "no-semicolon"],
)
def test_corpus_errors_have_position(mangle):
    src = mangle(GOOD)
    assert src != GOOD, "mangle must change the source"
    try:
        parse_kernel(src)
    except PtxParseError as err:
        assert err.lineno is not None and err.lineno >= 1
        assert err.line is not None and err.line.strip()
        assert f"line {err.lineno}" in str(err)
    # some mangles may still parse (the grammar is permissive about
    # trailing semicolons); reaching here without PtxParseError is fine
