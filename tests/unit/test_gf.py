"""Finite-field and GF(2)-polynomial arithmetic underpinning the BCH codes."""

import pytest

from repro.coding.gf import (
    GF2m,
    bch_generator,
    field,
    poly2_degree,
    poly2_gcd,
    poly2_lcm,
    poly2_mod,
    poly2_mul,
    poly2_eval_in_field,
)


class TestGF2m:
    def test_field_sizes(self):
        for m in (3, 4, 5, 6, 8):
            gf = field(m)
            assert gf.size == 1 << m
            assert gf.order == (1 << m) - 1

    def test_exp_log_inverse_relationship(self):
        gf = field(6)
        for x in range(1, gf.size):
            assert gf.exp[gf.log[x]] == x

    def test_alpha_generates_whole_group(self):
        gf = field(6)
        seen = {gf.alpha_pow(i) for i in range(gf.order)}
        assert seen == set(range(1, gf.size))

    def test_mul_identity_and_zero(self):
        gf = field(6)
        for x in range(gf.size):
            assert gf.mul(x, 1) == x
            assert gf.mul(x, 0) == 0

    def test_mul_commutative_and_associative(self):
        gf = field(4)
        elems = range(gf.size)
        for a in elems:
            for bb in elems:
                assert gf.mul(a, bb) == gf.mul(bb, a)
        for a in (3, 7, 11):
            for bb in (2, 5, 13):
                for c in (1, 9, 15):
                    assert gf.mul(gf.mul(a, bb), c) == gf.mul(a, gf.mul(bb, c))

    def test_inverse(self):
        gf = field(6)
        for x in range(1, gf.size):
            assert gf.mul(x, gf.inv(x)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            field(6).inv(0)

    def test_div(self):
        gf = field(5)
        for a in range(1, gf.size):
            for bb in range(1, gf.size):
                q = gf.div(a, bb)
                assert gf.mul(q, bb) == a

    def test_pow(self):
        gf = field(6)
        assert gf.pow(2, 0) == 1
        x = 5
        acc = 1
        for e in range(1, 10):
            acc = gf.mul(acc, x)
            assert gf.pow(x, e) == acc

    def test_minimal_polynomial_has_element_as_root(self):
        gf = field(6)
        for e in (2, 3, 5, 7, 21):
            mp = gf.minimal_polynomial(e)
            assert poly2_eval_in_field(mp, e, gf) == 0

    def test_minimal_polynomial_of_primitive_element_is_primitive_poly(self):
        gf = field(6)
        assert gf.minimal_polynomial(2) == 0b1000011

    def test_unknown_m_raises(self):
        with pytest.raises(ValueError):
            GF2m(99)


class TestPoly2:
    def test_degree(self):
        assert poly2_degree(0) == -1
        assert poly2_degree(1) == 0
        assert poly2_degree(0b1011) == 3

    def test_mul_distributes_over_xor(self):
        a, b, c = 0b1101, 0b111, 0b1001
        assert poly2_mul(a, b ^ c) == poly2_mul(a, b) ^ poly2_mul(a, c)

    def test_mod_smaller_than_divisor(self):
        a, m = 0b110110101, 0b1011
        r = poly2_mod(a, m)
        assert poly2_degree(r) < poly2_degree(m)

    def test_mod_exact_division(self):
        a, b = 0b1101, 0b111
        prod = poly2_mul(a, b)
        assert poly2_mod(prod, a) == 0
        assert poly2_mod(prod, b) == 0

    def test_gcd_of_coprime(self):
        # x and x+1 are coprime
        assert poly2_gcd(0b10, 0b11) == 1

    def test_lcm_divisible_by_both(self):
        a, b = 0b111, 0b1011  # irreducible polys
        l = poly2_lcm(a, b)
        assert poly2_mod(l, a) == 0
        assert poly2_mod(l, b) == 0

    def test_lcm_of_equal_is_self(self):
        assert poly2_lcm(0b111, 0b111) == 0b111


class TestBchGenerator:
    def test_generator_degree_bounds(self):
        # t=2 over GF(2^6): deg <= 12; t=3: deg <= 18
        assert poly2_degree(bch_generator(6, 2)) <= 12
        assert poly2_degree(bch_generator(6, 3)) <= 18

    def test_generator_has_required_roots(self):
        gf = field(6)
        for t in (1, 2, 3):
            g = bch_generator(6, t)
            for i in range(1, 2 * t + 1):
                assert poly2_eval_in_field(g, gf.alpha_pow(i), gf) == 0

    def test_generator_t1_is_minimal_polynomial_product(self):
        # t=1: lcm(m1, m2) == m1 (conjugates share a minimal polynomial)
        gf = field(6)
        assert bch_generator(6, 1) == gf.minimal_polynomial(2)
