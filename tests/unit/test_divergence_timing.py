"""Divergence-aware warp timing: a warp pays for every path its members
take (lockstep SIMT serializes divergent paths)."""

import pytest

from repro.gpusim import Executor, Launch, MemoryImage, TimingModel, FERMI_C2050
from repro.ir import KernelBuilder


def divergent_kernel(work_insts=16):
    """Even threads take a long path, odd threads a short one."""
    b = KernelBuilder("div", params=[("OUT", "ptr")])
    tid = b.special_u32("%tid.x")
    out = b.ld_param("OUT")
    bit = b.and_(tid, 1)
    p = b.setp("eq", bit, 0)
    b.bra("LONG", pred=p)
    # short path
    b.mov(1, dst=b.reg("u32", "%x"))
    b.bra("JOIN")
    b.label("LONG")
    x = b.mov(0, dst=b.reg("u32", "%x"))
    for _ in range(work_insts):
        b.add(x, 3, dst=x)
    b.label("JOIN")
    off = b.shl(tid, 2)
    b.st("global", b.add(out, off), b.reg("u32", "%x"))
    b.ret()
    return b.finish()


def uniform_kernel(work_insts=16):
    """Every thread takes the long path."""
    b = KernelBuilder("uni", params=[("OUT", "ptr")])
    tid = b.special_u32("%tid.x")
    out = b.ld_param("OUT")
    x = b.mov(0, dst=b.reg("u32", "%x"))
    for _ in range(work_insts):
        b.add(x, 3, dst=x)
    off = b.shl(tid, 2)
    b.st("global", b.add(out, off), x)
    b.ret()
    return b.finish()


def _warp_counts(kernel, block=32):
    mem = MemoryImage()
    addr = mem.alloc_global(block)
    mem.set_param("OUT", addr)
    result = Executor(kernel, rf_code_factory=lambda: None).run(
        Launch(grid=1, block=block), mem
    )
    return result


def test_divergent_warp_pays_for_both_paths():
    div = _warp_counts(divergent_kernel())
    uni = _warp_counts(uniform_kernel())
    div_alu = div.warp_counts[(0, 0)]["alu"]
    uni_alu = uni.warp_counts[(0, 0)]["alu"]
    # the divergent warp issues the long path AND the short path
    assert div_alu > uni_alu


def test_uniform_warp_counts_each_block_once():
    uni = _warp_counts(uniform_kernel(work_insts=10))
    counts = uni.warp_counts[(0, 0)]
    # ld.param + mov + 10 adds + shl + add + mov(tid) + setp? none here...
    # exact: mov tid, ld param, mov x, 10 adds, shl, add = 15 ALU-class
    assert counts["alu"] == 15
    assert counts["st_global"] == 1


def test_loop_warp_pays_per_iteration():
    b = KernelBuilder("loop", params=[("OUT", "ptr"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    out = b.ld_param("OUT")
    n = b.ld_param("n")
    i = b.mov(0, dst=b.reg("u32", "%i"))
    b.label("HEAD")
    p = b.setp("ge", i, n)
    b.bra("EXIT", pred=p)
    b.add(i, 1, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    off = b.shl(tid, 2)
    b.st("global", b.add(out, off), i)
    b.ret()
    kernel = b.finish()

    def run(n):
        mem = MemoryImage()
        addr = mem.alloc_global(32)
        mem.set_param("OUT", addr)
        mem.set_param("n", n)
        result = Executor(kernel, rf_code_factory=lambda: None).run(
            Launch(grid=1, block=32), mem
        )
        return result.warp_counts[(0, 0)]["alu"]

    assert run(8) > run(2)
    # per-iteration cost is linear: HEAD (setp+bra) + body (add+bra) = 4
    assert run(8) - run(2) == 6 * 4


def test_divergent_timing_slower_than_uniform():
    model = TimingModel(FERMI_C2050)
    div = _warp_counts(divergent_kernel())
    uni = _warp_counts(uniform_kernel())
    t_div = model.estimate(div, 32, 1, 8, 0).cycles
    t_uni = model.estimate(uni, 32, 1, 8, 0).cycles
    assert t_div > t_uni
