"""Storage assignment, recovery tables, and code generation."""

import pytest

from repro.core.codegen import GLOBAL_CKPT_SYMBOL, SHARED_CKPT_SYMBOL
from repro.core.pipeline import (
    LaunchConfig,
    PennyCompiler,
    PennyConfig,
)
from repro.core.storage import (
    SlotAssignment,
    StorageBudget,
    StorageKind,
    assign_storage,
)
from repro.ir import KernelBuilder, St
from repro.ir.types import MemSpace, SymRef


def loop_kernel():
    b = KernelBuilder("k", params=[("A", "ptr"), ("n", "u32")])
    a = b.ld_param("A")
    n = b.ld_param("n")
    i = b.mov(0, dst=b.reg("u32", "%i"))
    b.label("HEAD")
    p = b.setp("ge", i, n)
    b.bra("EXIT", pred=p)
    off = b.shl(i, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    v2 = b.mul(v, 2)
    b.st("global", addr, v2)
    b.add(i, 1, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    b.ret()
    return b.finish()


def compile_loop(**config_kwargs):
    defaults = dict(overwrite="sa")
    defaults.update(config_kwargs)
    compiler = PennyCompiler(PennyConfig(**defaults))
    return compiler.compile(
        loop_kernel(), LaunchConfig(threads_per_block=32, num_blocks=2)
    )


class TestStorageBudget:
    def test_occupancy_blocks(self):
        budget = StorageBudget(
            shared_per_sm=48 * 1024,
            max_blocks_per_sm=8,
            max_threads_per_sm=1536,
            threads_per_block=256,
            kernel_shared_bytes=0,
        )
        assert budget.occupancy_blocks() == 6  # threads-limited
        assert budget.occupancy_blocks(48 * 1024) == 1  # shared-limited

    def test_occupancy_preserving_shared(self):
        budget = StorageBudget(
            shared_per_sm=48 * 1024,
            max_blocks_per_sm=8,
            max_threads_per_sm=1536,
            threads_per_block=256,
            kernel_shared_bytes=0,
        )
        limit = budget.occupancy_preserving_shared()
        assert budget.occupancy_blocks(limit) == budget.occupancy_blocks(0)
        assert budget.occupancy_blocks(limit + 4096) < budget.occupancy_blocks(0)

    def test_kernel_shared_counts_against_budget(self):
        tight = StorageBudget(
            shared_per_sm=8 * 1024,
            threads_per_block=256,
            kernel_shared_bytes=4 * 1024,
        )
        assert tight.occupancy_blocks() == 2
        assert tight.occupancy_preserving_shared() == 0


class TestStorageModes:
    def test_global_mode_uses_no_shared(self):
        result = compile_loop(storage_mode="global")
        storage = result.kernel.meta["storage_assignment"]
        assert storage.shared_slots == 0
        assert storage.global_slots > 0

    def test_shared_mode_uses_no_global(self):
        result = compile_loop(storage_mode="shared")
        storage = result.kernel.meta["storage_assignment"]
        assert storage.global_slots == 0
        assert storage.shared_slots > 0

    def test_auto_fits_in_occupancy_budget(self):
        result = compile_loop(storage_mode="auto")
        storage = result.kernel.meta["storage_assignment"]
        # tiny kernel: everything fits in shared without occupancy loss
        assert storage.global_slots == 0

    def test_colored_registers_get_two_slots(self):
        result = compile_loop(storage_mode="shared")
        storage = result.kernel.meta["storage_assignment"]
        coloring = result.coloring
        assert coloring is not None
        for reg in coloring.colored_registers:
            assert (reg.name, 0) in storage.slots
            assert (reg.name, 1) in storage.slots

    def test_invalid_mode_rejected(self):
        from repro.analysis import CFG
        from repro.core.checkpoints import CheckpointPlan
        from repro.core.costmodel import CostModel

        k = loop_kernel()
        cfg = CFG(k)
        with pytest.raises(ValueError):
            assign_storage(
                CheckpointPlan(),
                cfg,
                CostModel.for_cfg(cfg),
                StorageBudget(),
                mode="flash",
            )


class TestCodegen:
    def test_checkpoints_lowered_to_stores(self):
        result = compile_loop()
        ckpt_stores = [
            inst
            for blk in result.kernel.blocks
            for inst in blk.instructions
            if isinstance(inst, St)
            and (
                (isinstance(inst.base, SymRef)
                 and inst.base.name in (SHARED_CKPT_SYMBOL, GLOBAL_CKPT_SYMBOL))
                or (hasattr(inst.base, "name")
                    and inst.base.name.startswith(("%ckb_", "%ca")))
            )
        ]
        assert len(ckpt_stores) == result.codegen.emitted_checkpoints

    def test_low_opts_reduce_address_instructions(self):
        with_opts = compile_loop(low_opts=True)
        without = compile_loop(low_opts=False)
        assert (
            with_opts.codegen.emitted_address_insts
            < without.codegen.emitted_address_insts
        )

    def test_shared_storage_declared(self):
        result = compile_loop(storage_mode="shared")
        names = [d.name for d in result.kernel.shared]
        assert SHARED_CKPT_SYMBOL in names

    def test_global_words_reserved(self):
        result = compile_loop(storage_mode="global")
        assert result.kernel.meta["ckpt_global_words"] > 0

    def test_adjustment_blocks_recorded(self):
        result = compile_loop()
        if result.coloring and result.coloring.adjustments:
            adj = result.kernel.meta["adjustment_blocks"]
            labels = {blk.label for blk in result.kernel.blocks}
            assert adj <= labels

    def test_kernel_still_validates(self):
        result = compile_loop()
        result.kernel.validate()


class TestRecoveryTable:
    def test_every_boundary_has_entry(self):
        result = compile_loop()
        for boundary in result.regions.boundaries:
            assert boundary in result.recovery.regions

    def test_live_ins_all_restorable(self):
        result = compile_loop()
        for label, entry in result.recovery.regions.items():
            for action in entry.restores:
                assert action.is_slot or action.slice_expr is not None

    def test_slot_restores_have_slots(self):
        result = compile_loop()
        storage = result.kernel.meta["storage_assignment"]
        for entry in result.recovery.regions.values():
            for action in entry.restores:
                if action.is_slot:
                    assert (action.reg_name, action.slot_color) in storage.slots

    def test_adjustment_entries_are_mini_regions(self):
        result = compile_loop()
        adj_labels = result.kernel.meta.get("adjustment_blocks", set())
        for label in adj_labels:
            entry = result.recovery.regions[label]
            assert entry.mini_region
            assert entry.restores

    def test_ckb_base_registers_restorable_everywhere(self):
        result = compile_loop()
        if not result.codegen.extra_slices:
            pytest.skip("no preamble registers emitted")
        for entry in result.recovery.regions.values():
            restored = {a.reg_name for a in entry.restores}
            for reg_name in result.codegen.extra_slices:
                assert reg_name in restored
