"""PDDG validation and the pruning algorithms (§6.4)."""

import pytest

from repro.analysis import CFG, AliasAnalysis, LoopInfo, ReachingDefs
from repro.analysis.postdom import ControlDependence
from repro.core.checkpoints import PruneState, eager_plan
from repro.core.hazards import materialize_instances
from repro.core.liveins import analyze_liveins
from repro.core.pddg import PddgValidator, VState
from repro.core.pruning import prune_basic, prune_none, prune_optimal
from repro.core.regions import form_regions
from repro.core.slices import SLoad, SOp, slice_size, slots_used
from repro.ir import KernelBuilder
from repro.ir.types import Reg


def _setup(kernel):
    regions = form_regions(kernel)
    cfg = CFG(kernel)
    rdefs = ReachingDefs(cfg)
    liveins = analyze_liveins(kernel, regions, cfg=cfg, rdefs=rdefs)
    plan = eager_plan(liveins)
    instances = materialize_instances(plan, cfg)
    validator = PddgValidator(
        cfg,
        rdefs,
        plan,
        instances,
        AliasAnalysis(cfg, rdefs),
        LoopInfo(cfg),
        ControlDependence(cfg),
        None,
    )
    return plan, validator


def recomputable_kernel():
    """Live-ins derived from params and tid only — all prunable.  The load
    exists purely to force an anti-dependence cut; its value is dead."""
    b = KernelBuilder("k", params=[("A", "ptr")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    off = b.shl(tid, 2)
    addr = b.add(a, off)
    b.ld("global", addr, dtype="u32")
    x = b.mul(tid, 3)
    b.st("global", addr, x)
    b.st("global", addr, tid, offset=4096)
    b.ret()
    return b.finish()


def loaded_value_kernel():
    """A live-in loaded from memory that the kernel itself overwrites —
    not recomputable, must stay committed."""
    b = KernelBuilder("k", params=[("A", "ptr")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    off = b.shl(tid, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    v2 = b.mul(v, 3)
    b.st("global", addr, v2)
    b.st("global", addr, v2, offset=4)
    b.ret()
    return b.finish()


def loop_carried_kernel():
    b = KernelBuilder("k", params=[("A", "ptr"), ("n", "u32")])
    a = b.ld_param("A")
    n = b.ld_param("n")
    acc = b.mov(0, dst=b.reg("u32", "%acc"))
    i = b.mov(0, dst=b.reg("u32", "%i"))
    b.label("HEAD")
    p = b.setp("ge", i, n)
    b.bra("EXIT", pred=p)
    off = b.shl(i, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    b.add(acc, v, dst=acc)
    b.st("global", addr, acc)
    b.add(i, 1, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    b.ret()
    return b.finish()


class TestPhase1Validation:
    def test_address_chain_is_valid(self):
        plan, validator = _setup(recomputable_kernel())
        states = {
            cp.reg.name: validator.validate_checkpoint(cp)
            for cp in plan.checkpoints
        }
        # tid, the address chain, and x = tid*3 recompute from specials
        # and params — all valid with materialized slices
        for name, marked in states.items():
            assert marked.state is VState.VALID, name
            assert marked.expr is not None, name

    def test_overwritten_load_is_invalid(self):
        plan, validator = _setup(loaded_value_kernel())
        # v2 = 3 * (load that the kernel's own store may overwrite)
        v2_cps = [
            cp for cp in plan.checkpoints
            if any(
                isinstance(n, int) for n in [0]
            ) and cp.reg.name not in ("%v0",)
        ]
        results = {
            cp.reg.name: validator.validate_checkpoint(cp).state
            for cp in plan.checkpoints
        }
        assert VState.INVALID in results.values()

    def test_loop_carried_is_invalid(self):
        plan, validator = _setup(loop_carried_kernel())
        acc_cps = plan.of_register(Reg("%acc"))
        assert acc_cps
        for cp in acc_cps:
            assert validator.validate_checkpoint(cp).state in (
                VState.INVALID,
                VState.UNDECIDED,
            )

    def test_memory_intact_respects_reachability(self):
        plan, validator = _setup(recomputable_kernel())
        cfg = validator.cfg
        # find the load and the store positions
        for blk in cfg.blocks:
            for i, inst in enumerate(blk.instructions):
                if inst.is_memory_read and not inst.space.read_only:
                    # the in-place store overwrites this exact address
                    assert not validator.memory_intact(blk.label, i)


class TestOptimalPruning:
    def test_recomputable_kernel_fully_pruned(self):
        plan, validator = _setup(recomputable_kernel())
        result = prune_optimal(plan, validator)
        assert len(plan.pruned()) == len(plan.checkpoints)
        assert set(result.slices) == {cp.key for cp in plan.checkpoints}

    def test_loop_carried_stays_committed(self):
        plan, validator = _setup(loop_carried_kernel())
        prune_optimal(plan, validator)
        for cp in plan.of_register(Reg("%acc")):
            assert cp.state is PruneState.COMMITTED

    def test_stats_consistent(self):
        plan, validator = _setup(loop_carried_kernel())
        result = prune_optimal(plan, validator)
        assert result.stats["pruned"] + result.stats["committed"] == result.stats["total"]
        assert result.stats["pruned"] == len(plan.pruned())

    def test_slices_reference_only_safe_sources(self):
        plan, validator = _setup(recomputable_kernel())
        result = prune_optimal(plan, validator)
        for expr in result.slices.values():
            assert slice_size(expr) >= 1
            for slot in slots_used(expr):
                # any slot referenced must belong to a committed checkpoint
                assert any(
                    cp.reg.name == slot.reg_name
                    and cp.state is PruneState.COMMITTED
                    for cp in plan.checkpoints
                )


class TestBasicPruning:
    def test_solution_is_valid(self):
        plan, validator = _setup(recomputable_kernel())
        prune_basic(plan, validator, attempts=32, seed=5)
        # the committed+pruned decision must be self-consistent: rerun the
        # validator against the final decisions
        def decision(cp):
            return cp.state

        for cp in plan.pruned():
            marked = validator.validate_checkpoint(cp, decision=decision)
            assert marked.state is VState.VALID

    def test_prunes_no_more_than_optimal(self):
        k1 = recomputable_kernel()
        k2 = recomputable_kernel()
        plan_b, val_b = _setup(k1)
        plan_o, val_o = _setup(k2)
        prune_basic(plan_b, val_b, attempts=32, seed=7)
        prune_optimal(plan_o, val_o)
        assert len(plan_b.pruned()) <= len(plan_o.pruned())

    def test_falls_back_to_empty_pruning(self):
        plan, validator = _setup(loop_carried_kernel())
        prune_basic(plan, validator, attempts=1, seed=1)
        # whatever happened, every checkpoint has a final decision
        assert all(
            cp.state in (PruneState.PRUNED, PruneState.COMMITTED)
            for cp in plan.checkpoints
        )

    def test_deterministic_given_seed(self):
        plan1, val1 = _setup(recomputable_kernel())
        plan2, val2 = _setup(recomputable_kernel())
        prune_basic(plan1, val1, attempts=16, seed=99)
        prune_basic(plan2, val2, attempts=16, seed=99)
        assert [cp.state for cp in plan1.checkpoints] == [
            cp.state for cp in plan2.checkpoints
        ]


class TestPruneNone:
    def test_everything_committed(self):
        plan, validator = _setup(recomputable_kernel())
        prune_none(plan)
        assert len(plan.committed()) == len(plan.checkpoints)
        assert plan.stats["pruned"] == 0
