"""Recovery tables, restore actions, and slice expressions in isolation."""

import pytest

from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.core.recovery_meta import RestoreAction
from repro.core.slices import (
    SImm,
    SLoad,
    SOp,
    SSelp,
    SSetp,
    SSlot,
    SSpecial,
    SSymRef,
    slice_size,
    slots_used,
)
from repro.gpusim.executor import Executor, Launch, f2b
from repro.gpusim.memory import MemoryImage
from repro.ir import KernelBuilder
from repro.ir.types import DType, MemSpace


class TestSliceExpressions:
    def test_slice_size_counts_nodes(self):
        expr = SOp(
            "add",
            DType.U32,
            (SImm(1), SOp("mul", DType.U32, (SSpecial("%tid.x"), SImm(4)))),
        )
        assert slice_size(expr) == 5

    def test_slice_size_of_leaves(self):
        for leaf in (SImm(0), SSpecial("%tid.x"), SSymRef("A"), SSlot("%r", 0)):
            assert slice_size(leaf) == 1

    def test_selp_and_setp_sizes(self):
        pred = SSetp("lt", DType.U32, SImm(1), SImm(2))
        sel = SSelp(DType.U32, SImm(10), SImm(20), pred)
        assert slice_size(pred) == 3
        assert slice_size(sel) == 6

    def test_slots_used_walks_everything(self):
        expr = SSelp(
            DType.U32,
            SSlot("%a", 0),
            SLoad(MemSpace.GLOBAL, DType.U32, SSlot("%b", 1), 4),
            SSetp("eq", DType.U32, SSlot("%c", 0), SImm(0)),
        )
        found = {(s.reg_name, s.color) for s in slots_used(expr)}
        assert found == {("%a", 0), ("%b", 1), ("%c", 0)}

    def test_slice_size_rejects_garbage(self):
        with pytest.raises(TypeError):
            slice_size("not a slice")


class TestRestoreAction:
    def test_slot_action(self):
        action = RestoreAction(reg_name="%r1", dtype="u32", slot_color=1)
        assert action.is_slot

    def test_slice_action(self):
        action = RestoreAction(
            reg_name="%r1", dtype="u32", slice_expr=SImm(7)
        )
        assert not action.is_slot


class TestSliceEvaluation:
    """Drive the recovery runtime's evaluator through a compiled kernel by
    corrupting registers that are restored via slices."""

    def _compiled(self):
        b = KernelBuilder("k", params=[("A", "ptr"), ("bias", "u32")])
        tid = b.special_u32("%tid.x")
        a = b.ld_param("A")
        bias = b.ld_param("bias")
        off = b.shl(tid, 2)
        addr = b.add(a, off)
        b.ld("global", addr, dtype="u32")  # anti-dep trigger (dead value)
        x = b.add(tid, bias)  # recomputable live-in: slice = tid + [bias]
        b.st("global", addr, x)
        y = b.mul(x, 2)
        b.st("global", addr, y, offset=256)
        b.ret()
        return PennyCompiler(PennyConfig(overwrite="sa")).compile(
            b.finish(), LaunchConfig(threads_per_block=16, num_blocks=1)
        )

    def test_sliced_registers_pruned(self):
        result = self._compiled()
        assert result.stats["checkpoints_pruned"] > 0
        # every boundary restore must be slice-based for the pruned regs
        slice_restores = [
            a
            for entry in result.recovery.regions.values()
            for a in entry.restores
            if not a.is_slot
        ]
        assert slice_restores

    def test_recovery_through_slices(self):
        from repro.gpusim.faults import FaultOutcome, FaultPlan, FaultCampaign

        result = self._compiled()

        def make_memory():
            mem = MemoryImage()
            addr = mem.alloc_global(128)
            mem.set_param("A", addr)
            mem.set_param("bias", 100)
            return mem

        campaign = FaultCampaign(
            result.kernel, Launch(1, 16), make_memory, (0, 128)
        )
        golden = campaign.golden_output()
        assert golden[:4] == [100, 101, 102, 103]
        report = campaign.run_random(30, seed=42, bits_per_fault=1)
        summary = report.summary()
        assert summary["sdc"] == 0 and summary["due"] == 0
        assert summary["recovered"] > 0


class TestRecoveryTableShape:
    def test_no_duplicate_restores_per_entry(self):
        from repro.bench import get_benchmark

        bench = get_benchmark("STC")
        wl = bench.workload()
        result = PennyCompiler(PennyConfig(overwrite="sa")).compile(
            bench.fresh_kernel(), wl.launch_config
        )
        for entry in result.recovery.regions.values():
            names = [a.reg_name for a in entry.restores]
            assert len(names) == len(set(names)), entry.entry_label

    def test_forced_commits_counted(self):
        from repro.bench import get_benchmark

        bench = get_benchmark("STC")
        wl = bench.workload()
        result = PennyCompiler(PennyConfig(overwrite="sa")).compile(
            bench.fresh_kernel(), wl.launch_config
        )
        assert result.recovery.forced_commits >= 0
