"""CFG, dominators, loops, liveness, reaching definitions, postdominators."""

import pytest

from repro.analysis import (
    CFG,
    DefSite,
    Dominators,
    Liveness,
    LoopInfo,
    ReachingDefs,
)
from repro.analysis.postdom import ControlDependence, PostDominators
from repro.ir import KernelBuilder
from repro.ir.types import Reg


def diamond_kernel():
    """if (tid < n) x = 1 else x = 2; out[tid] = x"""
    b = KernelBuilder("diamond", params=[("OUT", "ptr"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    n = b.ld_param("n")
    out = b.ld_param("OUT")
    x = b.reg("u32", "%x")
    p = b.setp("lt", tid, n)
    b.bra("THEN", pred=p)
    b.mov(2, dst=x)
    b.bra("JOIN")
    b.label("THEN")
    b.mov(1, dst=x)
    b.label("JOIN")
    off = b.shl(tid, 2)
    addr = b.add(out, off)
    b.st("global", addr, x)
    b.ret()
    return b.finish()


def loop_kernel():
    b = KernelBuilder("loop", params=[("A", "ptr"), ("n", "u32")])
    n = b.ld_param("n")
    a = b.ld_param("A")
    i = b.mov(0, dst=b.reg("u32", "%i"))
    acc = b.mov(0, dst=b.reg("u32", "%acc"))
    b.label("HEAD")
    p = b.setp("ge", i, n)
    b.bra("EXIT", pred=p)
    off = b.shl(i, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    b.add(acc, v, dst=acc)
    b.add(i, 1, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    b.st("global", a, acc)
    b.ret()
    return b.finish()


def nested_loop_kernel():
    b = KernelBuilder("nested", params=[("n", "u32")])
    n = b.ld_param("n")
    i = b.mov(0, dst=b.reg("u32", "%i"))
    acc = b.mov(0, dst=b.reg("u32", "%acc"))
    b.label("OUTER")
    pi = b.setp("ge", i, n)
    b.bra("END", pred=pi)
    j = b.mov(0, dst=b.reg("u32", "%j"))
    b.label("INNER")
    pj = b.setp("ge", j, n)
    b.bra("NEXT", pred=pj)
    b.add(acc, 1, dst=acc)
    b.add(j, 1, dst=j)
    b.bra("INNER")
    b.label("NEXT")
    b.add(i, 1, dst=i)
    b.bra("OUTER")
    b.label("END")
    b.ret()
    return b.finish()


class TestCFG:
    def test_diamond_structure(self):
        cfg = CFG(diamond_kernel())
        succs = cfg.successors("ENTRY")
        assert len(succs) == 2
        assert "THEN" in succs
        join_preds = cfg.predecessors("JOIN")
        assert len(join_preds) == 2

    def test_loop_back_edge(self):
        cfg = CFG(loop_kernel())
        assert "HEAD" in cfg.reverse_postorder()
        # the loop body branches back to HEAD
        assert any(
            "HEAD" in cfg.successors(lbl)
            for lbl in cfg.preds["HEAD"]
            if lbl != "ENTRY"
        )

    def test_rpo_starts_at_entry(self):
        for k in (diamond_kernel(), loop_kernel(), nested_loop_kernel()):
            assert CFG(k).reverse_postorder()[0] == "ENTRY"

    def test_reachable_covers_all_blocks(self):
        cfg = CFG(diamond_kernel())
        assert cfg.reachable() == {blk.label for blk in cfg.blocks}


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = CFG(diamond_kernel())
        dom = Dominators(cfg)
        for blk in cfg.blocks:
            assert dom.dominates("ENTRY", blk.label)

    def test_branch_arms_do_not_dominate_join(self):
        cfg = CFG(diamond_kernel())
        dom = Dominators(cfg)
        assert not dom.dominates("THEN", "JOIN")

    def test_loop_header_dominates_body(self):
        cfg = CFG(loop_kernel())
        dom = Dominators(cfg)
        body = [
            lbl for lbl in cfg.preds["HEAD"] if lbl != "ENTRY"
        ]
        for lbl in body:
            assert dom.dominates("HEAD", lbl)

    def test_dominators_of_chain(self):
        cfg = CFG(loop_kernel())
        dom = Dominators(cfg)
        chain = dom.dominators_of("EXIT")
        assert chain[0] == "EXIT"
        assert chain[-1] == "ENTRY"


class TestLoops:
    def test_single_loop_found(self):
        li = LoopInfo(CFG(loop_kernel()))
        assert len(li.loops) == 1
        assert li.loops[0].header == "HEAD"
        assert li.depth_of("HEAD") == 1
        assert li.depth_of("ENTRY") == 0

    def test_nested_depths(self):
        li = LoopInfo(CFG(nested_loop_kernel()))
        assert li.depth_of("OUTER") == 1
        assert li.depth_of("INNER") == 2
        assert li.depth_of("END") == 0

    def test_nesting_parents(self):
        li = LoopInfo(CFG(nested_loop_kernel()))
        inner = next(l for l in li.loops if l.header == "INNER")
        outer = next(l for l in li.loops if l.header == "OUTER")
        assert inner.parent is outer
        assert inner in outer.children

    def test_no_loops_in_diamond(self):
        assert LoopInfo(CFG(diamond_kernel())).loops == []


class TestLiveness:
    def test_loop_carried_register_live_at_header(self):
        cfg = CFG(loop_kernel())
        lv = Liveness(cfg)
        assert Reg("%i") in lv.live_in["HEAD"]
        assert Reg("%acc") in lv.live_in["HEAD"]

    def test_dead_after_last_use(self):
        cfg = CFG(loop_kernel())
        lv = Liveness(cfg)
        assert Reg("%i") not in lv.live_in["EXIT"]
        assert Reg("%acc") in lv.live_in["EXIT"]

    def test_per_point_liveness(self):
        cfg = CFG(diamond_kernel())
        lv = Liveness(cfg)
        join = cfg.block("JOIN")
        # %x is live at JOIN entry, dead after the store that uses it
        assert Reg("%x") in lv.live_before("JOIN", 0)
        st_index = next(
            i for i, inst in enumerate(join.instructions)
            if inst.is_memory_write
        )
        assert Reg("%x") not in lv.live_after("JOIN", st_index)

    def test_guarded_def_does_not_kill(self):
        b = KernelBuilder("g", params=[("OUT", "ptr")])
        out = b.ld_param("OUT")
        x = b.mov(5, dst=b.reg("u32", "%x"))
        p = b.setp("eq", x, 5)
        b.mov(9, dst=x, guard=(p, True))
        b.st("global", out, x)
        b.ret()
        cfg = CFG(b.finish())
        lv = Liveness(cfg)
        # both definitions of %x can reach the store: the unguarded def must
        # stay live through the guarded one
        points = lv.live_points("ENTRY")
        guarded_i = 3
        assert Reg("%x") in points[guarded_i]


class TestReachingDefs:
    def test_join_sees_both_definitions(self):
        k = diamond_kernel()
        cfg = CFG(k)
        rd = ReachingDefs(cfg)
        sites = rd.reaching_at("JOIN", 0, Reg("%x"))
        assert len(sites) == 2
        # one definition per branch arm: THEN and the anonymous else block
        assert "THEN" in {s.label for s in sites}

    def test_loop_register_has_two_reaching_defs_at_header(self):
        cfg = CFG(loop_kernel())
        rd = ReachingDefs(cfg)
        sites = rd.reaching_at("HEAD", 0, Reg("%i"))
        assert len(sites) == 2  # init in ENTRY + increment in the body

    def test_redefinition_kills(self):
        b = KernelBuilder("k", params=[("OUT", "ptr")])
        out = b.ld_param("OUT")
        x = b.mov(1, dst=b.reg("u32", "%x"))
        b.mov(2, dst=x)
        b.st("global", out, x)
        b.ret()
        cfg = CFG(b.finish())
        rd = ReachingDefs(cfg)
        blk = cfg.blocks[0]
        st_index = next(
            i for i, inst in enumerate(blk.instructions)
            if inst.is_memory_write
        )
        sites = rd.reaching_at(blk.label, st_index, Reg("%x"))
        assert len(sites) == 1
        (site,) = sites
        assert blk.instructions[site.index].srcs[0].value == 2

    def test_entry_pseudo_def_for_uninitialized(self):
        b = KernelBuilder("k", params=[("OUT", "ptr")])
        out = b.ld_param("OUT")
        b.st("global", out, Reg("%ghost"))
        b.ret()
        cfg = CFG(b.finish())
        rd = ReachingDefs(cfg)
        sites = rd.reaching_at("ENTRY", 1, Reg("%ghost"))
        assert len(sites) == 1 and next(iter(sites)).is_entry


class TestPostDominators:
    def test_join_postdominates_arms(self):
        cfg = CFG(diamond_kernel())
        pdom = PostDominators(cfg)
        assert pdom.postdominates("JOIN", "THEN")
        assert pdom.postdominates("JOIN", "ENTRY")

    def test_arm_does_not_postdominate_entry(self):
        cfg = CFG(diamond_kernel())
        pdom = PostDominators(cfg)
        assert not pdom.postdominates("THEN", "ENTRY")

    def test_control_dependence_of_arms(self):
        cfg = CFG(diamond_kernel())
        cd = ControlDependence(cfg)
        deps = cd.of("THEN")
        assert len(deps) == 1
        dep = next(iter(deps))
        assert dep.branch_block == "ENTRY"
        assert dep.sense is True  # THEN is the taken edge

    def test_join_is_not_control_dependent(self):
        cfg = CFG(diamond_kernel())
        cd = ControlDependence(cfg)
        assert cd.of("JOIN") == set()

    def test_loop_body_control_dependent_on_exit_test(self):
        cfg = CFG(loop_kernel())
        cd = ControlDependence(cfg)
        body = [lbl for lbl in cfg.preds["HEAD"] if lbl != "ENTRY"]
        deps = cd.of(body[0])
        assert any(d.branch_block == "HEAD" for d in deps)
