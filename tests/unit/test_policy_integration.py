"""End-to-end invariants of the selective-protection policy layer on
real benchmark kernels.

The acceptance contract for ``address-only``: every register the
criticality analysis finds feeding a memory address, branch predicate
or barrier condition is parity-protected (the ``policy-uncovered-addr``
lint rule reports zero violations), while the kernel executes strictly
fewer instructions than under ``full`` wherever ``full`` checkpoints
any register the analysis does not require.
"""

import dataclasses

import pytest

from repro.analysis.cfg import CFG
from repro.analysis.vuln import address_critical_registers
from repro.bench import get_benchmark
from repro.core.pipeline import PennyCompiler
from repro.core.schemes import scheme_config
from repro.lint import Severity, lint_compiled
from repro.policy import ProtectionPolicy

#: benches where full checkpoints more than the critical set — the
#: strict-savings claim must hold on each (the remaining suite is
#: covered by the CI policy-matrix job)
REDUCIBLE = ("STC", "NW", "GAU")


def _compile(abbr, policy):
    bench = get_benchmark(abbr)
    config = dataclasses.replace(scheme_config("Penny"), policy=policy)
    return bench, PennyCompiler(config).compile(
        bench.fresh_kernel(), bench.workload().launch_config
    )


def _dynamic_instructions(bench, result):
    from repro.gpusim import make_executor

    workload = bench.workload()
    mem = workload.make_memory()
    run = make_executor(result.kernel, rf_code_factory=lambda: None).run(
        workload.launch, mem
    )
    return run.instructions


@pytest.mark.parametrize("abbr", REDUCIBLE)
class TestAddressOnlyOnBenchmarks:
    def test_no_uncovered_address_chains(self, abbr):
        _, result = _compile(abbr, "address-only")
        report = lint_compiled(result.kernel)
        assert [
            d for d in report.diagnostics
            if d.rule == "policy-uncovered-addr"
        ] == []
        assert not any(
            d.severity == Severity.ERROR for d in report.diagnostics
        )

    def test_protected_set_covers_final_critical_set(self, abbr):
        _, result = _compile(abbr, "address-only")
        protected = result.kernel.meta["protected_registers"]
        critical = address_critical_registers(CFG(result.kernel))
        assert critical <= protected

    def test_strictly_fewer_instructions_than_full(self, abbr):
        bench, full = _compile(abbr, "full")
        _, addr = _compile(abbr, "address-only")
        n_full = _dynamic_instructions(bench, full)
        n_addr = _dynamic_instructions(bench, addr)
        assert n_addr < n_full

    def test_checkpoint_stores_shrink(self, abbr):
        _, full = _compile(abbr, "full")
        _, addr = _compile(abbr, "address-only")
        assert (
            addr.stats["emitted_checkpoints"]
            < full.stats["emitted_checkpoints"]
        )


class TestUnreducibleBenchStaysSound:
    def test_bfs_ties_because_every_checkpoint_is_critical(self):
        # BFS checkpoints only address/branch-critical registers, so
        # address-only cannot (and must not) drop anything: equal cost,
        # still zero uncovered chains.
        bench, full = _compile("BFS", "full")
        _, addr = _compile("BFS", "address-only")
        assert _dynamic_instructions(bench, addr) == _dynamic_instructions(
            bench, full
        )
        report = lint_compiled(addr.kernel)
        assert [
            d for d in report.diagnostics
            if d.rule == "policy-uncovered-addr"
        ] == []


class TestPolicyCampaign:
    def test_campaign_runs_under_selective_policy(self):
        from repro.gpusim.campaign import CampaignSpec, ParallelCampaign

        spec = CampaignSpec(
            benchmark="STC",
            scheme="Penny",
            rf_code="parity",
            num_injections=6,
            seed=11,
            surfaces=("rf",),
            policy="address-only",
        )
        report = ParallelCampaign(spec).run()
        assert len(report.records) == 6
        assert report.reconciliation()["complete"]

    def test_none_policy_campaign_can_produce_sdc(self):
        from repro.gpusim.campaign import CampaignSpec, ParallelCampaign

        spec = CampaignSpec(
            benchmark="STC",
            scheme="Penny",
            rf_code="parity",
            num_injections=20,
            seed=2020,
            surfaces=("rf",),
            policy="none",
        )
        report = ParallelCampaign(spec).run()
        summary = report.summary()
        # a bare register file under parity hardware: detections are
        # impossible, so every non-masked fault silently corrupts
        assert summary["recovered"] == 0
        assert summary["sdc"] > 0

    def test_journal_preserves_policy(self, tmp_path):
        from repro.gpusim.campaign import (
            CampaignSpec,
            ParallelCampaign,
            load_journal,
        )

        path = tmp_path / "journal.jsonl"
        spec = CampaignSpec(
            benchmark="STC",
            scheme="Penny",
            num_injections=3,
            seed=5,
            policy="address-only",
        )
        ParallelCampaign(spec, journal_path=str(path)).run()
        header, records = load_journal(str(path))
        assert header is not None
        loaded = CampaignSpec.from_dict(header["spec"])
        assert loaded.policy == "address-only"
        assert len(records) == 3


class TestFallbackLattice:
    def test_unprotected_policy_survives_verification(self):
        # the fallback lattice verifies every rung with verify_compiled;
        # a detection-only kernel has no recovery metadata by design and
        # must still verify clean rather than degrade
        from repro.core.verify import verify_compiled

        _, result = _compile("STC", "detection-only")
        assert verify_compiled(result.kernel) == []
        assert result.stats.get("degraded", 0.0) in (0.0, None)

    def test_policy_string_survives_scheme_config(self):
        config = dataclasses.replace(
            scheme_config("Penny"), policy="presage"
        )
        assert (
            str(ProtectionPolicy.parse(config.policy)) == "address-only"
        )
