"""Source locations: the parser attaches a SrcLoc to every instruction,
and the printer can surface them (off by default)."""

import re

from repro.ir import KernelBuilder
from repro.ir.parser import parse_kernel, parse_module
from repro.ir.printer import print_kernel, print_module
from repro.ir.types import SrcLoc

TEXT = """\
// leading comment
.entry k (.param .ptr A, .param .u32 n) {
ENTRY:
  ld.param.u32 %a, [A];
  ld.param.u32 %n, [n];
  setp.ge.u32 %p, %n, 1;
  @%p bra BODY;
  bra EXIT;
BODY:
  ld.global.u32 %v, [%a];
  add.u32 %w, %v, %n;
  st.global.u32 [%a], %w;  // trailing comment
  bra EXIT;
EXIT:
  ret;
}
"""


class TestParserLocs:
    def test_every_instruction_carries_a_loc(self):
        kernel = parse_kernel(TEXT)
        for blk in kernel.blocks:
            for inst in blk.instructions:
                assert isinstance(inst.loc, SrcLoc), inst
                assert inst.loc.line >= 1 and inst.loc.col >= 1
                assert inst.loc.end_col >= inst.loc.col

    def test_lines_point_at_the_source_text(self):
        kernel = parse_kernel(TEXT)
        lines = TEXT.splitlines()
        for blk in kernel.blocks:
            for inst in blk.instructions:
                src = lines[inst.loc.line - 1]
                # the span starts exactly where the instruction text does
                assert src[: inst.loc.col - 1].strip() == ""
                assert src[inst.loc.col - 1] not in (" ", "\t")

    def test_trailing_comment_is_outside_the_span(self):
        kernel = parse_kernel(TEXT)
        store = next(
            i
            for b in kernel.blocks
            for i in b.instructions
            if i.loc.line == 12
        )
        src = TEXT.splitlines()[11]
        spanned = src[store.loc.col - 1 : store.loc.end_col]
        assert spanned.endswith(";")
        assert "//" not in spanned

    def test_builder_instructions_carry_no_loc(self):
        b = KernelBuilder("k", params=[("A", "ptr")])
        a = b.ld_param("A")
        b.st("global", a, a)
        b.ret()
        kernel = b.finish()
        for blk in kernel.blocks:
            for inst in blk.instructions:
                assert inst.loc is None


class TestPrinterLocs:
    def test_locs_off_by_default(self):
        out = print_kernel(parse_kernel(TEXT))
        assert "// loc=" not in out

    def test_locs_flag_annotates_every_parsed_instruction(self):
        kernel = parse_kernel(TEXT)
        out = print_kernel(kernel, locs=True)
        n_inst = sum(len(b.instructions) for b in kernel.blocks)
        annotations = re.findall(r"// loc=(\d+):(\d+)", out)
        assert len(annotations) == n_inst
        assert ("4", "3") in annotations  # first ld.param

    def test_annotated_output_reparses_identically(self):
        kernel = parse_kernel(TEXT)
        round_tripped = parse_kernel(print_kernel(kernel, locs=True))
        assert print_kernel(round_tripped) == print_kernel(kernel)

    def test_print_module_threads_the_flag(self):
        module = parse_module(TEXT)
        assert "// loc=" in print_module(module, locs=True)
        assert "// loc=" not in print_module(module)
