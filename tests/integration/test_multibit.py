"""Multi-bit fault campaigns: the stronger-coding story of Table 1.

Penny's pitch for multi-bit environments: use a bigger *detection* code
(Hamming for 2-bit, SECDED for 3-bit) and keep correcting by re-execution.
These campaigns check each (code, fault magnitude) pairing end to end,
including burst (adjacent-bit) upsets from single particle strikes.
"""

import pytest

from repro.bench import get_benchmark
from repro.coding import HammingCode, SecdedCode
from repro.core.pipeline import PennyCompiler
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.gpusim import FaultCampaign


@pytest.fixture(scope="module")
def protected_stc():
    bench = get_benchmark("STC")
    wl = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    return result.kernel, wl


def _campaign(kernel, wl, code_factory):
    return FaultCampaign(
        kernel,
        wl.launch,
        wl.make_memory,
        wl.output_region(),
        rf_code_factory=code_factory,
    )


def test_hamming_rf_recovers_double_faults(protected_stc):
    """Hamming (38,32) detection-only handles 2-bit errors (Table 1 row 2)."""
    kernel, wl = protected_stc
    campaign = _campaign(kernel, wl, lambda: HammingCode(32))
    summary = campaign.run_random(30, seed=21, bits_per_fault=2).summary()
    assert summary["sdc"] == 0, summary
    assert summary["due"] == 0, summary


def test_secded_rf_recovers_triple_faults(protected_stc):
    """SECDED (39,32) detection-only handles 3-bit errors (Table 1 row 3) —
    what would take TECQED (60,32) with conventional ECC."""
    kernel, wl = protected_stc
    campaign = _campaign(kernel, wl, lambda: SecdedCode(32))
    summary = campaign.run_random(30, seed=22, bits_per_fault=3).summary()
    assert summary["sdc"] == 0, summary
    assert summary["due"] == 0, summary


def test_burst_faults_within_detection_guarantee(protected_stc):
    """3-bit adjacent bursts under a SECDED RF: detected and recovered."""
    kernel, wl = protected_stc
    campaign = _campaign(kernel, wl, lambda: SecdedCode(32))
    summary = campaign.run_random(
        30, seed=23, bits_per_fault=3, pattern="burst"
    ).summary()
    assert summary["sdc"] == 0, summary
    assert summary["due"] == 0, summary


def test_magnitude_beyond_guarantee_can_corrupt(protected_stc):
    """4 flips exceed SECDED's detection-only guarantee: corruption or
    crashes become possible (the reason TECQED-class needs exist at all)."""
    kernel, wl = protected_stc
    campaign = _campaign(kernel, wl, lambda: SecdedCode(32))
    summary = campaign.run_random(60, seed=24, bits_per_fault=4).summary()
    # nothing to assert about exact counts — only that the guarantee's
    # boundary is real: at least one injection must escape cleanly-detected
    # behaviour across a decent sample, or the code is stronger than
    # claimed (which would be a modelling bug)
    escaped = summary["sdc"] + summary["due"]
    recovered_or_masked = summary["masked"] + summary["recovered"]
    assert escaped + recovered_or_masked == 60
    assert escaped > 0, summary


def test_bad_pattern_rejected(protected_stc):
    kernel, wl = protected_stc
    campaign = _campaign(kernel, wl, None)
    with pytest.raises(ValueError):
        campaign.run_random(1, pattern="diagonal")
