"""Campaign supervision under chaos: worker kills, hangs, torn
journals, signal drain, and resume equality.

The acceptance contract: a campaign under a seeded chaos plan still
completes all N injections with every index accounted exactly once;
a campaign killed mid-sweep and resumed produces a merged report equal
to an uninterrupted run's.
"""

import dataclasses
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.gpusim.campaign import (
    SURFACE_HARNESS,
    CampaignSpec,
    ParallelCampaign,
    fsck_journal,
    load_journal,
)
from repro.gpusim.faults import DueType
from repro.serve.chaos import ChaosEngine, ChaosPlan

SPEC = CampaignSpec(benchmark="STC", num_injections=24, seed=2020)


def _as_dicts(report):
    return [dataclasses.asdict(r) for r in report.records]


class TestChaosKills:
    def test_transient_kills_complete_with_identical_records(self):
        """SIGKILLed workers below the poison threshold are transparent:
        every index retries deterministically, so the report equals the
        uninterrupted inline run's record for record."""
        clean = ParallelCampaign(SPEC).run()
        plan = ChaosPlan.parse(
            "campaign.worker.kill:p=0.25:max=4", seed=11
        )
        engine = ChaosEngine(plan)
        with engine:
            chaotic = ParallelCampaign(
                SPEC, workers=2, poison_threshold=6
            ).run()
        assert engine.summary()["injections"] > 0  # the plan really fired
        assert _as_dicts(chaotic) == _as_dicts(clean)
        recon = chaotic.reconciliation()
        assert recon["complete"] is True
        sup = chaotic.supervision
        assert sup is not None and sup["crashes"] > 0

    def test_relentless_kills_quarantine_as_worker_crash_dues(self):
        """p=1.0 kills with threshold 1: every injection is quarantined
        and journaled as a typed worker_crash DUE — the sweep still
        accounts for every index."""
        plan = ChaosPlan.parse("campaign.worker.kill:p=1.0", seed=3)
        with ChaosEngine(plan):
            report = ParallelCampaign(
                SPEC, workers=2, poison_threshold=1
            ).run()
        assert len(report.records) == SPEC.num_injections
        assert report.reconciliation()["complete"] is True
        for record in report.records:
            assert record.surface == SURFACE_HARNESS
            assert record.outcome == "due"
            assert record.due_cause == DueType.WORKER_CRASH.value
            assert record.instructions == -1
        assert report.due_taxonomy() == {
            "worker_crash": SPEC.num_injections
        }

    def test_hung_worker_is_reclaimed_by_wall_deadline(self):
        """campaign.worker.hang stalls the task far past the wall
        deadline; the supervisor reclaims the worker and the index is
        retried (hang rule exhausted) to the correct record."""
        clean = ParallelCampaign(SPEC).run()
        plan = ChaosPlan.parse(
            "campaign.worker.hang:p=1.0:max=1:delay=120", seed=5
        )
        with ChaosEngine(plan):
            report = ParallelCampaign(
                SPEC,
                workers=2,
                # Comfortably above worker warm-up (first job compiles
                # the kernel) so only the injected hang trips it, even
                # on a loaded machine.
                wall_timeout=8.0,
                poison_threshold=3,
            ).run()
        assert _as_dicts(report) == _as_dicts(clean)
        sup = report.supervision
        assert sup is not None and sup["hung_kills"] >= 1


class TestJournalChaos:
    def test_torn_and_enospc_writes_cost_a_repair_not_a_record(
        self, tmp_path
    ):
        path = tmp_path / "journal.jsonl"
        plan = ChaosPlan.parse(
            "journal.torn:p=0.2:max=2,journal.enospc:p=0.2:max=2",
            seed=7,
        )
        engine = ChaosEngine(plan)
        with engine:
            report = ParallelCampaign(
                SPEC, journal_path=str(path)
            ).run()
        assert engine.summary()["injections"] > 0
        assert report.reconciliation()["complete"] is True
        sup = report.supervision
        assert sup["journal_write_errors"] > 0
        # The end-of-run repair pass restored every dropped record:
        # the journal on disk reconciles even though writes failed.
        fsck = fsck_journal(str(path))
        assert fsck.reconcile()["complete"] is True
        assert len(fsck.records) == SPEC.num_injections

    def test_resume_after_torn_tail_matches_uninterrupted(self, tmp_path):
        """Kill-then-resume equality with a torn tail: truncate the
        journal mid-record, resume, and the merged report equals an
        uninterrupted run's."""
        clean = ParallelCampaign(SPEC).run()

        path = tmp_path / "journal.jsonl"
        ParallelCampaign(SPEC, journal_path=str(path)).run()

        # Keep the header + 10 records, then tear the 11th mid-record,
        # as a hard kill would.
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:11]) + lines[11][: len(lines[11]) // 2])
        pre = fsck_journal(str(path))
        assert pre.corrupt_lines == 1
        assert len(pre.records) == 10

        resumed = ParallelCampaign(SPEC, journal_path=str(path)).run(
            resume=True
        )
        assert _as_dicts(resumed) == _as_dicts(clean)
        assert resumed.reconciliation()["complete"] is True
        # The torn record was re-run, not trusted.
        assert resumed.supervision["journal_corrupt_records"] == 1

    def test_resume_refuses_a_journal_from_a_different_spec(
        self, tmp_path
    ):
        path = tmp_path / "journal.jsonl"
        other = dataclasses.replace(SPEC, seed=999)
        ParallelCampaign(other, journal_path=str(path)).run()
        with pytest.raises(ValueError, match="spec"):
            ParallelCampaign(SPEC, journal_path=str(path)).run(
                resume=True
            )


class TestSignalDrain:
    def test_sigint_drains_flushes_and_resumes_to_identical_report(
        self, tmp_path
    ):
        """The CLI satellite end to end: SIGINT a running campaign →
        exit 3, journal flushed, resume hint printed; --resume then
        completes to the same records as an uninterrupted run."""
        journal = tmp_path / "journal.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath("src"), env.get("PYTHONPATH", "")]
        )
        base = [
            sys.executable, "-m", "repro.cli", "campaign",
            "--bench", "STC", "-n", "300", "--workers", "2",
            "--seed", "2020", "--journal", str(journal),
        ]
        proc = subprocess.Popen(
            base,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        # Wait for real progress before interrupting.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if journal.exists() and len(
                fsck_journal(str(journal)).records
            ) >= 5:
                break
            time.sleep(0.2)
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 3, stderr
        assert "reconciliation partial" in stderr
        assert "--resume" in stderr

        done = subprocess.run(
            base + ["--resume", "--json"],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert done.returncode == 0, done.stderr
        assert "reconciliation ok" in done.stderr

        clean = ParallelCampaign(
            dataclasses.replace(SPEC, num_injections=300)
        ).run()
        _, records = load_journal(str(journal))
        assert len(records) == 300
        merged = [
            dataclasses.asdict(records[i]) for i in range(300)
        ]
        assert merged == _as_dicts(clean)
