"""Golden bad-kernel fixtures and the ``penny lint`` CLI end to end.

Every ``tests/fixtures/lint/*.ptx`` must trigger exactly the diagnostics
listed in its ``.expect`` golden — in particular, its *intended* rule and
no other error-severity finding — and the CLI fixtures mode must agree.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import SCHEME_PENNY, PennyCompiler, scheme_config
from repro.core.errors import LintError
from repro.core.pipeline import PennyConfig
from repro.ir.parser import parse_module
from repro.lint import Severity, lint_kernel
from repro.lint.render import validate_sarif

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "lint"
EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

_fixture_files = sorted(FIXTURES.glob("*.ptx"))


def _golden(ptx: Path):
    lines = ptx.with_suffix(".expect").read_text().splitlines()
    return sorted(
        l.strip() for l in lines if l.strip() and not l.startswith("#")
    )


def _actual(ptx: Path):
    text = ptx.read_text()
    rows = []
    for kernel in parse_module(text).kernels:
        report = lint_kernel(kernel, source=text)
        rows += [
            f"{d.severity.value} {d.rule} {d.location}"
            for d in report.diagnostics
        ]
    return sorted(rows)


class TestFixtureGoldens:
    def test_fixture_suite_is_populated(self):
        assert len(_fixture_files) >= 4
        for ptx in _fixture_files:
            assert ptx.with_suffix(".expect").exists(), ptx.name

    @pytest.mark.parametrize(
        "ptx", _fixture_files, ids=lambda p: p.stem
    )
    def test_fixture_matches_its_golden(self, ptx):
        assert _actual(ptx) == _golden(ptx)

    @pytest.mark.parametrize(
        "ptx", _fixture_files, ids=lambda p: p.stem
    )
    def test_only_the_intended_rule_reaches_error_severity(self, ptx):
        intended = {
            line.split()[1]
            for line in _golden(ptx)
            if line.startswith("error")
        }
        text = ptx.read_text()
        for kernel in parse_module(text).kernels:
            report = lint_kernel(kernel, source=text)
            assert {d.rule for d in report.errors} == intended


class TestLintCli:
    def test_fixtures_mode_is_green(self, capsys):
        assert main(["lint", "--fixtures", str(FIXTURES)]) == 0
        out = capsys.readouterr().out
        assert f"{len(_fixture_files)}/{len(_fixture_files)}" in out

    def test_fixtures_mode_catches_regressions(self, tmp_path, capsys):
        bad = tmp_path / "drifted.ptx"
        bad.write_text(
            (FIXTURES / "uninit_read.ptx").read_text()
        )
        bad.with_suffix(".expect").write_text(
            "warning some-other-rule drifted:ENTRY:0\n"
        )
        assert main(["lint", "--fixtures", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "missing:" in out and "unexpected:" in out

    def test_vecadd_sarif_validates(self, capsys):
        path = EXAMPLES / "vecadd.ptx"
        rc = main(["lint", str(path), "--format", "sarif"])
        out = capsys.readouterr().out
        assert rc == 0  # notes only: below the default error gate
        assert validate_sarif(out) == []
        log = json.loads(out)
        results = log["runs"][0]["results"]
        assert results, "vecadd should lint to uncut-antidep notes"
        assert {r["level"] for r in results} == {"note"}

    def test_error_gate_and_fail_on(self, tmp_path, capsys):
        bad = FIXTURES / "uninit_read.ptx"
        assert main(["lint", str(bad)]) == 1
        capsys.readouterr()
        clean = EXAMPLES / "vecadd.ptx"
        assert main(["lint", str(clean)]) == 0
        capsys.readouterr()
        # notes trip the gate once --fail-on lowers it
        assert main(["lint", str(clean), "--fail-on", "note"]) == 1
        capsys.readouterr()
        out_file = tmp_path / "report.sarif"
        assert (
            main(
                [
                    "lint",
                    str(clean),
                    "--format",
                    "sarif",
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        assert validate_sarif(out_file.read_text()) == []


class TestPipelineGate:
    def test_strict_pipeline_promotes_errors(self):
        text = (FIXTURES / "uninit_read.ptx").read_text()
        (kernel,) = parse_module(text).kernels
        compiler = PennyCompiler(
            PennyConfig(lint=True), strict=True
        )
        with pytest.raises(LintError) as exc_info:
            compiler.compile(kernel, None)
        assert exc_info.value.diagnostics
        assert all(
            d.severity is Severity.ERROR
            for d in exc_info.value.diagnostics
        )

    def test_gate_respects_rule_disable(self):
        text = (FIXTURES / "uninit_read.ptx").read_text()
        (kernel,) = parse_module(text).kernels
        config = scheme_config(SCHEME_PENNY)
        config.lint = True
        config.lint_disable = ("uninit-read",)
        PennyCompiler(config, strict=True).compile(kernel, None)
