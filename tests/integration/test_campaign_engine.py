"""End-to-end acceptance tests for the parallel campaign engine.

The contract under test (ISSUE acceptance criteria): a campaign of >= 200
injections runs on >= 2 workers, survives a mid-campaign kill and resumes
from its JSONL journal to the identical final report; every DUE carries a
non-default taxonomy label; single-bit RF faults still produce zero SDC
(Appendix A); and faults injected *during recovery* either converge or
terminate with a labelled DUE — never hang.
"""

import dataclasses
import json
import shutil

import pytest

from repro.experiments import fault_rate
from repro.gpusim.campaign import (
    CampaignSpec,
    ParallelCampaign,
    load_journal,
)
from repro.gpusim.faults import DueType

VALID_CAUSES = {d.value for d in DueType}

FULL_SPEC = CampaignSpec(
    benchmark="STC",
    scheme="Penny",
    rf_code="parity",
    num_injections=200,
    seed=2020,
    surfaces=("rf", "ckpt", "recovery"),
    bits_per_fault=1,
)


def _as_dicts(report):
    return [dataclasses.asdict(r) for r in report.records]


@pytest.fixture(scope="module")
def full_run(tmp_path_factory):
    """One 200-injection, 2-worker, journalled campaign shared by the
    module's tests."""
    path = tmp_path_factory.mktemp("campaign") / "journal.jsonl"
    report = ParallelCampaign(
        FULL_SPEC, workers=2, journal_path=str(path)
    ).run()
    return report, str(path)


class TestFullCampaign:
    def test_completes_all_injections(self, full_run):
        report, _ = full_run
        assert len(report.records) == 200
        assert [r.index for r in report.records] == list(range(200))

    def test_covers_every_surface(self, full_run):
        report, _ = full_run
        assert set(report.by_surface()) == {"rf", "ckpt", "recovery"}

    def test_single_bit_faults_zero_sdc(self, full_run):
        # Appendix A at campaign scale, on every surface: parity detects
        # each single-bit strike and idempotent re-execution absorbs it.
        report, _ = full_run
        assert report.summary().get("sdc", 0) == 0
        _, _, sdc_hi = report.rates()["sdc"]
        assert sdc_hi < 0.02  # Wilson 95% upper bound at n=200

    def test_every_due_carries_taxonomy_label(self, full_run):
        report, _ = full_run
        dues = [r for r in report.records if r.outcome == "due"]
        assert dues, "multi-surface campaign should produce some DUEs"
        for rec in dues:
            assert rec.due_cause in VALID_CAUSES, rec
        # and non-DUE outcomes never carry one
        for rec in report.records:
            if rec.outcome != "due":
                assert rec.due_cause is None

    def test_journal_holds_complete_campaign(self, full_run):
        report, path = full_run
        header, records = load_journal(path)
        assert CampaignSpec.from_dict(header["spec"]) == FULL_SPEC
        assert sorted(records) == list(range(200))
        assert [records[i] for i in range(200)] == report.records

    def test_kill_and_resume_reaches_identical_report(
        self, full_run, tmp_path
    ):
        """Simulate a mid-campaign kill: keep the header, the first 80
        records and a torn partial line, then resume on 2 workers."""
        report, path = full_run
        truncated = tmp_path / "journal.jsonl"
        with open(path) as f:
            lines = f.readlines()
        with open(truncated, "w") as f:
            f.writelines(lines[:81])  # header + 80 records
            f.write('{"index": 199, "outco')  # torn write, no newline
        resumed = ParallelCampaign(
            FULL_SPEC, workers=2, journal_path=str(truncated)
        ).run(resume=True)
        assert _as_dicts(resumed) == _as_dicts(report)
        # the journal healed: complete, and the torn fragment skipped
        _, records = load_journal(str(truncated))
        assert sorted(records) == list(range(200))

    def test_resume_refuses_mismatched_spec(self, full_run, tmp_path):
        _, path = full_run
        copied = tmp_path / "journal.jsonl"
        shutil.copy(path, copied)
        other = dataclasses.replace(FULL_SPEC, seed=1)
        with pytest.raises(ValueError, match="spec"):
            ParallelCampaign(
                other, workers=2, journal_path=str(copied)
            ).run(resume=True)

    def test_serial_equals_parallel(self, full_run):
        # Per-index seeding makes the schedule irrelevant: one worker or
        # two must produce byte-identical records.
        report, _ = full_run
        small = dataclasses.replace(FULL_SPEC, num_injections=40)
        serial = ParallelCampaign(small, workers=1).run()
        assert _as_dicts(serial) == _as_dicts(report)[:40]


class TestRecoveryStrikes:
    def test_faults_during_recovery_never_hang(self):
        """Strike every restore, repeatedly, under a tiny recovery budget:
        each injection must still converge or die with a labelled DUE."""
        spec = CampaignSpec(
            benchmark="STC",
            num_injections=40,
            seed=11,
            surfaces=("recovery",),
            recovery_repeat_rate=1.0,
            max_recoveries=5,
            max_instructions=2_000_000,
        )
        report = ParallelCampaign(spec, workers=1).run()
        assert len(report.records) == 40
        assert report.summary().get("sdc", 0) == 0
        for rec in report.records:
            assert rec.outcome in {
                "masked", "recovered", "due", "not_injected"
            }
            if rec.outcome == "due":
                assert rec.due_cause in {
                    "budget_exhausted",
                    "watchdog_timeout",
                    "memory_exception",
                }


class TestUnprotectedScheme:
    def test_no_runtime_taxonomy(self):
        # An uncompiled kernel detects (parity RF) but cannot recover:
        # every detection must surface as a `no_runtime` DUE, never a hang
        # or an unlabelled crash.
        spec = CampaignSpec(
            benchmark="STC",
            scheme="none",
            num_injections=20,
            seed=5,
            surfaces=("rf",),
        )
        report = ParallelCampaign(spec, workers=1).run()
        assert len(report.records) == 20
        summary = report.summary()
        assert summary.get("recovered", 0) == 0
        assert summary.get("due", 0) > 0
        assert set(report.due_taxonomy()) == {"no_runtime"}


class TestSatelliteFixes:
    def test_run_random_horizon_clamps_to_lifetime(self):
        """Satellite 1: an absurd max_dynamic_point used to throw nearly
        every injection past end-of-thread (not_injected); the horizon now
        clamps to each thread's actual lifetime."""
        from repro.bench import get_benchmark
        from repro.core.pipeline import PennyCompiler
        from repro.core.schemes import SCHEME_PENNY, scheme_config
        from repro.gpusim.faults import FaultCampaign

        bench = get_benchmark("STC")
        wl = bench.workload()
        result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
            bench.fresh_kernel(), wl.launch_config
        )
        campaign = FaultCampaign(
            result.kernel, wl.launch, wl.make_memory, wl.output_region()
        )
        report = campaign.run_random(
            30, seed=3, max_dynamic_point=10**12
        )
        summary = report.summary()
        assert summary.get("not_injected", 0) < 30 // 4
        assert summary.get("sdc", 0) == 0

    def test_rate_plan_reuse_is_deterministic(self):
        # Satellite 2: rerunning the *same* RateFaultPlan object must give
        # identical rows — fault_rate.run(repeats=2) asserts this
        # internally and raises AssertionError if reset() leaks state.
        rows = fault_rate.run(
            abbr="STC", intervals=(500,), seed=13, repeats=2
        )
        assert rows[0]["correct"]
        assert rows[0]["injections"] > 0

    def test_fault_rate_reports_due_label_instead_of_crashing(self):
        # The sweep survives a run that dies by tagging the row, and the
        # label is drawn from the DUE taxonomy.
        rows = fault_rate.run(abbr="STC", intervals=(5000,), seed=1)
        assert rows[0]["due"] is None or rows[0]["due"] in VALID_CAUSES
