"""The serving stack under injected faults — the PR's core invariant:

    **no request ever hangs, and no fault crashes the server.**

Every test drives a live :class:`CompileServer` (thread- or
process-pooled) with a seeded :class:`ChaosEngine` installed, then
asserts that every client request resolves to a result or a *typed*
error within its deadline, that the server keeps answering afterwards,
and that the pool's restart/quarantine counters equal what the plan
actually injected.

Also here: the coalescing proof (M concurrent cold requests for one
key → exactly one compile and one cache miss) and the cache tier's
fault-injection behaviors (ENOSPC, torn writes, corruption
self-healing).
"""

import json
import socket
import threading
import time

import pytest

from repro.obs import Tracer
from repro.serve import (
    CircuitBreaker,
    CompileCache,
    CompileClient,
    CompileServer,
    PoisonJobError,
    RequestTimeout,
    RetryPolicy,
    ServeConfig,
)
from repro.serve.chaos import ChaosEngine, ChaosPlan
from repro.serve.key import CacheKey

PTX_TEMPLATE = """
.entry axpy{tag} (.param .ptr A, .param .u32 n) {{
ENTRY:
  mov.u32 %tid, %tid.x;
  ld.param.u32 %a, [A];
  ld.param.u32 %n, [n];
  mov.u32 %i, %tid;
HEAD:
  setp.ge.u32 %p1, %i, %n;
  @%p1 bra EXIT;
BODY:
  shl.u32 %off, %i, 2;
  add.u32 %addr, %a, %off;
  ld.global.u32 %v, [%addr];
  mad.u32 %v2, %v, {mult}, 7;
  st.global.u32 [%addr], %v2;
  add.u32 %i, %i, 32;
  bra HEAD;
EXIT:
  ret;
}}
"""

PTX = PTX_TEMPLATE.format(tag="", mult=3)


def _ptx(i: int) -> str:
    return PTX_TEMPLATE.format(tag=f"_{i}", mult=3 + i)


def _start_server(config, chaos=None, tracer=None):
    """Start a server on a daemon thread with chaos/tracer installed in
    its context (``start_in_thread`` copies the caller's context)."""
    server = CompileServer(config)
    if tracer is not None:
        tracer.__enter__()
    if chaos is not None:
        chaos.__enter__()
    try:
        server.start_in_thread()
    finally:
        if chaos is not None:
            chaos.__exit__(None, None, None)
        if tracer is not None:
            tracer.__exit__(None, None, None)
    return server


def _stop(server):
    server.request_shutdown()
    deadline = time.monotonic() + 5.0
    while server._ready.is_set() and time.monotonic() < deadline:
        time.sleep(0.02)


# -- the invariant: seeded faults, no hangs, typed resolutions --------------------


class TestChaosInvariant:
    def test_worker_kills_and_cache_corruption_never_hang_a_request(
        self, tmp_path
    ):
        """A seeded plan of worker SIGKILLs + disk-cache corruption +
        connection drops over a two-pass corpus: every request resolves,
        the server stays available, and the pool's counters equal the
        plan's actual injections."""
        plan = ChaosPlan.parse(
            "worker.kill:p=0.25:max=4,"
            "cache.corrupt:p=0.5:max=3,"
            "conn.drop:p=0.15:max=2",
            seed=7,
        )
        chaos = ChaosEngine(plan)
        server = _start_server(
            ServeConfig(
                port=0,
                workers=2,
                queue_limit=16,
                request_timeout=60.0,
                cache_dir=str(tmp_path / "cache"),
                # Disk-only tiering: every warm read visits the disk
                # tier, so the corruption rule has entries to damage.
                max_memory_bytes=0,
                poison_threshold=5,  # retries absorb every p<1 kill
            ),
            chaos=chaos,
        )
        try:
            client = CompileClient(
                port=server.port,
                timeout=90.0,
                retry=RetryPolicy(attempts=6, base_delay=0.05),
            )
            corpus = [_ptx(i) for i in range(4)]
            for round_no in range(2):
                for i, ptx in enumerate(corpus):
                    # The invariant is "resolves, never hangs": a typed
                    # error would fail the test by raising; the socket
                    # timeout bounds the wait.
                    response = client.compile(
                        ptx, scheme="Penny", name=f"axpy_{i}"
                    )
                    assert response["ok"], (round_no, i)

            # The server is still fully available.
            assert client.ping()
            health = client.health()
            assert health["ready"] is True

            # Counters match the injected plan: every worker.kill
            # directive killed exactly one worker, every kill was
            # restarted, nothing was quarantined.
            counts = chaos.injected_counts()
            pool = health["pool"]
            assert pool["crashes"] == counts.get("worker.kill", 0)
            assert pool["quarantined"] == 0
            deadline = time.monotonic() + 10.0
            while (
                server._pool.metrics.restarts
                < server._pool.metrics.crashes
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert (
                server._pool.metrics.restarts
                == server._pool.metrics.crashes
            )
            # The corruption rule really exercised the self-healing
            # path: corrupt entries were unlinked and recompiled.
            if counts.get("cache.corrupt"):
                assert server.cache.stats.corrupt >= 1
        finally:
            _stop(server)

    def test_poison_job_is_quarantined_not_crash_looped(self):
        """p=1.0 worker kills: the job's every attempt kills a worker,
        so the client gets a typed PoisonJobError (fast) and the pool
        survives with exactly one quarantined key."""
        plan = ChaosPlan.parse("worker.kill:p=1.0", seed=1)
        chaos = ChaosEngine(plan)
        server = _start_server(
            ServeConfig(
                port=0, workers=2, queue_limit=8, poison_threshold=2
            ),
            chaos=chaos,
        )
        try:
            client = CompileClient(
                port=server.port,
                timeout=60.0,
                retry=RetryPolicy(attempts=1),
            )
            with pytest.raises(PoisonJobError) as exc_info:
                client.compile(PTX, scheme="Penny")
            assert exc_info.value.detail["strikes"] == 2

            # Resubmission fails fast without touching a worker.
            started = time.monotonic()
            with pytest.raises(PoisonJobError) as exc_info:
                client.compile(PTX, scheme="Penny")
            assert time.monotonic() - started < 5.0
            assert exc_info.value.detail.get("quarantined") is True

            # The *server* is fine once the killed workers respawn
            # (kills are immediate now, so ready can briefly be False
            # while both slots sit in their restart backoff).
            deadline = time.monotonic() + 15.0
            while True:
                health = client.health()
                if health["ready"] or time.monotonic() > deadline:
                    break
                time.sleep(0.2)
            assert health["ready"] is True
            assert health["pool"]["quarantined"] == 1
            assert health["pool"]["crashes"] == 2
        finally:
            _stop(server)

    def test_compile_hang_times_out_typed_and_server_recovers(self):
        """A worker.hang injection stalls one compile past the request
        timeout: that request gets a typed RequestTimeout, and the pool
        reclaims the worker for later requests."""
        plan = ChaosPlan.parse("worker.hang:p=1.0:max=1:delay=30", seed=3)
        chaos = ChaosEngine(plan)
        server = _start_server(
            ServeConfig(
                port=0,
                workers=2,
                queue_limit=8,
                request_timeout=1.0,
                job_timeout_grace=0.5,
            ),
            chaos=chaos,
        )
        try:
            client = CompileClient(
                port=server.port,
                timeout=30.0,
                retry=RetryPolicy(attempts=1),
            )
            with pytest.raises(RequestTimeout):
                client.compile(PTX, scheme="Penny")
            assert server.stats.timeouts == 1
            # The hang budget is spent (max=1): the next compile runs
            # clean on the pool's other (or reclaimed) worker.
            assert client.compile(
                _ptx(99), scheme="Penny"
            )["ok"]
            deadline = time.monotonic() + 10.0
            while (
                server._pool.metrics.hung_kills < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert server._pool.metrics.hung_kills == 1
        finally:
            _stop(server)

    def test_connection_drop_is_absorbed_by_client_retry(self):
        plan = ChaosPlan.parse("conn.drop:p=1.0:max=1", seed=5)
        chaos = ChaosEngine(plan)
        server = _start_server(
            ServeConfig(port=0, workers=1, use_threads=True),
            chaos=chaos,
        )
        try:
            client = CompileClient(
                port=server.port,
                timeout=30.0,
                retry=RetryPolicy(attempts=3, base_delay=0.01),
            )
            # First response is dropped on the floor; the retry serves
            # the same key from cache.
            response = client.compile(PTX, scheme="Penny")
            assert response["ok"]
            assert chaos.injected_counts() == {"conn.drop": 1}
            assert server.stats.requests >= 2
        finally:
            _stop(server)


# -- coalescing proof -------------------------------------------------------------


class TestCoalescing:
    def test_m_concurrent_cold_requests_one_compile_one_miss(
        self, monkeypatch
    ):
        """M identical cold requests in flight together: exactly one
        runner call, exactly one cache miss, M-1 coalesced requests
        (obs counters + server stats agree), and every waiter gets the
        same response body."""
        M = 5
        release = threading.Event()
        calls = []
        real_execute = __import__(
            "repro.serve.server", fromlist=["_execute_request"]
        )._execute_request

        def gated(payload):
            calls.append(payload.get("name"))
            release.wait(timeout=30.0)
            return real_execute(payload)

        monkeypatch.setattr(
            "repro.serve.server._execute_request", gated
        )
        tracer = Tracer(record_spans=False)
        server = _start_server(
            ServeConfig(
                port=0, workers=2, queue_limit=M + 2, use_threads=True
            ),
            tracer=tracer,
        )
        try:
            socks = []
            frame = (
                json.dumps(
                    {
                        "op": "compile",
                        "id": "same",
                        "ptx": PTX,
                        "scheme": "Penny",
                    }
                ).encode()
                + b"\n"
            )
            for _ in range(M):
                sock = socket.create_connection(
                    ("127.0.0.1", server.port), timeout=30.0
                )
                sock.sendall(frame)
                socks.append(sock)

            deadline = time.monotonic() + 10.0
            while server.stats.coalesced < M - 1:
                assert (
                    time.monotonic() < deadline
                ), f"coalesced={server.stats.coalesced}"
                time.sleep(0.01)
            assert len(calls) == 1, "followers must not dispatch"
            release.set()

            responses = []
            for sock in socks:
                with sock.makefile("rb") as f:
                    responses.append(json.loads(f.readline()))
                sock.close()

            assert all(r["ok"] for r in responses)
            # Identical bodies (timing field aside).
            bodies = [
                {k: v for k, v in r.items() if k != "seconds"}
                for r in responses
            ]
            assert all(b == bodies[0] for b in bodies[1:])
            assert bodies[0]["cached"] is False

            assert len(calls) == 1
            assert server.cache.stats.misses == 1
            assert server.stats.coalesced == M - 1
            counts = tracer.counters.counts
            assert counts.get("cache.miss") == 1
            assert counts.get("serve.coalesced") == M - 1
            # One more request for the same key is now a pure hit.
            client = CompileClient(port=server.port, timeout=30.0)
            assert client.compile(PTX, scheme="Penny")["cached"]
            assert server.cache.stats.misses == 1
        finally:
            release.set()
            _stop(server)

    def test_workers4_results_byte_identical_to_serial(self):
        """The pooled (4 process workers) server's compile output equals
        the in-process serial compile, byte for byte."""
        from repro.ir.printer import print_kernel
        from repro.serve.server import _execute_request

        payload = {
            "ptx": PTX,
            "config": None,
            "scheme": "Penny",
            "strict": True,
            "name": "axpy",
        }
        # Serial reference, computed in this process.
        from repro.core.schemes import scheme_config
        from repro.serve.batch import CompileJob

        job = CompileJob(
            ptx=PTX,
            config=scheme_config("Penny"),
            strict=True,
            name="axpy",
        )
        status, serial_result = _execute_request(job.to_dict())
        assert status == "ok"
        serial_kernel = print_kernel(serial_result.kernel)
        serial_dict = serial_result.to_dict()

        server = _start_server(
            ServeConfig(port=0, workers=4, queue_limit=8)
        )
        try:
            client = CompileClient(port=server.port, timeout=90.0)
            response = client.compile(
                PTX, scheme="Penny", name="axpy"
            )
            assert response["ok"]
            assert response["kernel"] == serial_kernel
            assert response["result"] == json.loads(
                json.dumps(serial_dict, sort_keys=True, default=str)
            )
        finally:
            _stop(server)


# -- cache-tier fault injection ---------------------------------------------------


def _key(tag: str) -> CacheKey:
    return CacheKey(
        ptx_sha=f"ptx-{tag}", config_sha=f"cfg-{tag}", code_sha="code"
    )


class TestCacheChaos:
    def test_enospc_counts_store_error_and_leaves_no_debris(self, tmp_path):
        cache = CompileCache(
            directory=str(tmp_path), max_memory_bytes=0
        )
        plan = ChaosPlan.parse("cache.enospc:p=1.0:max=1", seed=0)
        with ChaosEngine(plan):
            cache.put(_key("a"), {"v": 1})  # fails, silently
        assert cache.stats.store_errors == 1
        leftovers = list(tmp_path.iterdir())
        assert leftovers == [], "temp file must be cleaned up"
        assert cache.get(_key("a")) is None  # honest miss
        # The tier recovers: the budget is spent, the next store lands.
        with ChaosEngine(plan):
            pass
        cache.put(_key("a"), {"v": 1})
        assert cache.stats.store_errors == 1
        assert cache.get(_key("a")) == {"v": 1}

    def test_torn_write_is_self_healed_on_read(self, tmp_path):
        cache = CompileCache(
            directory=str(tmp_path), max_memory_bytes=0
        )
        plan = ChaosPlan.parse("cache.torn:p=1.0:max=1", seed=0)
        with ChaosEngine(plan):
            cache.put(_key("t"), {"v": 2, "pad": "x" * 100})
        # A truncated entry was published under the real name...
        assert len(list(tmp_path.glob("*.pkl"))) == 1
        # ...and the read detects, counts, unlinks, and misses.
        assert cache.get(_key("t")) is None
        assert cache.stats.corrupt == 1
        assert list(tmp_path.glob("*.pkl")) == []
        # Store/reload now round-trips.
        cache.put(_key("t"), {"v": 2, "pad": "x" * 100})
        assert cache.get(_key("t")) == {"v": 2, "pad": "x" * 100}

    def test_read_corruption_is_self_healed(self, tmp_path):
        cache = CompileCache(
            directory=str(tmp_path), max_memory_bytes=0
        )
        cache.put(_key("c"), {"v": 3})
        plan = ChaosPlan.parse("cache.corrupt:p=1.0:max=1", seed=0)
        with ChaosEngine(plan):
            assert cache.get(_key("c")) is None  # garbled on disk
        assert cache.stats.corrupt == 1
        assert list(tmp_path.glob("*.pkl")) == []
        cache.put(_key("c"), {"v": 3})
        assert cache.get(_key("c")) == {"v": 3}

    def test_truncation_on_read_is_self_healed(self, tmp_path):
        cache = CompileCache(
            directory=str(tmp_path), max_memory_bytes=0
        )
        cache.put(_key("u"), {"v": 4, "pad": "y" * 200})
        plan = ChaosPlan.parse("cache.truncate:p=1.0:max=1", seed=0)
        with ChaosEngine(plan):
            assert cache.get(_key("u")) is None
        assert cache.stats.corrupt == 1
        assert list(tmp_path.glob("*.pkl")) == []


# -- client-side resilience layers ------------------------------------------------


class TestClientResilience:
    def test_retry_deadline_bounds_elapsed_time(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()  # connections now refused

        slept = []
        client = CompileClient(
            port=port,
            retry=RetryPolicy(
                attempts=50,
                base_delay=0.2,
                jitter=0.0,
                deadline=0.5,
            ),
            sleep=slept.append,  # virtual time: no real waiting
        )
        from repro.serve import ServerUnavailable

        with pytest.raises(ServerUnavailable) as exc_info:
            client.ping()
        detail = exc_info.value.detail
        # Connection-refused attempts are instant, so the deadline is
        # consumed by backoff sleeps... which are virtual here; the
        # loop must still stop early because elapsed+pause > deadline.
        assert detail["deadline"] == 0.5
        assert detail["deadline_exceeded"] is True
        assert detail["attempt_count"] < 50
        assert len(detail["causes"]) == detail["attempt_count"]
        assert all(
            c["kind"] == "transport" for c in detail["causes"]
        )
        assert detail["attempts"]  # back-compat cause strings

    def test_circuit_breaker_opens_half_opens_and_closes(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3,
            reset_timeout=10.0,
            clock=lambda: clock[0],
        )
        assert breaker.state == "closed"
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # fails fast while open
        clock[0] = 10.1
        assert breaker.allow()  # the half-open probe
        assert not breaker.allow()  # only one probe at a time
        breaker.record_failure()  # probe failed -> open again
        assert breaker.state == "open"
        clock[0] = 20.3
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_client_raises_circuit_open_fast(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()

        from repro.serve import CircuitOpen, ServerUnavailable

        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        client = CompileClient(
            port=port,
            retry=RetryPolicy(attempts=2, base_delay=0.01),
            sleep=lambda s: None,
            breaker=breaker,
        )
        with pytest.raises(ServerUnavailable):
            client.ping()  # 2 transport failures -> breaker opens
        assert breaker.state == "open"
        started = time.monotonic()
        with pytest.raises(CircuitOpen) as exc_info:
            client.ping()
        assert time.monotonic() - started < 1.0
        assert exc_info.value.detail["breaker"]["state"] == "open"

    def test_breaker_ignores_typed_server_errors(self):
        """A ServerBusy (or any parsed response) proves liveness: only
        transport failures trip the breaker."""
        server = _start_server(
            ServeConfig(port=0, workers=1, use_threads=True)
        )
        try:
            breaker = CircuitBreaker(failure_threshold=1)
            client = CompileClient(
                port=server.port,
                timeout=10.0,
                retry=RetryPolicy(attempts=1),
                breaker=breaker,
            )
            from repro.serve import ProtocolError

            with pytest.raises(ProtocolError):
                client.request("no_such_op")
            assert breaker.state == "closed"
            assert client.ping()
        finally:
            _stop(server)
