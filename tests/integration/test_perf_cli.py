"""End-to-end ``penny perf`` — the ISSUE's acceptance criteria live here.

- ``penny perf run executor --out BENCH_executor.json`` produces a
  schema-valid result with >= 5 retained reps, a confidence interval,
  and an environment fingerprint.
- ``penny perf gate`` exits 0 against its own fresh baseline (A/A) and
  nonzero when fed a synthetically slowed candidate.
"""

import json
import os

import pytest

from repro.cli import main
from repro.perf.schema import SCHEMA_VERSION, validate_bench_result
from repro.perf.stats import Summary

# Small-but-honest repeater knobs so the suite stays quick.
FAST = [
    "--min-reps", "5", "--max-reps", "10", "--target-rci", "0.3",
    "--wall-budget", "60",
]
SELFTEST_OPTS = ["--opt", "n=3000"]


def _run_selftest(tmp_path, name="BENCH_selftest.json"):
    out = os.path.join(str(tmp_path), name)
    rc = main(
        ["perf", "run", "selftest", "--out", out] + FAST + SELFTEST_OPTS
    )
    assert rc == 0
    return out


class TestList:
    def test_lists_registry(self, capsys):
        assert main(["perf", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("selftest", "executor", "compile", "cache",
                     "batch", "tracer"):
            assert name in out

    def test_json_listing(self, capsys):
        assert main(["perf", "list", "--json"]) == 0
        specs = json.loads(capsys.readouterr().out)
        names = {s["name"] for s in specs}
        assert "executor" in names
        assert all(s["description"] for s in specs)


class TestRun:
    def test_run_selftest_writes_valid_bench(self, tmp_path, capsys):
        out = _run_selftest(tmp_path)
        stdout = capsys.readouterr().out
        assert "selftest" in stdout and "median" in stdout
        with open(out) as f:
            obj = json.load(f)
        assert validate_bench_result(obj) == []
        assert obj["schema_version"] == SCHEMA_VERSION

    def test_run_executor_acceptance(self, tmp_path):
        # The ISSUE acceptance criterion, verbatim: a schema-valid
        # result with >= 5 retained reps, a CI, and an env fingerprint.
        out = os.path.join(str(tmp_path), "BENCH_executor.json")
        rc = main(
            ["perf", "run", "executor", "--out", out,
             "--min-reps", "5", "--max-reps", "6",
             "--target-rci", "0.5", "--wall-budget", "300",
             "--opt", "blocks=1", "--opt", "iters=6", "--opt",
             "words=256"]
        )
        assert rc == 0
        with open(out) as f:
            obj = json.load(f)
        assert validate_bench_result(obj) == []
        primary = obj["series"][obj["primary"]]
        assert len(primary["samples"]) >= 5
        s = primary["summary"]
        assert s["ci_lo"] <= s["median"] <= s["ci_hi"]
        env = obj["environment"]
        assert env["python_version"] and env["code_sha"]
        assert "speedup" in obj["metrics"]

    def test_unknown_bench_fails(self):
        with pytest.raises(SystemExit):
            main(["perf", "run", "nonesuch"])

    def test_no_selection_fails(self):
        with pytest.raises(SystemExit):
            main(["perf", "run"] + FAST)

    def test_bad_opt_fails(self):
        with pytest.raises(SystemExit):
            main(["perf", "run", "selftest", "--opt", "garbage"])


class TestValidate:
    def test_validate_ok_and_broken(self, tmp_path, capsys):
        out = _run_selftest(tmp_path)
        assert main(["perf", "validate", out]) == 0
        assert "ok" in capsys.readouterr().out

        broken = os.path.join(str(tmp_path), "BENCH_broken.json")
        with open(out) as f:
            obj = json.load(f)
        del obj["environment"]
        with open(broken, "w") as f:
            json.dump(obj, f)
        assert main(["perf", "validate", broken]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_validate_committed_baselines(self):
        # The repo-root BENCH files must always be schema-valid.
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        import glob

        paths = sorted(
            glob.glob(os.path.join(repo_root, "BENCH_*.json"))
        )
        assert paths, "no committed BENCH_*.json baselines"
        for path in paths:
            with open(path) as f:
                problems = validate_bench_result(json.load(f))
            assert problems == [], f"{path}: {problems}"


class TestGate:
    def test_gate_aa_exits_zero(self, tmp_path, capsys):
        # A/A: gate a fresh selftest run against its own fresh baseline
        # on the same machine — must pass with a generous margin.
        _run_selftest(tmp_path)
        rc = main(
            ["perf", "gate", "selftest", "--baseline-dir",
             str(tmp_path), "--noise-margin", "1.0"]
            + FAST + SELFTEST_OPTS
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "selftest" in out

    def test_gate_flags_synthetic_slowdown(self, tmp_path, capsys):
        # The other acceptance criterion: a synthetically slowed
        # candidate must exit nonzero.
        baseline = _run_selftest(tmp_path)
        with open(baseline) as f:
            obj = json.load(f)
        for series in obj["series"].values():
            series["samples"] = [x * 10 for x in series["samples"]]
            series["summary"] = Summary.from_samples(
                series["samples"]
            ).to_dict()
        slowed = os.path.join(str(tmp_path), "slowed.json")
        with open(slowed, "w") as f:
            json.dump(obj, f)

        rc = main(
            ["perf", "gate", "selftest", "--baseline-dir",
             str(tmp_path), "--candidate", slowed,
             "--noise-margin", "0.25"]
        )
        captured = capsys.readouterr()
        assert rc != 0
        assert "REGRESSED" in captured.out
        assert "FAIL" in captured.err

    def test_gate_env_drift_downgrades(self, tmp_path, capsys):
        # Same synthetic slowdown, but stamped from a different
        # machine: the gate must refuse to call it a regression.
        baseline = _run_selftest(tmp_path)
        with open(baseline) as f:
            obj = json.load(f)
        for series in obj["series"].values():
            series["samples"] = [x * 10 for x in series["samples"]]
            series["summary"] = Summary.from_samples(
                series["samples"]
            ).to_dict()
        obj["environment"]["node"] = "some-other-host"
        slowed = os.path.join(str(tmp_path), "slowed.json")
        with open(slowed, "w") as f:
            json.dump(obj, f)

        rc = main(
            ["perf", "gate", "selftest", "--baseline-dir",
             str(tmp_path), "--candidate", slowed,
             "--noise-margin", "0.25"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "INCONCLUSIVE" in out and "drift" in out

        # ... unless told the drift is deliberate.
        rc = main(
            ["perf", "gate", "selftest", "--baseline-dir",
             str(tmp_path), "--candidate", slowed,
             "--noise-margin", "0.25", "--ignore-env"]
        )
        capsys.readouterr()
        assert rc != 0

    def test_gate_missing_baseline_explains(self, tmp_path):
        with pytest.raises(SystemExit, match="no baseline"):
            main(
                ["perf", "gate", "selftest", "--baseline-dir",
                 str(tmp_path)] + FAST + SELFTEST_OPTS
            )


class TestCompare:
    def test_compare_json_output(self, tmp_path, capsys):
        _run_selftest(tmp_path)
        capsys.readouterr()  # drop the baseline run's output
        rc = main(
            ["perf", "compare", "selftest", "--baseline-dir",
             str(tmp_path), "--noise-margin", "1.0", "--json"]
            + FAST + SELFTEST_OPTS
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["kind"] == "bench_comparison"
        assert payload[0]["benchmark"] == "selftest"
        assert payload[0]["series"][0]["is_primary"] is True

    def test_compare_welch_method(self, tmp_path, capsys):
        _run_selftest(tmp_path)
        capsys.readouterr()  # drop the baseline run's output
        rc = main(
            ["perf", "compare", "selftest", "--baseline-dir",
             str(tmp_path), "--noise-margin", "1.0",
             "--method", "welch", "--json"]
            + FAST + SELFTEST_OPTS
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["series"][0]["method"] == "welch"
        assert payload[0]["series"][0]["p_value"] is not None
