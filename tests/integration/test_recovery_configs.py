"""Fault-injection campaigns across compiler configurations.

The main recovery tests exercise the default Penny configuration (shared
storage, low-opts, bimodal).  Every other configuration must uphold the
same invariant — in particular:

- **global checkpoint storage**: recovery slot loads resolve through the
  global coalesced layout;
- **low_opts off**: checkpoints recompute their addresses inline through
  short-lived temporaries that recovery never restores (they are redefined
  by re-execution before being read);
- **eager placement** and **rr overwrite** paths.
"""

import pytest

from repro.bench import get_benchmark
from repro.core.pipeline import PennyCompiler, PennyConfig
from repro.gpusim import FaultCampaign

CONFIG_MATRIX = [
    pytest.param(
        PennyConfig(storage_mode="global", overwrite="sa"),
        id="global-storage",
    ),
    pytest.param(
        PennyConfig(low_opts=False, overwrite="sa"),
        id="inline-addresses",
    ),
    pytest.param(
        PennyConfig(placement="eager", overwrite="sa"),
        id="eager-placement",
    ),
    pytest.param(
        PennyConfig(overwrite="rr"),
        id="renaming-first",
    ),
    pytest.param(
        PennyConfig(pruning="none", overwrite="sa"),
        id="no-pruning",
    ),
    pytest.param(
        PennyConfig(pruning="basic", overwrite="sa"),
        id="basic-pruning",
    ),
]


@pytest.mark.parametrize("config", CONFIG_MATRIX)
@pytest.mark.parametrize("abbr", ["STC", "BO"])
def test_single_bit_invariant_across_configs(config, abbr):
    bench = get_benchmark(abbr)
    wl = bench.workload()
    result = PennyCompiler(config).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    campaign = FaultCampaign(
        result.kernel, wl.launch, wl.make_memory, wl.output_region()
    )
    summary = campaign.run_random(25, seed=31, bits_per_fault=1).summary()
    assert summary["sdc"] == 0, (config, summary)
    assert summary["due"] == 0, (config, summary)


def test_global_storage_campaign_actually_recovers():
    """The global-storage path must see real recoveries, not just masks."""
    bench = get_benchmark("STC")
    wl = bench.workload()
    result = PennyCompiler(
        PennyConfig(storage_mode="global", overwrite="sa")
    ).compile(bench.fresh_kernel(), wl.launch_config)
    storage = result.kernel.meta["storage_assignment"]
    assert storage.global_slots > 0 and storage.shared_slots == 0
    campaign = FaultCampaign(
        result.kernel, wl.launch, wl.make_memory, wl.output_region()
    )
    report = campaign.run_random(40, seed=17, bits_per_fault=1)
    assert report.summary()["recovered"] > 0
    assert report.summary()["sdc"] == 0
    assert report.summary()["due"] == 0
