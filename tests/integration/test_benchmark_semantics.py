"""Ground-truth validation: benchmark kernels vs NumPy references.

The end-to-end tests compare transformed kernels against the untransformed
baseline; these tests pin the baseline itself against independent NumPy
implementations of each computation, so a kernel-builder bug cannot hide.
Float kernels are compared with fp32-appropriate tolerances (the simulator
rounds through fp32 at every step; NumPy is told to do the same where it
matters).
"""

import math

import numpy as np
import pytest

from repro.bench import get_benchmark
from repro.gpusim import Executor, MemoryImage
from repro.gpusim.executor import b2f, f2b


def run_benchmark(abbr):
    bench = get_benchmark(abbr)
    wl = bench.workload()
    mem, addrs, out = wl.make()
    inputs = {
        name: mem.download(addr, words)
        for (name, words, _), addr in zip(
            wl.buffers, (addrs[n] for n, _, _ in wl.buffers)
        )
        for name, words in [(name, words)]
    }
    Executor(bench.fresh_kernel(), rf_code_factory=lambda: None).run(
        wl.launch, mem
    )
    output = mem.download(*out)
    return wl, inputs, output


def as_f32(words):
    return np.array([b2f(w) for w in words], dtype=np.float32)


def test_nn_dense_layer():
    wl, inputs, output = run_benchmark("NN")
    x = as_f32(inputs["x"])
    w = as_f32(inputs["w"]).reshape(64, 16)
    acc = (w * x).sum(axis=1, dtype=np.float32)
    expected = 1.0 / (1.0 + np.exp2(-1.4426950408889634 * acc))
    got = as_f32(output)
    np.testing.assert_allclose(got, expected, rtol=2e-3)


def test_sgemm_matvec():
    wl, inputs, output = run_benchmark("SGEMM")
    a = as_f32(inputs["a"]).reshape(64, 32)
    b = as_f32(inputs["b"])
    expected = (a * b).sum(axis=1, dtype=np.float32)
    got = as_f32(output)
    np.testing.assert_allclose(got, expected, rtol=2e-3, atol=1e-4)


def test_spmv_csr():
    wl, inputs, output = run_benchmark("SPMV")
    rowptr = inputs["rowptr"]
    colidx = inputs["colidx"]
    vals = as_f32(inputs["vals"])
    x = as_f32(inputs["x"])
    expected = np.zeros(64, dtype=np.float32)
    for row in range(64):
        for j in range(rowptr[row], rowptr[row + 1]):
            expected[row] += vals[j] * x[colidx[j]]
    np.testing.assert_allclose(as_f32(output), expected, rtol=2e-3, atol=1e-4)


def test_stc_stencil():
    wl, inputs, output = run_benchmark("STC")
    src = as_f32(inputs["src"])
    n = len(output)
    expected = np.empty(n, dtype=np.float32)
    for i in range(n):
        expected[i] = (src[i] + src[i + 1] + src[i + 2]) * np.float32(0.3333333)
    np.testing.assert_allclose(as_f32(output), expected, rtol=2e-3)


def test_cs_convolution():
    wl, inputs, output = run_benchmark("CS")
    src = as_f32(inputs["src"])
    kern = as_f32(inputs["kern"])
    radius = 4
    expected = np.zeros(64, dtype=np.float32)
    for g in range(64):
        tid, block = g % 32, g // 32
        for k in range(2 * radius + 1):
            # tile holds this block's 32 elements at [radius, radius+32);
            # out-of-tile taps read zero-initialized halo cells
            src_idx = tid + k - radius
            if 0 <= src_idx < 32:
                expected[g] += kern[k] * src[block * 32 + src_idx]
    np.testing.assert_allclose(as_f32(output), expected, rtol=2e-3, atol=1e-4)


def test_sp_dot_product():
    wl, inputs, output = run_benchmark("SP")
    a = as_f32(inputs["a"])
    b = as_f32(inputs["bv"])
    # two blocks of 32 threads, grid-stride over 256 elements
    expected = np.zeros(2, dtype=np.float32)
    for block in range(2):
        total = np.float32(0.0)
        for tid in range(32):
            g = block * 32 + tid
            partial = np.float32(0.0)
            i = g
            while i < 256:
                partial += a[i] * b[i]
                i += 64
            total += partial
        expected[block] = total
    np.testing.assert_allclose(as_f32(output), expected, rtol=1e-2)


def test_mt_transpose():
    wl, inputs, output = run_benchmark("MT")
    a = np.array(inputs["a"], dtype=np.uint64)
    expected = []
    for block in range(2):
        tile = a[block * 64 : (block + 1) * 64].reshape(8, 8)
        expected.extend(tile.T.flatten())
    assert output == [int(v) for v in expected]


def test_fw_walsh_transform():
    wl, inputs, output = run_benchmark("FW")
    data = np.array(inputs["data"], dtype=np.int64)
    expected = []
    for block in range(2):
        v = data[block * 32 : (block + 1) * 32].copy()
        stride = 1
        while stride < 32:
            nxt = v.copy()
            for i in range(32):
                pair = i ^ stride
                if pair > i:
                    nxt[i] = v[i] + v[pair]
                    nxt[pair] = v[i] - v[pair]
            v = nxt
            stride <<= 1
        expected.extend(int(x) & 0xFFFFFFFF for x in v)
    assert output == expected


def test_nw_dp_rows():
    wl, inputs, output = run_benchmark("NW")
    score = np.array(inputs["score"], dtype=np.int64).reshape(64, 16)
    ref = np.array(inputs["ref"], dtype=np.int64)
    expected = np.empty_like(score)
    for t in range(64):
        left = 0
        for j in range(16):
            up = score[t, j]
            best = max(left + ref[j], up + 1)
            expected[t, j] = best
            left = best
    assert output == [int(v) & 0xFFFFFFFF for v in expected.flatten()]


def test_hs_hotspot():
    wl, inputs, output = run_benchmark("HS")
    temp = as_f32(inputs["temp"])
    power = as_f32(inputs["power"])
    expected = np.zeros(64, dtype=np.float32)
    for g in range(64):
        tid, block = g % 32, g // 32
        left = temp[g - 1] if tid > 0 else np.float32(0.0)
        right = temp[g + 1] if tid < 31 else np.float32(0.0)
        center = temp[g]
        lap = left + right - 2 * center
        expected[g] = center + (lap * np.float32(0.1) + power[g])
    np.testing.assert_allclose(as_f32(output), expected, rtol=2e-3)


def test_srad_update():
    wl, inputs, output = run_benchmark("SRAD")
    img = as_f32(inputs["img"])
    lam = np.float32(0.125)
    expected = np.zeros(64, dtype=np.float32)
    for g in range(64):
        center = img[g + 1]
        left = img[g]
        right = img[g + 2]
        g_l = left - center
        g_r = right - center
        num = g_l * g_l + g_r * g_r
        q = num / (center * center)
        coeff = 1.0 / (q + 1.0)
        expected[g] = center + coeff * (g_l + g_r) * lam
    np.testing.assert_allclose(as_f32(output), expected, rtol=4e-3)


def test_bfs_one_level():
    wl, inputs, output = run_benchmark("BFS")
    adj = inputs["adj"]
    degree = 4
    expected = [0xFFFFFFFF] * 64
    expected[0] = 0
    for nbr_i in range(degree):
        nbr = adj[0 * degree + nbr_i]
        if expected[nbr] == 0xFFFFFFFF:
            expected[nbr] = 1
    assert output == expected


def test_gau_elimination_step():
    wl, inputs, output = run_benchmark("GAU")
    m = as_f32(inputs["m"]).reshape(16, 16).copy()
    pivot = m[0, 0]
    for row in range(1, 16):
        factor = np.float32(m[row, 0] / pivot)
        for j in range(16):
            m[row, j] = m[row, j] + (-factor) * m[0, j]
    got = as_f32(output).reshape(16, 16)
    np.testing.assert_allclose(got, m, rtol=4e-3, atol=1e-4)


def test_tpacf_histogram_conservation():
    wl, inputs, output = run_benchmark("TPACF")
    # every (thread, point) pair lands in exactly one bin
    total_pairs = 64 * 32  # 64 threads x 32 points each
    assert sum(output) == total_pairs


def test_nqu_total_solutions():
    wl, inputs, output = run_benchmark("NQU")
    # 64 threads pin the first queen to column gtid % 6; columns 0..5
    # partition all 4 solutions of 6-queens, and the pattern repeats
    # every 6 threads.  Count how many full+partial cycles cover 64.
    per_cycle = sum(output[:6])
    assert per_cycle == 4
    expected_total = sum(output[i % 6] for i in range(64))
    assert sum(output) == expected_total


def test_bo_prices_nonnegative_and_bounded():
    wl, inputs, output = run_benchmark("BO")
    spots = as_f32(inputs["spot"])
    prices = as_f32(output)
    assert (prices >= 0).all()
    # a call's value cannot exceed the maximum lattice asset value
    assert (prices <= spots + 12 * 1.5 + 1).all()
