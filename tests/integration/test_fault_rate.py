"""Recovery-cost-vs-fault-rate experiment (§3.1's Amdahl argument)."""

import pytest

from repro.experiments import fault_rate
from repro.gpusim.faults import RateFaultPlan


def test_rate_plan_validates_interval():
    with pytest.raises(ValueError):
        RateFaultPlan(interval=0)


def test_inflation_grows_with_rate_and_stays_correct():
    rows = fault_rate.run(abbr="STC", intervals=(5000, 200, 50), seed=7)
    inflations = [r["inflation"] for r in rows]
    # monotone in pressure (allowing float noise)
    assert inflations[0] <= inflations[1] + 1e-9 <= inflations[2] + 2e-9
    # correctness is rate-independent
    assert all(r["correct"] for r in rows)
    # the highest pressure actually exercised recovery
    assert rows[-1]["recoveries"] > 0


def test_negligible_at_low_rates():
    rows = fault_rate.run(abbr="STC", intervals=(10_000,), seed=3)
    assert rows[0]["inflation"] < 1.01
