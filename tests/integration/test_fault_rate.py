"""Recovery-cost-vs-fault-rate experiment (§3.1's Amdahl argument)."""

import pytest

from repro.experiments import fault_rate
from repro.gpusim.faults import RateFaultPlan


def test_rate_plan_validates_interval():
    with pytest.raises(ValueError):
        RateFaultPlan(interval=0)


def test_inflation_grows_with_rate_and_stays_correct():
    # seed picked so no double-strike defeats parity at interval=50
    # (single-bit strikes are detected and recovered; two strikes on one
    # register between reads are an SDC by design).  RateFaultPlan draws
    # from per-thread streams — backend- and interleaving-invariant —
    # so the schedule is a pure function of (seed, ctaid, tid).
    rows = fault_rate.run(abbr="STC", intervals=(5000, 200, 50), seed=5)
    inflations = [r["inflation"] for r in rows]
    # monotone in pressure (allowing float noise)
    assert inflations[0] <= inflations[1] + 1e-9 <= inflations[2] + 2e-9
    # correctness is rate-independent
    assert all(r["correct"] for r in rows)
    # the highest pressure actually exercised recovery
    assert rows[-1]["recoveries"] > 0


def test_negligible_at_low_rates():
    rows = fault_rate.run(abbr="STC", intervals=(10_000,), seed=3)
    assert rows[0]["inflation"] < 1.01
