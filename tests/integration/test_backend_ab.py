"""Differential A/B suite: the scalar interpreter vs the vectorized engine.

The vectorized engine (:mod:`repro.gpusim.vexec`) claims bit-for-bit
equivalence with the scalar interpreter — same :class:`ExecutionResult`,
same memory contents, same fault-hook firing order per thread, same
recovery behavior, same exception on uncorrectable faults.  These tests
enforce the claim on every benchmark kernel of the suite, fault-free and
under fault injection.

One deliberate carve-out, documented in INTERNALS: when a *broadcast*
rate plan independently dooms several threads at once, the two engines
may surface a different doomed thread's exception first (the scalar
engine's own abort choice is equally schedule-dependent).  The DUE
*class* is compared in that case, not the message.
"""

import pytest

from repro.bench import ALL_BENCHMARKS, get_benchmark
from repro.core.pipeline import PennyCompiler
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.gpusim import make_executor
from repro.gpusim.faults import (
    CheckpointFaultPlan,
    FaultPlan,
    RateFaultPlan,
    RecoveryFaultPlan,
    classify_due,
)

ABBRS = [b.abbr for b in ALL_BENCHMARKS]

#: subset with both loops and divergence, used for the heavier plans
FAULTY_ABBRS = ("STC", "BFS", "NW", "SGEMM", "BO", "TPACF")


def _run(kernel, wl, backend, plan=None, **kwargs):
    """One execution → a comparable outcome triple."""
    mem = wl.make_memory()
    ex = make_executor(kernel, backend=backend, fault_plan=plan, **kwargs)
    try:
        result = ex.run(wl.launch, mem)
    except Exception as exc:  # DUE: compare type + message + cause
        cause = getattr(exc, "cause", None)
        return ("exc", type(exc).__name__, str(exc), cause), None
    return ("ok", result), mem.snapshot_global()


def _assert_identical(kernel, wl, plan_factory=None, **kwargs):
    plan_s = plan_factory() if plan_factory else None
    plan_v = plan_factory() if plan_factory else None
    out_s, mem_s = _run(kernel, wl, "scalar", plan_s, **kwargs)
    out_v, mem_v = _run(kernel, wl, "vector", plan_v, **kwargs)
    assert out_s == out_v
    assert mem_s == mem_v
    if plan_s is not None:
        for attr in ("injections", "hit_register", "fired"):
            assert getattr(plan_s, attr, None) == getattr(
                plan_v, attr, None
            ), attr


@pytest.mark.parametrize("abbr", ABBRS)
def test_zero_fault_raw(abbr):
    """Unprotected kernel, no parity: pure interpreter equivalence."""
    bench = get_benchmark(abbr)
    wl = bench.workload()
    _assert_identical(
        bench.fresh_kernel(), wl, rf_code_factory=lambda: None
    )


@pytest.mark.parametrize("abbr", ABBRS)
def test_zero_fault_penny(abbr):
    """Penny-protected kernel: checkpoints, slices, parity RF."""
    bench = get_benchmark(abbr)
    wl = bench.workload()
    compiled = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    _assert_identical(compiled.kernel, wl)


@pytest.mark.parametrize("abbr", ABBRS)
def test_single_fault_recovery(abbr):
    """A targeted single-bit flip on every bench kernel: detection,
    restore hooks, and region re-execution must match exactly."""
    bench = get_benchmark(abbr)
    wl = bench.workload()
    compiled = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    tid = min(3, wl.launch.block - 1)
    _assert_identical(
        compiled.kernel,
        wl,
        lambda: FaultPlan(
            ctaid=0, tid=tid, after_instructions=25, bits=(13,)
        ),
    )


@pytest.mark.parametrize("abbr", FAULTY_ABBRS)
def test_double_bit_sdc_path(abbr):
    """Two flipped bits defeat parity: both engines must produce the
    same silent corruption or the same DUE."""
    bench = get_benchmark(abbr)
    wl = bench.workload()
    compiled = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    _assert_identical(
        compiled.kernel,
        wl,
        lambda: FaultPlan(
            ctaid=0, tid=1, after_instructions=40, bits=(5, 13)
        ),
    )


@pytest.mark.parametrize("abbr", FAULTY_ABBRS[:3])
def test_checkpoint_and_recovery_strikes(abbr):
    """Faults on the checkpoint storage and during recovery itself."""
    bench = get_benchmark(abbr)
    wl = bench.workload()
    compiled = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    tid = min(3, wl.launch.block - 1)
    _assert_identical(
        compiled.kernel,
        wl,
        lambda: RecoveryFaultPlan(
            FaultPlan(
                ctaid=0, tid=tid, after_instructions=30, bits=(7,)
            ),
            bits=(3,),
        ),
    )
    _assert_identical(
        compiled.kernel,
        wl,
        lambda: CheckpointFaultPlan(
            ctaid=0, tid=tid, after_instructions=20, num_bits=1,
            rng_seed=7,
        ),
    )


@pytest.mark.parametrize("abbr", ("STC", "NW"))
def test_rate_plan_due_class(abbr):
    """Broadcast rate plans: per-thread injection streams are seeded
    identically, so completing runs match exactly; when several threads
    are independently doomed the engines may abort on different ones, so
    only the DUE class is compared for failing runs."""
    bench = get_benchmark(abbr)
    wl = bench.workload()
    compiled = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )

    def run(backend):
        plan = RateFaultPlan(interval=400, seed=11)
        mem = wl.make_memory()
        ex = make_executor(
            compiled.kernel,
            backend=backend,
            fault_plan=plan,
            max_recoveries_per_thread=100_000,
            max_instructions_per_thread=20_000_000,
        )
        try:
            result = ex.run(wl.launch, mem)
        except Exception as exc:
            return ("due", classify_due(exc).value), plan
        return ("ok", result, mem.snapshot_global()), plan

    out_s, plan_s = run("scalar")
    out_v, plan_v = run("vector")
    if out_s[0] == "ok" and out_v[0] == "ok":
        assert out_s == out_v
        assert plan_s.injections == plan_v.injections
    else:
        assert out_s[0] == out_v[0] == "due"
        assert out_s[1] == out_v[1]
