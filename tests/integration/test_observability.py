"""End-to-end observability: traced compiles, campaign counter
aggregation across shards, and the ``penny trace`` CLI artifact."""

import json

import pytest

import repro
import repro.obs as obs
from repro.cli import main
from repro.gpusim.campaign import CampaignReport, CampaignSpec, ParallelCampaign

SCALE = "examples/scale.ptx"

#: every stage of a strict auto-overwrite compile must appear as a span
COMPILE_PASSES = (
    "pass.regions",
    "pass.placement",
    "pass.liveins",
    "pass.plan",
    "pass.hazards",
    "pass.coloring",
    "pass.pddg",
    "pass.pruning",
    "pass.recovery_table",
    "pass.storage",
    "pass.codegen",
)


class TestTracedCompile:
    def test_every_pass_becomes_a_nested_span(self):
        tracer = obs.Tracer()
        with tracer:
            repro.protect(
                repro.parse_kernel(open(SCALE).read()),
                launch=repro.LaunchConfig(
                    threads_per_block=16, num_blocks=2
                ),
            )
        names = {s.name for s in tracer.spans}
        for name in COMPILE_PASSES:
            assert name in names, f"missing span {name}"
        compile_span = tracer.find("compile")[0]
        assert compile_span.parent_id is None
        # Everything else hangs below the compile root.
        roots = tracer.roots()
        assert roots == [compile_span]
        assert tracer.counters.counts["compile.kernels"] == 1
        assert tracer.counters.counts["compile.regions_cut"] >= 1

    def test_compile_counters_track_stats(self):
        tracer = obs.Tracer()
        with tracer:
            result = repro.protect(
                repro.parse_kernel(open(SCALE).read()),
                launch=repro.LaunchConfig(
                    threads_per_block=16, num_blocks=2
                ),
            )
        c = tracer.counters.counts
        assert c["compile.checkpoints_committed"] == result.stats[
            "checkpoints_committed"
        ]
        assert c["compile.checkpoints_pruned"] == result.stats[
            "checkpoints_pruned"
        ]


@pytest.fixture(scope="module")
def campaign_spec():
    return CampaignSpec(
        benchmark="STC",
        scheme="Penny",
        num_injections=30,
        seed=2020,
        surfaces=("rf", "ckpt", "recovery"),
    )


@pytest.fixture(scope="module")
def serial_report(campaign_spec):
    return ParallelCampaign(campaign_spec, workers=1).run()


class TestCampaignCounters:
    def test_every_injection_carries_a_snapshot(self, serial_report):
        assert all(r.counters for r in serial_report.records)

    def test_totals_cover_all_runs(self, serial_report):
        # DUE runs abort mid-simulation without publishing sim.* totals,
        # so the floor is the number of runs that finished.
        finished = sum(
            1 for r in serial_report.records if r.outcome != "due"
        )
        c = serial_report.counters()
        assert c.counts["sim.runs"] >= finished
        assert c.counts["sim.instructions"] > 0

    def test_shard_merge_equals_serial(self, campaign_spec, serial_report):
        """The acceptance property: merging sharded runs reproduces the
        serial run's counter totals exactly."""
        shards = [
            CampaignReport(
                records=list(serial_report.records[lo:hi]),
                spec=campaign_spec,
            )
            for lo, hi in ((0, 9), (9, 21), (21, 30))
        ]
        merged = CampaignReport.merge(shards)
        assert merged.counters().to_dict() == serial_report.counters().to_dict()

    def test_parallel_workers_equal_serial(
        self, campaign_spec, serial_report
    ):
        parallel = ParallelCampaign(campaign_spec, workers=2).run()
        assert (
            parallel.counters().to_dict()
            == serial_report.counters().to_dict()
        )

    def test_overlapping_shards_dedup(self, campaign_spec, serial_report):
        a = CampaignReport(
            records=list(serial_report.records[:20]), spec=campaign_spec
        )
        b = CampaignReport(
            records=list(serial_report.records[12:]), spec=campaign_spec
        )
        merged = CampaignReport.merge([a, b])
        assert merged.counters().to_dict() == serial_report.counters().to_dict()


class TestTraceCli:
    def test_trace_subcommand_artifact(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.jsonl"
        rc = main(
            [
                "trace", SCALE,
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert rc == 0
        capsys.readouterr()

        trace = obs.load_chrome_trace(str(trace_path))
        assert obs.validate_chrome_trace(trace) == []
        names = obs.span_names(trace)
        for name in COMPILE_PASSES:
            assert name in names, f"missing span {name}"
        # The seeded fault produced at least one recovery re-execution
        # span, nested under a simulator run.
        recover = obs.find_span(trace, "sim.recover")
        assert recover is not None
        assert recover["args"]["reexec_insts"] >= 0
        parent_ids = {
            ev["args"]["span_id"]: ev
            for ev in trace["traceEvents"]
            if ev.get("ph") == "X"
        }
        assert (
            parent_ids[recover["args"]["parent_id"]]["name"] == "sim.run"
        )

        assert obs.validate_metrics_jsonl(str(metrics_path)) == []
        kinds = [
            json.loads(line)["kind"]
            for line in metrics_path.read_text().splitlines()
        ]
        assert "counters" in kinds
        assert "compile_result" in kinds
        assert "execution_result" in kinds

    def test_compile_trace_out(self, tmp_path, capsys):
        out = tmp_path / "compile-trace.json"
        rc = main(
            [
                "compile", SCALE,
                "--block", "16", "--grid", "2",
                "--trace-out", str(out),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        trace = obs.load_chrome_trace(str(out))
        assert obs.validate_chrome_trace(trace) == []
        assert "compile" in obs.span_names(trace)

    def test_campaign_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "campaign.jsonl"
        rc = main(
            [
                "campaign", "--bench", "STC", "-n", "10",
                "--metrics-out", str(out), "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "campaign_report"
        assert payload["counters"]["counters"]["sim.runs"] >= 10
        assert obs.validate_metrics_jsonl(str(out)) == []
        kinds = [
            json.loads(line)["kind"]
            for line in out.read_text().splitlines()
        ]
        assert "campaign_report" in kinds
