"""Fault injection: the Appendix A claims, validated empirically.

With parity detection and Penny recovery:
- single-bit register faults NEVER produce silent data corruption,
- they never require in-region detection (the fault may sit dormant across
  many regions until the register is finally read),
- recovery re-executes and the program output matches the golden run.
"""

import pytest

from repro.bench import get_benchmark
from repro.coding import SecdedCode
from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.gpusim import FaultCampaign, FaultOutcome, FaultPlan
from repro.gpusim.executor import Executor, Launch
from repro.gpusim.memory import MemoryImage

#: a structurally diverse subset: in-place loops, shared memory + barriers,
#: divergence, local-memory arrays, atomics
CAMPAIGN_APPS = ["STC", "BO", "FW", "GAU", "NW", "TPACF"]


def _campaign(abbr, config=None):
    bench = get_benchmark(abbr)
    wl = bench.workload()
    result = PennyCompiler(config or scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    mem, addrs, out = wl.make()
    return FaultCampaign(
        result.kernel,
        wl.launch,
        wl.make_memory,
        out,
    )


@pytest.mark.parametrize("abbr", CAMPAIGN_APPS)
def test_single_bit_faults_never_corrupt(abbr):
    campaign = _campaign(abbr)
    report = campaign.run_random(40, seed=2020, bits_per_fault=1)
    summary = report.summary()
    assert summary["sdc"] == 0, summary
    assert summary["due"] == 0, summary
    assert summary["masked"] + summary["recovered"] == 40


def test_faults_are_actually_detected_and_recovered():
    """At least some injections must exercise the recovery path (not all
    masked), otherwise the campaign proves nothing."""
    campaign = _campaign("STC")
    report = campaign.run_random(60, seed=77, bits_per_fault=1)
    assert report.count(FaultOutcome.RECOVERED) > 0


def test_detection_can_cross_region_boundaries():
    """Corrupt a register that is not read until several regions later —
    the lack of in-region detection must not break recovery (§4)."""
    bench = get_benchmark("STC")
    wl = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    campaign = FaultCampaign(
        result.kernel, wl.launch, wl.make_memory, wl.output_region()
    )
    golden = campaign.golden_output()
    # corrupt the loop-bound register right after it is defined; it is only
    # read at the loop test of each iteration (later regions)
    plan = FaultPlan(ctaid=0, tid=3, after_instructions=12, reg_name=None,
                     bits=(5,), rng_seed=9)
    outcome = campaign.run_one(plan)
    assert outcome.outcome in (FaultOutcome.RECOVERED, FaultOutcome.MASKED)


def test_double_bit_fault_escapes_parity():
    """Two flips are invisible to single parity — the Table 1 rationale for
    matching the code to the expected error magnitude."""
    campaign = _campaign("STC")
    report = campaign.run_random(60, seed=11, bits_per_fault=2)
    summary = report.summary()
    # Parity cannot see an even number of flips: some injections slip
    # through as silent corruption or crash on a corrupted address (DUE).
    # The contrast with test_double_bit_fault_detected_by_secded_rf below
    # is exactly Table 1's point.
    assert summary["sdc"] + summary["due"] > 0


def test_double_bit_fault_detected_by_secded_rf():
    """With a SECDED-protected RF used detection-only (Penny's 3-bit
    detector), double faults are caught and recovered."""
    bench = get_benchmark("STC")
    wl = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    campaign = FaultCampaign(
        result.kernel,
        wl.launch,
        wl.make_memory,
        wl.output_region(),
        rf_code_factory=lambda: SecdedCode(32),
    )
    report = campaign.run_random(40, seed=13, bits_per_fault=2)
    summary = report.summary()
    assert summary["sdc"] == 0, summary
    assert summary["due"] == 0, summary


def test_unprotected_kernel_cannot_recover():
    """Without a recovery table, a detected fault is fatal (DUE)."""
    bench = get_benchmark("STC")
    wl = bench.workload()
    kernel = bench.fresh_kernel()  # no Penny transformation
    campaign = FaultCampaign(
        kernel, wl.launch, wl.make_memory, wl.output_region()
    )
    report = campaign.run_random(30, seed=3, bits_per_fault=1)
    summary = report.summary()
    assert summary["recovered"] == 0
    assert summary["due"] > 0


def test_fault_in_checkpoint_base_register_recovers():
    """The codegen-introduced checkpoint base pointers are live across the
    whole kernel; their recovery slices must restore them."""
    bench = get_benchmark("BO")
    wl = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    campaign = FaultCampaign(
        result.kernel, wl.launch, wl.make_memory, wl.output_region()
    )
    golden = campaign.golden_output()
    hit_base = 0
    for inst_idx in range(20, 200, 15):
        for reg in ("%ckb_s", "%ckb_g"):
            plan = FaultPlan(
                ctaid=0, tid=1, after_instructions=inst_idx,
                reg_name=reg, bits=(4,),
            )
            outcome = campaign.run_one(plan)
            if outcome.plan.injected:
                hit_base += 1
                assert outcome.outcome in (
                    FaultOutcome.RECOVERED,
                    FaultOutcome.MASKED,
                ), outcome.outcome
    assert hit_base > 0


def test_multiple_faults_in_one_run():
    """Several independent single-bit faults across different threads."""
    bench = get_benchmark("GAU")
    wl = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )

    class MultiPlan:
        def __init__(self, plans):
            self.plans = plans

        @property
        def injected(self):
            return any(p.injected for p in self.plans)

        def after_instruction(self, t):
            for p in self.plans:
                p.after_instruction(t)

    campaign = FaultCampaign(
        result.kernel, wl.launch, wl.make_memory, wl.output_region()
    )
    golden = campaign.golden_output()
    plans = [
        FaultPlan(ctaid=0, tid=2, after_instructions=9, bits=(3,), rng_seed=1),
        FaultPlan(ctaid=1, tid=7, after_instructions=21, bits=(12,), rng_seed=2),
        FaultPlan(ctaid=0, tid=11, after_instructions=33, bits=(30,), rng_seed=3),
    ]
    mem = wl.make_memory()
    Executor(result.kernel, fault_plan=MultiPlan(plans)).run(wl.launch, mem)
    assert mem.download(*wl.output_region()) == golden
