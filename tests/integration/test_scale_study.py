"""The workload-scale study backing EXPERIMENTS.md's compression claim."""

from repro.experiments import scale_study
from repro.gpusim import Executor, Launch, MemoryImage


def test_family_members_compute_consistently():
    """Every family member must be a valid, runnable kernel."""
    for n in (2, 12):
        kernel = scale_study.build_kernel(n)
        kernel.validate()
        mem = MemoryImage()
        addr = mem.alloc_global(2048)
        mem.upload(addr, list(range(1, 65)))
        mem.set_param("A", addr)
        mem.set_param("n", 32)
        Executor(kernel, rf_code_factory=lambda: None).run(
            Launch(2, 32), mem
        )


def test_bolt_grows_penny_flat():
    rows = scale_study.run(sweep=(2, 12, 20))
    bolts = [r["bolt"] for r in rows]
    pennys = [r["penny"] for r in rows]
    # Bolt's overhead climbs materially with the live-out count...
    assert bolts[-1] > bolts[0] + 0.2
    # ... Penny's does not (pruning absorbs the extra live-outs)
    assert abs(pennys[-1] - pennys[0]) < 0.05
    # and Bolt reaches the paper's magnitude at paper-scale counts
    assert bolts[-1] > 1.6


def test_penny_checkpoint_count_flat():
    rows = scale_study.run(sweep=(2, 20))
    assert rows[0]["penny_committed"] == rows[-1]["penny_committed"]
    assert rows[-1]["bolt_committed"] > rows[0]["bolt_committed"]
