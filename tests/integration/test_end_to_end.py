"""End-to-end functional equivalence: every benchmark, every scheme.

The transformed kernel must compute exactly what the original computes —
checkpointing, renaming, storage alternation and recovery metadata may not
change program semantics.
"""

import pytest

from repro.bench import ALL_BENCHMARKS, get_benchmark
from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.core.schemes import (
    SCHEME_BOLT_AUTO,
    SCHEME_BOLT_GLOBAL,
    SCHEME_PENNY,
    igpu_transform,
    scheme_config,
)
from repro.gpusim import Executor, Launch, MemoryImage

ABBRS = [b.abbr for b in ALL_BENCHMARKS]


def golden_output(bench):
    wl = bench.workload()
    mem, _, out = wl.make()
    Executor(bench.fresh_kernel(), rf_code_factory=lambda: None).run(
        wl.launch, mem
    )
    return mem.download(*out), wl, out


def run_kernel(kernel, wl, out):
    mem = wl.make_memory()
    Executor(kernel, rf_code_factory=lambda: None).run(wl.launch, mem)
    return mem.download(*out)


@pytest.mark.parametrize("abbr", ABBRS)
def test_penny_preserves_semantics(abbr):
    bench = get_benchmark(abbr)
    golden, wl, out = golden_output(bench)
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    assert run_kernel(result.kernel, wl, out) == golden


@pytest.mark.parametrize("abbr", ABBRS)
def test_bolt_global_preserves_semantics(abbr):
    bench = get_benchmark(abbr)
    golden, wl, out = golden_output(bench)
    result = PennyCompiler(scheme_config(SCHEME_BOLT_GLOBAL)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    assert run_kernel(result.kernel, wl, out) == golden


@pytest.mark.parametrize("abbr", ABBRS)
def test_igpu_preserves_semantics(abbr):
    bench = get_benchmark(abbr)
    golden, wl, out = golden_output(bench)
    kernel = bench.fresh_kernel()
    igpu_transform(kernel)
    assert run_kernel(kernel, wl, out) == golden


@pytest.mark.parametrize(
    "abbr", ["BO", "STC", "SGEMM", "FW", "NW", "TPACF", "GAU"]
)
@pytest.mark.parametrize("pruning", ["none", "basic", "optimal"])
def test_pruning_modes_preserve_semantics(abbr, pruning):
    """The checkpoint-heavy kernels across all pruning levels."""
    bench = get_benchmark(abbr)
    golden, wl, out = golden_output(bench)
    config = PennyConfig(pruning=pruning, overwrite="sa")
    result = PennyCompiler(config).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    assert run_kernel(result.kernel, wl, out) == golden


@pytest.mark.parametrize("abbr", ["BO", "STC", "SP", "PF"])
@pytest.mark.parametrize("storage", ["shared", "global", "auto"])
def test_storage_modes_preserve_semantics(abbr, storage):
    bench = get_benchmark(abbr)
    golden, wl, out = golden_output(bench)
    config = PennyConfig(storage_mode=storage, overwrite="sa")
    result = PennyCompiler(config).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    assert run_kernel(result.kernel, wl, out) == golden


@pytest.mark.parametrize("abbr", ["BO", "STC", "FW", "NQU"])
@pytest.mark.parametrize("overwrite", ["rr", "sa"])
def test_overwrite_schemes_preserve_semantics(abbr, overwrite):
    bench = get_benchmark(abbr)
    golden, wl, out = golden_output(bench)
    config = PennyConfig(overwrite=overwrite)
    result = PennyCompiler(config).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    assert run_kernel(result.kernel, wl, out) == golden


@pytest.mark.parametrize("abbr", ABBRS)
def test_protected_kernel_carries_recovery_metadata(abbr):
    bench = get_benchmark(abbr)
    wl = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    kernel = result.kernel
    assert kernel.meta.get("protected")
    assert "recovery_table" in kernel.meta
    assert "region_boundaries" in kernel.meta
    table = kernel.meta["recovery_table"]
    for boundary in kernel.meta["region_boundaries"]:
        assert boundary in table.regions
