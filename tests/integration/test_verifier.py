"""The static verifier: clean on every compiled benchmark, loud on
deliberately broken metadata."""

import pytest

from repro.bench import ALL_BENCHMARKS, get_benchmark
from repro.core import PennyCompiler, SCHEME_PENNY, scheme_config
from repro.core.pipeline import PennyConfig
from repro.core.verify import VerificationError, check, verify_compiled

ABBRS = [b.abbr for b in ALL_BENCHMARKS]


@pytest.mark.parametrize("abbr", ABBRS)
def test_all_penny_kernels_verify_clean(abbr):
    bench = get_benchmark(abbr)
    wl = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    assert verify_compiled(result.kernel) == []


@pytest.mark.parametrize("abbr", ["BO", "STC", "FW"])
@pytest.mark.parametrize("pruning", ["none", "basic", "optimal"])
def test_all_pruning_modes_verify_clean(abbr, pruning):
    bench = get_benchmark(abbr)
    wl = bench.workload()
    result = PennyCompiler(
        PennyConfig(pruning=pruning, overwrite="sa")
    ).compile(bench.fresh_kernel(), wl.launch_config)
    assert verify_compiled(result.kernel) == []


def _compiled_stc():
    bench = get_benchmark("STC")
    wl = bench.workload()
    return PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )


class TestViolationDetection:
    def test_uncompiled_kernel_flagged(self):
        kernel = get_benchmark("STC").fresh_kernel()
        assert verify_compiled(kernel)

    def test_missing_recovery_entry_flagged(self):
        result = _compiled_stc()
        boundary = next(iter(result.regions.boundaries))
        del result.recovery.regions[boundary]
        problems = verify_compiled(result.kernel)
        assert any("no recovery entry" in p for p in problems)

    def test_dropped_restore_flagged(self):
        result = _compiled_stc()
        # remove a restore action from some entry that has slot restores
        for entry in result.recovery.regions.values():
            slot_actions = [a for a in entry.restores if a.is_slot]
            if slot_actions:
                entry.restores.remove(slot_actions[0])
                break
        problems = verify_compiled(result.kernel)
        assert any("no restore action" in p for p in problems)

    def test_bogus_slot_flagged(self):
        result = _compiled_stc()
        for entry in result.recovery.regions.values():
            for action in entry.restores:
                if action.is_slot:
                    action.slot_color = 7  # no such color
                    problems = verify_compiled(result.kernel)
                    assert any("no storage slot" in p for p in problems)
                    return
        pytest.skip("no slot restores to corrupt")

    def test_check_raises(self):
        kernel = get_benchmark("STC").fresh_kernel()
        with pytest.raises(VerificationError):
            check(kernel)

    def test_check_passes_on_clean(self):
        result = _compiled_stc()
        check(result.kernel)


    def test_missing_checkpoint_store_flagged_by_coverage(self):
        """Deleting a checkpoint store from the lowered kernel must trip
        the V1 coverage check for some slot-restored live-in."""
        from repro.core.verify import _is_checkpoint_store

        result = _compiled_stc()
        kernel = result.kernel
        slot_regs = {
            a.reg_name
            for entry in result.recovery.regions.values()
            for a in entry.restores
            if a.is_slot
        }
        removed = False
        for blk in kernel.blocks:
            for i, inst in enumerate(blk.instructions):
                if (
                    _is_checkpoint_store(inst)
                    and hasattr(inst.src, "name")
                    and inst.src.name in slot_regs
                ):
                    del blk.instructions[i]
                    removed = True
                    break
            if removed:
                break
        assert removed
        problems = verify_compiled(kernel)
        assert any("slot restore would be stale" in p for p in problems), (
            problems
        )

