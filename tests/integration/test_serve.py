"""The compile server end to end: protocol, backpressure, cancellation,
drain, and the client's retry discipline.

The in-process tests run the server on a daemon thread with a *thread*
pool (``use_threads=True``) so the executor entry point
(``repro.serve.server._execute_request``) can be monkeypatched with
slow/instrumented doubles.  The SIGTERM drain test exercises the real
``penny serve`` process.
"""

import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core.pipeline import PennyConfig
from repro.serve import (
    CompileClient,
    CompileServer,
    ProtocolError,
    RemoteCompileError,
    RequestTimeout,
    RetryPolicy,
    ServeConfig,
    ServerBusy,
    ServerUnavailable,
    wait_until_ready,
)

PTX = """
.entry axpy (.param .ptr A, .param .u32 n) {
ENTRY:
  mov.u32 %tid, %tid.x;
  ld.param.u32 %a, [A];
  ld.param.u32 %n, [n];
  mov.u32 %i, %tid;
HEAD:
  setp.ge.u32 %p1, %i, %n;
  @%p1 bra EXIT;
BODY:
  shl.u32 %off, %i, 2;
  add.u32 %addr, %a, %off;
  ld.global.u32 %v, [%addr];
  mad.u32 %v2, %v, 3, 7;
  st.global.u32 [%addr], %v2;
  add.u32 %i, %i, 32;
  bra HEAD;
EXIT:
  ret;
}
"""

BAD_PTX = ".entry broken (.param .ptr A) {\nENTRY:\n  bra NOWHERE;\n}\n"


@pytest.fixture
def server():
    srv = CompileServer(
        ServeConfig(port=0, workers=2, queue_limit=2, use_threads=True)
    )
    srv.start_in_thread()
    yield srv
    srv.request_shutdown()
    time.sleep(0.1)


def _client(server, **kw):
    kw.setdefault("retry", RetryPolicy(attempts=2, base_delay=0.01))
    kw.setdefault("rng", random.Random(0))
    kw.setdefault("sleep", lambda s: None)
    return CompileClient(port=server.port, **kw)


# -- the happy path ---------------------------------------------------------------


def test_ping_compile_and_cached_repeat(server):
    client = _client(server)
    assert client.ping()

    first = client.compile(PTX, config=PennyConfig())
    assert first["ok"] and not first["cached"]
    assert ".entry axpy" in first["kernel"]
    assert first["result"]["kind"] == "compile_result"

    second = client.compile(PTX, config=PennyConfig())
    assert second["cached"]
    assert second["kernel"] == first["kernel"]
    assert second["result"] == first["result"]

    stats = client.stats()
    assert stats["server"]["compiles"] == 2
    assert stats["cache"]["stats"]["hits"] == 1


def test_scheme_preset_and_compile_error(server):
    client = _client(server)
    response = client.compile(PTX, scheme="Penny")
    assert response["ok"]

    with pytest.raises(RemoteCompileError) as exc_info:
        client.compile(BAD_PTX, config=PennyConfig())
    assert "NOWHERE" in str(exc_info.value)
    # The full typed compiler payload rides along.
    assert "NOWHERE" in exc_info.value.detail["message"]
    assert "type" in exc_info.value.detail


def test_protocol_errors_are_typed(server):
    client = _client(server, retry=RetryPolicy(attempts=1))
    with pytest.raises(ProtocolError):
        client.request("compile")  # no ptx
    with pytest.raises(ProtocolError):
        client.request("no_such_op")
    # A raw garbage frame gets a typed error response, not a hangup.
    with socket.create_connection(("127.0.0.1", server.port)) as sock:
        sock.sendall(b"this is not json\n")
        response = json.loads(sock.makefile("rb").readline())
    assert response["ok"] is False
    assert response["error"]["type"] == "ProtocolError"


def test_pipelined_requests_on_one_connection(server):
    """Two frames written back to back must both be answered (the
    disconnect watcher must hand the second frame back intact)."""
    frames = [
        {"op": "compile", "id": i, "ptx": PTX, "strict": True}
        for i in range(2)
    ]
    with socket.create_connection(("127.0.0.1", server.port)) as sock:
        sock.sendall(
            b"".join(json.dumps(f).encode() + b"\n" for f in frames)
        )
        reader = sock.makefile("rb")
        responses = [json.loads(reader.readline()) for _ in range(2)]
    assert [r["id"] for r in responses] == [0, 1]
    assert all(r["ok"] for r in responses)


# -- robustness: backpressure, cancellation, timeouts -----------------------------


def _install_slow_executor(monkeypatch, release: threading.Event):
    """Replace the pool entry point with one that blocks until released."""
    calls = []

    def slow(payload):
        calls.append(payload.get("name"))
        release.wait(timeout=10.0)
        return "error", {
            "type": "CompileError",
            "message": "slow double",
            "pass": "serve",
            "scheme": None,
            "kernel": payload.get("name"),
            "kernel_ptx": payload.get("ptx", ""),
            "detail": {},
        }

    monkeypatch.setattr("repro.serve.server._execute_request", slow)
    return calls


def test_queue_bound_rejects_with_typed_busy(server, monkeypatch):
    release = threading.Event()
    _install_slow_executor(monkeypatch, release)

    # Fill the queue (limit 2) with hanging requests on raw sockets.
    hogs = []
    try:
        for i in range(server.config.queue_limit):
            sock = socket.create_connection(("127.0.0.1", server.port))
            sock.sendall(
                json.dumps({"op": "compile", "id": i, "ptx": PTX}).encode()
                + b"\n"
            )
            hogs.append(sock)
        deadline = time.monotonic() + 5.0
        while server._inflight < server.config.queue_limit:
            assert time.monotonic() < deadline, "queue never filled"
            time.sleep(0.01)

        # The N+1th compile is rejected immediately with ServerBusy.
        client = _client(
            server, retry=RetryPolicy(attempts=1, retry_busy=False)
        )
        with pytest.raises(ServerBusy) as exc_info:
            client.compile(PTX)
        assert exc_info.value.detail["queue_limit"] == 2
        # Non-compile ops still answer while the queue is full.
        assert client.ping()
        assert server.stats.busy_rejections >= 1
    finally:
        release.set()
        for sock in hogs:
            sock.close()


def test_mid_request_disconnect_cancels(server, monkeypatch):
    release = threading.Event()
    calls = _install_slow_executor(monkeypatch, release)

    sock = socket.create_connection(("127.0.0.1", server.port))
    sock.sendall(
        json.dumps({"op": "compile", "id": "gone", "ptx": PTX}).encode()
        + b"\n"
    )
    deadline = time.monotonic() + 5.0
    while not calls:
        assert time.monotonic() < deadline, "request never dispatched"
        time.sleep(0.01)
    sock.close()  # walk away mid-compile

    deadline = time.monotonic() + 5.0
    while server.stats.cancelled < 1:
        assert time.monotonic() < deadline, "disconnect not noticed"
        time.sleep(0.01)
    release.set()
    deadline = time.monotonic() + 5.0
    while server._inflight:
        assert time.monotonic() < deadline, "slot never freed"
        time.sleep(0.01)
    # The server is still healthy afterwards.
    assert _client(server).ping()


def test_request_timeout_is_typed(monkeypatch):
    srv = CompileServer(
        ServeConfig(
            port=0,
            workers=1,
            queue_limit=2,
            request_timeout=0.2,
            use_threads=True,
        )
    )
    release = threading.Event()
    _install_slow_executor(monkeypatch, release)
    srv.start_in_thread()
    try:
        client = _client(srv, retry=RetryPolicy(attempts=1))
        with pytest.raises(RequestTimeout):
            client.compile(PTX)
        assert srv.stats.timeouts == 1
    finally:
        release.set()
        srv.request_shutdown()


# -- drain ------------------------------------------------------------------------


def test_shutdown_op_drains(server):
    client = _client(server)
    assert client.compile(PTX)["ok"]
    assert client.shutdown()
    deadline = time.monotonic() + 5.0
    while not server._draining:
        assert time.monotonic() < deadline
        time.sleep(0.01)
    # Draining: new compiles are busy-rejected.
    with pytest.raises((ServerBusy, ServerUnavailable, OSError)):
        _client(server, retry=RetryPolicy(attempts=1, retry_busy=False)).compile(PTX)


def test_sigterm_drains_the_real_process(tmp_path):
    """``penny serve`` under SIGTERM: answers in-flight work, exits 0."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            "1",
            "--threads",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        # The bound port is announced on stderr.
        line = proc.stderr.readline()
        assert "listening on" in line, line
        port = int(line.rsplit(":", 1)[1].split()[0])
        assert wait_until_ready("127.0.0.1", port, timeout=10.0)

        client = CompileClient(port=port, timeout=30.0)
        assert client.compile(PTX, scheme="Penny")["ok"]

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=15.0) == 0
        remainder = proc.stderr.read()
        assert "drained" in remainder
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


# -- the client's retry discipline ------------------------------------------------


def test_backoff_is_exponential_with_bounded_jitter():
    policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.5)
    rng = random.Random(42)
    delays = [policy.delay(a, rng) for a in range(5)]
    for attempt, delay in enumerate(delays):
        base = 0.1 * (2.0 ** attempt)
        assert base <= delay <= base * 1.5
    capped = RetryPolicy(base_delay=1.0, max_delay=2.0, jitter=0.0)
    assert capped.delay(10, rng) == 2.0


def test_client_retries_until_server_appears():
    # Take a port, but accept nothing yet.
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    port = listener.getsockname()[1]
    listener.close()  # now connections are refused

    sleeps = []
    client = CompileClient(
        port=port,
        retry=RetryPolicy(attempts=3, base_delay=0.01),
        rng=random.Random(0),
        sleep=sleeps.append,
    )
    with pytest.raises(ServerUnavailable) as exc_info:
        client.ping()
    assert len(sleeps) == 2  # a backoff sleep between each retry
    assert sleeps[0] < sleeps[1]  # exponential growth
    assert len(exc_info.value.detail["attempts"]) == 3


def test_client_retries_busy_then_succeeds(server, monkeypatch):
    import repro.serve.server as server_mod

    real_execute = server_mod._execute_request
    release = threading.Event()

    def gated(payload):
        release.wait(timeout=10.0)
        return real_execute(payload)

    monkeypatch.setattr("repro.serve.server._execute_request", gated)

    hogs = []
    try:
        for i in range(server.config.queue_limit):
            sock = socket.create_connection(("127.0.0.1", server.port))
            sock.sendall(
                json.dumps({"op": "compile", "id": i, "ptx": PTX}).encode()
                + b"\n"
            )
            hogs.append(sock)
        deadline = time.monotonic() + 5.0
        while server._inflight < server.config.queue_limit:
            assert time.monotonic() < deadline
            time.sleep(0.01)

        # Release the hogs from the retry sleep: by the second attempt
        # the queue has space again.
        def sleep_then_release(_delay):
            release.set()
            time.sleep(0.2)

        client = _client(
            server,
            retry=RetryPolicy(attempts=5, base_delay=0.01),
            sleep=sleep_then_release,
        )
        response = client.request("stats")  # stats always answers
        assert response["ok"]
        busy_before = server.stats.busy_rejections
        result = client.compile(PTX)
        assert result["ok"]
        assert server.stats.busy_rejections > 0 or busy_before == 0
    finally:
        release.set()
        for sock in hogs:
            sock.close()
