"""Regression pins for the compiler's per-benchmark decisions.

These values were produced by the current pipeline and lock in its
behaviour: a silent change to region formation, placement, hazard
detection, or pruning shows up here as a diff that must be reviewed
(update the table deliberately when an algorithm improves).
"""

import pytest

from repro.bench import ALL_BENCHMARKS, get_benchmark
from repro.core import PennyCompiler, SCHEME_PENNY, scheme_config

#: abbr -> (boundaries, total checkpoints, committed, scheme, hazardous)
GOLDEN = {
    "BFS": (2, 8, 3, "rr", 3),
    "BO": (3, 9, 5, "rr", 4),
    "BP": (3, 11, 5, "rr", 3),
    "BS": (2, 2, 1, "rr", 0),
    "CP": (2, 2, 1, "rr", 0),
    "CS": (4, 8, 1, "rr", 0),
    "FW": (7, 13, 8, "rr", 5),
    "GAU": (2, 8, 4, "rr", 3),
    "HS": (4, 7, 1, "rr", 0),
    "LIB": (1, 0, 0, "rr", 0),
    "LPS": (7, 9, 3, "rr", 1),
    "MD": (2, 2, 1, "rr", 0),
    "MT": (3, 6, 0, "rr", 0),
    "NN": (2, 2, 1, "rr", 0),
    "NQU": (2, 12, 8, "rr", 8),
    "NW": (2, 8, 3, "rr", 3),
    "PF": (7, 10, 3, "rr", 1),
    "SC": (2, 2, 1, "rr", 0),
    "SGEMM": (5, 13, 5, "rr", 3),
    "SP": (7, 11, 6, "rr", 4),
    "SPMV": (2, 2, 1, "rr", 0),
    "SQ": (2, 2, 1, "rr", 0),
    "SRAD": (2, 2, 1, "rr", 0),
    "STC": (2, 9, 5, "rr", 5),
    "TPACF": (4, 14, 9, "rr", 4),
}


@pytest.mark.parametrize("abbr", sorted(GOLDEN))
def test_compiler_decisions_pinned(abbr):
    bench = get_benchmark(abbr)
    wl = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    s = result.stats
    got = (
        int(s["num_boundaries"]),
        int(s["checkpoints_total"]),
        int(s["checkpoints_committed"]),
        s["overwrite_scheme"],
        int(s["hazardous_registers"]),
    )
    assert got == GOLDEN[abbr], (
        f"{abbr}: compiler decisions changed "
        f"(boundaries, total, committed, scheme, hazardous) "
        f"= {got}, pinned {GOLDEN[abbr]}"
    )


def test_golden_covers_whole_suite():
    assert set(GOLDEN) == {b.abbr for b in ALL_BENCHMARKS}


def test_interesting_structure_distribution():
    """The suite spans the structures the evaluation depends on."""
    no_checkpoints = [a for a, g in GOLDEN.items() if g[1] == 0]
    heavy = [a for a, g in GOLDEN.items() if g[2] >= 5]
    fully_pruned = [a for a, g in GOLDEN.items() if g[1] > 0 and g[2] == 0]
    assert "LIB" in no_checkpoints  # pure compute, no anti-dependences
    assert "STC" in heavy  # un-prunable loop-carried state
    assert "MT" in fully_pruned  # everything recomputable
