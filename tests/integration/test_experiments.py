"""Experiment-harness smoke tests on benchmark subsets (full runs live in
benchmarks/)."""

import pytest

from repro.bench import ALL_BENCHMARKS, get_benchmark
from repro.experiments import harness
from repro.experiments import fig9, fig10, fig11, fig12, fig13, fig14, fig15
from repro.experiments import appendix_a, detectors, energy_total
from repro.experiments import table1, table2, table3

SUBSET = [get_benchmark(a) for a in ("BO", "STC", "BS")]


class TestTables:
    def test_table1_matches_paper(self):
        assert table1.verify()

    def test_table2_close_to_paper(self):
        assert table2.max_deviation() < 0.005

    def test_table3_matches_paper(self):
        assert table3.verify()


class TestHarness:
    def test_baseline_normalized_to_one(self):
        m = harness.measure_baseline(get_benchmark("BS"))
        assert m.normalized == 1.0
        assert m.cycles > 0

    def test_scheme_measurement_has_compile_result(self):
        m = harness.measure_scheme(get_benchmark("BS"), "Penny")
        assert m.compile_result is not None
        assert m.normalized >= 1.0

    def test_igpu_measurement(self):
        m = harness.measure_scheme(get_benchmark("BS"), "iGPU")
        assert m.compile_result is None
        assert m.normalized > 0

    def test_geometric_mean(self):
        assert harness.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert harness.geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_format_table_renders(self):
        table = {"Penny": {"BS": 1.01, "gmean": 1.01}}
        text = harness.format_overhead_table(table, "t")
        assert "Penny" in text and "BS" in text and "gmean" in text


class TestFigureShapes:
    """The paper's qualitative claims on a fast 3-benchmark subset."""

    def test_fig9_ordering(self):
        table = fig9.run(SUBSET)
        assert (
            table["Penny"]["gmean"]
            <= table["Bolt/Auto_storage"]["gmean"]
            <= table["Bolt/Global"]["gmean"]
        )
        # Penny's overhead is small
        assert table["Penny"]["gmean"] < 1.25

    def test_fig10_cumulative_improvement(self):
        table = fig10.run(SUBSET)
        names = list(fig10.CUMULATIVE_CONFIGS)
        first, last = table[names[0]]["gmean"], table[names[-1]]["gmean"]
        assert last <= first + 1e-9

    def test_fig11_no_protection_is_lower_bound(self):
        table = fig11.run(SUBSET)
        assert (
            table["Auto/No_protection"]["gmean"]
            <= table["Auto/Auto_select"]["gmean"] + 1e-9
        )

    def test_fig12_optimal_prunes_at_least_basic(self):
        rows = fig12.run(SUBSET)
        for r in rows:
            assert r["basic"] + r["additional"] + r["committed"] == r["total"]
            assert r["optimal_frac"] >= r["basic_frac"] - 1e-9

    def test_fig13_pruning_ordering(self):
        table = fig13.run(SUBSET)
        assert (
            table["Opt_pruning"]["gmean"]
            <= table["Basic_pruning"]["gmean"] + 1e-9
            <= table["No_pruning"]["gmean"] + 1e-9
        )

    def test_fig14_energy_ordering(self):
        # light-checkpoint apps must show the paper's Penny < ECC ordering;
        # checkpoint-dense miniature kernels (BO/STC/FW) legitimately exceed
        # it — see EXPERIMENTS.md on the loop-body-scale deviation
        light = [get_benchmark(a) for a in ("BS", "CP", "MD", "SPMV")]
        rows = fig14.run(light)
        for r in rows:
            assert r["penny_norm"] < r["ecc_norm"], r
            assert r["ecc_norm"] == pytest.approx(1.211, abs=0.02)
            assert r["penny_norm"] >= 1.0

    def test_fig15_volta_subset_defined(self):
        assert len(fig15.VOLTA_APPS) == 19
        abbrs = {b.abbr for b in ALL_BENCHMARKS}
        assert set(fig15.VOLTA_APPS) <= abbrs

    def test_fig15_runs_on_volta(self):
        table = fig15.run(SUBSET)
        assert table["Penny"]["gmean"] < table["Bolt/Global"]["gmean"]


class TestExtensionArtifacts:
    def test_appendix_a_clean(self):
        rows = appendix_a.run(apps=("STC",), injections_per_app=15)
        assert rows[0]["sdc"] == 0 and rows[0]["due"] == 0

    def test_detector_ablation(self):
        table = detectors.run(SUBSET)
        assert table["SW-DMR"]["gmean"] > table["Penny"]["gmean"]

    def test_total_energy_marginal(self):
        rows = energy_total.run(SUBSET)
        for r in rows:
            # ECC's total is a pure hardware tax, always small; Penny's
            # follows its runtime overhead (BO, the checkpoint-heavy
            # outlier, pays the most) — the §9.1 no-strong-claim territory
            assert 0.95 < r["ecc@0.15"] < 1.10
            assert 0.95 < r["penny@0.15"] < 1.35
