"""The paper's motivating workload: binomialOptions (§1, §3.1).

The paper observes that adding just two checkpointing stores to
binomialOptions' inner-most loop costs 26.7% — GPUs have no store buffer to
hide them — and that Penny's optimizations claw almost all of it back.
This example reproduces that story end to end on the BO benchmark:

1. Bolt's eager checkpointing with everything in global memory,
2. Bolt plus automatic storage assignment,
3. full Penny (bimodal placement + optimal pruning + low-level opts),

each measured against the unmodified kernel with the analytic timing model.

Run:  python examples/binomial_options.py
"""

from repro.bench import get_benchmark
from repro.core.schemes import (
    SCHEME_BOLT_AUTO,
    SCHEME_BOLT_GLOBAL,
    SCHEME_PENNY,
)
from repro.experiments.harness import measure_baseline, measure_scheme


def main():
    bench = get_benchmark("BO")
    print(f"benchmark: {bench.abbr} — {bench.name} ({bench.suite})")

    base = measure_baseline(bench)
    print(f"\nbaseline cycles: {base.cycles:,.0f} "
          f"(bound: {base.timing.bound}, "
          f"occupancy: {base.timing.occupancy.warps_per_sm} warps/SM)")

    print(f"\n{'scheme':24}{'normalized':>12}{'checkpoints':>14}"
          f"{'pruned':>9}")
    for scheme in (SCHEME_BOLT_GLOBAL, SCHEME_BOLT_AUTO, SCHEME_PENNY):
        m = measure_scheme(bench, scheme, baseline_cycles=base.cycles)
        stats = m.compile_result.stats
        print(
            f"{scheme:24}{m.normalized:>12.3f}"
            f"{int(stats['checkpoints_total']):>14}"
            f"{int(stats['checkpoints_pruned']):>9}"
        )

    print(
        "\nThe ordering mirrors the paper: eager global-memory checkpoints "
        "in the\nbackward-induction loop are punishing; automatic storage "
        "assignment\nrecovers part of it; bimodal placement + optimal "
        "pruning + address\nLICM bring the overhead down to a few percent."
    )


if __name__ == "__main__":
    main()
