"""Quickstart: protect a GPU kernel with Penny and survive a soft error.

Builds a small vector-scale kernel, compiles it with the full Penny
pipeline, runs it on the simulator, then flips a register bit mid-flight
and shows the parity-triggered recovery restoring the correct output.

Run:  python examples/quickstart.py
"""

import repro
from repro import (
    FaultPlan,
    KernelBuilder,
    Launch,
    LaunchConfig,
    MemoryImage,
    make_executor,
    print_kernel,
)


def build_kernel():
    """out[i] = 3 * a[i] + 7 over a grid-stride loop (per-thread slice)."""
    b = KernelBuilder("scale", params=[("A", "ptr"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    ntid = b.special_u32("%ntid.x")
    ctaid = b.special_u32("%ctaid.x")
    nctaid = b.special_u32("%nctaid.x")
    n = b.ld_param("n")
    base = b.ld_param("A")
    gtid = b.mad(ctaid, ntid, tid)
    stride = b.mul(ntid, nctaid)
    i = b.mov(gtid, dst=b.reg("u32", "%i"))
    b.label("HEAD")
    done = b.setp("ge", i, n)
    b.bra("EXIT", pred=done)
    off = b.shl(i, 2)
    addr = b.add(base, off)
    v = b.ld("global", addr, dtype="u32")
    v = b.mad(v, 3, 7)
    b.st("global", addr, v)  # in-place: load->store anti-dependence
    b.add(i, stride, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    b.ret()
    return b.finish()


def make_memory(n):
    mem = MemoryImage()
    addr = mem.alloc_global(n)
    mem.upload(addr, list(range(1, n + 1)))
    mem.set_param("A", addr)
    mem.set_param("n", n)
    return mem, addr


def main():
    n = 64
    launch = Launch(grid=2, block=16)
    launch_config = LaunchConfig(threads_per_block=16, num_blocks=2)

    # 1. The unprotected kernel and its golden output.
    kernel = build_kernel()
    mem, addr = make_memory(n)
    make_executor(kernel, rf_code_factory=lambda: None).run(launch, mem)
    golden = mem.download(addr, n)
    print("golden output (first 8):", golden[:8])

    # 2. Compile with Penny: regions, checkpoints, recovery table.
    result = repro.protect(build_kernel(), launch=launch_config)
    print("\n--- protected kernel ---")
    print(print_kernel(result.kernel))
    print("\ncompiler stats:")
    for key in ("num_boundaries", "checkpoints_total", "checkpoints_pruned",
                "checkpoints_committed", "overwrite_scheme"):
        print(f"  {key}: {result.stats[key]}")

    # 3. Run the protected kernel fault-free: identical output.
    mem2, _ = make_memory(n)
    make_executor(result.kernel, rf_code_factory=lambda: None).run(
        launch, mem2
    )
    assert mem2.download(addr, n) == golden
    print("\nfault-free protected run matches golden output")

    # 4. Flip a bit in thread (0, 3)'s register file mid-loop.  The parity
    # check fires at the next read; the recovery runtime restores the
    # region's live-ins from checkpoint storage and re-executes.
    plan = FaultPlan(ctaid=0, tid=3, after_instructions=25, bits=(13,))
    mem3, _ = make_memory(n)
    stats = repro.simulate(result, launch=launch, mem=mem3, fault_plan=plan)
    out = mem3.download(addr, n)
    print(f"\ninjected a bit flip into register {plan.hit_register!r} "
          f"of thread (0,3)")
    print(f"detections: {stats.detections}, recoveries: {stats.recoveries}")
    assert out == golden, "recovery failed!"
    print("output still matches golden — soft error recovered")


if __name__ == "__main__":
    main()
