"""Analyze protection overhead for your own kernel, configuration by
configuration.

Shows the analysis workflow a performance engineer would use before
deploying Penny: take one kernel (here the paper's STC worst case), sweep
the compiler's knobs, and break each variant down into *where* the cycles
go (issue vs LSU vs latency bound, occupancy) and *why* (checkpoint
counts, storage placement).

Run:  python examples/overhead_analysis.py
"""

from repro.bench import get_benchmark
from repro.core.pipeline import PennyCompiler, PennyConfig
from repro.experiments.harness import measure_baseline, measure_scheme
from repro.gpusim.config import FERMI_C2050


VARIANTS = [
    ("everything off", PennyConfig(
        name="off", placement="eager", pruning="none",
        storage_mode="global", overwrite="sa", low_opts=False)),
    ("+ shared storage", PennyConfig(
        name="sh", placement="eager", pruning="none",
        storage_mode="auto", overwrite="sa", low_opts=False)),
    ("+ bimodal placement", PennyConfig(
        name="bcp", placement="bimodal", pruning="none",
        storage_mode="auto", overwrite="sa", low_opts=False)),
    ("+ optimal pruning", PennyConfig(
        name="prune", placement="bimodal", pruning="optimal",
        storage_mode="auto", overwrite="sa", low_opts=False)),
    ("+ address LICM/CSE", PennyConfig(
        name="full", placement="bimodal", pruning="optimal",
        storage_mode="auto", overwrite="sa", low_opts=True)),
]


def main():
    bench = get_benchmark("STC")
    base = measure_baseline(bench, FERMI_C2050)
    print(f"kernel: {bench.abbr} ({bench.name})")
    print(
        f"baseline: {base.cycles:,.0f} cycles, bound={base.timing.bound}, "
        f"{base.timing.occupancy.warps_per_sm} warps/SM "
        f"(limited by {base.timing.occupancy.limiter})\n"
    )

    header = (
        f"{'configuration':22}{'overhead':>10}{'bound':>9}"
        f"{'cp stores':>11}{'committed':>11}{'shared B':>10}"
    )
    print(header)
    print("-" * len(header))
    for label, config in VARIANTS:
        m = measure_scheme(
            bench, "custom", FERMI_C2050,
            baseline_cycles=base.cycles, config_override=config,
        )
        stats = m.compile_result.stats
        print(
            f"{label:22}{(m.normalized - 1) * 100:>9.1f}%"
            f"{m.timing.bound:>9}"
            f"{int(stats['emitted_checkpoints']):>11}"
            f"{int(stats['checkpoints_committed']):>11}"
            f"{int(stats['shared_ckpt_bytes']):>10}"
        )

    print(
        "\nReading the table: storage placement moves checkpoint stores "
        "from the\nglobal LSU path to shared memory; bimodal placement and "
        "pruning remove\nstores outright; address LICM turns each remaining "
        "checkpoint into a single\nstore.  STC's floor is set by its "
        "loop-carried registers — the paper's 19%\nworst case, a few "
        "percent here at miniature scale."
    )


if __name__ == "__main__":
    main()
