"""A tour of Penny's compilation phases on hand-written PTX.

Feeds a PTX-subset kernel (as text) through each phase separately —
region formation, live-in/LUP analysis, bimodal placement, hazard
detection, pruning — printing what every stage decides.  Useful to
understand the pipeline before reading the pass sources.

Run:  python examples/compiler_tour.py
"""

from repro.analysis import CFG, AliasAnalysis, LoopInfo, ReachingDefs
from repro.analysis.postdom import ControlDependence
from repro.core.bimodal import bimodal_plan
from repro.core.checkpoints import CheckpointKind, PruneState
from repro.core.costmodel import CostModel
from repro.core.hazards import detect_hazards, materialize_instances
from repro.core.liveins import analyze_liveins
from repro.core.pddg import PddgValidator
from repro.core.pruning import prune_optimal
from repro.core.regions import form_regions
from repro.ir import parse_kernel, print_kernel

PTX = """
.entry axpy_inplace (.param .ptr A, .param .u32 n) {
ENTRY:
  mov.u32 %tid, %tid.x;
  ld.param.u32 %a, [A];
  ld.param.u32 %n, [n];
  mov.u32 %i, %tid;
HEAD:
  setp.ge.u32 %p1, %i, %n;
  @%p1 bra EXIT;
BODY:
  shl.u32 %off, %i, 2;
  add.u32 %addr, %a, %off;
  ld.global.u32 %v, [%addr];
  mad.u32 %v2, %v, 3, 7;
  st.global.u32 [%addr], %v2;
  add.u32 %i, %i, 32;
  bra HEAD;
EXIT:
  ret;
}
"""


def main():
    kernel = parse_kernel(PTX)
    print("=== input kernel ===")
    print(print_kernel(kernel))

    # Phase 1: idempotent region formation — cut the load->store
    # anti-dependence on A[i].
    regions = form_regions(kernel)
    print("\n=== after region formation ===")
    print(print_kernel(kernel))
    print(f"\nboundaries: {sorted(regions.boundaries)} "
          f"({regions.num_cuts} anti-dependence cut(s))")

    # Phase 2: live-ins and last update points per boundary.
    cfg = CFG(kernel)
    rdefs = ReachingDefs(cfg)
    liveins = analyze_liveins(kernel, regions, cfg=cfg, rdefs=rdefs)
    print("\n=== live-ins per region boundary ===")
    for label in sorted(regions.boundaries):
        binfo = liveins.boundaries[label]
        for reg in sorted(binfo.live_ins, key=lambda r: r.name):
            lups = binfo.lups.get(reg, set())
            where = ", ".join(
                f"{s.label}:{s.index}" for s in sorted(
                    lups, key=lambda s: (s.label, s.index))
            )
            print(f"  {label}: {reg.name:8} LUPs at [{where}]")

    # Phase 3: bimodal checkpoint placement (min-weight vertex cover).
    cost = CostModel.for_cfg(cfg, base=2)
    plan = bimodal_plan(cfg, liveins, cost)
    print("\n=== bimodal checkpoint placement ===")
    for cp in plan.checkpoints:
        where = (
            f"after LUP {cp.site.label}:{cp.site.index}"
            if cp.kind is CheckpointKind.LUP
            else f"at boundary {cp.boundary}"
        )
        print(f"  cp {cp.reg.name:8} {where}")

    # Phase 4: overwrite hazards.
    instances = materialize_instances(plan, cfg)
    hazardous = detect_hazards(cfg, regions, liveins, instances)
    print(f"\nhazardous registers (need renaming or 2-slot alternation): "
          f"{sorted(r.name for r in hazardous)}")

    # Phase 5: optimal pruning over the PDDG.
    validator = PddgValidator(
        cfg, rdefs, plan, instances, AliasAnalysis(cfg, rdefs),
        LoopInfo(cfg), ControlDependence(cfg), None,
    )
    result = prune_optimal(plan, validator)
    print("\n=== pruning decisions ===")
    for cp in plan.checkpoints:
        verdict = "PRUNED " if cp.state is PruneState.PRUNED else "COMMIT "
        slice_note = ""
        if cp.key in result.slices:
            from repro.core.slices import slice_size

            slice_note = (
                f" (recovery slice, {slice_size(result.slices[cp.key])} nodes)"
            )
        print(f"  {verdict} {cp.reg.name}{slice_note}")
    print(f"\nstats: {result.stats}")


if __name__ == "__main__":
    main()
