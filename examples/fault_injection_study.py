"""Fault-injection study: detection coding vs error magnitude (Table 1 in
action).

Penny's claim is that a cheap detection code plus idempotent re-execution
matches the resilience of much more expensive ECC.  This study injects 1-
and 2-bit register faults into the Penny-protected STC kernel under two
register-file codings:

- single parity (33,32) — Penny's 1-bit detector,
- SECDED (39,32) used detection-only — Penny's 3-bit detector,

and tabulates the outcomes.  Single-bit faults are always masked or
recovered under both codings; 2-bit faults escape parity (SDC / crash) but
are fully recovered under SECDED — exactly Table 1's "match the code to the
expected error magnitude" message.

The second half of the study drives the parallel campaign engine
(:mod:`repro.gpusim.campaign`) across all three injection surfaces —
register file, checkpoint slots in shared/global memory (SECDED
correct-or-escalate), and faults striking during recovery itself — and
prints the DUE taxonomy plus Wilson 95% confidence intervals.

Run:  python examples/fault_injection_study.py
"""

from repro.bench import get_benchmark
from repro.coding import ParityCode, SecdedCode
from repro.core.pipeline import PennyCompiler
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.gpusim import FaultCampaign
from repro.gpusim.campaign import CampaignSpec, ParallelCampaign


def run_campaign(kernel, workload, code_factory, bits, n=40, seed=1234):
    campaign = FaultCampaign(
        kernel,
        workload.launch,
        workload.make_memory,
        workload.output_region(),
        rf_code_factory=code_factory,
    )
    return campaign.run_random(n, seed=seed, bits_per_fault=bits).summary()


def main():
    bench = get_benchmark("STC")
    workload = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), workload.launch_config
    )
    print(f"kernel: {bench.abbr} ({bench.name}), Penny-protected, "
          f"{int(result.stats['checkpoints_committed'])} committed "
          f"checkpoints\n")

    configs = [
        ("parity (33,32)", lambda: ParityCode(32), 1),
        ("parity (33,32)", lambda: ParityCode(32), 2),
        ("SECDED (39,32)", lambda: SecdedCode(32), 1),
        ("SECDED (39,32)", lambda: SecdedCode(32), 2),
    ]
    header = (
        f"{'RF coding':18}{'fault':>7}{'masked':>9}{'recovered':>11}"
        f"{'sdc':>6}{'due':>6}"
    )
    print(header)
    print("-" * len(header))
    for name, factory, bits in configs:
        summary = run_campaign(result.kernel, workload, factory, bits)
        print(
            f"{name:18}{f'{bits}-bit':>7}{summary['masked']:>9}"
            f"{summary['recovered']:>11}{summary['sdc']:>6}"
            f"{summary['due']:>6}"
        )

    print(
        "\n1-bit faults: zero SDC under either coding — idempotent recovery "
        "corrects\neverything the code detects.  2-bit faults slip past "
        "single parity but are\nfully detected (and therefore recovered) "
        "under SECDED-as-detector, at a\nfraction of DECTED ECC's hardware "
        "cost (Table 1: 21.9% vs 71.9%)."
    )

    # -- part 2: the parallel campaign engine, all three surfaces ---------
    print(
        "\nParallel campaign (engine: repro.gpusim.campaign) — 200 "
        "injections across the\nregister file, checkpoint storage "
        "(SECDED correct-or-escalate) and the\nrecovery runtime itself, "
        "on 2 workers:\n"
    )
    spec = CampaignSpec(
        benchmark="STC",
        scheme=SCHEME_PENNY,
        rf_code="parity",
        num_injections=200,
        seed=2020,
        surfaces=("rf", "ckpt", "recovery"),
        bits_per_fault=1,
    )
    report = ParallelCampaign(spec, workers=2).run()

    print(f"{'surface':10}" + "".join(
        f"{o:>13}" for o in ("masked", "recovered", "sdc", "due")
    ))
    for surface, row in sorted(report.by_surface().items()):
        print(f"{surface:10}" + "".join(
            f"{row[o]:>13}" for o in ("masked", "recovered", "sdc", "due")
        ))

    taxonomy = report.due_taxonomy()
    print(f"\nDUE taxonomy: {taxonomy or 'no DUEs'}")
    print("\noutcome rates over injected runs (Wilson 95% CI):")
    for name, (p, lo, hi) in report.rates().items():
        print(f"  {name:10}{p:>8.4f}   [{lo:.4f}, {hi:.4f}]")

    print(
        "\nSingle-bit RF faults stay SDC-free at campaign scale; "
        "checkpoint-storage strikes\nare corrected (1 bit) or escalate to "
        "a labelled memory_exception DUE (2 bits);\nfaults during recovery "
        "either converge through re-entrant recovery or terminate\nas "
        "budget_exhausted — never silent, never hung."
    )


if __name__ == "__main__":
    main()
