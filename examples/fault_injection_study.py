"""Fault-injection study: detection coding vs error magnitude (Table 1 in
action).

Penny's claim is that a cheap detection code plus idempotent re-execution
matches the resilience of much more expensive ECC.  This study injects 1-
and 2-bit register faults into the Penny-protected STC kernel under two
register-file codings:

- single parity (33,32) — Penny's 1-bit detector,
- SECDED (39,32) used detection-only — Penny's 3-bit detector,

and tabulates the outcomes.  Single-bit faults are always masked or
recovered under both codings; 2-bit faults escape parity (SDC / crash) but
are fully recovered under SECDED — exactly Table 1's "match the code to the
expected error magnitude" message.

Run:  python examples/fault_injection_study.py
"""

from repro.bench import get_benchmark
from repro.coding import ParityCode, SecdedCode
from repro.core.pipeline import PennyCompiler
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.gpusim import FaultCampaign


def run_campaign(kernel, workload, code_factory, bits, n=40, seed=1234):
    campaign = FaultCampaign(
        kernel,
        workload.launch,
        workload.make_memory,
        workload.output_region(),
        rf_code_factory=code_factory,
    )
    return campaign.run_random(n, seed=seed, bits_per_fault=bits).summary()


def main():
    bench = get_benchmark("STC")
    workload = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), workload.launch_config
    )
    print(f"kernel: {bench.abbr} ({bench.name}), Penny-protected, "
          f"{int(result.stats['checkpoints_committed'])} committed "
          f"checkpoints\n")

    configs = [
        ("parity (33,32)", lambda: ParityCode(32), 1),
        ("parity (33,32)", lambda: ParityCode(32), 2),
        ("SECDED (39,32)", lambda: SecdedCode(32), 1),
        ("SECDED (39,32)", lambda: SecdedCode(32), 2),
    ]
    header = (
        f"{'RF coding':18}{'fault':>7}{'masked':>9}{'recovered':>11}"
        f"{'sdc':>6}{'due':>6}"
    )
    print(header)
    print("-" * len(header))
    for name, factory, bits in configs:
        summary = run_campaign(result.kernel, workload, factory, bits)
        print(
            f"{name:18}{f'{bits}-bit':>7}{summary['masked']:>9}"
            f"{summary['recovered']:>11}{summary['sdc']:>6}"
            f"{summary['due']:>6}"
        )

    print(
        "\n1-bit faults: zero SDC under either coding — idempotent recovery "
        "corrects\neverything the code detects.  2-bit faults slip past "
        "single parity but are\nfully detected (and therefore recovered) "
        "under SECDED-as-detector, at a\nfraction of DECTED ECC's hardware "
        "cost (Table 1: 21.9% vs 71.9%)."
    )


if __name__ == "__main__":
    main()
