"""Statistical performance harness with regression gating.

The repo makes quantitative performance claims — vector-executor
speedup, cache hit latency, batch scaling, near-zero disabled-tracer
overhead — and this package is how those claims stay *tested* instead
of anecdotal.  Four layers, deliberately separated:

- :mod:`repro.perf.stats` — robust summaries (median/MAD/trimmed mean,
  bootstrap or t CIs) and a typed two-sample verdict
  (:class:`Verdict`: improved / regressed / unchanged / inconclusive)
  against a configurable noise margin.
- :mod:`repro.perf.repeat` — the repeater: run a callable until the
  relative CI half-width meets a target, bounded by rep counts and a
  wall-clock budget, warmup discarded, GC isolated per rep.
- :mod:`repro.perf.suite` — the benchmark registry wrapping the
  system's hot paths; each run yields a versioned
  :class:`BenchResult` with an environment fingerprint.
- :mod:`repro.perf.compare` — result-level comparison with
  machine-drift detection, and the gate CI runs (``penny perf gate``).

Artifacts live at the repo root as ``BENCH_<area>.json`` (schema v2,
validated by :func:`validate_bench_result`)."""

from repro.perf.compare import (
    ResultComparison,
    SeriesComparison,
    compare_results,
    gate_exit_code,
)
from repro.perf.env import ENV_KEYS, MACHINE_KEYS, environment_fingerprint
from repro.perf.repeat import RepeatConfig, RepeatResult, StopReason, repeat
from repro.perf.schema import (
    SCHEMA_VERSION,
    BenchResult,
    Series,
    bench_filename,
    load_result,
    validate_bench_result,
    write_result,
)
from repro.perf.stats import Comparison, Summary, Verdict, compare
from repro.perf.suite import get_bench, list_benches, run_bench

__all__ = [
    "Verdict",
    "Summary",
    "Comparison",
    "compare",
    "StopReason",
    "RepeatConfig",
    "RepeatResult",
    "repeat",
    "SCHEMA_VERSION",
    "BenchResult",
    "Series",
    "bench_filename",
    "validate_bench_result",
    "write_result",
    "load_result",
    "run_bench",
    "list_benches",
    "get_bench",
    "SeriesComparison",
    "ResultComparison",
    "compare_results",
    "gate_exit_code",
    "ENV_KEYS",
    "MACHINE_KEYS",
    "environment_fingerprint",
]
