"""The benchmark registry: every hot path as a repeatable measurement.

Each registered benchmark wraps one of the system's performance-claimed
paths — compile pipeline, scalar-vs-vector executor throughput, compile
cache cold/warm lookup, batch-driver scaling, tracer disabled-path
overhead — and produces a schema-v2 :class:`repro.perf.schema.BenchResult`
(per-rep samples, CIs, environment fingerprint) via the repeater.

``penny perf list`` prints this registry; ``penny perf run NAME`` runs
an entry; the committed ``BENCH_<area>.json`` at the repo root is its
trajectory point.  Register new benchmarks with :func:`register`::

    @register("mybench", area="mybench", description="...", fast=True)
    def _bench_mybench(config, options):
        rep = repeat(body, config)
        return {"series": {"work": ("s", rep)}, "primary": "work"}

The function returns the measured series (name -> (unit,
:class:`RepeatResult`)), which series gates comparisons, and optional
derived ``metrics``; :func:`run_bench` wraps that in provenance
(fingerprint, repeat config, ``perf.bench`` span) and builds the
result.  Benchmarks marked ``fast=True`` form the CI ``perf-gate``
subset.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.perf.env import environment_fingerprint
from repro.perf.repeat import RepeatConfig, RepeatResult, repeat
from repro.perf.schema import BenchResult, Series

__all__ = [
    "BenchSpec",
    "register",
    "list_benches",
    "get_bench",
    "run_bench",
    "fast_bench_names",
    "build_alu_kernel",
]

BenchFn = Callable[[RepeatConfig, Dict[str, Any]], Dict[str, Any]]


@dataclass(frozen=True)
class BenchSpec:
    """One registry entry."""

    name: str
    area: str
    description: str
    fn: BenchFn
    fast: bool = False  # cheap enough for the CI perf-gate subset
    options: Mapping[str, Any] = field(default_factory=dict)


_REGISTRY: Dict[str, BenchSpec] = {}


def register(
    name: str,
    *,
    area: str,
    description: str,
    fast: bool = False,
    options: Optional[Mapping[str, Any]] = None,
):
    def deco(fn: BenchFn) -> BenchFn:
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} already registered")
        _REGISTRY[name] = BenchSpec(
            name=name,
            area=area,
            description=description,
            fn=fn,
            fast=fast,
            options=dict(options or {}),
        )
        return fn

    return deco


def list_benches() -> List[BenchSpec]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def fast_bench_names() -> List[str]:
    return [s.name for s in list_benches() if s.fast]


def get_bench(name: str) -> BenchSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown benchmark {name!r} (known: {known})"
        ) from None


def run_bench(
    name: str,
    config: Optional[RepeatConfig] = None,
    options: Optional[Mapping[str, Any]] = None,
) -> BenchResult:
    """Run one registered benchmark and wrap it in provenance."""
    spec = get_bench(name)
    cfg = config or RepeatConfig()
    opts = dict(spec.options)
    opts.update(options or {})
    wall_start = time.perf_counter()
    with obs.span("perf.bench", benchmark=name, area=spec.area):
        out = spec.fn(cfg, opts)
    obs.inc("perf.benches")
    series: Dict[str, Series] = {}
    for sname, (unit, rep) in out["series"].items():
        if isinstance(rep, RepeatResult):
            series[sname] = Series.from_repeat(sname, unit, rep)
        else:
            series[sname] = rep
    return BenchResult(
        benchmark=name,
        area=spec.area,
        primary=out["primary"],
        series=series,
        metrics=dict(out.get("metrics", {})),
        environment=environment_fingerprint(),
        repeat_config=cfg.to_dict(),
        wall_seconds=time.perf_counter() - wall_start,
    )


# -- shared workload helpers ------------------------------------------------------


def build_alu_kernel(iters: int = 12, ops_per_iter: int = 18):
    """The ALU-heavy grid-stride kernel both executor engines chew on:
    ``ops_per_iter`` dependent integer ops per loop trip, the shape
    fault-injection campaigns spend their cycles in."""
    from repro.ir import KernelBuilder

    b = KernelBuilder("alu_burn", params=[("A", "ptr"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    ntid = b.special_u32("%ntid.x")
    ctaid = b.special_u32("%ctaid.x")
    a = b.ld_param("A")
    n = b.ld_param("n")
    gtid = b.mad(ctaid, ntid, tid)
    off = b.shl(b.rem(gtid, n), 2)
    addr = b.add(a, off)
    acc = b.ld("global", addr, dtype="u32")
    i = b.mov(0, dst=b.reg("u32", "%i"))
    b.label("HEAD")
    p = b.setp("ge", i, iters)
    b.bra("EXIT", pred=p)
    cur = acc
    for _ in range(ops_per_iter // 6):
        cur = b.add(cur, 0x9E37)
        cur = b.xor(cur, b.shl(cur, 1))
        cur = b.mul(cur, 3)
        cur = b.and_(cur, 0xFFFFFF)
        cur = b.or_(cur, 1)
        cur = b.sub(cur, gtid)
    b.add(acc, cur, dst=acc)
    b.add(i, 1, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    b.st("global", addr, acc)
    b.ret()
    return b.finish()


def _alu_memory(n: int):
    from repro.gpusim import MemoryImage

    mem = MemoryImage()
    buf = mem.alloc_global(n)
    mem.upload(buf, range(1, n + 1))
    mem.set_param("A", buf)
    mem.set_param("n", n)
    return mem


# -- the benchmarks ---------------------------------------------------------------


@register(
    "selftest",
    area="selftest",
    description="harness self-check: a deterministic pure-Python "
    "workload (useful for A/A gate demonstrations)",
    fast=True,
    options={"n": 60_000},
)
def _bench_selftest(config, options):
    n = int(options["n"])

    def body():
        total = 0
        for i in range(n):
            total += i * i
        return total

    rep = repeat(body, config)
    return {"series": {"work": ("s", rep)}, "primary": "work"}


@register(
    "executor",
    area="executor",
    description="scalar-vs-vector executor throughput on the ALU-burn "
    "grid-stride kernel (primary: vector run seconds)",
    options={"threads": 256, "blocks": 2, "iters": 12, "words": 512},
)
def _bench_executor(config, options):
    from repro.gpusim import Launch, make_executor

    kernel = build_alu_kernel(iters=int(options["iters"]))
    launch = Launch(
        grid=int(options["blocks"]), block=int(options["threads"])
    )
    words = int(options["words"])

    # The benchmark is only meaningful if the engines agree.
    ref_mem, alt_mem = _alu_memory(words), _alu_memory(words)
    ref = make_executor(kernel, backend="scalar").run(launch, ref_mem)
    alt = make_executor(kernel, backend="vector").run(launch, alt_mem)
    if ref != alt or ref_mem.snapshot_global() != alt_mem.snapshot_global():
        raise RuntimeError(
            "executor bench: scalar and vector engines disagree"
        )

    def run_on(backend):
        def body():
            mem = _alu_memory(words)
            ex = make_executor(kernel, backend=backend)
            start = time.perf_counter()
            ex.run(launch, mem)
            return time.perf_counter() - start

        return body

    vec = repeat(run_on("vector"), config, self_timed=True)
    sca = repeat(run_on("scalar"), config, self_timed=True)
    instructions = ref.instructions
    return {
        "series": {"vector": ("s", vec), "scalar": ("s", sca)},
        "primary": "vector",
        "metrics": {
            "dynamic_instructions": instructions,
            "scalar_instructions_per_sec": round(
                instructions / sca.summary.median
            ),
            "vector_instructions_per_sec": round(
                instructions / vec.summary.median
            ),
            "speedup": round(
                sca.summary.median / vec.summary.median, 2
            ),
            "threads_per_block": int(options["threads"]),
            "blocks": int(options["blocks"]),
        },
    }


@register(
    "compile",
    area="compile",
    description="full Penny pipeline compile of a registered benchmark "
    "kernel (options: bench=STC scheme=Penny policy=)",
    fast=True,
    options={"bench": "STC", "scheme": None, "policy": None},
)
def _bench_compile(config, options):
    from repro.bench import get_benchmark
    from repro.core import PennyCompiler, SCHEME_PENNY, scheme_config

    bench = get_benchmark(str(options["bench"]))
    launch = bench.workload().launch_config
    scheme = options.get("scheme") or SCHEME_PENNY
    last_result = {}

    def body():
        # Kernel construction is setup, not compilation: self-timed.
        kernel = bench.fresh_kernel()
        cfg = scheme_config(scheme)
        if options.get("policy"):
            cfg.policy = str(options["policy"])
        compiler = PennyCompiler(cfg)
        start = time.perf_counter()
        result = compiler.compile(kernel, launch)
        elapsed = time.perf_counter() - start
        last_result["stats"] = result.stats
        return elapsed

    rep = repeat(body, config, self_timed=True)
    stats = last_result.get("stats", {})
    return {
        "series": {"compile": ("s", rep)},
        "primary": "compile",
        "metrics": {
            "bench": str(options["bench"]),
            "scheme": str(scheme),
            "policy": options.get("policy") or "full",
            "checkpoints_total": stats.get("checkpoints_total"),
        },
    }


@register(
    "cache",
    area="cache",
    description="compile-cache lookup latency: warm memory-tier hits "
    "vs cold misses (per-lookup seconds)",
    fast=True,
    options={"keys": 64, "sweeps": 10, "payload_bytes": 512},
)
def _bench_cache(config, options):
    from repro.serve.cache import CompileCache
    from repro.serve.key import CacheKey

    n_keys = int(options["keys"])
    sweeps = int(options["sweeps"])
    payload = {"value": 42, "blob": "x" * int(options["payload_bytes"])}
    tmpdir = tempfile.mkdtemp(prefix="penny-perf-cache-")
    try:
        cache = CompileCache(directory=tmpdir)
        hot = [
            CacheKey(
                ptx_sha=f"ptx-{i}", config_sha=f"cfg-{i}", code_sha="code"
            )
            for i in range(n_keys)
        ]
        cold = [
            CacheKey(
                ptx_sha=f"absent-{i}", config_sha=f"cfg-{i}",
                code_sha="code",
            )
            for i in range(n_keys)
        ]
        for key in hot:
            cache.put(key, payload)

        def sweep_over(keys):
            def body():
                start = time.perf_counter()
                for _ in range(sweeps):
                    for key in keys:
                        cache.get(key)
                elapsed = time.perf_counter() - start
                return elapsed / (sweeps * len(keys))

            return body

        warm = repeat(sweep_over(hot), config, self_timed=True)
        miss = repeat(sweep_over(cold), config, self_timed=True)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return {
        "series": {
            "warm_hit": ("s/lookup", warm),
            "cold_miss": ("s/lookup", miss),
        },
        "primary": "warm_hit",
        "metrics": {
            "keys": n_keys,
            "warm_hit_us": round(warm.summary.median * 1e6, 3),
            "cold_miss_us": round(miss.summary.median * 1e6, 3),
        },
    }


@register(
    "batch",
    area="batch",
    description="process-pool batch-driver scaling: the same compile "
    "corpus on 1 vs N workers (options: workers=2 benches=BFS,HS,NW)",
    options={"workers": 2, "benches": "BFS,HS,NW,SRAD"},
)
def _bench_batch(config, options):
    from repro.bench import get_benchmark
    from repro.core import SCHEME_PENNY, scheme_config
    from repro.ir.printer import print_kernel
    from repro.serve.batch import CompileJob, compile_batch

    abbrs = [
        a.strip() for a in str(options["benches"]).split(",") if a.strip()
    ]
    workers = int(options["workers"])
    penny = scheme_config(SCHEME_PENNY)
    jobs = []
    for abbr in abbrs:
        bench = get_benchmark(abbr)
        jobs.append(
            CompileJob(
                ptx=print_kernel(bench.fresh_kernel()),
                config=penny,
                launch=bench.workload().launch_config,
                name=abbr,
            )
        )

    def run_with(n):
        def body():
            report = compile_batch(jobs, workers=n)
            if report.failures:
                raise RuntimeError(
                    f"batch bench: {len(report.failures)} job(s) failed"
                )
            return report.wall_seconds

        return body

    multi = repeat(run_with(workers), config, self_timed=True)
    serial = repeat(run_with(1), config, self_timed=True)
    return {
        "series": {
            f"workers{workers}": ("s", multi),
            "workers1": ("s", serial),
        },
        "primary": f"workers{workers}",
        "metrics": {
            "jobs": len(jobs),
            "workers": workers,
            "scaling": round(
                serial.summary.median / multi.summary.median, 2
            ),
        },
    }


@register(
    "tracer",
    area="tracer",
    description="obs tracer disabled-path overhead: an instrumented "
    "workload with no tracer installed vs the same loop "
    "uninstrumented (the '<2% disabled overhead' claim, measured)",
    fast=True,
    options={"chunks": 64, "chunk": 2000},
)
def _bench_tracer(config, options):
    chunks = int(options["chunks"])
    chunk = int(options["chunk"])

    def instrumented():
        total = 0
        for _ in range(chunks):
            with obs.span("perf.site"):
                for i in range(chunk):
                    total += i * i
            obs.inc("perf.site_visits")
        return total

    def plain():
        total = 0
        for _ in range(chunks):
            for i in range(chunk):
                total += i * i
        return total

    if obs.current_tracer() is not None:
        # The *disabled* path is the claim under test; an installed
        # tracer would measure the enabled path instead.  Run the
        # series in a fresh context with no tracer.
        import contextvars

        ctx = contextvars.Context()
        disabled = ctx.run(repeat, instrumented, config)
    else:
        disabled = repeat(instrumented, config)
    baseline = repeat(plain, config)
    overhead = (
        disabled.summary.median / baseline.summary.median - 1.0
    )
    return {
        "series": {
            "instrumented_untraced": ("s", disabled),
            "plain": ("s", baseline),
        },
        "primary": "instrumented_untraced",
        "metrics": {
            "instrumented_sites": chunks,
            "disabled_overhead_rel": round(overhead, 6),
        },
    }
