"""Robust statistics for performance measurements.

Two jobs, kept deliberately separate from *how* samples were collected
(:mod:`repro.perf.repeat`) and *what* was measured
(:mod:`repro.perf.suite`):

1. **Summaries** (:class:`Summary`): median, MAD, trimmed mean, and a
   confidence interval for the median (percentile bootstrap by default,
   or a t-interval for the mean).  The repeater's stopping criterion is
   the summary's *relative CI half-width*.

2. **Two-sample comparison** (:func:`compare`): given baseline and
   candidate duration samples, return a typed :class:`Verdict` —
   improved / regressed / unchanged / inconclusive — against a
   configurable *noise margin*.  Both methods work on the **log scale**
   so the comparison is exactly symmetric: swapping the arguments
   negates the effect estimate and mirrors the verdict
   (improved ↔ regressed), which the property suite locks in.

   - ``method="bootstrap"`` (default): percentile bootstrap of the
     log-ratio of medians.  Each side's resample indices are derived
     from a SHA-256 of *that side's own samples*, so the same sample
     set always gets the same resamples regardless of argument
     position — determinism and symmetry at once.
   - ``method="welch"``: Welch's t interval on the difference of
     log-sample means (a ratio of geometric means), with the
     Welch–Satterthwaite df and an exact-enough t quantile computed
     without scipy.

Verdict logic, with ``m = log1p(noise_margin)`` and ``[lo, hi]`` the
CI on the log-ratio (candidate / baseline; positive = slower):

- ``lo > m``               → **regressed** (significantly beyond noise)
- ``hi < -m``              → **improved**
- ``[lo, hi] ⊆ [-m, m]``   → **unchanged** (bounded inside the noise)
- anything else            → **inconclusive** (CI straddles the margin)
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Verdict",
    "Summary",
    "Comparison",
    "compare",
    "median",
    "mad",
    "trimmed_mean",
    "t_quantile",
    "t_sf",
]

#: bootstrap resamples used for CIs and comparisons
DEFAULT_BOOT = 4000


# -- plain estimators -------------------------------------------------------------


def median(samples: Sequence[float]) -> float:
    xs = sorted(samples)
    n = len(xs)
    if n == 0:
        raise ValueError("median of empty sample set")
    mid = n // 2
    if n % 2:
        return float(xs[mid])
    return (xs[mid - 1] + xs[mid]) / 2.0


def mad(samples: Sequence[float]) -> float:
    """Median absolute deviation from the median (unscaled)."""
    m = median(samples)
    return median([abs(x - m) for x in samples])


def trimmed_mean(samples: Sequence[float], trim: float = 0.1) -> float:
    """Mean after dropping the ``trim`` fraction from each tail."""
    if not 0 <= trim < 0.5:
        raise ValueError(f"trim fraction {trim} not in [0, 0.5)")
    xs = sorted(samples)
    k = int(len(xs) * trim)
    kept = xs[k : len(xs) - k] if k else xs
    return sum(kept) / len(kept)


# -- t distribution without scipy -------------------------------------------------


def _norm_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation,
    |relative error| < 1.2e-9 — far below measurement noise)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"probability {p} not in (0, 1)")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    plow = 0.02425
    if p < plow:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1 - plow:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def t_quantile(df: float, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value via the Cornish–Fisher
    expansion around the normal quantile (accurate to ~1e-3 for df ≥ 3,
    exact in the df → ∞ limit)."""
    if df <= 0:
        raise ValueError(f"degrees of freedom {df} must be positive")
    z = _norm_ppf(0.5 + confidence / 2.0)
    g1 = (z ** 3 + z) / 4.0
    g2 = (5 * z ** 5 + 16 * z ** 3 + 3 * z) / 96.0
    g3 = (3 * z ** 7 + 19 * z ** 5 + 17 * z ** 3 - 15 * z) / 384.0
    g4 = (79 * z ** 9 + 776 * z ** 7 + 1482 * z ** 5 - 1920 * z ** 3
          - 945 * z) / 92160.0
    return z + g1 / df + g2 / df ** 2 + g3 / df ** 3 + g4 / df ** 4


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularized incomplete beta."""
    MAXIT, EPS, FPMIN = 200, 3e-12, 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < FPMIN:
        d = FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, MAXIT + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < FPMIN:
            d = FPMIN
        c = 1.0 + aa / c
        if abs(c) < FPMIN:
            c = FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < FPMIN:
            d = FPMIN
        c = 1.0 + aa / c
        if abs(c) < FPMIN:
            c = FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < EPS:
            break
    return h


def _betai(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_bt = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
             + a * math.log(x) + b * math.log(1.0 - x))
    bt = math.exp(ln_bt)
    if x < (a + 1.0) / (a + b + 2.0):
        return bt * _betacf(a, b, x) / a
    return 1.0 - bt * _betacf(b, a, 1.0 - x) / b


def t_sf(t: float, df: float) -> float:
    """One-sided survival function P(T > t) of Student's t."""
    if df <= 0:
        raise ValueError(f"degrees of freedom {df} must be positive")
    x = df / (df + t * t)
    p = 0.5 * _betai(df / 2.0, 0.5, x)
    return p if t >= 0 else 1.0 - p


# -- bootstrap machinery ----------------------------------------------------------


def _content_seed(samples: Sequence[float], salt: str = "") -> int:
    """Deterministic RNG seed from the sample *values* (order-free), so
    the same sample set always gets the same resamples regardless of
    which argument slot it occupies in :func:`compare`."""
    h = hashlib.sha256(salt.encode())
    for x in sorted(float(v) for v in samples):
        h.update(repr(x).encode())
    return int.from_bytes(h.digest()[:8], "big")


def _bootstrap_medians(
    samples: Sequence[float], n_boot: int, seed: int
):
    import numpy as np

    # Sorted so the same sample *set* yields identical resamples no
    # matter the observation order (the seed is order-free too).
    arr = np.sort(np.asarray(list(samples), dtype=float))
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(arr), size=(n_boot, len(arr)))
    return np.median(arr[idx], axis=1)


def _percentile(sorted_arr, q: float) -> float:
    """Linear-interpolated percentile on a pre-sorted numpy array."""
    import numpy as np

    return float(np.quantile(sorted_arr, q))


# -- summaries --------------------------------------------------------------------


@dataclass(frozen=True)
class Summary:
    """Robust summary of one sample set (durations, usually seconds)."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    mad: float
    trimmed_mean: float
    ci_lo: float
    ci_hi: float
    confidence: float
    method: str  # "bootstrap" (median CI) or "t" (mean CI)

    @property
    def rel_ci_half_width(self) -> float:
        """CI half-width relative to the point estimate — the repeater's
        stopping criterion.  ``inf`` when the center is nonpositive."""
        center = self.median if self.method == "bootstrap" else self.mean
        if center <= 0:
            return math.inf
        return (self.ci_hi - self.ci_lo) / 2.0 / center

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        confidence: float = 0.95,
        method: str = "bootstrap",
        n_boot: int = DEFAULT_BOOT,
    ) -> "Summary":
        xs = [float(v) for v in samples]
        if not xs:
            raise ValueError("cannot summarize an empty sample set")
        if not 0 < confidence < 1:
            raise ValueError(f"confidence {confidence} not in (0, 1)")
        n = len(xs)
        mean = sum(xs) / n
        var = sum((x - mean) ** 2 for x in xs) / (n - 1) if n > 1 else 0.0
        std = math.sqrt(var)
        med = median(xs)
        if method == "bootstrap":
            if n == 1 or std == 0.0:
                ci_lo = ci_hi = med  # zero variance: the CI is a point
            else:
                import numpy as np

                meds = np.sort(
                    _bootstrap_medians(xs, n_boot, _content_seed(xs, "ci"))
                )
                alpha = (1.0 - confidence) / 2.0
                ci_lo = _percentile(meds, alpha)
                ci_hi = _percentile(meds, 1.0 - alpha)
        elif method == "t":
            if n == 1 or std == 0.0:
                ci_lo = ci_hi = mean
            else:
                half = t_quantile(n - 1, confidence) * std / math.sqrt(n)
                ci_lo, ci_hi = mean - half, mean + half
        else:
            raise ValueError(f"unknown CI method {method!r}")
        return cls(
            n=n,
            mean=mean,
            std=std,
            minimum=min(xs),
            maximum=max(xs),
            median=med,
            mad=mad(xs),
            trimmed_mean=trimmed_mean(xs),
            ci_lo=ci_lo,
            ci_hi=ci_hi,
            confidence=confidence,
            method=method,
        )

    def to_dict(self) -> Dict:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "mad": self.mad,
            "trimmed_mean": self.trimmed_mean,
            "ci_lo": self.ci_lo,
            "ci_hi": self.ci_hi,
            "rel_ci_half_width": (
                None
                if math.isinf(self.rel_ci_half_width)
                else self.rel_ci_half_width
            ),
            "confidence": self.confidence,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "Summary":
        return cls(
            n=int(d["n"]),
            mean=float(d["mean"]),
            std=float(d["std"]),
            minimum=float(d["min"]),
            maximum=float(d["max"]),
            median=float(d["median"]),
            mad=float(d["mad"]),
            trimmed_mean=float(d["trimmed_mean"]),
            ci_lo=float(d["ci_lo"]),
            ci_hi=float(d["ci_hi"]),
            confidence=float(d["confidence"]),
            method=str(d["method"]),
        )


# -- two-sample comparison --------------------------------------------------------


class Verdict(str, Enum):
    """Outcome of a baseline-vs-candidate comparison (lower is better)."""

    IMPROVED = "improved"
    REGRESSED = "regressed"
    UNCHANGED = "unchanged"
    INCONCLUSIVE = "inconclusive"

    @property
    def mirrored(self) -> "Verdict":
        """The verdict with the argument roles swapped."""
        if self is Verdict.IMPROVED:
            return Verdict.REGRESSED
        if self is Verdict.REGRESSED:
            return Verdict.IMPROVED
        return self


@dataclass(frozen=True)
class Comparison:
    """Result of :func:`compare` — a typed verdict plus its evidence.

    ``log_ratio_*`` bound ``log(candidate / baseline)``: positive means
    the candidate is *slower*.
    """

    verdict: Verdict
    method: str
    noise_margin: float
    confidence: float
    n_baseline: int
    n_candidate: int
    median_baseline: float
    median_candidate: float
    ratio: float  # median_candidate / median_baseline
    log_ratio_lo: float
    log_ratio_hi: float
    p_value: Optional[float] = None  # welch only
    t_stat: Optional[float] = None
    df: Optional[float] = None

    def to_dict(self) -> Dict:
        return {
            "verdict": self.verdict.value,
            "method": self.method,
            "noise_margin": self.noise_margin,
            "confidence": self.confidence,
            "n_baseline": self.n_baseline,
            "n_candidate": self.n_candidate,
            "median_baseline": self.median_baseline,
            "median_candidate": self.median_candidate,
            "ratio": self.ratio,
            "log_ratio_lo": self.log_ratio_lo,
            "log_ratio_hi": self.log_ratio_hi,
            "p_value": self.p_value,
            "t_stat": self.t_stat,
            "df": self.df,
        }


def _verdict_from_interval(
    lo: float, hi: float, noise_margin: float
) -> Verdict:
    m = math.log1p(noise_margin)
    if lo > m:
        return Verdict.REGRESSED
    if hi < -m:
        return Verdict.IMPROVED
    if -m <= lo and hi <= m:
        return Verdict.UNCHANGED
    return Verdict.INCONCLUSIVE


def compare(
    baseline: Sequence[float],
    candidate: Sequence[float],
    *,
    noise_margin: float = 0.05,
    confidence: float = 0.95,
    method: str = "bootstrap",
    n_boot: int = DEFAULT_BOOT,
) -> Comparison:
    """Compare duration samples: is ``candidate`` slower than
    ``baseline`` beyond ``noise_margin``?

    Both samples must be positive (they are durations).  The effect is
    estimated on the log scale, so ``compare(a, b)`` and
    ``compare(b, a)`` see exactly negated intervals and mirrored
    verdicts.
    """
    a = [float(v) for v in baseline]
    b = [float(v) for v in candidate]
    if not a or not b:
        raise ValueError("compare() needs non-empty sample sets")
    if min(a) <= 0 or min(b) <= 0:
        raise ValueError("compare() needs strictly positive durations")
    if noise_margin < 0:
        raise ValueError(f"noise margin {noise_margin} must be >= 0")
    med_a, med_b = median(a), median(b)

    if method == "bootstrap":
        if len(a) == 1 and len(b) == 1 or (
            max(a) == min(a) and max(b) == min(b)
        ):
            # Zero variance on both sides: the log-ratio is a point.
            delta = math.log(med_b) - math.log(med_a)
            lo = hi = delta
        else:
            import numpy as np

            meds_a = _bootstrap_medians(a, n_boot, _content_seed(a, "cmp"))
            meds_b = _bootstrap_medians(b, n_boot, _content_seed(b, "cmp"))
            ratios = np.log(meds_b) - np.log(meds_a)
            alpha = (1.0 - confidence) / 2.0
            # Both endpoints via the *lower* alpha-quantile (of the
            # ratios and their negation) so a swap of the arguments
            # negates the interval bit-for-bit — verdicts mirror
            # exactly, with no percentile-interpolation asymmetry.
            lo = _percentile(np.sort(ratios), alpha)
            hi = -_percentile(np.sort(-ratios), alpha)
        return Comparison(
            verdict=_verdict_from_interval(lo, hi, noise_margin),
            method="bootstrap",
            noise_margin=noise_margin,
            confidence=confidence,
            n_baseline=len(a),
            n_candidate=len(b),
            median_baseline=med_a,
            median_candidate=med_b,
            ratio=med_b / med_a,
            log_ratio_lo=lo,
            log_ratio_hi=hi,
        )

    if method == "welch":
        la = [math.log(x) for x in a]
        lb = [math.log(x) for x in b]
        na, nb = len(la), len(lb)
        ma = sum(la) / na
        mb = sum(lb) / nb
        va = (
            sum((x - ma) ** 2 for x in la) / (na - 1) if na > 1 else 0.0
        )
        vb = (
            sum((x - mb) ** 2 for x in lb) / (nb - 1) if nb > 1 else 0.0
        )
        delta = mb - ma
        se2 = va / na + vb / nb
        if se2 == 0.0:
            # Degenerate: no within-sample variation on either side.
            lo = hi = delta
            t_stat = 0.0 if delta == 0.0 else math.copysign(math.inf, delta)
            df = float(max(na + nb - 2, 1))
            p = 1.0 if delta == 0.0 else 0.0
        else:
            se = math.sqrt(se2)
            df_num = se2 ** 2
            df_den = 0.0
            if na > 1:
                df_den += (va / na) ** 2 / (na - 1)
            if nb > 1:
                df_den += (vb / nb) ** 2 / (nb - 1)
            df = df_num / df_den if df_den > 0 else float(na + nb - 2)
            df = max(df, 1.0)
            tq = t_quantile(df, confidence)
            lo, hi = delta - tq * se, delta + tq * se
            t_stat = delta / se
            p = 2.0 * t_sf(abs(t_stat), df)
        return Comparison(
            verdict=_verdict_from_interval(lo, hi, noise_margin),
            method="welch",
            noise_margin=noise_margin,
            confidence=confidence,
            n_baseline=na,
            n_candidate=nb,
            median_baseline=med_a,
            median_candidate=med_b,
            ratio=med_b / med_a,
            log_ratio_lo=lo,
            log_ratio_hi=hi,
            p_value=p,
            t_stat=t_stat,
            df=df,
        )

    raise ValueError(f"unknown comparison method {method!r}")
