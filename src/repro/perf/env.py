"""Environment fingerprinting for benchmark results.

A perf number without its environment is a rumor.  Every
:class:`repro.perf.schema.BenchResult` embeds this fingerprint so a
reader (or the gate) can tell whether two results are comparable at
all: same interpreter, same NumPy, same machine shape — and, via the
``code_sha`` reused from the serve-tier :func:`repro.serve.key.code_fingerprint`,
exactly which version of the repo's code produced the number.

Two key groups:

- :data:`MACHINE_KEYS` — keys that make *absolute times* comparable.
  :func:`repro.perf.compare.compare_results` downgrades a significant
  verdict to ``inconclusive`` when any of these drift (a laptop number
  vs a CI-runner number is not a regression, it is a different
  machine).
- ``code_sha`` / ``git_rev`` — expected to drift between baseline and
  candidate; that drift is the *point* of the comparison.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any, Dict, Optional

__all__ = ["ENV_KEYS", "MACHINE_KEYS", "environment_fingerprint"]

#: every key a valid fingerprint must carry
ENV_KEYS = (
    "python_version",
    "implementation",
    "platform",
    "machine",
    "node",
    "cpu_count",
    "pythonhashseed",
    "numpy_version",
    "git_rev",
    "code_sha",
)

#: the subset whose drift makes absolute timings incomparable
MACHINE_KEYS = (
    "python_version",
    "implementation",
    "platform",
    "machine",
    "node",
    "cpu_count",
    "numpy_version",
)


def _git_rev() -> Optional[str]:
    """HEAD of the repo containing the installed ``repro`` package, or
    ``None`` when not running from a checkout."""
    import repro

    pkg_dir = os.path.dirname(os.path.abspath(repro.__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pkg_dir,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def environment_fingerprint() -> Dict[str, Any]:
    """Capture everything needed to judge a timing's comparability."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    from repro.serve.key import code_fingerprint

    return {
        "python_version": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "node": platform.node(),
        "cpu_count": os.cpu_count(),
        "pythonhashseed": os.environ.get("PYTHONHASHSEED"),
        "numpy_version": numpy_version,
        "git_rev": _git_rev(),
        "code_sha": code_fingerprint(),
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else None,
    }
