"""``penny perf`` — run, compare, and gate the benchmark suite.

Subactions:

- ``list``      show the registry (name, area, fast-subset flag)
- ``run``       run benchmark(s), print summaries, write ``BENCH_*.json``
- ``compare``   fresh run (or saved candidate) vs committed baselines
- ``gate``      ``compare`` that exits nonzero on a significant
  regression beyond the noise margin — the CI contract
- ``validate``  schema-check BENCH files without running anything

Registered into the main ``penny`` parser by
:func:`register_perf_parser`; all heavy imports stay inside handlers so
``penny --help`` stays fast.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

__all__ = ["register_perf_parser", "cmd_perf"]


def _parse_options(pairs: List[str]) -> Dict[str, Any]:
    """``--opt key=value`` pairs; values parse as JSON when they can."""
    out: Dict[str, Any] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(
                f"penny perf: bad --opt {pair!r} (expected key=value)"
            )
        key, _, raw = pair.partition("=")
        try:
            out[key] = json.loads(raw)
        except ValueError:
            out[key] = raw
    return out


def _repeat_config(args: argparse.Namespace):
    from repro.perf.repeat import RepeatConfig

    kwargs: Dict[str, Any] = {}
    for attr, key in (
        ("warmup", "warmup"),
        ("min_reps", "min_reps"),
        ("max_reps", "max_reps"),
        ("target_rci", "target_rel_ci"),
        ("confidence", "confidence"),
        ("wall_budget", "wall_budget_s"),
        ("ci_method", "ci_method"),
    ):
        value = getattr(args, attr, None)
        if value is not None:
            kwargs[key] = value
    return RepeatConfig(**kwargs)


def _select_benches(args: argparse.Namespace) -> List[str]:
    from repro.perf.suite import fast_bench_names, get_bench, list_benches

    if getattr(args, "all", False):
        return [s.name for s in list_benches()]
    if getattr(args, "fast", False):
        return fast_bench_names()
    names = list(getattr(args, "benchmarks", []) or [])
    if not names:
        raise SystemExit(
            "penny perf: name benchmark(s), or use --fast / --all "
            "(see 'penny perf list')"
        )
    for name in names:
        try:
            get_bench(name)  # fail fast with the known-names message
        except KeyError as exc:
            raise SystemExit(f"penny perf: {exc.args[0]}") from None
    return names


def _bench_path(directory: str, area: str) -> str:
    from repro.perf.schema import bench_filename

    return os.path.join(directory, bench_filename(area))


def cmd_perf_list(args: argparse.Namespace) -> int:
    from repro.perf.suite import list_benches

    specs = list_benches()
    if args.json:
        json.dump(
            [
                {
                    "name": s.name,
                    "area": s.area,
                    "fast": s.fast,
                    "description": s.description,
                    "options": dict(s.options),
                }
                for s in specs
            ],
            sys.stdout,
            indent=2,
        )
        print()
        return 0
    for s in specs:
        tag = " [fast]" if s.fast else ""
        print(f"{s.name:<10}{tag:<8} {s.description}")
    return 0


def cmd_perf_run(args: argparse.Namespace) -> int:
    from repro.perf.schema import write_result
    from repro.perf.suite import run_bench

    config = _repeat_config(args)
    options = _parse_options(args.opt)
    names = _select_benches(args)
    out_payload = []
    for name in names:
        result = run_bench(name, config, options)
        if args.out and len(names) == 1:
            path = args.out
        else:
            path = _bench_path(args.out_dir or ".", result.area)
        if not args.no_write:
            write_result(result, path)
        if args.json:
            out_payload.append(result.to_dict())
        else:
            print(result.summary())
            for sname, series in sorted(result.series.items()):
                if sname == result.primary:
                    continue
                s = series.summary
                print(
                    f"  {sname}: median {s.median:.6g}{series.unit} "
                    f"CI [{s.ci_lo:.6g}, {s.ci_hi:.6g}] over {s.n} rep(s)"
                )
            for key, value in sorted(result.metrics.items()):
                print(f"  {key}: {value}")
            if not args.no_write:
                print(f"  wrote {path}")
    if args.json:
        json.dump(out_payload, sys.stdout, indent=2)
        print()
    return 0


def _load_baseline(args: argparse.Namespace, area: str):
    from repro.perf.schema import load_result

    path = _bench_path(args.baseline_dir, area)
    if not os.path.exists(path):
        return None, path
    return load_result(path), path


def _candidate_result(args: argparse.Namespace, name: str, config, options):
    """A candidate BENCH record: a saved file when ``--candidate``/
    ``--candidate-dir`` was given, else a fresh run."""
    from repro.perf.schema import load_result
    from repro.perf.suite import get_bench, run_bench

    if getattr(args, "candidate", None):
        return load_result(args.candidate)
    if getattr(args, "candidate_dir", None):
        area = get_bench(name).area
        return load_result(_bench_path(args.candidate_dir, area))
    return run_bench(name, config, options)


def _run_comparisons(args: argparse.Namespace) -> List[Any]:
    from repro.perf.compare import compare_results

    config = _repeat_config(args)
    options = _parse_options(args.opt)
    names = _select_benches(args)
    if getattr(args, "candidate", None) and len(names) != 1:
        raise SystemExit(
            "penny perf: --candidate FILE compares exactly one benchmark"
        )
    comparisons = []
    for name in names:
        candidate = _candidate_result(args, name, config, options)
        baseline, path = _load_baseline(args, candidate.area)
        if baseline is None:
            raise SystemExit(
                f"penny perf: no baseline {path} for {name!r} "
                "(run 'penny perf run' and commit the result first)"
            )
        comparisons.append(
            compare_results(
                baseline,
                candidate,
                noise_margin=args.noise_margin,
                confidence=args.confidence or 0.95,
                method=args.method,
                ignore_env=args.ignore_env,
            )
        )
    return comparisons


def _emit_comparisons(args: argparse.Namespace, comparisons) -> None:
    from repro.perf.compare import render_comparison

    if args.json:
        json.dump(
            [rc.to_dict() for rc in comparisons], sys.stdout, indent=2
        )
        print()
    else:
        for rc in comparisons:
            print(render_comparison(rc))


def cmd_perf_compare(args: argparse.Namespace) -> int:
    comparisons = _run_comparisons(args)
    _emit_comparisons(args, comparisons)
    return 0


def cmd_perf_gate(args: argparse.Namespace) -> int:
    from repro.perf.compare import gate_exit_code

    comparisons = _run_comparisons(args)
    _emit_comparisons(args, comparisons)
    code = gate_exit_code(comparisons)
    if not args.json:
        verdicts = ", ".join(
            f"{rc.benchmark}={rc.verdict.value}" for rc in comparisons
        )
        print(
            f"perf gate: {'FAIL' if code else 'ok'} ({verdicts})",
            file=sys.stderr if code else sys.stdout,
        )
    return code


def cmd_perf_validate(args: argparse.Namespace) -> int:
    import glob as globmod

    from repro.perf.schema import validate_bench_result

    paths = list(args.files)
    if not paths:
        paths = sorted(globmod.glob("BENCH_*.json"))
    if not paths:
        raise SystemExit("penny perf validate: no BENCH_*.json found")
    failures = 0
    for path in paths:
        try:
            with open(path) as f:
                obj = json.load(f)
            problems = validate_bench_result(obj)
        except (OSError, ValueError) as exc:
            problems = [str(exc)]
        if problems:
            failures += 1
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"    {problem}")
        else:
            print(f"{path}: ok")
    return 1 if failures else 0


_ACTIONS = {
    "list": cmd_perf_list,
    "run": cmd_perf_run,
    "compare": cmd_perf_compare,
    "gate": cmd_perf_gate,
    "validate": cmd_perf_validate,
}


def cmd_perf(args: argparse.Namespace) -> int:
    return _ACTIONS[args.perf_action](args)


def _add_rep_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--warmup", type=int, default=None,
        help="discarded warmup reps (default 1)",
    )
    p.add_argument(
        "--min-reps", type=int, default=None,
        help="samples before the stopping criterion applies (default 5)",
    )
    p.add_argument(
        "--max-reps", type=int, default=None,
        help="rep ceiling (default 50)",
    )
    p.add_argument(
        "--target-rci", type=float, default=None, metavar="FRAC",
        help="stop once the CI half-width is below this fraction of "
             "the median (default 0.05)",
    )
    p.add_argument(
        "--confidence", type=float, default=None,
        help="CI confidence level (default 0.95)",
    )
    p.add_argument(
        "--wall-budget", type=float, default=None, metavar="SECONDS",
        help="per-series wall-clock budget",
    )
    p.add_argument(
        "--ci-method", default=None, choices=("bootstrap", "t"),
        help="summary CI method (default bootstrap)",
    )
    p.add_argument(
        "--opt", action="append", default=[], metavar="KEY=VALUE",
        help="benchmark option override (repeatable)",
    )


def _add_select_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "benchmarks", nargs="*",
        help="benchmark names (see 'penny perf list')",
    )
    p.add_argument(
        "--all", action="store_true", help="every registered benchmark"
    )
    p.add_argument(
        "--fast", action="store_true",
        help="the fast subset (the CI perf-gate set)",
    )


def _add_compare_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--baseline-dir", default=".",
        help="directory holding committed BENCH_*.json (default .)",
    )
    p.add_argument(
        "--candidate", default=None, metavar="FILE",
        help="compare this saved result instead of running fresh",
    )
    p.add_argument(
        "--candidate-dir", default=None, metavar="DIR",
        help="read candidates from DIR instead of running fresh",
    )
    p.add_argument(
        "--noise-margin", type=float, default=0.05, metavar="FRAC",
        help="relative slowdown treated as noise (default 0.05)",
    )
    p.add_argument(
        "--method", default="bootstrap", choices=("bootstrap", "welch"),
        help="comparison method (default bootstrap)",
    )
    p.add_argument(
        "--ignore-env", action="store_true",
        help="keep significant verdicts across machine drift",
    )


def register_perf_parser(sub) -> None:
    """Attach the ``perf`` subcommand to the main penny subparsers."""
    p_perf = sub.add_parser(
        "perf",
        help="statistical benchmark harness with regression gating",
    )
    perf_sub = p_perf.add_subparsers(dest="perf_action", required=True)

    p_list = perf_sub.add_parser("list", help="show the registry")
    p_list.add_argument("--json", action="store_true")

    p_run = perf_sub.add_parser(
        "run", help="run benchmark(s) and write BENCH_<area>.json"
    )
    _add_select_flags(p_run)
    _add_rep_flags(p_run)
    p_run.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (single benchmark only)",
    )
    p_run.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="write BENCH_<area>.json files here (default .)",
    )
    p_run.add_argument(
        "--no-write", action="store_true",
        help="print summaries without writing BENCH files",
    )
    p_run.add_argument("--json", action="store_true")

    p_cmp = perf_sub.add_parser(
        "compare", help="fresh run (or saved candidate) vs baselines"
    )
    p_gate = perf_sub.add_parser(
        "gate",
        help="compare and exit nonzero on a significant regression",
    )
    for p in (p_cmp, p_gate):
        _add_select_flags(p)
        _add_rep_flags(p)
        _add_compare_flags(p)
        p.add_argument("--json", action="store_true")

    p_val = perf_sub.add_parser(
        "validate", help="schema-check BENCH_*.json files"
    )
    p_val.add_argument(
        "files", nargs="*",
        help="BENCH files (default: BENCH_*.json in the cwd)",
    )

    p_perf.set_defaults(func=cmd_perf)
