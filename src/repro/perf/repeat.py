"""The repeater: run a measured callable until the number is trustworthy.

SHARP-style measurement discipline (run-until-stopping-criterion, with
measurement split from analysis): a benchmark body is repeated until the
summary's **relative CI half-width** drops below a target, bounded by a
rep-count floor/ceiling and a wall-clock budget, with warmup reps
discarded and garbage collection isolated per rep (collect before,
disable during, restore after), so one stray GC cycle cannot masquerade
as a regression.

The repeater knows nothing about *what* is measured — it times a
callable (or trusts a self-timed one) and hands the samples to
:mod:`repro.perf.stats`.  Each rep is an obs span (``perf.rep``) and a
counter tick (``perf.reps``), so a traced benchmark run shows its reps
nested under the ``perf.bench`` span.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.perf.stats import Summary

__all__ = ["StopReason", "RepeatConfig", "RepeatResult", "repeat"]


class StopReason(str, Enum):
    """Why the repeater stopped taking samples."""

    CI_TARGET = "ci_target"  # relative CI half-width hit the target
    MAX_REPS = "max_reps"  # rep ceiling reached before the CI target
    WALL_BUDGET = "wall_budget"  # out of wall-clock time


@dataclass
class RepeatConfig:
    """Knobs for one repeater run.

    ``target_rel_ci`` is the stopping criterion: once at least
    ``min_reps`` samples exist, stop as soon as the summary CI's
    half-width falls below this fraction of the median.  ``max_reps``
    and ``wall_budget_s`` bound the attempt; the wall budget may cut a
    run below ``min_reps`` (but never below one retained sample).
    """

    warmup: int = 1
    min_reps: int = 5
    max_reps: int = 50
    target_rel_ci: float = 0.05
    confidence: float = 0.95
    wall_budget_s: Optional[float] = None
    gc_isolation: bool = True
    ci_method: str = "bootstrap"
    clock: Callable[[], float] = field(
        default=time.perf_counter, repr=False
    )

    def __post_init__(self):
        if self.warmup < 0:
            raise ValueError(f"warmup {self.warmup} must be >= 0")
        if self.min_reps < 1:
            raise ValueError(f"min_reps {self.min_reps} must be >= 1")
        if self.max_reps < self.min_reps:
            raise ValueError(
                f"max_reps {self.max_reps} < min_reps {self.min_reps}"
            )
        if self.target_rel_ci <= 0:
            raise ValueError(
                f"target_rel_ci {self.target_rel_ci} must be > 0"
            )
        if self.wall_budget_s is not None and self.wall_budget_s <= 0:
            raise ValueError(
                f"wall_budget_s {self.wall_budget_s} must be > 0"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (the callable clock is process-local, not schema)."""
        return {
            "warmup": self.warmup,
            "min_reps": self.min_reps,
            "max_reps": self.max_reps,
            "target_rel_ci": self.target_rel_ci,
            "confidence": self.confidence,
            "wall_budget_s": self.wall_budget_s,
            "gc_isolation": self.gc_isolation,
            "ci_method": self.ci_method,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RepeatConfig":
        known = {
            k: d[k]
            for k in (
                "warmup",
                "min_reps",
                "max_reps",
                "target_rel_ci",
                "confidence",
                "wall_budget_s",
                "gc_isolation",
                "ci_method",
            )
            if k in d
        }
        return cls(**known)


@dataclass(frozen=True)
class RepeatResult:
    """Everything one repeater run produced."""

    samples: List[float]  # retained per-rep durations (seconds)
    warmup_samples: List[float]  # discarded warmup durations
    stop_reason: StopReason
    summary: Summary
    wall_seconds: float  # total, warmup included


def _run_one(
    fn: Callable[[], Any],
    clock: Callable[[], float],
    self_timed: bool,
    gc_isolation: bool,
) -> float:
    """One rep under GC isolation; returns its duration in seconds."""
    if gc_isolation:
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
    try:
        start = clock()
        returned = fn()
        elapsed = clock() - start
    finally:
        if gc_isolation and was_enabled:
            gc.enable()
    if self_timed:
        try:
            elapsed = float(returned)
        except (TypeError, ValueError):
            raise ValueError(
                f"self-timed benchmark returned {returned!r}; "
                "expected its elapsed seconds (> 0)"
            ) from None
        if elapsed <= 0:
            raise ValueError(
                f"self-timed benchmark returned {returned!r}; "
                "expected its elapsed seconds (> 0)"
            )
    return elapsed


def repeat(
    fn: Callable[[], Any],
    config: Optional[RepeatConfig] = None,
    *,
    self_timed: bool = False,
) -> RepeatResult:
    """Run ``fn`` until the stopping criterion is met.

    ``fn`` is called once per rep.  By default the call itself is timed;
    with ``self_timed=True`` the callable returns its own elapsed
    seconds (use this to exclude per-rep setup from the measurement).
    """
    cfg = config or RepeatConfig()
    clock = cfg.clock
    wall_start = clock()

    def out_of_budget() -> bool:
        return (
            cfg.wall_budget_s is not None
            and clock() - wall_start >= cfg.wall_budget_s
        )

    warmups: List[float] = []
    with obs.span("perf.repeat", warmup=cfg.warmup, max_reps=cfg.max_reps):
        for i in range(cfg.warmup):
            if warmups and out_of_budget():
                break  # keep budget headroom for measured reps
            with obs.span("perf.rep", index=i, warmup=True):
                warmups.append(
                    _run_one(fn, clock, self_timed, cfg.gc_isolation)
                )
            obs.inc("perf.warmup_reps")

        samples: List[float] = []
        summary: Optional[Summary] = None
        stop = StopReason.MAX_REPS
        while True:
            with obs.span("perf.rep", index=len(samples)):
                samples.append(
                    _run_one(fn, clock, self_timed, cfg.gc_isolation)
                )
            obs.inc("perf.reps")
            if len(samples) >= cfg.min_reps:
                summary = Summary.from_samples(
                    samples, cfg.confidence, cfg.ci_method
                )
                if summary.rel_ci_half_width <= cfg.target_rel_ci:
                    stop = StopReason.CI_TARGET
                    break
            if out_of_budget():
                stop = StopReason.WALL_BUDGET
                break
            if len(samples) >= cfg.max_reps:
                stop = StopReason.MAX_REPS
                break
        if summary is None or len(samples) != summary.n:
            summary = Summary.from_samples(
                samples, cfg.confidence, cfg.ci_method
            )
    obs.inc(f"perf.stop.{stop.value}")
    return RepeatResult(
        samples=samples,
        warmup_samples=warmups,
        stop_reason=stop,
        summary=summary,
        wall_seconds=clock() - wall_start,
    )
