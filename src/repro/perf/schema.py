"""The versioned on-disk shape of a benchmark result.

``BENCH_<area>.json`` files at the repo root are the perf trajectory:
one committed point per area, rewritten by ``penny perf run`` and
diffed by ``penny perf compare``/``gate``.  Schema version 2 replaces
the single-shot v1 numbers with per-rep samples, robust summaries with
confidence intervals, the repeater configuration that produced them,
and an environment fingerprint — everything a later reader needs to
judge (and statistically re-test) the claim.

Anatomy::

    {
      "schema_version": 2,
      "kind": "bench_result",
      "benchmark": "executor",          # registry name (penny perf list)
      "area": "executor",               # -> BENCH_executor.json
      "primary": "vector",              # the series the gate compares
      "series": {
        "vector": {
          "unit": "s",
          "samples": [...],             # retained per-rep durations
          "warmup_samples": [...],
          "stop_reason": "ci_target",
          "summary": {"median": ..., "ci_lo": ..., "ci_hi": ..., ...}
        },
        "scalar": {...}
      },
      "metrics": {"speedup": 17.8, ...} # derived scalars (informational)
      "environment": {...},             # repro.perf.env fingerprint
      "repeat_config": {...},           # the stopping criterion used
      "wall_seconds": 4.2,
      "created_at": "2026-08-09T12:00:00Z"
    }

:func:`validate_bench_result` is the schema gate CI runs over every
``BENCH_*.json``; it returns a list of problems (empty = valid) in the
same style as the :mod:`repro.obs.export` validators.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.perf.env import ENV_KEYS
from repro.perf.repeat import RepeatResult, StopReason
from repro.perf.stats import Summary

__all__ = [
    "SCHEMA_VERSION",
    "Series",
    "BenchResult",
    "bench_filename",
    "validate_bench_result",
    "write_result",
    "load_result",
]

#: bump when the result shape changes (v1 was the single-shot
#: executor-throughput record with no samples or CI)
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Series:
    """One measured quantity inside a benchmark (e.g. one backend)."""

    name: str
    unit: str
    samples: List[float]
    warmup_samples: List[float]
    stop_reason: str
    summary: Summary

    @classmethod
    def from_repeat(
        cls, name: str, unit: str, rep: RepeatResult
    ) -> "Series":
        return cls(
            name=name,
            unit=unit,
            samples=list(rep.samples),
            warmup_samples=list(rep.warmup_samples),
            stop_reason=rep.stop_reason.value,
            summary=rep.summary,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "unit": self.unit,
            "samples": self.samples,
            "warmup_samples": self.warmup_samples,
            "stop_reason": self.stop_reason,
            "summary": self.summary.to_dict(),
        }

    @classmethod
    def from_dict(cls, name: str, d: Mapping[str, Any]) -> "Series":
        return cls(
            name=name,
            unit=str(d["unit"]),
            samples=[float(x) for x in d["samples"]],
            warmup_samples=[
                float(x) for x in d.get("warmup_samples", [])
            ],
            stop_reason=str(d["stop_reason"]),
            summary=Summary.from_dict(d["summary"]),
        )


@dataclass
class BenchResult:
    """One benchmark run: series + metrics + provenance (Reportable)."""

    benchmark: str
    area: str
    primary: str
    series: Dict[str, Series]
    metrics: Dict[str, Any] = field(default_factory=dict)
    environment: Dict[str, Any] = field(default_factory=dict)
    repeat_config: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0
    created_at: Optional[str] = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        if self.primary not in self.series:
            raise ValueError(
                f"primary series {self.primary!r} not in "
                f"{sorted(self.series)}"
            )
        if self.created_at is None:
            self.created_at = time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            )

    @property
    def primary_series(self) -> Series:
        return self.series[self.primary]

    # -- Reportable protocol --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "bench_result",
            "schema_version": self.schema_version,
            "benchmark": self.benchmark,
            "area": self.area,
            "primary": self.primary,
            "series": {
                name: s.to_dict() for name, s in sorted(self.series.items())
            },
            "metrics": dict(self.metrics),
            "environment": dict(self.environment),
            "repeat_config": dict(self.repeat_config),
            "wall_seconds": self.wall_seconds,
            "created_at": self.created_at,
        }

    def summary(self) -> str:
        s = self.primary_series.summary
        return (
            f"{self.benchmark}: {self.primary} median "
            f"{s.median:.6g}{self.primary_series.unit} "
            f"CI [{s.ci_lo:.6g}, {s.ci_hi:.6g}] over {s.n} rep(s)"
        )

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "BenchResult":
        return cls(
            benchmark=str(d["benchmark"]),
            area=str(d["area"]),
            primary=str(d["primary"]),
            series={
                name: Series.from_dict(name, sd)
                for name, sd in d["series"].items()
            },
            metrics=dict(d.get("metrics", {})),
            environment=dict(d.get("environment", {})),
            repeat_config=dict(d.get("repeat_config", {})),
            wall_seconds=float(d.get("wall_seconds", 0.0)),
            created_at=d.get("created_at"),
            schema_version=int(d.get("schema_version", -1)),
        )


def bench_filename(area: str) -> str:
    return f"BENCH_{area}.json"


# -- validation -------------------------------------------------------------------

_STOP_REASONS = tuple(r.value for r in StopReason)

_SUMMARY_KEYS = (
    "n",
    "mean",
    "std",
    "min",
    "max",
    "median",
    "mad",
    "trimmed_mean",
    "ci_lo",
    "ci_hi",
    "confidence",
    "method",
)


def _validate_summary(
    d: Any, n_samples: int, where: str
) -> List[str]:
    problems: List[str] = []
    if not isinstance(d, Mapping):
        return [f"{where}: summary is not an object"]
    for key in _SUMMARY_KEYS:
        if key not in d:
            problems.append(f"{where}: summary missing {key!r}")
    if problems:
        return problems
    if d["n"] != n_samples:
        problems.append(
            f"{where}: summary.n {d['n']} != {n_samples} samples"
        )
    try:
        lo, hi, med = float(d["ci_lo"]), float(d["ci_hi"]), float(d["median"])
    except (TypeError, ValueError):
        return problems + [f"{where}: non-numeric summary fields"]
    if math.isnan(lo) or math.isnan(hi):
        problems.append(f"{where}: NaN confidence bounds")
    elif lo > hi:
        problems.append(f"{where}: ci_lo {lo} > ci_hi {hi}")
    if not (0 < float(d["confidence"]) < 1):
        problems.append(
            f"{where}: confidence {d['confidence']} not in (0, 1)"
        )
    if d["method"] == "bootstrap" and not (lo <= med <= hi):
        problems.append(
            f"{where}: median {med} outside its CI [{lo}, {hi}]"
        )
    return problems


def validate_bench_result(obj: Any) -> List[str]:
    """Schema-check one BENCH record; returns problems (empty = ok)."""
    if not isinstance(obj, Mapping):
        return ["result is not an object"]
    problems: List[str] = []
    version = obj.get("schema_version")
    if version != SCHEMA_VERSION:
        problems.append(
            f"schema_version {version!r} != {SCHEMA_VERSION} "
            "(v1 single-shot records must be regenerated with "
            "'penny perf run')"
        )
        return problems
    if obj.get("kind") != "bench_result":
        problems.append(f"kind {obj.get('kind')!r} != 'bench_result'")
    for key in ("benchmark", "area", "primary", "created_at"):
        if not isinstance(obj.get(key), str) or not obj.get(key):
            problems.append(f"missing or empty {key!r}")
    series = obj.get("series")
    if not isinstance(series, Mapping) or not series:
        problems.append("series missing or empty")
        series = {}
    primary = obj.get("primary")
    if series and primary not in series:
        problems.append(
            f"primary {primary!r} not one of {sorted(series)}"
        )
    for name, sd in series.items():
        where = f"series[{name}]"
        if not isinstance(sd, Mapping):
            problems.append(f"{where}: not an object")
            continue
        samples = sd.get("samples")
        if not isinstance(samples, list) or not samples:
            problems.append(f"{where}: samples missing or empty")
            continue
        bad = [
            x
            for x in samples
            if not isinstance(x, (int, float)) or x <= 0
        ]
        if bad:
            problems.append(
                f"{where}: {len(bad)} nonpositive/non-numeric sample(s)"
            )
        if not isinstance(sd.get("unit"), str) or not sd.get("unit"):
            problems.append(f"{where}: missing unit")
        if sd.get("stop_reason") not in _STOP_REASONS:
            problems.append(
                f"{where}: stop_reason {sd.get('stop_reason')!r} not in "
                f"{_STOP_REASONS}"
            )
        problems.extend(
            _validate_summary(sd.get("summary"), len(samples), where)
        )
    environment = obj.get("environment")
    if not isinstance(environment, Mapping):
        problems.append("environment missing")
    else:
        for key in ENV_KEYS:
            if key not in environment:
                problems.append(f"environment missing {key!r}")
    if not isinstance(obj.get("repeat_config"), Mapping):
        problems.append("repeat_config missing")
    if not isinstance(obj.get("metrics"), Mapping):
        problems.append("metrics missing")
    return problems


# -- IO ---------------------------------------------------------------------------


def write_result(result: BenchResult, path: str) -> None:
    """Write a BENCH file atomically (rename over the old point)."""
    payload = result.to_dict()
    problems = validate_bench_result(payload)
    if problems:
        raise ValueError(
            f"refusing to write invalid bench result: {problems}"
        )
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)


def load_result(path: str, validate: bool = True) -> BenchResult:
    """Load (and by default schema-check) a BENCH file."""
    with open(path) as f:
        obj = json.load(f)
    if validate:
        problems = validate_bench_result(obj)
        if problems:
            raise ValueError(
                f"{path}: invalid bench result: {problems[:5]}"
            )
    return BenchResult.from_dict(obj)
