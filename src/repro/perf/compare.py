"""Result-level comparison: a fresh run vs a committed baseline.

:mod:`repro.perf.stats` compares two *sample sets*; this module compares
two *BENCH records*, which adds the provenance questions the raw
statistics cannot answer:

- **Which series gates?**  Every series the two results share is
  compared (informational), but only the result's *primary* series
  decides the gate.
- **Are the numbers comparable at all?**  When any
  :data:`repro.perf.env.MACHINE_KEYS` field drifts between baseline and
  candidate (different host, Python, NumPy, CPU count), a significant
  primary verdict is downgraded to ``inconclusive`` — a laptop number vs
  a CI-runner number is a machine change, not a regression.  Drift in
  ``code_sha``/``git_rev`` is the *point* of the comparison and never
  softens it.

:func:`gate_exit_code` turns a list of comparisons into the CI contract:
nonzero iff any primary verdict is ``regressed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.perf.env import MACHINE_KEYS
from repro.perf.schema import BenchResult
from repro.perf.stats import Comparison, Verdict, compare

__all__ = [
    "SeriesComparison",
    "ResultComparison",
    "compare_results",
    "gate_exit_code",
    "render_comparison",
]


@dataclass(frozen=True)
class SeriesComparison:
    """One shared series, compared."""

    series: str
    unit: str
    comparison: Comparison
    is_primary: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "series": self.series,
            "unit": self.unit,
            "is_primary": self.is_primary,
            **self.comparison.to_dict(),
        }


@dataclass
class ResultComparison:
    """Baseline-vs-candidate verdict for one benchmark (Reportable)."""

    benchmark: str
    area: str
    primary: str
    verdict: Verdict  # the gating verdict (post env-drift downgrade)
    series: List[SeriesComparison]
    env_drift: Dict[str, Tuple[Any, Any]] = field(default_factory=dict)
    downgraded: bool = False  # True when env drift softened the verdict
    baseline_created_at: Optional[str] = None
    candidate_created_at: Optional[str] = None
    notes: List[str] = field(default_factory=list)

    @property
    def primary_comparison(self) -> SeriesComparison:
        for sc in self.series:
            if sc.is_primary:
                return sc
        raise LookupError(f"{self.benchmark}: no primary series compared")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "bench_comparison",
            "benchmark": self.benchmark,
            "area": self.area,
            "primary": self.primary,
            "verdict": self.verdict.value,
            "downgraded": self.downgraded,
            "env_drift": {
                k: {"baseline": a, "candidate": b}
                for k, (a, b) in sorted(self.env_drift.items())
            },
            "series": [sc.to_dict() for sc in self.series],
            "baseline_created_at": self.baseline_created_at,
            "candidate_created_at": self.candidate_created_at,
            "notes": list(self.notes),
        }

    def summary(self) -> str:
        pc = self.primary_comparison.comparison
        return (
            f"{self.benchmark}: {self.verdict.value} "
            f"(primary {self.primary} ratio {pc.ratio:.3f}, "
            f"margin {pc.noise_margin:.0%})"
        )


def _environment_drift(
    baseline: BenchResult, candidate: BenchResult
) -> Dict[str, Tuple[Any, Any]]:
    drift: Dict[str, Tuple[Any, Any]] = {}
    for key in MACHINE_KEYS:
        a = baseline.environment.get(key)
        b = candidate.environment.get(key)
        if a != b:
            drift[key] = (a, b)
    return drift


def compare_results(
    baseline: BenchResult,
    candidate: BenchResult,
    *,
    noise_margin: float = 0.05,
    confidence: float = 0.95,
    method: str = "bootstrap",
    ignore_env: bool = False,
) -> ResultComparison:
    """Compare a candidate BENCH record against its committed baseline.

    Durations, so *lower is better*: the candidate regresses when its
    primary series is significantly slower than the baseline's beyond
    ``noise_margin``.  Pass ``ignore_env=True`` to keep significant
    verdicts even across machine drift (e.g. deliberate cross-host
    comparisons).
    """
    if baseline.benchmark != candidate.benchmark:
        raise ValueError(
            f"comparing different benchmarks: {baseline.benchmark!r} "
            f"vs {candidate.benchmark!r}"
        )
    notes: List[str] = []
    primary = candidate.primary
    if baseline.primary != primary:
        notes.append(
            f"primary series changed: {baseline.primary!r} -> {primary!r}"
        )
    shared = [
        name for name in candidate.series if name in baseline.series
    ]
    if primary not in shared:
        raise ValueError(
            f"{candidate.benchmark}: primary series {primary!r} missing "
            f"from baseline (has {sorted(baseline.series)})"
        )
    for name in sorted(set(baseline.series) ^ set(candidate.series)):
        notes.append(f"series {name!r} present on only one side")

    series_cmp: List[SeriesComparison] = []
    for name in sorted(shared, key=lambda n: (n != primary, n)):
        sc = compare(
            baseline.series[name].samples,
            candidate.series[name].samples,
            noise_margin=noise_margin,
            confidence=confidence,
            method=method,
        )
        series_cmp.append(
            SeriesComparison(
                series=name,
                unit=candidate.series[name].unit,
                comparison=sc,
                is_primary=(name == primary),
            )
        )

    drift = _environment_drift(baseline, candidate)
    verdict = next(
        sc.comparison.verdict for sc in series_cmp if sc.is_primary
    )
    downgraded = False
    if drift and not ignore_env and verdict in (
        Verdict.REGRESSED,
        Verdict.IMPROVED,
    ):
        # Different machine shape: absolute timings are incomparable,
        # so a significant verdict cannot be trusted either way.
        downgraded = True
        notes.append(
            "verdict downgraded to inconclusive: environment drift in "
            + ", ".join(sorted(drift))
        )
        verdict = Verdict.INCONCLUSIVE
    return ResultComparison(
        benchmark=candidate.benchmark,
        area=candidate.area,
        primary=primary,
        verdict=verdict,
        series=series_cmp,
        env_drift=drift,
        downgraded=downgraded,
        baseline_created_at=baseline.created_at,
        candidate_created_at=candidate.created_at,
        notes=notes,
    )


def gate_exit_code(comparisons: List[ResultComparison]) -> int:
    """The CI contract: nonzero iff any gating verdict is a regression."""
    return 1 if any(
        rc.verdict is Verdict.REGRESSED for rc in comparisons
    ) else 0


# -- text rendering ---------------------------------------------------------------

_MARK = {
    Verdict.IMPROVED: "+",
    Verdict.REGRESSED: "!",
    Verdict.UNCHANGED: "=",
    Verdict.INCONCLUSIVE: "?",
}


def render_comparison(rc: ResultComparison) -> str:
    """Human-readable multi-line report for one benchmark comparison."""
    lines = [
        f"{_MARK[rc.verdict]} {rc.benchmark}: {rc.verdict.value.upper()}"
        + (" (downgraded: environment drift)" if rc.downgraded else "")
    ]
    for sc in rc.series:
        c = sc.comparison
        tag = "primary" if sc.is_primary else "info"
        lines.append(
            f"    {sc.series:<22} [{tag}] "
            f"{c.median_baseline:.6g} -> {c.median_candidate:.6g} "
            f"{sc.unit}  ratio {c.ratio:.3f}  "
            f"log-CI [{c.log_ratio_lo:+.4f}, {c.log_ratio_hi:+.4f}]  "
            f"{c.verdict.value}"
        )
    for key, (a, b) in sorted(rc.env_drift.items()):
        lines.append(f"    env drift: {key}: {a!r} -> {b!r}")
    for note in rc.notes:
        lines.append(f"    note: {note}")
    return "\n".join(lines)
