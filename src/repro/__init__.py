"""Penny: compiler-directed soft error resilience for lightweight GPU
register file protection — a from-scratch reproduction of the PLDI 2020
paper, with every substrate it depends on.

Quickstart::

    from repro import (
        KernelBuilder, PennyCompiler, PennyConfig, LaunchConfig,
        Executor, Launch, MemoryImage, FaultCampaign,
    )

    kernel = ...            # build or parse a PTX-subset kernel
    result = PennyCompiler(PennyConfig()).compile(kernel, LaunchConfig())
    Executor(result.kernel).run(Launch(...), MemoryImage())

Packages:

- :mod:`repro.coding`      — EDC/ECC codes and hardware cost models
- :mod:`repro.ir`          — the PTX-subset compiler IR
- :mod:`repro.analysis`    — CFG / dataflow / alias analyses
- :mod:`repro.regalloc`    — register allocation (CRAT stand-in)
- :mod:`repro.core`        — the Penny compiler itself
- :mod:`repro.gpusim`      — GPU simulator, recovery runtime, fault injection
- :mod:`repro.bench`       — the 25 Table-3 benchmarks
- :mod:`repro.experiments` — one module per paper table/figure
"""

from repro.core.pipeline import (
    CompileResult,
    LaunchConfig,
    PennyCompiler,
    PennyConfig,
)
from repro.core.schemes import (
    SCHEME_BOLT_AUTO,
    SCHEME_BOLT_GLOBAL,
    SCHEME_IGPU,
    SCHEME_PENNY,
    scheme_config,
)
from repro.gpusim.executor import Executor, Launch
from repro.gpusim.faults import FaultCampaign, FaultOutcome, FaultPlan
from repro.gpusim.memory import MemoryImage
from repro.ir.builder import KernelBuilder
from repro.ir.parser import parse_kernel, parse_module
from repro.ir.printer import print_kernel, print_module

__version__ = "1.0.0"

__all__ = [
    "PennyCompiler",
    "PennyConfig",
    "CompileResult",
    "LaunchConfig",
    "SCHEME_IGPU",
    "SCHEME_BOLT_GLOBAL",
    "SCHEME_BOLT_AUTO",
    "SCHEME_PENNY",
    "scheme_config",
    "Executor",
    "Launch",
    "MemoryImage",
    "FaultCampaign",
    "FaultPlan",
    "FaultOutcome",
    "KernelBuilder",
    "parse_kernel",
    "parse_module",
    "print_kernel",
    "print_module",
    "__version__",
]
