"""Penny: compiler-directed soft error resilience for lightweight GPU
register file protection — a from-scratch reproduction of the PLDI 2020
paper, with every substrate it depends on.

Quickstart::

    import repro

    kernel = ...                     # build or parse a PTX-subset kernel
    result = repro.protect(kernel)   # full Penny pipeline, strict
    stats = repro.simulate(
        result, launch=repro.Launch(grid=1, block=32),
        mem=repro.MemoryImage(),
    )

:func:`protect` is the one-call compile entry point and
:func:`simulate` the one-call execute entry point (``backend="auto"``
picks the vectorized NumPy engine; pass ``backend="scalar"`` for the
reference interpreter).  Drop down to :class:`PennyCompiler` +
:class:`PennyConfig`, or :func:`repro.gpusim.make_executor`, when you
need to mix knobs the presets don't cover.  To watch a run, install a tracer first::

    with repro.obs.Tracer() as tracer:
        result = repro.protect(kernel)
    repro.obs.write_chrome_trace("trace.json", tracer)

Packages:

- :mod:`repro.coding`      — EDC/ECC codes and hardware cost models
- :mod:`repro.ir`          — the PTX-subset compiler IR
- :mod:`repro.analysis`    — CFG / dataflow / alias analyses
- :mod:`repro.regalloc`    — register allocation (CRAT stand-in)
- :mod:`repro.core`        — the Penny compiler itself
- :mod:`repro.gpusim`      — GPU simulator, recovery runtime, fault injection
- :mod:`repro.bench`       — the 25 Table-3 benchmarks
- :mod:`repro.experiments` — one module per paper table/figure
- :mod:`repro.obs`         — tracing, metrics, and exporters
"""

from typing import Optional, Union

from repro import obs
from repro.core.pipeline import (
    CompileResult,
    LaunchConfig,
    PennyCompiler,
    PennyConfig,
)
from repro.core.schemes import (
    SCHEME_BOLT_AUTO,
    SCHEME_BOLT_GLOBAL,
    SCHEME_IGPU,
    SCHEME_PENNY,
    Scheme,
    scheme_config,
)
from repro.gpusim.backend import make_executor
from repro.gpusim.executor import ExecutionResult, Executor, Launch
from repro.gpusim.faults import FaultCampaign, FaultOutcome, FaultPlan
from repro.gpusim.memory import MemoryImage
from repro.ir.builder import KernelBuilder
from repro.ir.module import Kernel
from repro.ir.parser import parse_kernel, parse_module
from repro.ir.printer import print_kernel, print_module

__version__ = "1.0.0"


def protect(
    kernel: Union[Kernel, str],
    *,
    scheme: str = SCHEME_PENNY,
    overwrite: Union[Scheme, str, None] = None,
    strict: bool = True,
    launch: Optional[LaunchConfig] = None,
) -> CompileResult:
    """Protect a kernel against soft errors with one call.

    The documented entry point: picks the ``scheme`` preset (default:
    the full Penny pipeline), compiles, and returns a
    :class:`CompileResult` whose ``.kernel`` carries checkpoints and the
    recovery table.  All arguments but the kernel are keyword-only.

    :param kernel: a :class:`Kernel`, or PTX-subset source text.
    :param scheme: comparison-scheme preset name (``SCHEME_PENNY``,
        ``SCHEME_BOLT_GLOBAL``, ``SCHEME_BOLT_AUTO``).
    :param overwrite: override the preset's overwrite-prevention scheme
        (a :class:`Scheme` or any alias ``Scheme.parse`` accepts).
    :param strict: raise typed compile errors instead of degrading
        through the fallback lattice.
    :param launch: launch geometry for storage layout (defaults to
        ``LaunchConfig()``).
    """
    if isinstance(kernel, str):
        kernel = parse_kernel(kernel)
    config = scheme_config(scheme)
    if overwrite is not None:
        config.overwrite = Scheme.parse(overwrite)
    return PennyCompiler(config, strict=strict).compile(
        kernel, launch or LaunchConfig()
    )


def simulate(
    result: Union[CompileResult, Kernel],
    *,
    launch: Launch,
    mem: MemoryImage,
    backend: str = "auto",
    fault_plan=None,
) -> ExecutionResult:
    """Execute a protected kernel on the simulator with one call.

    The execution-side twin of :func:`protect`: accepts the
    :class:`CompileResult` ``protect`` returned (or a bare
    :class:`Kernel`), picks an execution engine, runs it, and returns
    the :class:`ExecutionResult`.  Outputs land in ``mem`` — download
    them from there.  All arguments but the kernel are keyword-only.

    :param result: a :class:`CompileResult` (its ``.kernel`` is run) or
        a :class:`Kernel`.
    :param launch: grid/block geometry (:class:`Launch`).
    :param mem: the :class:`MemoryImage` holding params and buffers.
    :param backend: ``"auto"`` (default — the vectorized NumPy engine),
        ``"scalar"`` (the reference interpreter), or ``"vector"``.
    :param fault_plan: optional fault-injection plan (e.g.
        :class:`FaultPlan`); hooks fire identically on both backends.
    """
    kernel = result.kernel if isinstance(result, CompileResult) else result
    executor = make_executor(kernel, backend=backend, fault_plan=fault_plan)
    return executor.run(launch, mem)


__all__ = [
    "protect",
    "simulate",
    "PennyCompiler",
    "PennyConfig",
    "CompileResult",
    "LaunchConfig",
    "Scheme",
    "SCHEME_IGPU",
    "SCHEME_BOLT_GLOBAL",
    "SCHEME_BOLT_AUTO",
    "SCHEME_PENNY",
    "scheme_config",
    "Executor",
    "ExecutionResult",
    "make_executor",
    "Launch",
    "MemoryImage",
    "FaultCampaign",
    "FaultPlan",
    "FaultOutcome",
    "Kernel",
    "KernelBuilder",
    "parse_kernel",
    "parse_module",
    "print_kernel",
    "print_module",
    "obs",
    "__version__",
]
