"""Single-bit even parity — Penny's 1-bit-error detector (Table 1: (33,32))."""

from __future__ import annotations

from repro.coding.base import Code, DecodeResult, DecodeStatus, popcount


class ParityCode(Code):
    """Even parity over ``k`` data bits: one check bit, detects odd errors.

    Penny pairs this (33,32) code with idempotent recovery to match the
    resilience of SECDED(39,32) ECC at 3.1% instead of 21.9% storage
    overhead.  The parity bit is stored at bit position ``k``.
    """

    guaranteed_correct = 0

    def __init__(self, k: int = 32):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.n = k + 1
        self.guaranteed_detect = 1

    def encode(self, data: int) -> int:
        self._require_data_range(data)
        parity = popcount(data) & 1
        return data | (parity << self.k)

    def check(self, codeword: int) -> bool:
        self._require_codeword_range(codeword)
        return popcount(codeword) & 1 == 1

    def decode(self, codeword: int) -> DecodeResult:
        data = self.extract_data(codeword)
        if self.check(codeword):
            return DecodeResult(data=data, status=DecodeStatus.DETECTED)
        return DecodeResult(data=data, status=DecodeStatus.CLEAN)
