"""Arithmetic in GF(2^m) and polynomials over GF(2), used by the BCH codes.

The DECTED / TECQED codes of Table 1 are multi-bit-correcting block codes;
we realize them as shortened binary BCH codes, which requires finite-field
machinery: exponential/log tables for GF(2^m), minimal polynomials of field
elements, and polynomial arithmetic over GF(2).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

# Primitive polynomials (as bit masks, LSB = x^0) for small extension fields.
PRIMITIVE_POLYS = {
    3: 0b1011,  # x^3 + x + 1
    4: 0b10011,  # x^4 + x + 1
    5: 0b100101,  # x^5 + x^2 + 1
    6: 0b1000011,  # x^6 + x + 1
    7: 0b10001001,  # x^7 + x^3 + 1
    8: 0b100011101,  # x^8 + x^4 + x^3 + x^2 + 1
}


class GF2m:
    """The finite field GF(2^m) with log/antilog tables.

    Elements are integers in ``[0, 2^m)``; ``alpha = 2`` (the polynomial
    ``x``) is a primitive element for the tabulated primitive polynomials.
    """

    def __init__(self, m: int):
        if m not in PRIMITIVE_POLYS:
            raise ValueError(f"no primitive polynomial tabulated for m={m}")
        self.m = m
        self.size = 1 << m
        self.order = self.size - 1  # multiplicative group order
        poly = PRIMITIVE_POLYS[m]
        self.exp: List[int] = [0] * (2 * self.order)
        self.log: List[int] = [0] * self.size
        x = 1
        for i in range(self.order):
            self.exp[i] = x
            self.log[x] = i
            x <<= 1
            if x & self.size:
                x ^= poly
        # Duplicate the exp table so products of logs index directly.
        for i in range(self.order, 2 * self.order):
            self.exp[i] = self.exp[i - self.order]

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self.exp[(self.log[a] - self.log[b]) % self.order]

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return self.exp[(self.order - self.log[a]) % self.order]

    def pow(self, a: int, e: int) -> int:
        if a == 0:
            return 0 if e else 1
        return self.exp[(self.log[a] * e) % self.order]

    def alpha_pow(self, e: int) -> int:
        """alpha ** e for the primitive element alpha."""
        return self.exp[e % self.order]

    def minimal_polynomial(self, element: int) -> int:
        """Minimal polynomial of ``element`` over GF(2), as a bit mask.

        Computed from the conjugacy class {e, e^2, e^4, ...}: the minimal
        polynomial is the product of ``(x - c)`` over the class, which has
        coefficients in GF(2).
        """
        if element == 0:
            return 0b10  # x
        conjugates = []
        c = element
        while c not in conjugates:
            conjugates.append(c)
            c = self.mul(c, c)
        # Multiply out prod (x + c_i) with coefficients in GF(2^m);
        # the result must land in GF(2).
        coeffs = [1]  # leading coefficient of x^0 polynomial "1"
        for c in conjugates:
            # poly = poly * (x + c)
            new = [0] * (len(coeffs) + 1)
            for i, a in enumerate(coeffs):
                new[i + 1] ^= a  # times x
                new[i] ^= self.mul(a, c)  # times c
            coeffs = new
        mask = 0
        for i, a in enumerate(coeffs):
            if a not in (0, 1):
                raise AssertionError(
                    "minimal polynomial coefficient outside GF(2)"
                )
            if a:
                mask |= 1 << i
        return mask


@lru_cache(maxsize=None)
def field(m: int) -> GF2m:
    """Memoized field constructor — table building is O(2^m)."""
    return GF2m(m)


def poly2_degree(p: int) -> int:
    """Degree of a GF(2) polynomial encoded as a bit mask (-1 for zero)."""
    return p.bit_length() - 1


def poly2_mul(a: int, b: int) -> int:
    """Product of two GF(2) polynomials (carry-less multiplication)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def poly2_mod(a: int, b: int) -> int:
    """Remainder of GF(2) polynomial division a mod b."""
    if b == 0:
        raise ZeroDivisionError("polynomial modulo zero")
    db = poly2_degree(b)
    while poly2_degree(a) >= db:
        a ^= b << (poly2_degree(a) - db)
    return a


def poly2_gcd(a: int, b: int) -> int:
    while b:
        a, b = b, poly2_mod(a, b)
    return a


def poly2_lcm(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    g = poly2_gcd(a, b)
    # Exact division: multiply then divide via repeated subtraction.
    prod = poly2_mul(a, b)
    return _poly2_divexact(prod, g)


def _poly2_divexact(a: int, b: int) -> int:
    """Exact quotient of GF(2) polynomials (remainder must be zero)."""
    q = 0
    db = poly2_degree(b)
    while poly2_degree(a) >= db:
        shift = poly2_degree(a) - db
        q |= 1 << shift
        a ^= b << shift
    if a:
        raise ValueError("polynomial division was not exact")
    return q


def poly2_eval_in_field(p: int, x: int, gf: GF2m) -> int:
    """Evaluate a GF(2) polynomial at a GF(2^m) point (Horner)."""
    result = 0
    for i in range(poly2_degree(p), -1, -1):
        result = gf.mul(result, x)
        if (p >> i) & 1:
            result ^= 1
    return result


def bch_generator(m: int, t: int) -> int:
    """Generator polynomial of the binary BCH code with designed distance
    ``2t + 1`` over GF(2^m): lcm of minimal polynomials of alpha^1..alpha^2t.
    """
    gf = field(m)
    gen = 1
    for i in range(1, 2 * t + 1):
        gen = poly2_lcm(gen, gf.minimal_polynomial(gf.alpha_pow(i)))
    return gen
