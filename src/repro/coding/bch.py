"""Shortened binary BCH codes with an overall parity extension.

Table 1's DECTED (double-error-correct / triple-error-detect) and TECQED
(triple-error-correct / quad-error-detect) schemes are realized here as
shortened BCH codes over GF(2^6) (natural length 63) extended with one
overall parity bit, giving minimum distance ``2t + 2``:

- ``t`` errors anywhere in the word are corrected,
- ``t + 1`` errors are detected (never miscorrected),
- used detection-only (as Penny would), ``2t + 1`` errors are detected.

The constructions here use the textbook check-bit counts (12 + 1 for t=2,
18 + 1 for t=3 over GF(2^6)); the paper's Table 1 quotes the larger
hardware-oriented one-step-decodable constructions (55,32) / (60,32), which
:mod:`repro.coding.schemes` records verbatim for cost accounting.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coding.base import Code, DecodeResult, DecodeStatus, popcount
from repro.coding.gf import (
    GF2m,
    bch_generator,
    field,
    poly2_degree,
)


class BchCode(Code):
    """Systematic shortened BCH code correcting ``t`` errors, plus parity.

    Layout (LSB first): ``r = deg(g)`` check bits, then ``k`` data bits,
    then one overall (even) parity bit at position ``r + k``.
    """

    def __init__(self, k: int = 32, t: int = 2, m: int = 6):
        if t < 1:
            raise ValueError("t must be >= 1")
        self.gf: GF2m = field(m)
        self.t = t
        self.generator = bch_generator(m, t)
        self.r = poly2_degree(self.generator)
        max_k = self.gf.order - self.r
        if k > max_k:
            raise ValueError(
                f"k={k} exceeds shortened capacity {max_k} for m={m}, t={t}"
            )
        self.k = k
        self.inner_n = self.r + k  # BCH part, before the parity bit
        self.n = self.inner_n + 1
        self.guaranteed_correct = t
        self.guaranteed_detect = 2 * t + 1

    # -- encoding -----------------------------------------------------------

    def encode(self, data: int) -> int:
        self._require_data_range(data)
        shifted = data << self.r
        remainder = self._poly_mod_generator(shifted)
        inner = shifted | remainder
        parity = popcount(inner) & 1
        return inner | (parity << self.inner_n)

    def _poly_mod_generator(self, a: int) -> int:
        g = self.generator
        dg = self.r
        while a.bit_length() - 1 >= dg and a:
            a ^= g << (a.bit_length() - 1 - dg)
        return a

    # -- detection ----------------------------------------------------------

    def _syndromes(self, inner: int) -> List[int]:
        gf = self.gf
        syn = []
        for j in range(1, 2 * self.t + 1):
            s = 0
            word = inner
            pos = 0
            while word:
                if word & 1:
                    s ^= gf.alpha_pow(j * pos)
                word >>= 1
                pos += 1
            syn.append(s)
        return syn

    def check(self, codeword: int) -> bool:
        self._require_codeword_range(codeword)
        if popcount(codeword) & 1:
            return True
        inner = codeword & ((1 << self.inner_n) - 1)
        return any(self._syndromes(inner))

    # -- correction ---------------------------------------------------------

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        """Error-locator polynomial sigma (list of coefficients, sigma[0]=1)."""
        gf = self.gf
        sigma = [1]
        prev_sigma = [1]
        l = 0
        shift = 1
        prev_discrepancy = 1
        for i, s in enumerate(syndromes):
            # discrepancy d = S_i + sum sigma_j * S_{i-j}
            d = s
            for j in range(1, l + 1):
                if j < len(sigma) and i - j >= 0:
                    d ^= gf.mul(sigma[j], syndromes[i - j])
            if d == 0:
                shift += 1
                continue
            if 2 * l <= i:
                scale = gf.div(d, prev_discrepancy)
                new_sigma = list(sigma) + [0] * max(
                    0, len(prev_sigma) + shift - len(sigma)
                )
                for j, c in enumerate(prev_sigma):
                    new_sigma[j + shift] ^= gf.mul(scale, c)
                prev_sigma = sigma
                sigma = new_sigma
                prev_discrepancy = d
                l = i + 1 - l
                shift = 1
            else:
                scale = gf.div(d, prev_discrepancy)
                if len(sigma) < len(prev_sigma) + shift:
                    sigma = sigma + [0] * (
                        len(prev_sigma) + shift - len(sigma)
                    )
                for j, c in enumerate(prev_sigma):
                    sigma[j + shift] ^= gf.mul(scale, c)
                shift += 1
        # Trim trailing zeros.
        while len(sigma) > 1 and sigma[-1] == 0:
            sigma.pop()
        return sigma

    def _chien_search(self, sigma: List[int]) -> Optional[List[int]]:
        """Error positions within the shortened word, or None on failure."""
        gf = self.gf
        degree = len(sigma) - 1
        positions = []
        for pos in range(self.gf.order):
            # Root test: sigma(alpha^{-pos}) == 0 locates an error at pos.
            x = gf.alpha_pow(-pos % gf.order)
            acc = 0
            xp = 1
            for c in sigma:
                acc ^= gf.mul(c, xp)
                xp = gf.mul(xp, x)
            if acc == 0:
                if pos >= self.inner_n:
                    return None  # error outside the shortened word
                positions.append(pos)
                if len(positions) == degree:
                    break
        if len(positions) != degree:
            return None
        return positions

    def decode(self, codeword: int) -> DecodeResult:
        self._require_codeword_range(codeword)
        inner = codeword & ((1 << self.inner_n) - 1)
        parity_bad = popcount(codeword) & 1 == 1
        syndromes = self._syndromes(inner)
        if not any(syndromes):
            if not parity_bad:
                return DecodeResult(self.extract_data(codeword), DecodeStatus.CLEAN)
            # Only the overall parity bit flipped.
            return DecodeResult(
                self.extract_data(codeword), DecodeStatus.CORRECTED
            )
        sigma = self._berlekamp_massey(syndromes)
        if len(sigma) - 1 > self.t:
            return DecodeResult(self.extract_data(codeword), DecodeStatus.DETECTED)
        positions = self._chien_search(sigma)
        if positions is None:
            return DecodeResult(self.extract_data(codeword), DecodeStatus.DETECTED)
        corrected = inner
        for pos in positions:
            corrected ^= 1 << pos
        # Parity cross-check: the parity bit accounts for one more error.
        total_errors = len(positions)
        if parity_bad != (total_errors & 1 == 1):
            total_errors += 1  # the parity bit itself is also corrupted
        if total_errors > self.t:
            return DecodeResult(self.extract_data(codeword), DecodeStatus.DETECTED)
        data = (corrected >> self.r) & ((1 << self.k) - 1)
        return DecodeResult(data, DecodeStatus.CORRECTED)

    def extract_data(self, codeword: int) -> int:
        return (codeword >> self.r) & ((1 << self.k) - 1)


class DectedCode(BchCode):
    """Double-error-correcting, triple-error-detecting code for 32-bit data.

    Functional stand-in for the paper's DECTED (55,32); see module docstring
    for why the check-bit count differs from the quoted construction.
    """

    def __init__(self, k: int = 32):
        super().__init__(k=k, t=2, m=6)


class TecqedCode(BchCode):
    """Triple-error-correcting, quadruple-error-detecting code for 32-bit
    data — functional stand-in for the paper's TECQED (60,32)."""

    def __init__(self, k: int = 32):
        super().__init__(k=k, t=3, m=6)
