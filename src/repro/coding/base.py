"""Common interface for block codes over binary words.

All codes operate on non-negative Python integers interpreted as bit vectors,
least-significant bit first.  A codeword for a ``(n, k)`` code occupies ``n``
bits: by convention the ``k`` data bits are the low bits and the ``n - k``
check bits are the high bits (systematic layout), although individual codes
may document a different layout as long as ``extract_data(encode(d)) == d``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DecodeStatus(enum.Enum):
    """Outcome of decoding a (possibly corrupted) codeword."""

    CLEAN = "clean"  # no error detected
    CORRECTED = "corrected"  # error detected and corrected
    DETECTED = "detected"  # error detected but not correctable (DUE)


@dataclass(frozen=True)
class DecodeResult:
    """Result of :meth:`Code.decode`.

    ``data`` is the decoder's best-effort data word; it is only trustworthy
    when ``status`` is ``CLEAN`` or ``CORRECTED``.
    """

    data: int
    status: DecodeStatus

    @property
    def ok(self) -> bool:
        """True when the data word can be trusted."""
        return self.status is not DecodeStatus.DETECTED


class Code:
    """A binary block code mapping ``k`` data bits to ``n`` codeword bits.

    Subclasses must set :attr:`n`, :attr:`k`, :attr:`guaranteed_detect`
    (errors detected when the code is used detection-only, as Penny does) and
    :attr:`guaranteed_correct` (errors corrected when used as ECC).
    """

    n: int
    k: int
    guaranteed_detect: int
    guaranteed_correct: int

    @property
    def check_bits(self) -> int:
        """Number of redundant bits added to each data word."""
        return self.n - self.k

    @property
    def storage_overhead(self) -> float:
        """Fractional storage overhead relative to the bare data word."""
        return self.check_bits / self.k

    def encode(self, data: int) -> int:
        """Encode ``data`` (must fit in ``k`` bits) into an ``n``-bit word."""
        raise NotImplementedError

    def decode(self, codeword: int) -> DecodeResult:
        """Decode ``codeword``, correcting errors if the code is able to."""
        raise NotImplementedError

    def check(self, codeword: int) -> bool:
        """Return True when an error is *detected* in ``codeword``.

        This is the only operation Penny's register file performs on a read;
        correction is delegated to idempotent re-execution.
        """
        raise NotImplementedError

    def extract_data(self, codeword: int) -> int:
        """Return the (unchecked) data bits of ``codeword``."""
        return codeword & ((1 << self.k) - 1)

    def _require_data_range(self, data: int) -> None:
        if data < 0 or data >> self.k:
            raise ValueError(
                f"data word {data:#x} does not fit in {self.k} bits"
            )

    def _require_codeword_range(self, codeword: int) -> None:
        if codeword < 0 or codeword >> self.n:
            raise ValueError(
                f"codeword {codeword:#x} does not fit in {self.n} bits"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, k={self.k})"


def popcount(x: int) -> int:
    """Number of set bits in ``x`` (x >= 0)."""
    return bin(x).count("1")


def flip_bits(word: int, positions) -> int:
    """Return ``word`` with the given bit positions flipped."""
    for pos in positions:
        word ^= 1 << pos
    return word
