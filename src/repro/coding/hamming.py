"""Hamming SEC and extended-Hamming SECDED codes.

The paper's Table 1 uses Hamming (38,32) as Penny's 2-bit *detector* (a
distance-3 code detects 2 errors when correction is never attempted) and
SECDED (39,32) both as the conventional 1-bit-correcting ECC and as Penny's
3-bit detector (distance 4 detects 3 errors detection-only).
"""

from __future__ import annotations

from repro.coding.base import Code, DecodeResult, DecodeStatus, popcount


def _num_check_bits(k: int) -> int:
    """Smallest r with 2**r >= k + r + 1 (Hamming bound for SEC)."""
    r = 1
    while (1 << r) < k + r + 1:
        r += 1
    return r


class HammingCode(Code):
    """Systematic Hamming single-error-correcting code.

    Layout: data bits occupy codeword positions that are *not* powers of two
    (1-indexed, classic Hamming positions); check bits sit at power-of-two
    positions.  ``extract_data`` reassembles the data word.

    - As ECC: corrects any 1-bit error (distance 3).
    - Detection-only (Penny): detects any 2-bit error.
    """

    guaranteed_correct = 1

    def __init__(self, k: int = 32):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.r = _num_check_bits(k)
        self.n = k + self.r
        self.guaranteed_detect = 2
        # Precompute the mapping from data-bit index -> codeword position
        # (0-indexed) and the list of check positions.
        self._check_positions = [(1 << i) - 1 for i in range(self.r)]
        check_set = set(self._check_positions)
        self._data_positions = [
            pos for pos in range(self.n) if pos not in check_set
        ][: self.k]

    def _spread(self, data: int) -> int:
        """Place data bits at non-power-of-two codeword positions."""
        word = 0
        for i, pos in enumerate(self._data_positions):
            if (data >> i) & 1:
                word |= 1 << pos
        return word

    def _gather(self, word: int) -> int:
        data = 0
        for i, pos in enumerate(self._data_positions):
            if (word >> pos) & 1:
                data |= 1 << i
        return data

    def _syndrome(self, word: int) -> int:
        """XOR of the (1-indexed) positions of all set bits."""
        syn = 0
        pos = 0
        while word:
            if word & 1:
                syn ^= pos + 1
            word >>= 1
            pos += 1
        return syn

    def encode(self, data: int) -> int:
        self._require_data_range(data)
        word = self._spread(data)
        syn = self._syndrome(word)
        # Setting check bit at position 2**i - 1 toggles syndrome bit i.
        for i in range(self.r):
            if (syn >> i) & 1:
                word |= 1 << ((1 << i) - 1)
        return word

    def check(self, codeword: int) -> bool:
        self._require_codeword_range(codeword)
        return self._syndrome(codeword) != 0

    def decode(self, codeword: int) -> DecodeResult:
        self._require_codeword_range(codeword)
        syn = self._syndrome(codeword)
        if syn == 0:
            return DecodeResult(self._gather(codeword), DecodeStatus.CLEAN)
        if syn <= self.n:
            corrected = codeword ^ (1 << (syn - 1))
            return DecodeResult(
                self._gather(corrected), DecodeStatus.CORRECTED
            )
        return DecodeResult(self._gather(codeword), DecodeStatus.DETECTED)

    def extract_data(self, codeword: int) -> int:
        return self._gather(codeword)


class SecdedCode(Code):
    """Extended Hamming: Hamming SEC plus an overall parity bit.

    Distance 4 — corrects 1 and detects 2 as ECC; detects any 3-bit error
    when used detection-only, which is how Penny turns commodity SECDED
    hardware into a 3-bit-error corrector (Table 1's last row).
    """

    guaranteed_correct = 1

    def __init__(self, k: int = 32):
        self._inner = HammingCode(k)
        self.k = k
        self.n = self._inner.n + 1
        self.guaranteed_detect = 3

    def encode(self, data: int) -> int:
        inner = self._inner.encode(data)
        overall = popcount(inner) & 1
        return inner | (overall << self._inner.n)

    def check(self, codeword: int) -> bool:
        self._require_codeword_range(codeword)
        inner = codeword & ((1 << self._inner.n) - 1)
        overall_parity_bad = popcount(codeword) & 1 == 1
        return overall_parity_bad or self._inner.check(inner)

    def decode(self, codeword: int) -> DecodeResult:
        self._require_codeword_range(codeword)
        inner = codeword & ((1 << self._inner.n) - 1)
        syn = self._inner._syndrome(inner)
        overall_parity_bad = popcount(codeword) & 1 == 1
        if syn == 0 and not overall_parity_bad:
            return DecodeResult(self.extract_data(codeword), DecodeStatus.CLEAN)
        if overall_parity_bad:
            # Odd number of flips — assume one and correct it.
            if syn == 0:
                # The overall parity bit itself flipped.
                return DecodeResult(
                    self.extract_data(codeword), DecodeStatus.CORRECTED
                )
            if syn <= self._inner.n:
                corrected = inner ^ (1 << (syn - 1))
                return DecodeResult(
                    self._inner._gather(corrected), DecodeStatus.CORRECTED
                )
            return DecodeResult(
                self.extract_data(codeword), DecodeStatus.DETECTED
            )
        # Even number of flips with a nonzero syndrome: uncorrectable (DUE).
        return DecodeResult(self.extract_data(codeword), DecodeStatus.DETECTED)

    def extract_data(self, codeword: int) -> int:
        inner = codeword & ((1 << self._inner.n) - 1)
        return self._inner._gather(inner)
