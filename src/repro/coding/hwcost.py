"""Analytic register-file bank cost model (CACTI + synthesis stand-in).

The paper evaluates hardware cost (Table 2) by designing RF banks with each
coding scheme in CACTI 6.5 at 22nm and synthesizing the encode/decode logic
with Synopsys DC.  We reproduce that evaluation with an analytic model:

- The **baseline bank** (256KB RF / 16 banks, no protection) is pinned to the
  paper's reported synthesis results: 0.105 mm^2, 1.01 ns access latency,
  9.64 pJ per access, 4.7 nW leakage.
- **Area** scales with stored bits: a bank storing ``n`` bits per 32-bit
  register costs ``n / 32`` of the baseline array (check-bit columns are
  physically identical to data columns).
- **Access energy** and **leakage** also scale with stored bits, discounted
  by the fixed periphery fraction that does not grow with word width
  (sense amps, decoders): calibrated fractions 0.965 and 0.945.
- **Access latency** is dominated by the encode/check logic appended to the
  read path, not by the array; per-scheme logic-depth factors are calibrated
  against the paper's synthesis numbers, with a first-principles XOR-tree
  fallback for schemes outside the calibration set.

Note Table 2 of the paper synthesizes a 13-check-bit DECTED (40.6% area —
matching our BCH construction in :mod:`repro.coding.bch`) even though its
Table 1 quotes (55,32); we follow Table 2 here and Table 1 in
:mod:`repro.coding.schemes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Check-bit counts used by the Table 2 synthesis for k = 32 data bits.
SYNTHESIS_CHECK_BITS: Dict[str, int] = {
    "None": 0,
    "Parity": 1,
    "Hamming": 6,
    "SECDED": 7,
    "DECTED": 13,
    "TECQED": 28,
}

#: Calibrated read-path logic latency overhead (fraction of baseline access
#: latency) per scheme, from the paper's synthesis (Table 2).
_LATENCY_OVERHEAD: Dict[str, float] = {
    "None": 0.0,
    "Parity": 0.035,
    "Hamming": 0.218,
    "SECDED": 0.256,
    "DECTED": 0.492,
    "TECQED": 0.743,
}

#: Fraction of access energy / leakage that grows with stored bits (the
#: remainder is width-independent periphery).
_ENERGY_ARRAY_FRACTION = 0.965
_LEAKAGE_ARRAY_FRACTION = 0.945


@dataclass(frozen=True)
class BankCost:
    """Absolute per-bank costs, in the units the paper reports."""

    area_mm2: float
    access_latency_ns: float
    access_energy_pj: float
    leakage_nw: float

    def overhead_vs(self, baseline: "BankCost") -> "BankOverhead":
        return BankOverhead(
            area=self.area_mm2 / baseline.area_mm2 - 1.0,
            access_latency=self.access_latency_ns
            / baseline.access_latency_ns
            - 1.0,
            access_energy=self.access_energy_pj
            / baseline.access_energy_pj
            - 1.0,
            leakage=self.leakage_nw / baseline.leakage_nw - 1.0,
        )


@dataclass(frozen=True)
class BankOverhead:
    """Fractional overheads relative to the unprotected baseline bank."""

    area: float
    access_latency: float
    access_energy: float
    leakage: float


class RegisterFileBankModel:
    """Cost model for one bank of a banked GPU register file.

    Parameters default to the paper's configuration: a 256KB RF split into
    16 banks of 32-bit registers at 22nm.
    """

    #: Paper-reported baseline synthesis results (22nm, 16KB bank).
    BASELINE = BankCost(
        area_mm2=0.105,
        access_latency_ns=1.01,
        access_energy_pj=9.64,
        leakage_nw=4.7,
    )

    def __init__(self, data_bits: int = 32):
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        self.data_bits = data_bits

    def check_bits(self, scheme_name: str) -> int:
        try:
            return SYNTHESIS_CHECK_BITS[scheme_name]
        except KeyError:
            raise ValueError(f"unknown coding scheme {scheme_name!r}") from None

    def _storage_scale(self, scheme_name: str) -> float:
        return self.check_bits(scheme_name) / self.data_bits

    def _latency_overhead(self, scheme_name: str) -> float:
        if scheme_name in _LATENCY_OVERHEAD:
            return _LATENCY_OVERHEAD[scheme_name]
        # First-principles fallback: one XOR-tree stage per log2 of fan-in,
        # ~3.7% of the baseline access time per check bit up to saturation.
        cb = self.check_bits(scheme_name)
        return min(0.037 * cb, 0.80)

    def cost(self, scheme_name: str) -> BankCost:
        """Absolute per-bank cost for a bank protected with ``scheme_name``."""
        base = self.BASELINE
        scale = self._storage_scale(scheme_name)
        return BankCost(
            area_mm2=base.area_mm2 * (1.0 + scale),
            access_latency_ns=base.access_latency_ns
            * (1.0 + self._latency_overhead(scheme_name)),
            access_energy_pj=base.access_energy_pj
            * (1.0 + scale * _ENERGY_ARRAY_FRACTION),
            leakage_nw=base.leakage_nw
            * (1.0 + scale * _LEAKAGE_ARRAY_FRACTION),
        )

    def overhead(self, scheme_name: str) -> BankOverhead:
        """Fractional overhead of ``scheme_name`` vs the unprotected bank."""
        return self.cost(scheme_name).overhead_vs(self.BASELINE)


#: (error bits -> scheme name) pairs mirroring Table 2's rows.
_TABLE2_ROWS = [
    (1, "SECDED", "Parity"),
    (2, "DECTED", "Hamming"),
    (3, "TECQED", "SECDED"),
]


def hardware_cost_table(model: RegisterFileBankModel = None) -> List[dict]:
    """Reproduce Table 2: per-bank overheads for ECC vs Penny coding."""
    model = model or RegisterFileBankModel()
    rows = []
    for bits, ecc_name, penny_name in _TABLE2_ROWS:
        ecc = model.overhead(ecc_name)
        penny = model.overhead(penny_name)
        rows.append(
            {
                "error_bits": bits,
                "ecc_coding": ecc_name,
                "ecc_area": ecc.area,
                "ecc_latency": ecc.access_latency,
                "ecc_energy": ecc.access_energy,
                "ecc_leakage": ecc.leakage,
                "penny_coding": penny_name,
                "penny_area": penny.area,
                "penny_latency": penny.access_latency,
                "penny_energy": penny.access_energy,
                "penny_leakage": penny.leakage,
            }
        )
    return rows


def format_hardware_cost_table(model: RegisterFileBankModel = None) -> str:
    """Pretty-print Table 2 in the paper's layout."""
    rows = hardware_cost_table(model)
    header = (
        f"{'Err':<5}{'ECC':<8}{'Area':>7}{'Lat.':>7}{'Enrg':>7}{'Leak':>7}"
        f"   {'Penny':<9}{'Area':>7}{'Lat.':>7}{'Enrg':>7}{'Leak':>7}"
    )
    lines = [header]
    for r in rows:
        lines.append(
            f"{str(r['error_bits']) + 'b':<5}{r['ecc_coding']:<8}"
            f"{r['ecc_area'] * 100:>6.1f}%{r['ecc_latency'] * 100:>6.1f}%"
            f"{r['ecc_energy'] * 100:>6.1f}%{r['ecc_leakage'] * 100:>6.1f}%"
            f"   {r['penny_coding']:<9}"
            f"{r['penny_area'] * 100:>6.1f}%{r['penny_latency'] * 100:>6.1f}%"
            f"{r['penny_energy'] * 100:>6.1f}%{r['penny_leakage'] * 100:>6.1f}%"
        )
    return "\n".join(lines)
