"""Protection-scheme registry reproducing the paper's Table 1.

For each error magnitude (1, 2, 3 flipped bits per 32-bit register) the
paper compares the coding a conventional ECC design needs against the coding
Penny needs when the code is used *detection-only* and correction is handled
by idempotent re-execution.

The quoted (n, k) pairs below are exactly the paper's (Table 1).  Note that
our *functional* DECTED/TECQED implementations (:mod:`repro.coding.bch`)
achieve the same correction guarantees with fewer check bits than the quoted
hardware-oriented constructions; the quoted numbers are what Table 1 and the
storage-cost benchmark report.  (The paper itself uses a smaller DECTED in
its Table 2 synthesis — 13 check bits — which matches our BCH construction;
:mod:`repro.coding.hwcost` records that discrepancy.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.coding.base import Code
from repro.coding.bch import DectedCode, TecqedCode
from repro.coding.hamming import HammingCode, SecdedCode
from repro.coding.parity import ParityCode


@dataclass(frozen=True)
class CodingScheme:
    """One row-half of Table 1: a named code with its quoted storage cost."""

    name: str
    quoted_n: int
    quoted_k: int
    factory: Optional[Callable[[], Code]]

    @property
    def quoted_check_bits(self) -> int:
        return self.quoted_n - self.quoted_k

    @property
    def quoted_overhead(self) -> float:
        """Fractional storage overhead, e.g. 0.219 for SECDED (39,32)."""
        return self.quoted_check_bits / self.quoted_k

    def build(self) -> Code:
        """Instantiate the functional code implementing this scheme."""
        if self.factory is None:
            raise ValueError(f"no functional implementation for {self.name}")
        return self.factory()


PARITY = CodingScheme("Parity", 33, 32, lambda: ParityCode(32))
HAMMING = CodingScheme("Hamming", 38, 32, lambda: HammingCode(32))
SECDED = CodingScheme("SECDED", 39, 32, lambda: SecdedCode(32))
DECTED = CodingScheme("DECTED", 55, 32, lambda: DectedCode(32))
TECQED = CodingScheme("TECQED", 60, 32, lambda: TecqedCode(32))

#: Conventional ECC protection per error magnitude (Table 1, middle column).
_CONVENTIONAL: Dict[int, CodingScheme] = {1: SECDED, 2: DECTED, 3: TECQED}

#: Penny's detection-only coding per error magnitude (Table 1, right column).
_PENNY: Dict[int, CodingScheme] = {1: PARITY, 2: HAMMING, 3: SECDED}


def conventional_ecc_scheme(error_bits: int) -> CodingScheme:
    """Coding a conventional ECC design needs to *correct* ``error_bits``."""
    try:
        return _CONVENTIONAL[error_bits]
    except KeyError:
        raise ValueError(
            f"no conventional scheme tabulated for {error_bits}-bit errors"
        ) from None


def penny_scheme(error_bits: int) -> CodingScheme:
    """Coding Penny needs to *detect* ``error_bits`` (recovery corrects)."""
    try:
        return _PENNY[error_bits]
    except KeyError:
        raise ValueError(
            f"no Penny scheme tabulated for {error_bits}-bit errors"
        ) from None


def storage_cost_table() -> List[dict]:
    """Reproduce Table 1 as a list of row dictionaries."""
    rows = []
    for bits in (1, 2, 3):
        ecc = conventional_ecc_scheme(bits)
        penny = penny_scheme(bits)
        rows.append(
            {
                "error_bits": bits,
                "ecc_coding": ecc.name,
                "ecc_n": ecc.quoted_n,
                "ecc_k": ecc.quoted_k,
                "ecc_overhead": ecc.quoted_overhead,
                "penny_coding": penny.name,
                "penny_n": penny.quoted_n,
                "penny_k": penny.quoted_k,
                "penny_overhead": penny.quoted_overhead,
            }
        )
    return rows


def format_storage_cost_table() -> str:
    """Pretty-print Table 1 in the paper's layout."""
    lines = [
        f"{'Error':<7}{'Conventional ECC':<24}{'Penny':<24}",
    ]
    for row in storage_cost_table():
        ecc = (
            f"{row['ecc_coding']} ({row['ecc_n']},{row['ecc_k']}) "
            f"{row['ecc_overhead'] * 100:.1f}%"
        )
        penny = (
            f"{row['penny_coding']} ({row['penny_n']},{row['penny_k']}) "
            f"{row['penny_overhead'] * 100:.1f}%"
        )
        lines.append(f"{str(row['error_bits']) + ' bit':<7}{ecc:<24}{penny:<24}")
    return "\n".join(lines)
