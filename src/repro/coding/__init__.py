"""Error detection / correction coding substrate.

The paper contrasts conventional ECC protection of a GPU register file with
Penny's detection-only use of cheaper codes (Table 1, Table 2).  This package
implements the codes themselves — single parity, Hamming SEC, extended
Hamming SECDED, and BCH-based DEC/TEC codes over GF(2^m) — together with:

- :mod:`repro.coding.schemes` — a registry mapping protection goals (1/2/3-bit
  errors) to the coding scheme each approach uses, with the paper's quoted
  (n, k) storage costs for Table 1.
- :mod:`repro.coding.hwcost` — an analytic register-file bank model standing
  in for CACTI + Synopsys synthesis, reproducing Table 2's relative area /
  latency / energy / leakage overheads.

Every code shares the :class:`repro.coding.base.Code` interface: ``encode``
produces an integer codeword, ``decode`` returns a :class:`DecodeResult`, and
``check`` answers the detection-only question Penny's register file asks on
every read.
"""

from repro.coding.base import Code, DecodeResult, DecodeStatus
from repro.coding.parity import ParityCode
from repro.coding.hamming import HammingCode, SecdedCode
from repro.coding.bch import BchCode, DectedCode, TecqedCode
from repro.coding.schemes import (
    CodingScheme,
    conventional_ecc_scheme,
    penny_scheme,
    storage_cost_table,
)
from repro.coding.hwcost import RegisterFileBankModel, hardware_cost_table

__all__ = [
    "Code",
    "DecodeResult",
    "DecodeStatus",
    "ParityCode",
    "HammingCode",
    "SecdedCode",
    "BchCode",
    "DectedCode",
    "TecqedCode",
    "CodingScheme",
    "conventional_ecc_scheme",
    "penny_scheme",
    "storage_cost_table",
    "RegisterFileBankModel",
    "hardware_cost_table",
]
