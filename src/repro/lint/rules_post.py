"""Post-compile rules: the recovery-correctness obligations, as lint rules.

The first five (``penny-coverage`` … ``penny-adjustment``) are the V1–V5
checks that used to live as a monolith in :mod:`repro.core.verify`; that
module is now a thin compatibility shim running exactly these rules.
They re-derive the obligations of docs/INTERNALS.md from the final
kernel and its metadata, independently of the passes that were supposed
to establish them.

Four further rules cross-check the checkpoint machinery itself:

- ``ckpt-loop-overwrite`` — a checkpoint store that can clobber, inside
  the very region whose entry restores it, the slot copy recovery would
  read (the §3.1 overwrite hazard the 2-coloring exists to prevent —
  classically via a loop back edge).
- ``ckpt-slot-alias`` — a program store through a general register
  derived from a checkpoint base symbol: it aliases slot storage without
  being a checkpoint store.
- ``ckpt-space-write`` — a store directly into checkpoint space whose
  (register, offset) matches no assigned slot: a rogue write corrupting
  somebody's checkpoint.
- ``restore-live-mismatch`` — a restore action for a register that is
  not live-in at its boundary: dead recovery work that usually means the
  plan and the final code disagree.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.core.codegen import GLOBAL_CKPT_SYMBOL, SHARED_CKPT_SYMBOL
from repro.ir.instructions import Alu, Bra, Instruction, St
from repro.ir.types import Imm, MemSpace, Reg, Special, SymRef
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import POST, rule

CKPT_SYMBOLS = (SHARED_CKPT_SYMBOL, GLOBAL_CKPT_SYMBOL)


def is_checkpoint_store(inst: Instruction) -> bool:
    """A store into dedicated checkpoint storage: through the checkpoint
    base symbols, or through the compiler-reserved ``%ckb_*`` /
    ``%ca*`` address registers the low-level optimizer substitutes."""
    if not isinstance(inst, St):
        return False
    if isinstance(inst.base, SymRef):
        return inst.base.name in CKPT_SYMBOLS
    if isinstance(inst.base, Reg):
        return inst.base.name.startswith(("%ckb_", "%ca"))
    return False


def is_checkpoint_addressing(inst: Instruction) -> bool:
    """Address arithmetic emitted by the unoptimized (``low_opts=False``)
    checkpoint lowering: unguarded mov/mad into a fresh ``%ca*`` register
    whose inputs are only specials, immediates, checkpoint base symbols,
    or other ``%ca*`` registers.  Such instructions cannot touch kernel
    state, so they are sound inside adjustment blocks."""
    if not isinstance(inst, Alu) or inst.guard is not None:
        return False
    dst = inst.dst
    if not isinstance(dst, Reg) or not dst.name.startswith("%ca"):
        return False
    for src in inst.srcs:
        if isinstance(src, (Special, Imm)):
            continue
        if isinstance(src, SymRef) and src.name in CKPT_SYMBOLS:
            continue
        if isinstance(src, Reg) and src.name.startswith("%ca"):
            continue
        return False
    return True


def _expected_slots(storage) -> Dict[Tuple[str, int], Tuple[int, MemSpace]]:
    """(reg name, color) -> the byte offset + space its checkpoint store
    must use under the storage assignment's coalesced layout."""
    from repro.core.storage import StorageKind

    expected: Dict[Tuple[str, int], Tuple[int, MemSpace]] = {}
    for (reg_name, color), slot in storage.slots.items():
        if slot.kind is StorageKind.SHARED:
            expected[(reg_name, color)] = (
                slot.index * storage.threads_per_block * 4,
                MemSpace.SHARED,
            )
        else:
            expected[(reg_name, color)] = (
                slot.index * storage.total_threads * 4,
                MemSpace.GLOBAL,
            )
    return expected


# -- V2: restore completeness -------------------------------------------------


@rule(
    "penny-restore",
    POST,
    Severity.ERROR,
    "V2: every live-in with a definition is restored, every slot exists",
)
def check_restores(ctx) -> Iterator[Diagnostic]:
    from repro.policy import UNPROTECTED_KINDS

    liveness = ctx.liveness()
    rdefs = ctx.reaching_defs()
    storage = ctx.storage
    policy = ctx.protection_policy
    selective = policy is not None and not policy.is_full
    if selective:
        # Under a partial policy a live-in legitimately lacks a restore
        # when the policy never selected it.  Drift still surfaces: a
        # register the policy selected (protected + restored somewhere)
        # must be restored at every boundary whose kind protects it.
        restored_anywhere = {
            action.reg_name
            for entry in ctx.recovery_table.regions.values()
            for action in entry.restores
        }
    for label in sorted(ctx.boundaries):
        entry = ctx.recovery_table.regions.get(label)
        if entry is None:
            yield ctx.diag(f"boundary {label} has no recovery entry", label)
            continue
        restored = {a.reg_name for a in entry.restores}
        boundary_unprotected = (
            selective and policy.kind_at(label) in UNPROTECTED_KINDS
        )
        for reg in liveness.live_in.get(label, set()):
            sites = [
                s for s in rdefs.reaching_at(label, 0, reg) if not s.is_entry
            ]
            if not sites:
                continue  # read-before-write: nothing restorable
            if selective and (
                boundary_unprotected
                or not ctx.is_protected(reg.name)
                or reg.name not in restored_anywhere
            ):
                continue  # the policy opted this register out here
            if reg.name not in restored:
                yield ctx.diag(
                    f"live-in {reg.name} has no restore action", label
                )
        for action in entry.restores:
            if action.is_slot:
                if storage is None or (
                    action.reg_name,
                    action.slot_color,
                ) not in storage.slots:
                    yield ctx.diag(
                        f"slot restore of {action.reg_name} color "
                        f"{action.slot_color} has no storage slot",
                        label,
                    )
            elif action.slice_expr is None:
                yield ctx.diag(
                    f"restore of {action.reg_name} is neither slot "
                    "nor slice",
                    label,
                )


# -- V1: coverage -------------------------------------------------------------


@rule(
    "penny-coverage",
    POST,
    Severity.ERROR,
    "V1: no path from a definition to its restoring entry skips the "
    "checkpoint store",
)
def check_coverage(ctx) -> Iterator[Diagnostic]:
    storage = ctx.storage
    if storage is None:
        yield ctx.diag(
            "kernel has no storage assignment", ctx.cfg.entry
        )
        return
    cfg = ctx.cfg
    expected = _expected_slots(storage)

    # Positions of defs, and of checkpoint stores per (register, color).
    defs: Dict[str, List[Tuple[str, int]]] = {}
    cp_stores: Dict[Tuple[str, int], Set[Tuple[str, int]]] = {}
    for blk in cfg.blocks:
        for i, inst in enumerate(blk.instructions):
            if is_checkpoint_store(inst) and isinstance(inst.src, Reg):
                for color in (0, 1):
                    key = (inst.src.name, color)
                    exp = expected.get(key)
                    if exp and exp == (inst.offset, inst.space):
                        cp_stores.setdefault(key, set()).add((blk.label, i))
            else:
                for reg in inst.defs():
                    defs.setdefault(reg.name, []).append((blk.label, i))

    def uncovered_path(
        reg_name: str, color: int, start: Tuple[str, int], target: str
    ) -> bool:
        """Path from just after ``start`` to ``target``'s entry crossing
        neither a matching-color checkpoint store nor a redefinition
        (each redefinition is its own coverage problem)."""
        blockers = cp_stores.get((reg_name, color), set())
        redefs = set(defs.get(reg_name, []))
        seen: Set[Tuple[str, int]] = set()
        work = [(start[0], start[1] + 1)]
        while work:
            label, idx = work.pop()
            if (label, idx) in seen:
                continue
            seen.add((label, idx))
            blk = cfg.block(label)
            blocked = False
            for j in range(idx, len(blk.instructions)):
                if (label, j) in blockers or (
                    (label, j) in redefs and (label, j) != start
                ):
                    blocked = True
                    break
            if blocked:
                continue
            for succ in cfg.successors(label):
                if succ == target:
                    return True
                work.append((succ, 0))
        return False

    for label, entry in sorted(ctx.recovery_table.regions.items()):
        for action in entry.restores:
            if not action.is_slot:
                continue
            for d in defs.get(action.reg_name, []):
                if uncovered_path(
                    action.reg_name, action.slot_color, d, label
                ):
                    yield ctx.diag(
                        f"definition of {action.reg_name} at "
                        f"{d[0]}:{d[1]} can reach the entry without a "
                        f"K{action.slot_color} checkpoint "
                        "(slot restore would be stale)",
                        label,
                    )
                    break


# -- V3: barrier isolation ----------------------------------------------------


@rule(
    "penny-barrier",
    POST,
    Severity.ERROR,
    "V3: barrier-like instructions are block-final with boundary "
    "successors only",
)
def check_barriers(ctx) -> Iterator[Diagnostic]:
    boundaries = ctx.boundaries
    for blk in ctx.kernel.blocks:
        for i, inst in enumerate(blk.instructions):
            if not inst.is_barrier_like:
                continue
            if i != len(blk.instructions) - 1:
                yield ctx.diag(
                    "barrier-like instruction not block-final",
                    blk.label,
                    i,
                )
                continue
            for succ in ctx.cfg.successors(blk.label):
                if succ not in boundaries:
                    yield ctx.diag(
                        f"barrier falls into non-boundary {succ} "
                        "(re-execution would repeat it)",
                        blk.label,
                        i,
                    )


# -- V4: slice safety ---------------------------------------------------------


@rule(
    "penny-slice",
    POST,
    Severity.ERROR,
    "V4: recovery slices only read sources no re-execution can corrupt",
)
def check_slices(ctx) -> Iterator[Diagnostic]:
    from repro.core.slices import SLoad, SOp, SSelp, SSetp, SSlot

    cfg = ctx.cfg
    storage = ctx.storage
    reachable_cache: Dict[str, Set[str]] = {}

    def reachable_from(label: str) -> Set[str]:
        if label not in reachable_cache:
            seen = {label}
            stack = [label]
            while stack:
                cur = stack.pop()
                for succ in cfg.successors(cur):
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
            reachable_cache[label] = seen
        return reachable_cache[label]

    def local_store_reachable(boundary: str) -> bool:
        for lbl in reachable_from(boundary):
            for inst in cfg.block(lbl).instructions:
                if (
                    inst.is_memory_write
                    and not is_checkpoint_store(inst)
                    and getattr(inst, "space", None) is MemSpace.LOCAL
                ):
                    return True
        return False

    def check_expr(reg_name: str, boundary: str, expr):
        if isinstance(expr, SLoad):
            yield from check_expr(reg_name, boundary, expr.base)
            if expr.space in (MemSpace.PARAM, MemSpace.CONST):
                return
            # The pruning validator proved the precise address-aware
            # property; re-check the coarser path property for
            # thread-private (local) memory, where the address is
            # immaterial: no local store may execute between the
            # boundary and the slice's run.
            if expr.space is MemSpace.LOCAL and local_store_reachable(
                boundary
            ):
                yield ctx.diag(
                    f"slice for {reg_name} re-executes a local-memory "
                    "load but a local store is reachable from its "
                    "boundary",
                    boundary,
                )
            return
        if isinstance(expr, SSlot):
            if (
                storage is None
                or (expr.reg_name, expr.color) not in storage.slots
            ):
                yield ctx.diag(
                    f"slice for {reg_name} reads missing slot "
                    f"({expr.reg_name}, K{expr.color})",
                    boundary,
                )
            return
        if isinstance(expr, SOp):
            for s in expr.srcs:
                yield from check_expr(reg_name, boundary, s)
        elif isinstance(expr, SSetp):
            yield from check_expr(reg_name, boundary, expr.a)
            yield from check_expr(reg_name, boundary, expr.b)
        elif isinstance(expr, SSelp):
            yield from check_expr(reg_name, boundary, expr.a)
            yield from check_expr(reg_name, boundary, expr.b)
            yield from check_expr(reg_name, boundary, expr.pred)

    for label, entry in sorted(ctx.recovery_table.regions.items()):
        for action in entry.restores:
            if action.slice_expr is not None:
                yield from check_expr(
                    action.reg_name, label, action.slice_expr
                )


# -- V5: adjustment blocks ----------------------------------------------------


@rule(
    "penny-adjustment",
    POST,
    Severity.ERROR,
    "V5: adjustment blocks only checkpoint, and restore what they read",
)
def check_adjustments(ctx) -> Iterator[Diagnostic]:
    for label in sorted(ctx.adjustments):
        try:
            blk = ctx.kernel.block(label)
        except KeyError:
            yield ctx.diag(
                f"adjustment block {label} missing", ctx.cfg.entry
            )
            continue
        entry = ctx.recovery_table.regions.get(label)
        if entry is None or not entry.mini_region:
            yield ctx.diag(
                f"adjustment block {label} lacks a mini-region entry",
                label,
            )
            continue
        restored = {a.reg_name for a in entry.restores}
        body = blk.instructions
        if not body or not isinstance(body[-1], Bra) or body[-1].guard:
            yield ctx.diag(
                f"adjustment block {label} must end in an "
                "unconditional bra",
                label,
            )
        for i, inst in enumerate(body[:-1]):
            if is_checkpoint_addressing(inst):
                continue
            if not is_checkpoint_store(inst):
                yield ctx.diag(
                    f"adjustment block {label} contains a "
                    f"non-checkpoint instruction: {inst}",
                    label,
                    i,
                )
                continue
            src = inst.src
            if isinstance(src, Reg) and src.name not in restored:
                yield ctx.diag(
                    f"adjustment block {label} reads {src.name} "
                    "without a mini-region restore",
                    label,
                    i,
                )


# -- new cross-checks ---------------------------------------------------------


@rule(
    "ckpt-loop-overwrite",
    POST,
    Severity.ERROR,
    "checkpoint store can clobber the slot its own region restores",
)
def check_ckpt_loop_overwrite(ctx) -> Iterator[Diagnostic]:
    """The §3.1 overwrite hazard, re-derived from the final kernel: a
    checkpoint store into slot (r, K) lying *inside* the region whose
    entry restores (r, K), after r was redefined inside that region —
    recovery would restore the post-fault value.  The classic instance
    is a loop body store reached again around the back edge with the
    same color as the header's restore."""
    storage = ctx.storage
    if storage is None or ctx.recovery_table is None:
        return
    cfg = ctx.cfg
    expected = _expected_slots(storage)
    boundaries = ctx.boundaries

    stores: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}
    defs: Dict[str, List[Tuple[str, int]]] = {}
    adjustments = ctx.adjustments
    for blk in cfg.blocks:
        if blk.label in adjustments:
            continue  # recovery-path code: runs only after a fault, and
            # deliberately rewrites the slots its mini-region restored
        for i, inst in enumerate(blk.instructions):
            if is_checkpoint_store(inst) and isinstance(inst.src, Reg):
                for color in (0, 1):
                    key = (inst.src.name, color)
                    if expected.get(key) == (inst.offset, inst.space):
                        stores.setdefault(key, []).append((blk.label, i))
            else:
                for reg in inst.defs():
                    defs.setdefault(reg.name, []).append((blk.label, i))

    def in_region(boundary: str, label: str) -> bool:
        """Reachable from the boundary without crossing another one."""
        if label == boundary:
            return True
        avoiding = (boundaries - {boundary, label})
        return cfg.paths_exist(boundary, label, avoiding=avoiding)

    for label, entry in sorted(ctx.recovery_table.regions.items()):
        if entry.mini_region:
            continue
        for action in entry.restores:
            if not action.is_slot:
                continue
            key = (action.reg_name, action.slot_color)
            for s_lbl, s_idx in stores.get(key, ()):
                if not in_region(label, s_lbl):
                    continue
                # Redefined between the region entry and the store?
                clobbers = any(
                    in_region(label, d_lbl)
                    and (
                        d_lbl != s_lbl
                        or d_idx < s_idx
                        or cfg.paths_exist(
                            s_lbl, d_lbl, avoiding=boundaries - {label}
                        )
                    )
                    for d_lbl, d_idx in defs.get(action.reg_name, ())
                )
                if clobbers:
                    yield ctx.diag(
                        f"checkpoint store of {action.reg_name} into its "
                        f"K{action.slot_color} slot can execute inside "
                        f"the region entered at {label} after "
                        f"{action.reg_name} was redefined: recovery "
                        "would restore the overwritten value",
                        s_lbl,
                        s_idx,
                    )
                    break


@rule(
    "ckpt-slot-alias",
    POST,
    Severity.ERROR,
    "program store through an address derived from a checkpoint base",
)
def check_ckpt_slot_alias(ctx) -> Iterator[Diagnostic]:
    taint = ctx.symbol_taint(CKPT_SYMBOLS)
    for blk in ctx.cfg.blocks:
        for i, inst in enumerate(blk.instructions):
            if not isinstance(inst, St) or not isinstance(inst.base, Reg):
                continue
            if inst.base.name.startswith(("%ckb_", "%ca")):
                continue  # the lowering's own reserved address registers
            if inst.base.name in taint.before(blk.label, i):
                yield ctx.diag(
                    f"store through {inst.base.name}, which is derived "
                    "from a checkpoint base symbol: aliases slot "
                    "storage without being a checkpoint store",
                    blk.label,
                    i,
                )


@rule(
    "ckpt-space-write",
    POST,
    Severity.ERROR,
    "direct store into checkpoint space matching no assigned slot",
)
def check_ckpt_space_write(ctx) -> Iterator[Diagnostic]:
    """Only symbol-addressed stores are checked: after the low-level
    optimizer folds bases into ``%ckb_*`` registers the offsets move
    into the register value, so a register-addressed store's target slot
    is not statically decidable here."""
    storage = ctx.storage
    if storage is None:
        return
    expected = _expected_slots(storage)
    for blk in ctx.cfg.blocks:
        for i, inst in enumerate(blk.instructions):
            if not isinstance(inst, St):
                continue
            if not (
                isinstance(inst.base, SymRef)
                and inst.base.name in CKPT_SYMBOLS
            ):
                continue
            src_name = inst.src.name if isinstance(inst.src, Reg) else None
            matches = src_name is not None and any(
                expected.get((src_name, color)) == (inst.offset, inst.space)
                for color in (0, 1)
            )
            if not matches:
                what = src_name or "an immediate"
                yield ctx.diag(
                    f"store of {what} at offset {inst.offset} into "
                    f"{inst.base.name} matches no assigned checkpoint "
                    "slot: rogue write into checkpoint space",
                    blk.label,
                    i,
                )


@rule(
    "restore-live-mismatch",
    POST,
    Severity.WARNING,
    "restore action for a register that is not live-in at its boundary",
)
def check_restore_live_mismatch(ctx) -> Iterator[Diagnostic]:
    liveness = ctx.liveness()
    for label, entry in sorted(ctx.recovery_table.regions.items()):
        if entry.mini_region:
            continue  # adjustment restores feed the block, not live-ins
        live = {r.name for r in liveness.live_in.get(label, set())}
        for action in entry.restores:
            if action.reg_name.startswith(("%ckb_", "%ca")):
                continue  # reserved address registers: re-derived on
                # recovery, never live-in in the program's own liveness
            if action.reg_name not in live:
                yield ctx.diag(
                    f"restore of {action.reg_name} at a boundary where "
                    "it is not live-in: dead recovery work (plan and "
                    "final code disagree)",
                    label,
                )


@rule(
    "policy-uncovered-addr",
    POST,
    Severity.ERROR,
    "address-feeding chain register left unprotected by the active policy",
)
def check_policy_uncovered_addr(ctx) -> Iterator[Diagnostic]:
    """Under a selective policy, every register on a chain feeding a
    memory address, branch predicate or barrier condition must carry the
    detection code: a silent flip there corrupts *where* data goes or
    *which path* executes, the failure class address-generation-only
    protection exists to rule out.  Policies opt out explicitly —
    ``none``/``detection-only`` bases (nothing/everything selected by
    other means) or the literal ``no-addr-guard`` token."""
    policy = ctx.protection_policy
    if policy is None:
        return  # classic full protection: everything is covered
    if policy.unprotected or not policy.addr_guard:
        return  # explicit opt-out
    protected = ctx.protected_registers
    if protected is None:
        return  # every register carries the code
    uncovered = sorted(set(ctx.address_criticality()) - set(protected))
    if not uncovered:
        return
    # anchor each finding at the register's first appearance
    first: Dict[str, Tuple[str, int]] = {}
    for blk in ctx.cfg.blocks:
        for i, inst in enumerate(blk.instructions):
            for reg in list(inst.defs()) + list(inst.reg_uses()):
                first.setdefault(reg.name, (blk.label, i))
    for name in uncovered:
        label, index = first.get(name, (ctx.cfg.entry, 0))
        yield ctx.diag(
            f"{name} feeds a memory address, branch predicate or "
            f"barrier condition but carries no detection code under "
            f"policy {policy} (add a region override or "
            "';no-addr-guard' to opt out)",
            label,
            index,
        )
