"""``repro.lint`` — rule-based static analysis over the Penny IR.

A pluggable analyzer with a shared worklist dataflow engine
(:mod:`repro.lint.dataflow`), typed diagnostics
(:mod:`repro.lint.diagnostics`), a rule registry with per-rule
enable/disable and severity overrides (:mod:`repro.lint.registry`),
and three renderers — annotated text, JSONL via
:class:`repro.obs.MetricsSink`, and SARIF 2.1.0
(:mod:`repro.lint.render`).

Two rule phases:

- **pre** (:mod:`repro.lint.rules_pre`) runs on input PTX before any
  pass: uninitialized reads, unreachable blocks, divergent barriers,
  shared-memory races, anti-dependence previews.
- **post** (:mod:`repro.lint.rules_post`) runs on a compiled kernel:
  the V1–V5 recovery obligations (migrated from ``core/verify``, which
  is now a shim over this package) plus checkpoint-machinery
  cross-checks.

Quickstart::

    from repro import lint

    report = lint.lint_source(open("examples/vecadd.ptx").read())
    for d in report.diagnostics:
        print(d)

Or from the shell::

    penny lint examples/vecadd.ptx --format sarif
"""

from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
)
from repro.lint.engine import (
    AnalyzerError,
    LintContext,
    lint_compiled,
    lint_kernel,
    lint_source,
    run_rules,
)
from repro.lint.registry import (
    DEFAULT_REGISTRY,
    POST,
    PRE,
    Rule,
    RuleRegistry,
    UnknownRuleError,
    rule,
)

__all__ = [
    "AnalyzerError",
    "DEFAULT_REGISTRY",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "Location",
    "POST",
    "PRE",
    "Rule",
    "RuleRegistry",
    "Severity",
    "UnknownRuleError",
    "lint_compiled",
    "lint_kernel",
    "lint_source",
    "rule",
]
