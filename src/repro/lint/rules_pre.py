"""Pre-compile rules: checks on the *input* PTX, before any Penny pass.

These catch kernels that would be miscompiled — or mis-protected — by
construction: a register read with no dominating write has no checkpoint
to restore; a barrier inside thread-divergent control flow deadlocks
long before a particle strike matters; a uniform-address shared store of
a thread-varying value is a write/write race the SDC simulator would
blame on the wrong scheme.  ``uncut-antidep`` is a note, not a problem:
it previews the memory anti-dependences that will force region cuts
(docs/INTERNALS.md §regions) so authors can see the cost of a store
placement while still editing the kernel.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.antidep import find_memory_antideps
from repro.ir.instructions import Atom, Bar, St
from repro.ir.types import MemSpace
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import PRE, rule


@rule(
    "uninit-read",
    PRE,
    Severity.ERROR,
    "register read without a definite prior assignment on every path",
)
def check_uninit_read(ctx) -> Iterator[Diagnostic]:
    seen = set()
    for label, index, reg in ctx.uninitialized_reads():
        key = (label, index, reg.name)
        if key in seen:
            continue
        seen.add(key)
        yield ctx.diag(
            f"read of {reg.name} not definitely assigned on every path",
            label,
            index,
            fixit=f"initialize {reg.name} before the first branch",
        )


@rule(
    "unreachable-block",
    PRE,
    Severity.WARNING,
    "basic block unreachable from the kernel entry",
)
def check_unreachable_block(ctx) -> Iterator[Diagnostic]:
    reachable = ctx.cfg.reachable()
    for blk in ctx.cfg.blocks:
        if blk.label not in reachable:
            yield ctx.diag(
                f"block {blk.label} is unreachable from entry "
                f"{ctx.cfg.entry}",
                blk.label,
                0,
                fixit=f"delete block {blk.label} or branch to it",
            )


@rule(
    "divergent-barrier",
    PRE,
    Severity.ERROR,
    "bar.sync control-dependent on a thread-varying predicate",
)
def check_divergent_barrier(ctx) -> Iterator[Diagnostic]:
    taint = ctx.thread_taint()
    for blk in ctx.cfg.blocks:
        for i, inst in enumerate(blk.instructions):
            if not isinstance(inst, Bar):
                continue
            for dep in sorted(
                ctx.control_deps().of(blk.label),
                key=lambda d: (d.branch_block, d.pred.name),
            ):
                # The predicate's value at the branch decides which
                # threads reach the barrier; if it varies per thread,
                # some threads wait forever.
                if dep.pred.name in taint.block_out[dep.branch_block]:
                    yield ctx.diag(
                        f"barrier is control-dependent on thread-varying "
                        f"predicate {dep.pred.name} (branch in "
                        f"{dep.branch_block}): threads that skip it "
                        "deadlock the rest",
                        blk.label,
                        i,
                        fixit="hoist the bar above the divergent branch",
                    )
                    break
            else:
                if inst.guard is not None and inst.guard[0].name in (
                    taint.before(blk.label, i)
                ):
                    yield ctx.diag(
                        f"barrier guarded by thread-varying predicate "
                        f"{inst.guard[0].name}: threads that skip it "
                        "deadlock the rest",
                        blk.label,
                        i,
                        fixit="drop the guard or make it uniform",
                    )


@rule(
    "shared-race",
    PRE,
    Severity.ERROR,
    "unsynchronized same-address shared store of thread-varying data",
)
def check_shared_race(ctx) -> Iterator[Diagnostic]:
    taint = ctx.thread_taint()
    for blk in ctx.cfg.blocks:
        for i, inst in enumerate(blk.instructions):
            if not isinstance(inst, St) or inst.space is not MemSpace.SHARED:
                continue
            if isinstance(inst, Atom):
                continue  # hardware serializes RMW
            value = taint.before(blk.label, i)
            addr_varies = taint.analysis.op_tainted(inst.base, value)
            if addr_varies:
                continue  # per-thread addresses: disjoint locations
            if taint.analysis.guard_tainted(inst, value):
                continue  # e.g. @%p(tid==0): a single thread writes
            src_varies = taint.analysis.op_tainted(inst.src, value)
            if not src_varies:
                continue  # all threads store the same value: benign
            yield ctx.diag(
                "all threads store a thread-varying value to the same "
                "shared address: write/write race with an "
                "arbitrary winner",
                blk.label,
                i,
                fixit="guard the store with a tid==0 predicate or use atom",
            )


@rule(
    "uncut-antidep",
    PRE,
    Severity.NOTE,
    "memory anti-dependence that region formation must cut",
)
def check_uncut_antidep(ctx) -> Iterator[Diagnostic]:
    for dep in find_memory_antideps(ctx.cfg, ctx.alias()):
        (l_lbl, l_idx), (s_lbl, s_idx) = dep.load_at, dep.store_at
        yield ctx.diag(
            f"load may be overwritten by the store at {s_lbl}:{s_idx} "
            f"({dep.result.value} alias): every load-to-store path "
            "will require a region boundary",
            l_lbl,
            l_idx,
        )
