"""Typed diagnostics: what every lint rule produces and every renderer eats.

A :class:`Diagnostic` pins a finding to a *logical* location — the
``kernel:block:index`` triple every layer of the system already speaks —
and, when the kernel came from text, a *physical* one (the
:class:`repro.ir.types.SrcLoc` the parser attached to the instruction).
Rules never format messages with ``repr`` of IR objects: the location is
structured, the message is prose, and renderers decide presentation.

:class:`LintReport` aggregates one analyzer run and implements the
:class:`repro.obs.report.Reportable` protocol (``kind: "lint_report"``)
so reports flow through :class:`repro.obs.MetricsSink` unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.ir.types import SrcLoc


class Severity(str, enum.Enum):
    """Diagnostic severity, ordered ``NOTE < WARNING < ERROR``."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    __str__ = str.__str__
    __format__ = str.__format__

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def at_least(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    @classmethod
    def parse(cls, value) -> "Severity":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError:
            known = sorted(s.value for s in cls)
            raise ValueError(
                f"unknown severity {value!r}; known: {known}"
            ) from None


_SEVERITY_RANK = {Severity.NOTE: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points: ``kernel:block:index`` plus the parsed
    source span when one exists.  ``index`` is the instruction index inside
    the block (0 for block-level findings)."""

    kernel: str
    block: str
    index: int = 0
    loc: Optional[SrcLoc] = None

    def __str__(self) -> str:
        return f"{self.kernel}:{self.block}:{self.index}"


@dataclass
class Diagnostic:
    """One typed finding of one rule."""

    rule: str
    severity: Severity
    message: str
    location: Location
    #: optional machine-readable suggestion ("insert bar.sync before ...")
    fixit: Optional[str] = None

    def plain(self) -> str:
        """The ``kernel:block:index: message`` form ``verify_compiled``
        returns (and tests assert on)."""
        return f"{self.location}: {self.message}"

    def __str__(self) -> str:
        return (
            f"{self.location}: {self.severity.value}: "
            f"[{self.rule}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "kind": "diagnostic",
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "kernel": self.location.kernel,
            "block": self.location.block,
            "index": self.location.index,
        }
        if self.location.loc is not None:
            d["line"] = self.location.loc.line
            d["col"] = self.location.loc.col
            d["end_col"] = self.location.loc.end_col
        if self.fixit:
            d["fixit"] = self.fixit
        return d

    def summary(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "at": str(self.location),
        }


@dataclass
class LintReport:
    """Aggregated result of one analyzer run over one kernel (or several:
    reports merge with ``extend``)."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: rule ids that actually executed (enabled and applicable)
    rules_run: List[str] = field(default_factory=list)

    def extend(self, other: "LintReport") -> "LintReport":
        self.diagnostics.extend(other.diagnostics)
        for rid in other.rules_run:
            if rid not in self.rules_run:
                self.rules_run.append(rid)
        return self

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    def at_least(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity.at_least(severity)]

    @property
    def worst(self) -> Optional[Severity]:
        worst: Optional[Severity] = None
        for d in self.diagnostics:
            if worst is None or d.severity.rank > worst.rank:
                worst = d.severity
        return worst

    def counts(self) -> Dict[str, int]:
        out = {s.value: 0 for s in Severity}
        for d in self.diagnostics:
            out[d.severity.value] += 1
        return out

    # -- Reportable protocol --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "lint_report",
            "rules_run": list(self.rules_run),
            "counts": self.counts(),
            "diagnostics": [
                {k: v for k, v in d.to_dict().items() if k != "kind"}
                for d in self.diagnostics
            ],
        }

    def summary(self) -> Dict[str, Any]:
        return {
            "diagnostics": len(self.diagnostics),
            "worst": self.worst.value if self.worst else None,
            **{
                f"severity.{k}": v
                for k, v in self.counts().items()
                if v
            },
        }
