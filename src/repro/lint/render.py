"""Renderers: annotated text, JSONL, and SARIF 2.1.0.

- :func:`render_text` — compiler-style ``file:line:col: severity: …``
  lines; when the original source text is available, each diagnostic is
  followed by the offending source line and a caret span under it.
- :func:`render_jsonl` — one JSON object per diagnostic plus a trailing
  ``lint_report`` summary record, in the exact format
  :class:`repro.obs.MetricsSink` emits (``validate_metrics_jsonl``
  accepts the output).
- :func:`sarif_report` / :func:`render_sarif` — a SARIF 2.1.0 run, the
  interchange format CI code-scanning services ingest.  Logical
  locations carry the ``kernel:block:index`` triple; physical locations
  appear whenever the parser attached source spans.
- :func:`validate_sarif` — a hand-rolled structural validator for the
  subset of the SARIF schema this module emits, in the same spirit as
  :func:`repro.obs.export.validate_metrics_record`: no network, no
  jsonschema dependency, loud on shape violations.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import DEFAULT_REGISTRY, RuleRegistry

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "penny-lint"

#: SARIF result levels for our severities (SARIF has no "error/warning/
#: note" triple of its own semantics beyond these literal levels)
_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}


# -- text -----------------------------------------------------------------------


def render_text(
    report: LintReport,
    source: Optional[str] = None,
    path: Optional[str] = None,
) -> str:
    """Compiler-style text, one finding per paragraph.

    ``source`` enables caret annotation; ``path`` replaces the kernel
    name as the file prefix for physical locations.
    """
    lines = source.splitlines() if source is not None else None
    out: List[str] = []
    for d in report.diagnostics:
        loc = d.location.loc
        if loc is not None:
            prefix = f"{path or d.location.kernel}:{loc.line}:{loc.col}"
        else:
            prefix = str(d.location)
        out.append(f"{prefix}: {d.severity.value}: [{d.rule}] {d.message}")
        if lines is not None and loc is not None and 1 <= loc.line <= len(
            lines
        ):
            src = lines[loc.line - 1]
            out.append(f"  {src}")
            width = max(1, (loc.end_col or loc.col) - loc.col + 1)
            out.append("  " + " " * (loc.col - 1) + "^" * width)
        if d.fixit:
            out.append(f"  fix-it: {d.fixit}")
    counts = report.counts()
    summary = ", ".join(
        f"{counts[s.value]} {s.value}(s)"
        for s in (Severity.ERROR, Severity.WARNING, Severity.NOTE)
        if counts[s.value]
    )
    out.append(summary if summary else "clean: no findings")
    return "\n".join(out)


# -- JSONL ----------------------------------------------------------------------


def render_jsonl(report: LintReport) -> str:
    """One metrics-sink record per diagnostic + a summary record."""
    rows = [json.dumps(d.to_dict(), sort_keys=True) for d in report.diagnostics]
    rows.append(json.dumps(report.to_dict(), sort_keys=True))
    return "\n".join(rows)


# -- SARIF ----------------------------------------------------------------------


def _sarif_rules(
    report: LintReport, registry: RuleRegistry
) -> List[Dict[str, Any]]:
    rules = []
    for rid in report.rules_run or sorted(
        {d.rule for d in report.diagnostics}
    ):
        desc = registry.get(rid).description if rid in registry else rid
        rules.append(
            {
                "id": rid,
                "shortDescription": {"text": desc},
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL[registry.get(rid).severity]
                    if rid in registry
                    else "warning"
                },
            }
        )
    return rules


def _sarif_result(
    d: Diagnostic, rule_index: Mapping[str, int], path: Optional[str]
) -> Dict[str, Any]:
    location: Dict[str, Any] = {
        "logicalLocations": [
            {
                "name": d.location.block,
                "fullyQualifiedName": str(d.location),
                "kind": "block",
            }
        ]
    }
    if d.location.loc is not None:
        region: Dict[str, Any] = {
            "startLine": d.location.loc.line,
            "startColumn": d.location.loc.col,
        }
        if d.location.loc.end_col:
            region["endColumn"] = d.location.loc.end_col + 1
        location["physicalLocation"] = {
            "artifactLocation": {
                "uri": path or f"{d.location.kernel}.ptx"
            },
            "region": region,
        }
    result: Dict[str, Any] = {
        "ruleId": d.rule,
        "level": _SARIF_LEVEL[d.severity],
        "message": {"text": d.message},
        "locations": [location],
    }
    if d.rule in rule_index:
        result["ruleIndex"] = rule_index[d.rule]
    if d.fixit:
        result["properties"] = {"fixit": d.fixit}
    return result


def sarif_report(
    report: LintReport,
    path: Optional[str] = None,
    registry: RuleRegistry = DEFAULT_REGISTRY,
    tool_version: str = "0.1",
) -> Dict[str, Any]:
    """The full SARIF 2.1.0 log object for one analyzer run."""
    rules = _sarif_rules(report, registry)
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": (
                            "https://dl.acm.org/doi/10.1145/3385412.3386033"
                        ),
                        "rules": rules,
                    }
                },
                "results": [
                    _sarif_result(d, rule_index, path)
                    for d in report.diagnostics
                ],
                "columnKind": "unicodeCodePoints",
            }
        ],
    }


def render_sarif(report: LintReport, path: Optional[str] = None) -> str:
    return json.dumps(sarif_report(report, path=path), indent=2, sort_keys=True)


def validate_sarif(obj: Union[str, Mapping[str, Any]]) -> List[str]:
    """Structural validation of a SARIF 2.1.0 log (the subset we emit,
    which is also the subset CI scanners require); returns problems
    (empty = valid).  Accepts a JSON string or a parsed object."""
    if isinstance(obj, str):
        try:
            obj = json.loads(obj)
        except json.JSONDecodeError as exc:
            return [f"not JSON: {exc}"]
    if not isinstance(obj, Mapping):
        return ["log is not an object"]
    problems: List[str] = []
    if obj.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    runs = obj.get("runs")
    if not isinstance(runs, Sequence) or isinstance(runs, (str, bytes)):
        return problems + ["'runs' must be an array"]
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not isinstance(run, Mapping):
            problems.append(f"{where} is not an object")
            continue
        driver = (run.get("tool") or {}).get("driver")
        if not isinstance(driver, Mapping) or not driver.get("name"):
            problems.append(f"{where}.tool.driver.name missing")
            driver = {}
        rules = driver.get("rules", [])
        rule_ids = set()
        for i, r in enumerate(rules):
            if not isinstance(r, Mapping) or not isinstance(
                r.get("id"), str
            ):
                problems.append(f"{where}.tool.driver.rules[{i}].id missing")
            else:
                rule_ids.add(r["id"])
        results = run.get("results")
        if not isinstance(results, Sequence) or isinstance(
            results, (str, bytes)
        ):
            problems.append(f"{where}.results must be an array")
            continue
        for i, res in enumerate(results):
            rw = f"{where}.results[{i}]"
            if not isinstance(res, Mapping):
                problems.append(f"{rw} is not an object")
                continue
            if not isinstance(res.get("ruleId"), str):
                problems.append(f"{rw}.ruleId missing")
            elif rule_ids and res["ruleId"] not in rule_ids:
                problems.append(
                    f"{rw}.ruleId {res['ruleId']!r} not among driver rules"
                )
            if res.get("level") not in ("error", "warning", "note", "none"):
                problems.append(f"{rw}.level invalid: {res.get('level')!r}")
            msg = res.get("message")
            if not isinstance(msg, Mapping) or not isinstance(
                msg.get("text"), str
            ):
                problems.append(f"{rw}.message.text missing")
            for li, loc in enumerate(res.get("locations", [])):
                lw = f"{rw}.locations[{li}]"
                phys = loc.get("physicalLocation") if isinstance(
                    loc, Mapping
                ) else None
                if phys is not None:
                    art = phys.get("artifactLocation", {})
                    if not isinstance(art.get("uri"), str):
                        problems.append(
                            f"{lw}.physicalLocation.artifactLocation.uri "
                            "missing"
                        )
                    region = phys.get("region", {})
                    start = region.get("startLine")
                    if not isinstance(start, int) or start < 1:
                        problems.append(
                            f"{lw}.physicalLocation.region.startLine "
                            f"invalid: {start!r}"
                        )
    return problems
