"""The analyzer driver: contexts, rule execution, obs instrumentation.

:class:`LintContext` wraps one kernel with lazily built, cached
analyses (CFG, liveness, reaching defs, the dataflow solvers, control
dependence, alias analysis) so that N rules share one fixed point each.
Rules receive the context and yield diagnostics via :meth:`LintContext.diag`;
the engine stamps each diagnostic with the rule's id and (possibly
config-overridden) severity, so a rule body never hard-codes either.

Entry points:

- :func:`lint_kernel` — run the ``pre`` rules on an input kernel.
- :func:`lint_compiled` — run the ``post`` rules on a compiled kernel
  (its ``meta`` must carry the recovery metadata).
- :func:`lint_source` — parse PTX text and run ``pre`` rules, with
  source lines attached for caret rendering.

Every rule runs under an ``obs`` span (``lint.rule``, tagged with the
rule id) and bumps ``lint.*`` counters, so traces show where analysis
time goes and metrics show what fired.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

from repro import obs
from repro.analysis.cfg import CFG
from repro.ir.module import Kernel
from repro.lint.diagnostics import Diagnostic, LintReport, Location, Severity
from repro.lint.registry import DEFAULT_REGISTRY, POST, PRE, Rule, RuleRegistry

# Registering the built-in rules is an import side effect of the rule
# modules; pull them in so DEFAULT_REGISTRY is always populated.
from repro.lint import rules_post as _rules_post  # noqa: F401
from repro.lint import rules_pre as _rules_pre  # noqa: F401


class AnalyzerError(RuntimeError):
    """A lint rule itself crashed — an analyzer bug, never a kernel bug.

    Raised with the rule id attached so the fuzz oracle can report the
    offending rule as a finding."""

    def __init__(self, rule_id: str, exc: BaseException):
        super().__init__(f"lint rule {rule_id!r} crashed: {exc!r}")
        self.rule_id = rule_id
        self.cause = exc


class LintContext:
    """Shared, lazily cached analysis state for one kernel."""

    def __init__(
        self,
        kernel: Kernel,
        cfg: Optional[CFG] = None,
        source: Optional[str] = None,
    ):
        self.kernel = kernel
        self.cfg = cfg if cfg is not None else CFG(kernel)
        #: original PTX text, when the kernel came from text (caret rendering)
        self.source = source
        self._cache: Dict[object, object] = {}

    # -- diagnostics ----------------------------------------------------------

    def location(self, label: str, index: int = 0) -> Location:
        loc = None
        try:
            insts = self.cfg.block(label).instructions
            if 0 <= index < len(insts):
                loc = getattr(insts[index], "loc", None)
        except KeyError:
            pass
        return Location(self.kernel.name, label, index, loc)

    def diag(
        self,
        message: str,
        label: str,
        index: int = 0,
        fixit: Optional[str] = None,
    ) -> Diagnostic:
        """Build a diagnostic; the engine fills in rule id and severity."""
        return Diagnostic(
            rule="",
            severity=Severity.NOTE,
            message=message,
            location=self.location(label, index),
            fixit=fixit,
        )

    # -- cached analyses ------------------------------------------------------

    def _memo(self, key, build):
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    def liveness(self):
        from repro.analysis.liveness import Liveness

        return self._memo("liveness", lambda: Liveness(self.cfg))

    def reaching_defs(self):
        from repro.analysis.reachingdefs import ReachingDefs

        return self._memo("rdefs", lambda: ReachingDefs(self.cfg))

    def loops(self):
        from repro.analysis.loops import LoopInfo

        return self._memo("loops", lambda: LoopInfo(self.cfg))

    def control_deps(self):
        from repro.analysis.postdom import ControlDependence

        return self._memo("cdeps", lambda: ControlDependence(self.cfg))

    def alias(self):
        from repro.analysis.alias import AliasAnalysis

        return self._memo("alias", lambda: AliasAnalysis(self.cfg))

    def definite_assignment(self):
        from repro.lint.dataflow import solve_definite_assignment

        return self._memo(
            "defassign", lambda: solve_definite_assignment(self.cfg)
        )

    def uninitialized_reads(self):
        from repro.lint.dataflow import uninitialized_reads

        return self._memo(
            "uninit", lambda: uninitialized_reads(self.cfg)
        )

    def thread_taint(self):
        from repro.lint.dataflow import solve_thread_taint

        return self._memo("ttaint", lambda: solve_thread_taint(self.cfg))

    def symbol_taint(self, symbols: Iterable[str]):
        from repro.lint.dataflow import solve_symbol_taint

        key: FrozenSet[str] = frozenset(symbols)
        return self._memo(
            ("staint", key), lambda: solve_symbol_taint(self.cfg, key)
        )

    # -- compiled-kernel metadata ---------------------------------------------

    @property
    def recovery_table(self):
        return self.kernel.meta.get("recovery_table")

    @property
    def boundaries(self) -> FrozenSet[str]:
        return frozenset(self.kernel.meta.get("region_boundaries", ()))

    @property
    def adjustments(self) -> FrozenSet[str]:
        return frozenset(self.kernel.meta.get("adjustment_blocks", ()))

    @property
    def storage(self):
        return self.kernel.meta.get("storage_assignment")

    @property
    def has_recovery_meta(self) -> bool:
        return self.recovery_table is not None and bool(self.boundaries)

    # -- selective-protection policy -------------------------------------------

    @property
    def protection_policy(self):
        """The :class:`repro.policy.ProtectionPolicy` this kernel was
        compiled under, or ``None`` (classic full protection / not
        compiled).  Unparseable metadata reads as ``None``."""
        meta = self.kernel.meta.get("protection_policy")
        if meta is None:
            return None
        from repro.policy import PolicyError, ProtectionPolicy

        try:
            return ProtectionPolicy.parse(meta)
        except PolicyError:
            return None

    @property
    def protected_registers(self):
        """Names carrying a detection code at run time; ``None`` = all."""
        return self.kernel.meta.get("protected_registers")

    def is_protected(self, name: str) -> bool:
        protected = self.protected_registers
        return protected is None or name in protected

    def address_criticality(self) -> FrozenSet[str]:
        """Cached address-criticality set of this kernel."""
        from repro.analysis.vuln import address_critical_registers

        return self._memo(
            "addrcrit", lambda: address_critical_registers(self.cfg)
        )


def run_rules(
    ctx: LintContext, rules: Sequence[Rule]
) -> LintReport:
    """Execute rules against a context; one report, obs-instrumented."""
    report = LintReport()
    for rule in rules:
        with obs.span("lint.rule", rule=rule.id, kernel=ctx.kernel.name):
            try:
                found = list(rule.check(ctx))
            except Exception as exc:  # analyzer bug: escalate, typed
                obs.inc("lint.analyzer_crashes")
                raise AnalyzerError(rule.id, exc) from exc
            for d in found:
                d.rule = rule.id
                d.severity = rule.severity
            report.diagnostics.extend(found)
            report.rules_run.append(rule.id)
            obs.inc("lint.rules_run")
            if found:
                obs.inc(f"lint.findings.{rule.id}", len(found))
    for sev, n in report.counts().items():
        if n:
            obs.inc(f"lint.severity.{sev}", n)
    return report


def _select(config, phase, only, disable, severity, registry):
    disable = tuple(disable or ())
    severity = dict(severity or {})
    if config is not None:
        disable += tuple(getattr(config, "lint_disable", ()) or ())
        for rid, sev in (getattr(config, "lint_severity", None) or {}).items():
            severity.setdefault(rid, sev)
    return registry.select(
        phase=phase, only=only, disable=disable, severity=severity
    )


def lint_kernel(
    kernel: Kernel,
    config=None,
    only: Optional[Sequence[str]] = None,
    disable: Sequence[str] = (),
    severity: Optional[Mapping[str, object]] = None,
    source: Optional[str] = None,
    registry: RuleRegistry = DEFAULT_REGISTRY,
) -> LintReport:
    """Run the pre-compile rules on an input kernel."""
    ctx = LintContext(kernel, source=source)
    rules = _select(config, PRE, only, disable, severity, registry)
    with obs.span("lint.kernel", kernel=kernel.name, phase=PRE):
        return run_rules(ctx, rules)


def lint_compiled(
    kernel: Kernel,
    config=None,
    only: Optional[Sequence[str]] = None,
    disable: Sequence[str] = (),
    severity: Optional[Mapping[str, object]] = None,
    source: Optional[str] = None,
    registry: RuleRegistry = DEFAULT_REGISTRY,
) -> LintReport:
    """Run the post-compile rules on a compiled kernel.

    A kernel without recovery metadata yields the single classic
    "not compiled?" error rather than one confusing finding per rule.
    """
    ctx = LintContext(kernel, source=source)
    rules = _select(config, POST, only, disable, severity, registry)
    with obs.span("lint.kernel", kernel=kernel.name, phase=POST):
        if not ctx.has_recovery_meta:
            policy = ctx.protection_policy
            if policy is not None and policy.unprotected:
                # none/detection-only compiles carry no recovery metadata
                # by design: nothing to check, clean report.
                return LintReport(rules_run=[r.id for r in rules])
            report = LintReport(rules_run=[r.id for r in rules])
            report.diagnostics.append(
                Diagnostic(
                    rule="penny-restore",
                    severity=Severity.ERROR,
                    message=(
                        "kernel carries no recovery metadata "
                        "(not compiled?)"
                    ),
                    location=ctx.location(ctx.cfg.entry, 0),
                )
            )
            obs.inc("lint.severity.error")
            return report
        return run_rules(ctx, rules)


def lint_source(text: str, **kwargs) -> LintReport:
    """Parse PTX text and run the pre rules on every kernel in it."""
    from repro.ir.parser import parse_module

    module = parse_module(text)
    report = LintReport()
    for kernel in module.kernels:
        report.extend(lint_kernel(kernel, source=text, **kwargs))
    return report
