"""Rule model and registry: which rules exist, which run, at what severity.

A :class:`Rule` couples an id, a default severity, and a phase —
``pre`` rules inspect input PTX before compilation, ``post`` rules
inspect a compiled kernel's recovery metadata — with a ``check``
callable producing :class:`~repro.lint.diagnostics.Diagnostic` objects.

The process-wide :data:`DEFAULT_REGISTRY` is populated by
:mod:`repro.lint.rules_pre` / :mod:`repro.lint.rules_post` at import
time via the :func:`rule` decorator.  Call sites never mutate it:
:meth:`RuleRegistry.select` returns a filtered, severity-adjusted view
driven by ``PennyConfig.lint_disable`` / ``lint_severity`` or the CLI's
``--rule`` / ``--disable`` flags.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.lint.diagnostics import Diagnostic, Severity

PRE = "pre"
POST = "post"


@dataclass(frozen=True)
class Rule:
    """One named check.  ``check`` receives a
    :class:`repro.lint.engine.LintContext` and yields diagnostics; the
    engine stamps each diagnostic's severity with this rule's (possibly
    overridden) severity, so rules only decide *what* to report."""

    id: str
    phase: str
    severity: Severity
    description: str
    check: Callable[..., Iterable[Diagnostic]]

    def with_severity(self, severity: Severity) -> "Rule":
        return replace(self, severity=severity)


class UnknownRuleError(ValueError):
    """A rule id named in config/CLI that no registered rule matches."""

    def __init__(self, rule_id: str, known: Sequence[str]):
        super().__init__(
            f"unknown lint rule {rule_id!r}; known rules: {', '.join(known)}"
        )
        self.rule_id = rule_id


class RuleRegistry:
    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def add(self, rule: Rule) -> None:
        if rule.id in self._rules:
            raise ValueError(f"duplicate lint rule id {rule.id!r}")
        self._rules[rule.id] = rule

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def ids(self) -> List[str]:
        return sorted(self._rules)

    def get(self, rule_id: str) -> Rule:
        if rule_id not in self._rules:
            raise UnknownRuleError(rule_id, self.ids())
        return self._rules[rule_id]

    def rules(self, phase: Optional[str] = None) -> List[Rule]:
        out = [
            self._rules[rid]
            for rid in sorted(self._rules)
            if phase is None or self._rules[rid].phase == phase
        ]
        return out

    def select(
        self,
        phase: Optional[str] = None,
        only: Optional[Sequence[str]] = None,
        disable: Sequence[str] = (),
        severity: Optional[Mapping[str, object]] = None,
    ) -> List[Rule]:
        """The rules that should run, severity overrides applied.

        ``only`` (if given) whitelists rule ids; ``disable`` drops ids;
        ``severity`` maps rule id -> severity name.  Every id mentioned
        anywhere must exist — a typo'd rule name is a configuration
        error, not a silently-ignored no-op.
        """
        for rid in list(only or ()) + list(disable):
            self.get(rid)
        overrides: Dict[str, Severity] = {}
        for rid, sev in (severity or {}).items():
            self.get(rid)
            overrides[rid] = Severity.parse(sev)
        selected = []
        for rule in self.rules(phase):
            if only is not None and rule.id not in only:
                continue
            if rule.id in disable:
                continue
            if rule.id in overrides:
                rule = rule.with_severity(overrides[rule.id])
            selected.append(rule)
        return selected


#: all built-in rules; populated on import of the rules_* modules
DEFAULT_REGISTRY = RuleRegistry()


def rule(
    id: str,
    phase: str,
    severity: Severity,
    description: str,
    registry: RuleRegistry = DEFAULT_REGISTRY,
):
    """Decorator registering a check function as a built-in rule."""

    def wrap(fn: Callable[..., Iterable[Diagnostic]]) -> Callable:
        registry.add(Rule(id, phase, severity, description, fn))
        return fn

    return wrap
