"""The shared dataflow engine every lint rule builds on.

One generic worklist solver (:class:`Solver`) parameterized by an
:class:`Analysis` — direction, lattice values, meet, and a
per-instruction transfer function — over the existing
:class:`repro.analysis.cfg.CFG`.  Rules that need liveness or reaching
definitions reuse :mod:`repro.analysis.liveness` /
:mod:`repro.analysis.reachingdefs` directly; this module only adds the
analyses those passes do not already provide:

- :class:`DefiniteAssignment` — forward *must* analysis of registers
  written on every path (meet = intersection).  The fuzz oracle's
  undefined-behavior filter and the ``uninit-read`` rule are both this
  analysis, so they can never disagree.
- :class:`ThreadTaint` — forward *may* analysis of registers whose value
  can differ between threads of one block (seeded by ``%tid.*`` and
  atomic results).  Divergence and shared-memory race rules consume it.
- :class:`SymbolTaint` — forward *may* analysis of registers derived
  from a set of buffer symbols (used with the checkpoint base symbols to
  find program stores aimed at ECC checkpoint space).

Values are frozensets of register names: cheap to hash, compare, and
meet, and precise enough for every rule shipped here.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.ir.instructions import Atom, Instruction, Ld
from repro.ir.types import Reg, Special, SymRef

Value = FrozenSet[str]

#: special registers whose value differs between threads of one block
THREAD_VARYING_SPECIALS = ("%tid.x", "%tid.y")


class Direction(enum.Enum):
    FORWARD = "forward"
    BACKWARD = "backward"


class Analysis:
    """One dataflow problem: subclass and override the four hooks."""

    direction: Direction = Direction.FORWARD

    def boundary(self) -> Value:
        """Value at the CFG entry (forward) / at exit blocks (backward).
        Blocks with no predecessors (resp. successors) also start here —
        for a *must* analysis that conservatively treats unreachable code
        as having established nothing."""
        return frozenset()

    def init(self) -> Value:
        """Optimistic initial value for all other blocks (the lattice
        top); the solver refines it downward to the fixed point."""
        return frozenset()

    def meet(self, a: Value, b: Value) -> Value:
        raise NotImplementedError

    def transfer(
        self, label: str, index: int, inst: Instruction, value: Value
    ) -> Value:
        """Value after ``inst`` (forward) / before it (backward)."""
        raise NotImplementedError


class Solver:
    """Worklist fixed point of an :class:`Analysis` over a CFG.

    ``block_in``/``block_out`` are in *execution* order regardless of
    direction: ``block_in`` is the value on entry to the block's first
    instruction, ``block_out`` after its last.  :meth:`before` /
    :meth:`after` replay the transfer function to any instruction.
    """

    def __init__(self, cfg: CFG, analysis: Analysis):
        self.cfg = cfg
        self.analysis = analysis
        self.block_in: Dict[str, Value] = {}
        self.block_out: Dict[str, Value] = {}
        self._solve()

    # -- queries ------------------------------------------------------------

    def before(self, label: str, index: int) -> Value:
        """Dataflow value immediately before instruction ``index``."""
        if self.analysis.direction is Direction.FORWARD:
            value = self.block_in[label]
            for i, inst in enumerate(self.cfg.block(label).instructions):
                if i == index:
                    break
                value = self.analysis.transfer(label, i, inst, value)
            return value
        value = self.block_out[label]
        insts = self.cfg.block(label).instructions
        for i in range(len(insts) - 1, index - 1, -1):
            value = self.analysis.transfer(label, i, insts[i], value)
        return value

    def after(self, label: str, index: int) -> Value:
        """Dataflow value immediately after instruction ``index``."""
        if self.analysis.direction is Direction.FORWARD:
            inst = self.cfg.block(label).instructions[index]
            return self.analysis.transfer(
                label, index, inst, self.before(label, index)
            )
        value = self.block_out[label]
        insts = self.cfg.block(label).instructions
        for i in range(len(insts) - 1, index, -1):
            value = self.analysis.transfer(label, i, insts[i], value)
        return value

    # -- solving ------------------------------------------------------------

    def _through_block(self, label: str, value: Value) -> Value:
        an = self.analysis
        insts = self.cfg.block(label).instructions
        if an.direction is Direction.FORWARD:
            for i, inst in enumerate(insts):
                value = an.transfer(label, i, inst, value)
        else:
            for i in range(len(insts) - 1, -1, -1):
                value = an.transfer(label, i, insts[i], value)
        return value

    def _solve(self) -> None:
        an = self.analysis
        forward = an.direction is Direction.FORWARD
        order = self.cfg.reverse_postorder()
        if not forward:
            order = list(reversed(order))
        edges_in = self.cfg.preds if forward else self.cfg.succs
        start: Dict[str, Value] = {}
        result: Dict[str, Value] = {}
        for label in order:
            start[label] = an.init()
            result[label] = an.init()

        changed = True
        while changed:
            changed = False
            for label in order:
                sources = edges_in[label]
                if not sources:
                    incoming = an.boundary()
                else:
                    incoming: Optional[Value] = None
                    for src in sources:
                        v = result[src]
                        incoming = (
                            v if incoming is None else an.meet(incoming, v)
                        )
                out = self._through_block(label, incoming)
                if incoming != start[label] or out != result[label]:
                    start[label] = incoming
                    result[label] = out
                    changed = True

        if forward:
            self.block_in, self.block_out = start, result
        else:
            self.block_in, self.block_out = result, start


# -- shipped analyses ------------------------------------------------------------


def _universe(cfg: CFG) -> FrozenSet[str]:
    regs: Set[str] = set()
    for blk in cfg.blocks:
        for inst in blk.instructions:
            regs.update(r.name for r in inst.defs())
            regs.update(r.name for r in inst.reg_uses())
    return frozenset(regs)


class DefiniteAssignment(Analysis):
    """Forward must-analysis: registers written (unguarded) on *every*
    path reaching a point.  A read outside the set is an uninitialized
    (or maybe-uninitialized) register read — undefined behavior for the
    protection contract, since a register with no dominating write has no
    checkpoint to restore."""

    direction = Direction.FORWARD

    def __init__(self, cfg: CFG):
        self._top = _universe(cfg)

    def init(self) -> Value:
        return self._top

    def boundary(self) -> Value:
        return frozenset()

    def meet(self, a: Value, b: Value) -> Value:
        return a & b

    def transfer(self, label, index, inst, value) -> Value:
        if inst.guard is not None:
            return value  # predicated-off executions do not write
        defs = inst.defs()
        if not defs:
            return value
        return value | frozenset(r.name for r in defs)


def solve_definite_assignment(cfg: CFG) -> Solver:
    return Solver(cfg, DefiniteAssignment(cfg))


def uninitialized_reads(cfg: CFG):
    """All (label, index, reg) reads not definitely assigned — the shared
    engine behind the ``uninit-read`` rule and the fuzz oracle's
    undefined-behavior filter.

    On top of the must-analysis, one guard-aware refinement: a read
    guarded by ``(p, sense)`` is satisfied by an earlier *same-block*
    definition under the very same guard (whenever the read executes,
    so did the definition).  That is the idiomatic predicated
    load/compute chain (``@%p ld %a …; @%p add %c, %a, %b``) every
    butterfly-style benchmark uses."""
    solver = solve_definite_assignment(cfg)
    out = []
    for blk in cfg.blocks:
        value = solver.block_in[blk.label]
        an = solver.analysis
        # (pred name, sense) -> registers defined under that guard since
        # the last redefinition of the predicate
        cond: Dict[Tuple[str, bool], Set[str]] = {}
        for i, inst in enumerate(blk.instructions):
            guard_key = None
            if inst.guard is not None:
                guard_key = (inst.guard[0].name, inst.guard[1])
            extra = cond.get(guard_key, set()) if guard_key else set()
            for reg in inst.reg_uses():
                if reg.name not in value and reg.name not in extra:
                    out.append((blk.label, i, reg))
            for reg in inst.defs():
                if guard_key is not None:
                    cond.setdefault(guard_key, set()).add(reg.name)
                else:
                    # An unconditional redefinition of a predicate
                    # invalidates everything conditionally assigned
                    # under it.
                    for key in list(cond):
                        if key[0] == reg.name:
                            del cond[key]
            value = an.transfer(blk.label, i, inst, value)
    return out


class ThreadTaint(Analysis):
    """Forward may-analysis: registers whose value can differ between
    threads of the same block.

    Taint springs from the thread-varying specials (``%tid.*``) and from
    atomic return values; it propagates through ALU/setp/selp operands,
    through loads whose *address* is tainted, and through guarded writes
    whose predicate is tainted (whether the write happens at all then
    varies per thread)."""

    direction = Direction.FORWARD

    def meet(self, a: Value, b: Value) -> Value:
        return a | b

    @staticmethod
    def op_tainted(op, value: Value) -> bool:
        """Is this operand thread-varying under the given value set?"""
        if isinstance(op, Reg):
            return op.name in value
        if isinstance(op, Special):
            return op.name in THREAD_VARYING_SPECIALS
        return False

    def guard_tainted(self, inst: Instruction, value: Value) -> bool:
        return inst.guard is not None and inst.guard[0].name in value

    def transfer(self, label, index, inst, value) -> Value:
        defs = inst.defs()
        if not defs:
            return value
        if isinstance(inst, Atom):
            tainted = True  # RMW return values differ per thread
        elif isinstance(inst, Ld):
            tainted = self.op_tainted(inst.base, value)
        else:
            tainted = any(self.op_tainted(op, value) for op in inst.uses())
        if self.guard_tainted(inst, value):
            tainted = True
        names = frozenset(r.name for r in defs)
        if tainted:
            return value | names
        if inst.guard is not None:
            return value  # may not execute: old (possibly tainted) survives
        return value - names


def solve_thread_taint(cfg: CFG) -> Solver:
    return Solver(cfg, ThreadTaint())


class SymbolTaint(Analysis):
    """Forward may-analysis: registers holding an address derived from
    one of the given buffer symbols (``mov r, sym`` then arithmetic).
    Loads do not propagate (a value read *from* the buffer is data, not
    an address into it)."""

    direction = Direction.FORWARD

    def __init__(self, symbols: Iterable[str]):
        self.symbols = frozenset(symbols)

    def meet(self, a: Value, b: Value) -> Value:
        return a | b

    def _op_tainted(self, op, value: Value) -> bool:
        if isinstance(op, Reg):
            return op.name in value
        if isinstance(op, SymRef):
            return op.name in self.symbols
        return False

    def transfer(self, label, index, inst, value) -> Value:
        defs = inst.defs()
        if not defs:
            return value
        if isinstance(inst, (Ld, Atom)):
            tainted = False
        else:
            tainted = any(self._op_tainted(op, value) for op in inst.uses())
        names = frozenset(r.name for r in defs)
        if tainted:
            return value | names
        if inst.guard is not None:
            return value
        return value - names


def solve_symbol_taint(cfg: CFG, symbols: Iterable[str]) -> Solver:
    return Solver(cfg, SymbolTaint(symbols))
