"""Linear-scan register allocation over the PTX-subset IR.

Live intervals are computed from block-boundary liveness, so registers live
across loop back edges get intervals covering the whole loop — the standard
sound over-approximation for non-SSA linear scan.

Spilling inserts ``ld.local`` / ``st.local`` around each use/def of the
spilled register (GPU "local" memory is per-thread, exactly how NVCC spills).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.ir.instructions import Instruction, Ld, St
from repro.ir.module import Kernel
from repro.ir.types import DType, MemSpace, Reg


@dataclass
class Interval:
    reg: Reg
    start: int
    end: int

    def overlaps(self, other: "Interval") -> bool:
        return self.start <= other.end and other.start <= self.end


@dataclass
class AllocationResult:
    """Outcome of allocation.

    ``mapping`` maps original register names to physical names; ``num_regs``
    is the number of physical registers used (the occupancy input);
    ``spilled`` lists registers that did not fit in the budget;
    ``local_bytes`` is the per-thread local-memory spill footprint.
    """

    mapping: Dict[str, str]
    num_regs: int
    spilled: List[str] = field(default_factory=list)
    local_bytes: int = 0


def _live_intervals(kernel: Kernel) -> Tuple[List[Interval], Dict[str, int]]:
    """Compute a sound interval per register over a linearized layout."""
    cfg = CFG(kernel)
    liveness = Liveness(cfg)

    position: Dict[Tuple[str, int], int] = {}
    block_span: Dict[str, Tuple[int, int]] = {}
    pos = 0
    for blk in kernel.blocks:
        start = pos
        for i, _ in enumerate(blk.instructions):
            position[(blk.label, i)] = pos
            pos += 1
        block_span[blk.label] = (start, max(start, pos - 1))

    starts: Dict[Reg, int] = {}
    ends: Dict[Reg, int] = {}

    def touch(reg: Reg, p: int) -> None:
        starts[reg] = min(starts.get(reg, p), p)
        ends[reg] = max(ends.get(reg, p), p)

    for blk in kernel.blocks:
        span_start, span_end = block_span[blk.label]
        for reg in liveness.live_in[blk.label]:
            touch(reg, span_start)
        for reg in liveness.live_out[blk.label]:
            touch(reg, span_end)
        for i, inst in enumerate(blk.instructions):
            p = position[(blk.label, i)]
            for reg in inst.defs():
                touch(reg, p)
            for reg in inst.reg_uses():
                touch(reg, p)

    intervals = [
        Interval(reg, starts[reg], ends[reg]) for reg in starts
    ]
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals, dict(
        (label, block_span[label][0]) for label in block_span
    )


def allocate(
    kernel: Kernel,
    budget: int = 63,
    rewrite: bool = True,
    phys_prefix: str = "%r",
) -> AllocationResult:
    """Linear-scan allocate ``kernel``'s registers into ``budget`` physical
    registers, spilling the rest to local memory.

    With ``rewrite=True`` the kernel is renamed in place to physical names
    and spill code is inserted.  With ``rewrite=False`` only the accounting
    is produced (used to evaluate the register demand of a transformed
    kernel without touching it).
    """
    if budget < 2:
        raise ValueError("budget must leave room for spill temporaries")
    intervals, _ = _live_intervals(kernel)

    mapping: Dict[str, str] = {}
    spilled: List[str] = []
    active: List[Tuple[int, int]] = []  # (end, phys index), sorted by end
    free: List[int] = list(range(budget))
    used_phys: Set[int] = set()
    by_reg: Dict[str, Interval] = {iv.reg.name: iv for iv in intervals}

    for iv in intervals:
        # Expire intervals that ended before this one starts.
        active = [a for a in active if a[0] >= iv.start]
        in_use = {idx for _, idx in active}
        avail = [i for i in free if i not in in_use]
        if avail:
            phys = min(avail)
            mapping[iv.reg.name] = f"{phys_prefix}{phys}"
            used_phys.add(phys)
            active.append((iv.end, phys))
            active.sort()
        else:
            # Spill the active interval with the furthest end if it is
            # further than ours; otherwise spill the new interval.
            furthest = max(active, key=lambda a: a[0])
            if furthest[0] > iv.end:
                victim_phys = furthest[1]
                victim_name = None
                for name, assigned in mapping.items():
                    if (
                        assigned == f"{phys_prefix}{victim_phys}"
                        and by_reg[name].overlaps(iv)
                        and by_reg[name].end == furthest[0]
                    ):
                        victim_name = name
                        break
                if victim_name is None:
                    spilled.append(iv.reg.name)
                    continue
                spilled.append(victim_name)
                del mapping[victim_name]
                active.remove(furthest)
                mapping[iv.reg.name] = f"{phys_prefix}{victim_phys}"
                active.append((iv.end, victim_phys))
                active.sort()
            else:
                spilled.append(iv.reg.name)

    result = AllocationResult(
        mapping=mapping,
        num_regs=len(used_phys),
        spilled=spilled,
        local_bytes=4 * len(spilled),
    )
    if rewrite:
        _rewrite(kernel, result)
    return result


def _rewrite(kernel: Kernel, result: AllocationResult) -> None:
    """Apply the allocation: rename registers, insert spill code."""
    slot_of: Dict[str, int] = {
        name: 4 * i for i, name in enumerate(result.spilled)
    }
    reg_objects: Dict[str, Reg] = {
        r.name: r for r in kernel.all_registers()
    }
    rename: Dict[Reg, Reg] = {
        reg_objects[name]: Reg(phys, reg_objects[name].dtype)
        for name, phys in result.mapping.items()
        if name in reg_objects
    }

    # Spill temporaries share two reserved physical names.
    spill_tmp = Reg(f"%spill0", DType.U32)
    for blk in kernel.blocks:
        new_insts: List[Instruction] = []
        for inst in blk.instructions:
            pre: List[Instruction] = []
            post: List[Instruction] = []
            use_map: Dict[Reg, Reg] = {}
            def_map: Dict[Reg, Reg] = {}
            for reg in inst.reg_uses():
                if reg.name in slot_of:
                    tmp = Reg(f"%spill_u_{reg.name.lstrip('%')}", reg.dtype)
                    pre.append(
                        Ld(MemSpace.LOCAL, DType.U32, tmp, spill_tmp_base(),
                           slot_of[reg.name])
                    )
                    use_map[reg] = tmp
            for reg in inst.defs():
                if reg.name in slot_of:
                    tmp = Reg(f"%spill_d_{reg.name.lstrip('%')}", reg.dtype)
                    post.append(
                        St(MemSpace.LOCAL, DType.U32, spill_tmp_base(), tmp,
                           slot_of[reg.name])
                    )
                    def_map[reg] = tmp
            if use_map:
                inst.replace_uses(use_map)
            if def_map:
                inst.replace_defs(def_map)
            inst.replace_uses(rename)
            inst.replace_defs(rename)
            new_insts.extend(pre)
            new_insts.append(inst)
            new_insts.extend(post)
        blk.instructions = new_insts
    _ = spill_tmp  # reserved name documented above


def spill_tmp_base() -> "Imm":
    """Base address of the per-thread local spill area (address 0 of the
    thread-private local space)."""
    from repro.ir.types import Imm

    return Imm(0, DType.U32)


def count_registers(kernel: Kernel, budget: int = 256) -> int:
    """Physical register demand of a kernel (no rewriting, generous budget
    so nothing spills — mirrors how occupancy tables consume 'registers
    per thread')."""
    return allocate(kernel, budget=budget, rewrite=False).num_regs
