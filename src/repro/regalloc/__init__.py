"""Register allocation on PTX (CRAT stand-in).

The paper performs register allocation directly on PTX code (as the CRAT
tool does) so that Penny's transformations see physical register names and
so that register pressure — including the pressure added by Penny's
renaming-based overwrite prevention — translates into occupancy effects.

:func:`allocate` implements linear-scan allocation with spilling to local
memory; :func:`count_registers` reruns the allocator in counting mode to
obtain the physical register demand of a transformed kernel (the quantity
the occupancy calculator consumes).
"""

from repro.regalloc.allocator import (
    AllocationResult,
    allocate,
    count_registers,
)

__all__ = ["AllocationResult", "allocate", "count_registers"]
