"""Backward liveness analysis with per-instruction-point queries.

Penny needs liveness at two granularities: live-in registers of each region
boundary (boundaries are normalized to block entries) and last-update-point
discovery, which walks definitions against per-point live sets.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.cfg import CFG
from repro.ir.types import Reg


class Liveness:
    """Register liveness per block entry/exit and per instruction point."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.live_in: Dict[str, Set[Reg]] = {}
        self.live_out: Dict[str, Set[Reg]] = {}
        self._use: Dict[str, Set[Reg]] = {}
        self._def: Dict[str, Set[Reg]] = {}

        for blk in cfg.blocks:
            use: Set[Reg] = set()
            defs: Set[Reg] = set()
            for inst in blk.instructions:
                for r in inst.reg_uses():
                    if r not in defs:
                        use.add(r)
                for r in inst.defs():
                    # A guarded def may not execute; conservatively the old
                    # value can flow through, so do not treat it as a kill.
                    if inst.guard is None:
                        defs.add(r)
            self._use[blk.label] = use
            self._def[blk.label] = defs
            self.live_in[blk.label] = set()
            self.live_out[blk.label] = set()

        changed = True
        while changed:
            changed = False
            for blk in reversed(cfg.blocks):
                label = blk.label
                out: Set[Reg] = set()
                for succ in cfg.successors(label):
                    out |= self.live_in[succ]
                new_in = self._use[label] | (out - self._def[label])
                if out != self.live_out[label] or new_in != self.live_in[label]:
                    self.live_out[label] = out
                    self.live_in[label] = new_in
                    changed = True

        self._points: Dict[str, List[Set[Reg]]] = {}

    def live_points(self, label: str) -> List[Set[Reg]]:
        """``points[i]`` = registers live immediately *before* instruction
        ``i`` of the block; ``points[len]`` = live at block exit."""
        if label in self._points:
            return self._points[label]
        blk = self.cfg.block(label)
        n = len(blk.instructions)
        points: List[Set[Reg]] = [set() for _ in range(n + 1)]
        points[n] = set(self.live_out[label])
        for i in range(n - 1, -1, -1):
            inst = blk.instructions[i]
            live = set(points[i + 1])
            if inst.guard is None:
                live -= set(inst.defs())
            live |= set(inst.reg_uses())
            points[i] = live
        self._points[label] = points
        return points

    def live_before(self, label: str, index: int) -> Set[Reg]:
        return self.live_points(label)[index]

    def live_after(self, label: str, index: int) -> Set[Reg]:
        return self.live_points(label)[index + 1]
