"""Classic compiler analyses over the PTX-subset IR.

Everything Penny's passes need: control-flow graph, dominators, natural
loops with nesting depth, per-point liveness, reaching definitions /
def-use chains, a field-insensitive alias analysis for GPU memory spaces,
and memory anti-dependence detection (the input to region formation).
"""

from repro.analysis.cfg import CFG
from repro.analysis.dominators import Dominators
from repro.analysis.loops import Loop, LoopInfo
from repro.analysis.liveness import Liveness
from repro.analysis.reachingdefs import DefSite, ReachingDefs
from repro.analysis.alias import AddressExpr, AliasAnalysis, AliasResult
from repro.analysis.antidep import AntiDependence, find_memory_antideps

__all__ = [
    "CFG",
    "Dominators",
    "Loop",
    "LoopInfo",
    "Liveness",
    "DefSite",
    "ReachingDefs",
    "AddressExpr",
    "AliasAnalysis",
    "AliasResult",
    "AntiDependence",
    "find_memory_antideps",
]
