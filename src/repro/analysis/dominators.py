"""Iterative dominator computation (Cooper-Harvey-Kennedy style)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.cfg import CFG


class Dominators:
    """Immediate-dominator tree for a CFG.

    Unreachable blocks have no immediate dominator and dominate nothing.
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        rpo = [label for label in cfg.reverse_postorder()]
        reachable = cfg.reachable()
        rpo = [label for label in rpo if label in reachable]
        order: Dict[str, int] = {label: i for i, label in enumerate(rpo)}
        idom: Dict[str, Optional[str]] = {label: None for label in rpo}
        idom[cfg.entry] = cfg.entry

        def intersect(a: str, b: str) -> str:
            while a != b:
                while order[a] > order[b]:
                    a = idom[a]  # type: ignore[assignment]
                while order[b] > order[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == cfg.entry:
                    continue
                preds = [
                    p
                    for p in cfg.predecessors(label)
                    if p in order and idom[p] is not None
                ]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = intersect(new_idom, p)
                if idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True

        self.idom: Dict[str, Optional[str]] = idom
        self.idom[cfg.entry] = None  # conventional: entry has no idom
        self._order = order

    def dominates(self, a: str, b: str) -> bool:
        """Does block ``a`` dominate block ``b``?  (Reflexive.)"""
        if a == b:
            return True
        runner: Optional[str] = self.idom.get(b)
        while runner is not None:
            if runner == a:
                return True
            runner = self.idom.get(runner)
        return False

    def dominators_of(self, label: str) -> List[str]:
        """All dominators of ``label``, innermost-out (label itself first)."""
        result = [label]
        runner = self.idom.get(label)
        while runner is not None:
            result.append(runner)
            runner = self.idom.get(runner)
        return result
