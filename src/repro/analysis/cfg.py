"""Control-flow graph over a kernel's basic blocks."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.instructions import Bra, Ret
from repro.ir.module import BasicBlock, Kernel


class CFG:
    """Successor / predecessor maps and traversal orders for a kernel.

    The CFG is a snapshot: rebuild it after structural mutation (block
    splitting, inserted blocks).
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.blocks: List[BasicBlock] = list(kernel.blocks)
        self._index: Dict[str, int] = {
            blk.label: i for i, blk in enumerate(self.blocks)
        }
        self.succs: Dict[str, List[str]] = {}
        self.preds: Dict[str, List[str]] = {b.label: [] for b in self.blocks}
        for i, blk in enumerate(self.blocks):
            succs: List[str] = []
            term: Optional[object] = (
                blk.instructions[-1] if blk.instructions else None
            )
            for inst in blk.instructions:
                if isinstance(inst, Bra):
                    succs.append(inst.target)
            falls = not (
                isinstance(term, (Bra, Ret)) and term.guard is None
            )
            if falls and i + 1 < len(self.blocks):
                succs.append(self.blocks[i + 1].label)
            # Deduplicate while preserving order (branch to fallthrough).
            seen: Set[str] = set()
            uniq = [s for s in succs if not (s in seen or seen.add(s))]
            self.succs[blk.label] = uniq
            for s in uniq:
                self.preds[s].append(blk.label)

    @property
    def entry(self) -> str:
        return self.blocks[0].label

    def block(self, label: str) -> BasicBlock:
        return self.blocks[self._index[label]]

    def successors(self, label: str) -> List[str]:
        return self.succs[label]

    def predecessors(self, label: str) -> List[str]:
        return self.preds[label]

    def reverse_postorder(self) -> List[str]:
        """RPO from the entry; unreachable blocks are appended at the end in
        layout order so analyses still cover them."""
        visited: Set[str] = set()
        postorder: List[str] = []

        def dfs(label: str) -> None:
            stack = [(label, iter(self.succs[label]))]
            visited.add(label)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in visited:
                        visited.add(succ)
                        stack.append((succ, iter(self.succs[succ])))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(node)
                    stack.pop()

        dfs(self.entry)
        order = list(reversed(postorder))
        for blk in self.blocks:
            if blk.label not in visited:
                order.append(blk.label)
        return order

    def reachable(self) -> Set[str]:
        """Labels reachable from the entry block."""
        seen: Set[str] = set()
        stack = [self.entry]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.succs[label])
        return seen

    def paths_exist(self, src: str, dst: str, avoiding: Set[str]) -> bool:
        """Is there a path ``src -> ... -> dst`` whose *intermediate* nodes
        avoid the given label set?  (src/dst themselves may be in it.)"""
        if src == dst:
            return True
        seen: Set[str] = {src}
        stack = [src]
        while stack:
            label = stack.pop()
            for succ in self.succs[label]:
                if succ == dst:
                    return True
                if succ not in seen and succ not in avoiding:
                    seen.add(succ)
                    stack.append(succ)
        return False
