"""Register-vulnerability and address-criticality analyses.

Both run on the generic lint worklist :class:`repro.lint.dataflow.Solver`
and drive the selective-protection policies in :mod:`repro.policy`:

- :class:`AddressCriticality` (PRESAGE-style) is a backward may-analysis
  of the full chains feeding memory address operands, branch predicates
  and barrier conditions.  A fault on any register *outside* the
  criticality set can corrupt stored data but never where it is stored,
  which control path executes, or whether threads synchronize — the
  structural-correctness guarantee address-generation-only protection
  buys.
- :func:`register_vulnerability` is an ACE-style exposure model: a
  register accrues vulnerability for every instruction it sits live
  (and unconsumed) across, weighted by the instruction's issue/latency
  class from the :class:`repro.gpusim.config.GpuConfig` timing model and
  by loop depth.  The ranking feeds ``top-k-vulnerable`` policies.

The lattices are frozensets of register names, like every shipped lint
analysis; results are deterministic (sorted tie-breaks everywhere) so
policies derived from them are hash-seed invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.loops import LoopInfo
from repro.ir.instructions import Atom, Ld, St
from repro.ir.types import Reg
from repro.lint.dataflow import Analysis, Direction, Solver, Value


class AddressCriticality(Analysis):
    """Backward may-analysis: registers whose value can reach a memory
    address operand, a guard predicate, or a barrier/branch condition.

    Seeds: the base register of every ``Ld``/``St``/``Atom`` and the
    predicate of every guarded instruction (guards subsume branch
    predicates and predicated barriers).  Propagation: when an
    instruction defines a critical register, all its register operands
    become critical — except through ``Ld``/``Atom``, whose result comes
    from memory (the address feeding it is already seeded; chains through
    memory are out of scope, as in PRESAGE).
    """

    direction = Direction.BACKWARD

    def meet(self, a: Value, b: Value) -> Value:
        return a | b

    def transfer(self, label, index, inst, value: Value) -> Value:
        defs = frozenset(r.name for r in inst.defs())
        feeds = bool(defs & value)
        if feeds and inst.guard is None:
            value = value - defs
        seeds = set()
        if isinstance(inst, (Ld, St, Atom)) and isinstance(inst.base, Reg):
            seeds.add(inst.base.name)
        if inst.guard is not None:
            seeds.add(inst.guard[0].name)
        if feeds and not isinstance(inst, (Ld, Atom)):
            seeds.update(r.name for r in inst.reg_uses())
        if seeds:
            value = value | frozenset(seeds)
        return value


def solve_address_criticality(cfg: CFG) -> Solver:
    return Solver(cfg, AddressCriticality())


def address_critical_registers(cfg: CFG) -> FrozenSet[str]:
    """All registers critical at *any* program point.

    The per-point backward replay matters: a register defined and
    consumed as an address within one block is critical between those
    points but appears in no block-boundary value.
    """
    solver = solve_address_criticality(cfg)
    an = solver.analysis
    out: set = set()
    for blk in cfg.blocks:
        value = solver.block_out[blk.label]
        out |= value
        insts = blk.instructions
        for i in range(len(insts) - 1, -1, -1):
            value = an.transfer(blk.label, i, insts[i], value)
            out |= value
    return frozenset(out)


class LiveRegisters(Analysis):
    """Classic backward liveness over register names (guard-aware: a
    predicated definition may not execute, so it kills nothing)."""

    direction = Direction.BACKWARD

    def meet(self, a: Value, b: Value) -> Value:
        return a | b

    def transfer(self, label, index, inst, value: Value) -> Value:
        if inst.guard is None:
            value = value - frozenset(r.name for r in inst.defs())
        return value | frozenset(r.name for r in inst.reg_uses())


@dataclass
class VulnerabilityReport:
    """Per-register exposure scores with deterministic ranking."""

    scores: Dict[str, float]

    def ranked(self) -> List[Tuple[str, float]]:
        """Highest exposure first; name-sorted among ties."""
        return sorted(self.scores.items(), key=lambda kv: (-kv[1], kv[0]))

    def top_k(self, k: int) -> FrozenSet[str]:
        if k <= 0:
            return frozenset()
        return frozenset(name for name, _ in self.ranked()[:k])

    def top_fraction(self, fraction: float) -> FrozenSet[str]:
        n = len(self.scores)
        if n == 0 or fraction <= 0:
            return frozenset()
        return self.top_k(int(math.ceil(n * min(fraction, 1.0))))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "vulnerability_report",
            "registers": len(self.scores),
            "scores": {k: self.scores[k] for k in sorted(self.scores)},
            "ranked": [name for name, _ in self.ranked()],
        }


def _class_weights(gpu) -> Dict[str, float]:
    """Exposure weight per instruction class: roughly the cycles the
    machine spends at that instruction (issue cost, or the latency the
    pipeline is exposed waiting on memory/barriers)."""
    from repro.gpusim.executor import (
        CLASS_ALU,
        CLASS_ATOM,
        CLASS_BAR,
        CLASS_LD_GLOBAL,
        CLASS_LD_OTHER,
        CLASS_LD_SHARED,
        CLASS_SFU,
        CLASS_ST_GLOBAL,
        CLASS_ST_OTHER,
        CLASS_ST_SHARED,
    )

    return {
        CLASS_ALU: float(gpu.issue_alu),
        CLASS_SFU: float(gpu.issue_sfu),
        CLASS_LD_GLOBAL: float(gpu.lat_global),
        CLASS_LD_SHARED: float(gpu.lat_shared),
        CLASS_LD_OTHER: float(gpu.lat_const),
        CLASS_ST_GLOBAL: float(gpu.issue_mem + gpu.lsu_global),
        CLASS_ST_SHARED: float(gpu.issue_mem + gpu.lsu_shared),
        CLASS_ST_OTHER: float(gpu.issue_mem),
        CLASS_BAR: float(gpu.lat_barrier),
        CLASS_ATOM: float(gpu.lat_global),
    }


def register_vulnerability(
    cfg: CFG, gpu=None, loop_base: int = 8
) -> VulnerabilityReport:
    """ACE-style exposure: for every instruction, every register live
    *across* it accrues the instruction's class weight times
    ``loop_base ** loop_depth`` (the same static trip-count heuristic the
    checkpoint cost model uses — pass ``PennyConfig.cost_base`` for
    consistency with placement decisions)."""
    from repro.gpusim.executor import _classify

    if gpu is None:
        from repro.gpusim.config import FERMI_C2050

        gpu = FERMI_C2050
    solver = Solver(cfg, LiveRegisters())
    an = solver.analysis
    loops = LoopInfo(cfg)
    weights = _class_weights(gpu)
    scores: Dict[str, float] = {}
    for blk in cfg.blocks:
        depth_w = float(loop_base) ** loops.depth_of(blk.label)
        insts = blk.instructions
        value = solver.block_out[blk.label]
        for i in range(len(insts) - 1, -1, -1):
            w = weights[_classify(insts[i])] * depth_w
            for name in value:  # live across instruction i
                scores[name] = scores.get(name, 0.0) + w
            value = an.transfer(blk.label, i, insts[i], value)
    return VulnerabilityReport(scores=scores)


__all__ = [
    "AddressCriticality",
    "LiveRegisters",
    "VulnerabilityReport",
    "address_critical_registers",
    "register_vulnerability",
    "solve_address_criticality",
]
