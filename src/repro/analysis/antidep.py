"""Memory anti-dependence detection.

An idempotent region must not overwrite its own memory inputs, so region
formation (§5) needs every *memory anti-dependence*: a load followed (on
some control path) by a store that may write the loaded location.  Each
such pair demands at least one region boundary on every load→store path.

Checkpoint stores that Penny itself inserts never create anti-dependences
(they write dedicated checkpoint storage), so detection runs before
checkpoint insertion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.analysis.cfg import CFG
from repro.ir.instructions import Atom, Ld, St
from repro.ir.types import MemSpace


@dataclass(frozen=True)
class AntiDependence:
    """A (load, store) pair that may touch the same memory location.

    ``load_at``/``store_at`` are (block label, instruction index).  The
    anti-dependence constrains every path from the load to the store —
    including paths around loop back edges, which is why a pair whose store
    precedes its load in layout order is still meaningful.
    """

    load_at: Tuple[str, int]
    store_at: Tuple[str, int]
    result: AliasResult

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"anti-dep {self.load_at[0]}:{self.load_at[1]} -> "
            f"{self.store_at[0]}:{self.store_at[1]} ({self.result.value})"
        )


def find_memory_antideps(
    cfg: CFG, aa: Optional[AliasAnalysis] = None
) -> List[AntiDependence]:
    """All may-anti-dependences in a kernel.

    A pair (load, store) is reported when the store may alias the load and
    the store is reachable from the load (possibly via back edges).  Loads
    from read-only spaces cannot participate (they can never be
    overwritten), which prunes the common param/const accesses.
    """
    aa = aa or AliasAnalysis(cfg)
    loads: List[Tuple[str, int, object]] = []
    stores: List[Tuple[str, int, object]] = []
    for blk in cfg.blocks:
        for i, inst in enumerate(blk.instructions):
            if isinstance(inst, (Ld, Atom)) and inst.is_memory_read:
                if not inst.space.read_only:
                    loads.append((blk.label, i, inst))
            if isinstance(inst, (St, Atom)) and inst.is_memory_write:
                stores.append((blk.label, i, inst))

    deps: List[AntiDependence] = []
    for lbl_l, idx_l, ld in loads:
        addr_l = aa.address_of(lbl_l, idx_l)
        for lbl_s, idx_s, st in stores:
            if lbl_l == lbl_s and idx_s == idx_l:
                continue  # an atomic is not anti-dependent on itself
            addr_s = aa.address_of(lbl_s, idx_s)
            result = aa.alias(addr_l, addr_s)
            if result is AliasResult.NO:
                continue
            if not _store_reachable_from_load(cfg, (lbl_l, idx_l), (lbl_s, idx_s)):
                continue
            deps.append(
                AntiDependence((lbl_l, idx_l), (lbl_s, idx_s), result)
            )
    return deps


def _store_reachable_from_load(
    cfg: CFG, load_at: Tuple[str, int], store_at: Tuple[str, int]
) -> bool:
    """Can execution reach the store after executing the load?"""
    lbl_l, idx_l = load_at
    lbl_s, idx_s = store_at
    if lbl_l == lbl_s and idx_s > idx_l:
        return True
    # Otherwise the store must be reachable through a successor path.
    seen = set()
    stack = list(cfg.successors(lbl_l))
    while stack:
        label = stack.pop()
        if label == lbl_s:
            return True
        if label in seen:
            continue
        seen.add(label)
        stack.extend(cfg.successors(label))
    return False
