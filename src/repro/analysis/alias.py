"""Field-insensitive alias analysis for GPU memory references.

Region formation must find every memory anti-dependence (load before a
possibly-aliasing store), so the compiler needs a may-alias judgement
between two memory references.  We compute a symbolic *address expression*
for each reference by walking def-use chains:

    addr = root + sum(coeff_i * term_i) + const

where ``root`` identifies the buffer (a pointer kernel parameter or a shared
array symbol — distinct roots are assumed not to alias, the usual
``restrict`` discipline of GPU kernels), the symbolic terms are special
registers (``%tid.x``...) or *opaque* values (loop induction variables,
loaded values, control-flow joins), and ``const`` is a byte offset.

Two references may alias unless the analysis can prove they don't:
different spaces, provably different roots, or identical symbolic parts
with different constant offsets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.reachingdefs import DefSite, ReachingDefs
from repro.ir.instructions import Alu, Atom, Ld, St
from repro.ir.types import Imm, MemSpace, Reg, Special, SymRef

_MASK32 = 0xFFFFFFFF


class AliasResult(enum.Enum):
    NO = "no"
    MAY = "may"
    MUST = "must"


@dataclass(frozen=True)
class AddressExpr:
    """Symbolic address: root + linear terms + constant offset."""

    space: MemSpace
    root: Optional[str]  # None = unknown buffer
    terms: FrozenSet[Tuple[str, int]]  # (symbol, coefficient) pairs
    const: int = 0

    @property
    def is_opaque_root(self) -> bool:
        return self.root is None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.root or "?"]
        for sym, coeff in sorted(self.terms):
            parts.append(f"{coeff}*{sym}")
        if self.const:
            parts.append(str(self.const))
        return f"{self.space.value}[{' + '.join(parts)}]"


@dataclass
class _Sym:
    """Mutable accumulator for a symbolic value during expression walking."""

    root: Optional[str] = None
    terms: Dict[str, int] = field(default_factory=dict)
    const: int = 0
    opaque: bool = False

    def freeze(self, space: MemSpace) -> AddressExpr:
        if self.opaque:
            return AddressExpr(space, None, frozenset(), 0)
        terms = frozenset(
            (sym, coeff) for sym, coeff in self.terms.items() if coeff
        )
        return AddressExpr(space, self.root, terms, self.const & _MASK32)


def _opaque(tag: str) -> _Sym:
    return _Sym(terms={tag: 1})


class AliasAnalysis:
    """Address-expression based may-alias analysis for one kernel.

    ``param_noalias`` controls whether two *different* pointer parameters
    are assumed disjoint.  PTX carries no ``restrict`` information, so the
    faithful default is False: loads from one parameter buffer may alias
    stores through another, exactly the conservatism that makes the paper's
    benchmarks grow per-iteration regions (and makes STC's loop-carried
    checkpoints un-prunable).  Setting it True models a source-level
    compiler with restrict-qualified pointers.
    """

    def __init__(
        self,
        cfg: CFG,
        rdefs: Optional[ReachingDefs] = None,
        param_noalias: bool = False,
    ):
        self.cfg = cfg
        self.rdefs = rdefs or ReachingDefs(cfg)
        self.param_noalias = param_noalias
        self._value_cache: Dict[DefSite, _Sym] = {}
        self._pointer_params = {
            p.name for p in cfg.kernel.params if p.is_pointer
        }

    # -- address expressions ---------------------------------------------------

    def address_of(self, label: str, index: int) -> AddressExpr:
        """Address expression of the memory instruction at (label, index)."""
        inst = self.cfg.block(label).instructions[index]
        if not isinstance(inst, (Ld, St, Atom)):
            raise TypeError(f"not a memory instruction: {inst}")
        base = inst.base
        if isinstance(base, SymRef):
            sym = _Sym(root=base.name)
        elif isinstance(base, Imm):
            sym = _Sym(root=f"@abs", const=int(base.value))
        elif isinstance(base, Special):
            sym = _Sym(terms={base.name: 1})
        else:
            sym = self._reg_value(label, index, base, frozenset())
        result = _Sym(
            root=sym.root,
            terms=dict(sym.terms),
            const=sym.const + inst.offset,
            opaque=sym.opaque,
        )
        return result.freeze(inst.space)

    def _reg_value(
        self, label: str, index: int, reg: Reg, visiting: FrozenSet[DefSite]
    ) -> _Sym:
        sites = self.rdefs.reaching_at(label, index, reg)
        if len(sites) != 1:
            # Join of several definitions (or uninitialized): opaque value
            # distinguished by the use point.
            return _opaque(f"join:{label}:{index}:{reg.name}")
        (site,) = sites
        return self._site_value(site, visiting)

    def _site_value(self, site: DefSite, visiting: FrozenSet[DefSite]) -> _Sym:
        if site in self._value_cache:
            return self._value_cache[site]
        if site in visiting:
            # Cyclic dependence: a loop induction variable.  Its value varies
            # per iteration — opaque, unique per def site.
            return _opaque(f"cycle:{site.label}:{site.index}:{site.reg.name}")
        if site.is_entry:
            return _opaque(f"entry:{site.reg.name}")
        result = self._compute_site_value(site, visiting | {site})
        self._value_cache[site] = result
        return result

    def _compute_site_value(
        self, site: DefSite, visiting: FrozenSet[DefSite]
    ) -> _Sym:
        inst = self.cfg.block(site.label).instructions[site.index]
        if inst.guard is not None:
            # A guarded def merges with the fall-through value: opaque.
            return _opaque(f"guarded:{site.label}:{site.index}")
        if isinstance(inst, Ld):
            if inst.space is MemSpace.PARAM and isinstance(inst.base, SymRef):
                # Loading a kernel parameter: the canonical buffer root for
                # pointers, a stable opaque scalar otherwise.
                param = self._param(inst.base.name)
                if param is not None and param.is_pointer:
                    return _Sym(root=inst.base.name)
                return _opaque(f"param:{inst.base.name}")
            return _opaque(f"load:{site.label}:{site.index}")
        if not isinstance(inst, Alu):
            return _opaque(f"def:{site.label}:{site.index}")

        def operand_value(op) -> _Sym:
            if isinstance(op, Imm):
                return _Sym(const=int(op.value))
            if isinstance(op, Special):
                return _Sym(terms={op.name: 1})
            if isinstance(op, SymRef):
                return _Sym(root=op.name)
            return self._reg_value(site.label, site.index, op, visiting)

        op = inst.op
        if op == "mov" or op == "cvt":
            return operand_value(inst.srcs[0])
        if op in ("add", "sub"):
            a = operand_value(inst.srcs[0])
            b = operand_value(inst.srcs[1])
            return self._combine_linear(a, b, -1 if op == "sub" else 1, site)
        if op == "shl" and isinstance(inst.srcs[1], Imm):
            a = operand_value(inst.srcs[0])
            return self._scale(a, 1 << int(inst.srcs[1].value), site)
        if op == "mul" and isinstance(inst.srcs[1], Imm):
            a = operand_value(inst.srcs[0])
            return self._scale(a, int(inst.srcs[1].value), site)
        if op == "mul" and isinstance(inst.srcs[0], Imm):
            a = operand_value(inst.srcs[1])
            return self._scale(a, int(inst.srcs[0].value), site)
        if op == "mad" and isinstance(inst.srcs[1], Imm):
            a = operand_value(inst.srcs[0])
            scaled = self._scale(a, int(inst.srcs[1].value), site)
            c = operand_value(inst.srcs[2])
            return self._combine_linear(scaled, c, 1, site)
        return _opaque(f"alu:{site.label}:{site.index}")

    @staticmethod
    def _combine_linear(a: _Sym, b: _Sym, sign: int, site: DefSite) -> _Sym:
        if a.opaque or b.opaque:
            return _opaque(f"mix:{site.label}:{site.index}")
        if a.root is not None and b.root is not None:
            return _opaque(f"tworoots:{site.label}:{site.index}")
        root = a.root or b.root
        if sign < 0 and b.root is not None:
            # Subtracting a base pointer: not an address anymore.
            return _opaque(f"subroot:{site.label}:{site.index}")
        terms = dict(a.terms)
        for sym, coeff in b.terms.items():
            terms[sym] = terms.get(sym, 0) + sign * coeff
        return _Sym(root=root, terms=terms, const=a.const + sign * b.const)

    @staticmethod
    def _scale(a: _Sym, factor: int, site: DefSite) -> _Sym:
        if a.opaque or a.root is not None:
            return _opaque(f"scale:{site.label}:{site.index}")
        return _Sym(
            terms={sym: coeff * factor for sym, coeff in a.terms.items()},
            const=a.const * factor,
        )

    def _param(self, name: str):
        for p in self.cfg.kernel.params:
            if p.name == name:
                return p
        return None

    # -- alias queries -----------------------------------------------------------

    def alias(self, a: AddressExpr, b: AddressExpr) -> AliasResult:
        """May/must/no-alias judgement between two address expressions.

        The judgement is *intra-thread*: special-register terms denote the
        same value in both expressions.  Inter-thread aliasing is handled by
        Penny treating synchronization as region boundaries.
        """
        if a.space is not b.space:
            return AliasResult.NO
        if a.is_opaque_root or b.is_opaque_root:
            return AliasResult.MAY
        if a.root != b.root:
            both_params = (
                a.root in self._pointer_params
                and b.root in self._pointer_params
            )
            if both_params and not self.param_noalias:
                # Distinct pointer parameters may point anywhere into the
                # same global buffer (no restrict information in PTX).
                return AliasResult.MAY
            return AliasResult.NO
        if a.terms == b.terms:
            if a.const == b.const:
                return AliasResult.MUST
            # Same symbolic index, different static offsets: assuming the
            # 4-byte access granularity of our IR, offsets >= 4 apart can
            # never overlap.
            if abs(a.const - b.const) >= 4:
                return AliasResult.NO
            return AliasResult.MAY
        return AliasResult.MAY

    def may_alias(
        self, label_a: str, index_a: int, label_b: str, index_b: int
    ) -> bool:
        ra = self.address_of(label_a, index_a)
        rb = self.address_of(label_b, index_b)
        return self.alias(ra, rb) is not AliasResult.NO
