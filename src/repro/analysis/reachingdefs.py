"""Reaching definitions and def-use chains.

Penny's PDDG (predicate/data dependence graph, §6.4) is built from def-use
chains: the definitions of a register that reach each of its uses.  Because
the IR is not SSA, a use may be reached by several definitions (one per
control path) — that is exactly when Penny adds *predicate dependences*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.analysis.cfg import CFG
from repro.ir.types import Reg


@dataclass(frozen=True)
class DefSite:
    """A definition site: instruction ``index`` in block ``label`` defining
    ``reg``.  ``ENTRY_INDEX`` marks the synthetic definition at kernel entry
    for registers used before any real definition (uninitialized reads)."""

    label: str
    index: int
    reg: Reg

    ENTRY_INDEX = -1

    @property
    def is_entry(self) -> bool:
        return self.index == DefSite.ENTRY_INDEX


class ReachingDefs:
    """Forward may-analysis of definition sites."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg

        # Collect all def sites per register.
        self.defs_of: Dict[Reg, List[DefSite]] = {}
        gen: Dict[str, Dict[Reg, Set[DefSite]]] = {}
        kill_regs: Dict[str, Set[Reg]] = {}
        for blk in cfg.blocks:
            bgen: Dict[Reg, Set[DefSite]] = {}
            bkill: Set[Reg] = set()
            for i, inst in enumerate(blk.instructions):
                for r in inst.defs():
                    site = DefSite(blk.label, i, r)
                    self.defs_of.setdefault(r, []).append(site)
                    if inst.guard is None:
                        bgen[r] = {site}
                        bkill.add(r)
                    else:
                        bgen.setdefault(r, set()).add(site)
            gen[blk.label] = bgen
            kill_regs[blk.label] = bkill

        # Entry pseudo-defs for registers ever used; filtered during queries.
        self._entry_sites: Dict[Reg, DefSite] = {}

        self.in_sets: Dict[str, Dict[Reg, Set[DefSite]]] = {
            blk.label: {} for blk in cfg.blocks
        }
        self.out_sets: Dict[str, Dict[Reg, Set[DefSite]]] = {
            blk.label: {} for blk in cfg.blocks
        }

        changed = True
        order = cfg.reverse_postorder()
        while changed:
            changed = False
            for label in order:
                in_map: Dict[Reg, Set[DefSite]] = {}
                for pred in cfg.predecessors(label):
                    for reg, sites in self.out_sets[pred].items():
                        in_map.setdefault(reg, set()).update(sites)
                out_map: Dict[Reg, Set[DefSite]] = {
                    reg: (
                        set(sites)
                        if reg not in kill_regs[label]
                        else set()
                    )
                    for reg, sites in in_map.items()
                }
                for reg, sites in gen[label].items():
                    out_map.setdefault(reg, set()).update(sites)
                # Drop empty sets created by kills.
                out_map = {r: s for r, s in out_map.items() if s}
                if in_map != self.in_sets[label] or out_map != self.out_sets[label]:
                    self.in_sets[label] = in_map
                    self.out_sets[label] = out_map
                    changed = True

        self._gen = gen
        self._kill = kill_regs

    def entry_site(self, reg: Reg) -> DefSite:
        if reg not in self._entry_sites:
            self._entry_sites[reg] = DefSite(
                self.cfg.entry, DefSite.ENTRY_INDEX, reg
            )
        return self._entry_sites[reg]

    def reaching_at(self, label: str, index: int, reg: Reg) -> FrozenSet[DefSite]:
        """Definitions of ``reg`` reaching the point just before instruction
        ``index`` of block ``label``.  An empty result means the register is
        read uninitialized on every path; a result containing an entry site
        means it *may* be read uninitialized."""
        blk = self.cfg.block(label)
        sites: Set[DefSite] = set(self.in_sets[label].get(reg, set()))
        may_be_entry = not sites and label == self.cfg.entry
        for i in range(index):
            inst = blk.instructions[i]
            for r in inst.defs():
                if r == reg:
                    if inst.guard is None:
                        sites = {DefSite(label, i, reg)}
                        may_be_entry = False
                    else:
                        sites.add(DefSite(label, i, reg))
        if may_be_entry and not sites:
            return frozenset({self.entry_site(reg)})
        return frozenset(sites)

    def defs_reaching_use(
        self, label: str, index: int
    ) -> Dict[Reg, FrozenSet[DefSite]]:
        """For each register used by instruction ``index`` in ``label``, the
        definitions that reach that use."""
        blk = self.cfg.block(label)
        inst = blk.instructions[index]
        return {
            r: self.reaching_at(label, index, r) for r in set(inst.reg_uses())
        }
