"""Natural-loop detection and nesting depth.

Penny's checkpoint cost model is ``C ** d`` with ``d`` the loop nesting
depth of the checkpoint's location (§6.1), so loop depth per block is the
one analysis the optimizer consults constantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFG
from repro.analysis.dominators import Dominators


@dataclass
class Loop:
    """A natural loop: header plus body block labels (header included)."""

    header: str
    body: Set[str] = field(default_factory=set)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Nesting depth: 1 for outermost loops, +1 per enclosing loop."""
        d = 1
        p = self.parent
        while p is not None:
            d += 1
            p = p.parent
        return d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Loop(header={self.header!r}, blocks={len(self.body)})"


class LoopInfo:
    """All natural loops of a CFG, with per-block nesting depth."""

    def __init__(self, cfg: CFG, dom: Optional[Dominators] = None):
        self.cfg = cfg
        dom = dom or Dominators(cfg)
        reachable = cfg.reachable()

        # Back edges: tail -> header where header dominates tail.
        loops_by_header: Dict[str, Loop] = {}
        for tail in reachable:
            for head in cfg.successors(tail):
                if head in reachable and dom.dominates(head, tail):
                    loop = loops_by_header.setdefault(head, Loop(header=head))
                    loop.body.update(self._natural_loop_body(tail, head))

        self.loops: List[Loop] = list(loops_by_header.values())

        # Nest loops: parent is the smallest strictly-containing loop.
        for loop in self.loops:
            candidates = [
                other
                for other in self.loops
                if other is not loop
                and loop.header in other.body
                and loop.body <= other.body
            ]
            if candidates:
                loop.parent = min(candidates, key=lambda l: len(l.body))
                loop.parent.children.append(loop)

        self._depth: Dict[str, int] = {blk.label: 0 for blk in cfg.blocks}
        for loop in self.loops:
            for label in loop.body:
                self._depth[label] = max(self._depth[label], loop.depth)

    def _natural_loop_body(self, tail: str, header: str) -> Set[str]:
        """Blocks of the natural loop of back edge tail -> header."""
        body = {header, tail}
        stack = [tail]
        while stack:
            label = stack.pop()
            if label == header:
                continue
            for pred in self.cfg.predecessors(label):
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        return body

    def depth_of(self, label: str) -> int:
        """Loop nesting depth of a block (0 = not in any loop)."""
        return self._depth.get(label, 0)

    def innermost_loop(self, label: str) -> Optional[Loop]:
        """The innermost loop containing the block, if any."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if label in loop.body and (
                best is None or loop.depth > best.depth
            ):
                best = loop
        return best

    def headers(self) -> Set[str]:
        return {loop.header for loop in self.loops}
