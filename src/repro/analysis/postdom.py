"""Postdominators and control dependence.

Penny's PDDG contains *predicate dependences*: a value defined on multiple
paths depends on the predicates of the branches its definitions are
control-dependent on (§6.4.1).  Control dependence is computed classically:
block X is control-dependent on branch edge (P → S) when X postdominates S
but does not postdominate P.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFG
from repro.ir.instructions import Bra
from repro.ir.types import Reg


class PostDominators:
    """Immediate postdominator tree, computed on the reversed CFG.

    Kernels may have several exit blocks (every ``ret``); a virtual exit
    node joins them.
    """

    VIRTUAL_EXIT = "<exit>"

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        exits = [
            blk.label
            for blk in cfg.blocks
            if not cfg.successors(blk.label)
        ]
        nodes = [blk.label for blk in cfg.blocks] + [self.VIRTUAL_EXIT]
        rsuccs: Dict[str, List[str]] = {n: [] for n in nodes}  # reversed succs = preds
        for label in (blk.label for blk in cfg.blocks):
            rsuccs[label] = list(cfg.successors(label)) or [self.VIRTUAL_EXIT]

        # Reverse postorder on the reversed graph, from the virtual exit.
        rpreds: Dict[str, List[str]] = {n: [] for n in nodes}
        for n, succs in rsuccs.items():
            for s in succs:
                rpreds[s].append(n)

        visited: Set[str] = set()
        postorder: List[str] = []

        def dfs(start: str) -> None:
            stack = [(start, iter(rpreds[start]))]
            visited.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, iter(rpreds[nxt])))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(node)
                    stack.pop()

        dfs(self.VIRTUAL_EXIT)
        order = {label: i for i, label in enumerate(reversed(postorder))}

        ipdom: Dict[str, Optional[str]] = {n: None for n in nodes}
        ipdom[self.VIRTUAL_EXIT] = self.VIRTUAL_EXIT

        def intersect(a: str, b: str) -> str:
            while a != b:
                while order[a] > order[b]:
                    a = ipdom[a]  # type: ignore[assignment]
                while order[b] > order[a]:
                    b = ipdom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for label in sorted(order, key=order.get):
                if label == self.VIRTUAL_EXIT:
                    continue
                preds = [
                    s
                    for s in rsuccs.get(label, [])
                    if s in order and ipdom[s] is not None
                ]
                if not preds:
                    continue
                new = preds[0]
                for p in preds[1:]:
                    new = intersect(new, p)
                if ipdom[label] != new:
                    ipdom[label] = new
                    changed = True
        ipdom[self.VIRTUAL_EXIT] = None
        self.ipdom = ipdom

    def postdominates(self, a: str, b: str) -> bool:
        """Does ``a`` postdominate ``b``?  (Reflexive.)"""
        if a == b:
            return True
        runner = self.ipdom.get(b)
        while runner is not None:
            if runner == a:
                return True
            runner = self.ipdom.get(runner)
        return False


@dataclass(frozen=True)
class ControlDep:
    """Block is control-dependent on the guarded branch ending ``branch_block``
    with predicate ``pred``; ``sense`` is the predicate value steering onto
    the dependent edge (True = branch taken)."""

    branch_block: str
    pred: Reg
    sense: bool


class ControlDependence:
    """Per-block control dependences (only guarded-branch blocks qualify —
    unconditional control flow creates none)."""

    def __init__(self, cfg: CFG, pdom: Optional[PostDominators] = None):
        self.cfg = cfg
        pdom = pdom or PostDominators(cfg)
        self.deps: Dict[str, Set[ControlDep]] = {
            blk.label: set() for blk in cfg.blocks
        }
        for blk in cfg.blocks:
            guard_branch = None
            for inst in blk.instructions:
                if isinstance(inst, Bra) and inst.guard is not None:
                    guard_branch = inst
            if guard_branch is None:
                continue
            pred_reg, guard_sense = guard_branch.guard
            taken = guard_branch.target
            succs = cfg.successors(blk.label)
            fallthrough = next((s for s in succs if s != taken), None)
            for succ, on_taken in ((taken, True), (fallthrough, False)):
                if succ is None:
                    continue
                # All blocks X postdominating succ but not blk are
                # control-dependent on this edge.
                runner: Optional[str] = succ
                while runner is not None and not pdom.postdominates(
                    runner, blk.label
                ):
                    sense = on_taken if guard_sense else not on_taken
                    self.deps[runner].add(
                        ControlDep(blk.label, pred_reg, sense)
                    )
                    runner = pdom.ipdom.get(runner)
                    if runner == PostDominators.VIRTUAL_EXIT:
                        break

    def of(self, label: str) -> Set[ControlDep]:
        return self.deps.get(label, set())
