"""Soft-error fault injection.

A :class:`FaultPlan` schedules bit flips at dynamic points: after thread
``(ctaid, tid)`` executes its ``n``-th instruction, ``bits`` of register
``reg``'s codeword are flipped.  :class:`FaultCampaign` runs a golden
execution, then many injected executions, classifying each outcome:

- ``MASKED``    — corrupted register never read (or overwritten first);
  output matches golden.
- ``RECOVERED`` — parity fired, recovery re-executed, output matches.
- ``SDC``       — output differs from golden (silent data corruption —
  possible only when the flipped bits exceed the code's detection
  guarantee, e.g. 2 flips under single parity).
- ``DUE``       — detected but unrecoverable (no recovery runtime, or
  recovery diverged).

The campaign validates the paper's Appendix A empirically: with parity
detection + Penny recovery, single-bit faults never produce SDC and never
need in-region detection.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.gpusim.executor import (
    Executor,
    Launch,
    SimulationError,
    ThreadContext,
    UnrecoverableError,
)
from repro.gpusim.memory import MemoryError32, MemoryImage


@dataclass
class FaultPlan:
    """One scheduled injection."""

    ctaid: int
    tid: int
    after_instructions: int
    reg_name: Optional[str] = None  # None = random live register
    bits: Tuple[int, ...] = (0,)
    rng_seed: int = 0

    injected: bool = field(default=False, compare=False)
    hit_register: Optional[str] = field(default=None, compare=False)

    def after_instruction(self, t: ThreadContext) -> None:
        """Executor hook: called after each instruction of each thread."""
        if self.injected:
            return
        if t.ctaid != self.ctaid or t.tid != self.tid:
            return
        if t.executed < self.after_instructions:
            return
        reg = self.reg_name
        if reg is None:
            regs = sorted(t.rf.registers())
            if not regs:
                return
            reg = random.Random(self.rng_seed).choice(regs)
        if t.rf.flip_bits(reg, self.bits):
            self.injected = True
            self.hit_register = reg


@dataclass
class RateFaultPlan:
    """Continuous fault pressure: every thread suffers a single-bit flip on
    a random live register roughly every ``interval`` dynamic instructions.

    Used to quantify the recovery procedure's cost as a function of fault
    rate (§3.1's Amdahl argument: at realistic rates — one strike per *day*
    — recovery time is invisible; this plan lets the simulator dial the
    rate up until it is not)."""

    interval: int
    seed: int = 0
    bit_range: int = 33

    injections: int = field(default=0, compare=False)

    def __post_init__(self):
        if self.interval < 1:
            raise ValueError("interval must be >= 1")
        self._rng = random.Random(self.seed)
        self._next: Dict[Tuple[int, int], int] = {}

    @property
    def injected(self) -> bool:
        return self.injections > 0

    def after_instruction(self, t: ThreadContext) -> None:
        key = (t.ctaid, t.tid)
        due = self._next.get(key)
        if due is None:
            due = self._next[key] = self._rng.randint(1, self.interval)
        if t.executed < due:
            return
        self._next[key] = t.executed + self._rng.randint(
            1, 2 * self.interval
        )
        regs = sorted(t.rf.registers())
        if not regs:
            return
        reg = self._rng.choice(regs)
        if t.rf.flip_bits(reg, [self._rng.randrange(self.bit_range)]):
            self.injections += 1


class FaultOutcome(enum.Enum):
    MASKED = "masked"
    RECOVERED = "recovered"
    SDC = "sdc"
    DUE = "due"
    NOT_INJECTED = "not_injected"


@dataclass
class InjectionResult:
    plan: FaultPlan
    outcome: FaultOutcome
    detections: int
    recoveries: int


@dataclass
class CampaignReport:
    results: List[InjectionResult] = field(default_factory=list)

    def count(self, outcome: FaultOutcome) -> int:
        return sum(1 for r in self.results if r.outcome is outcome)

    def summary(self) -> Dict[str, int]:
        return {o.value: self.count(o) for o in FaultOutcome}


class FaultCampaign:
    """Runs golden + injected executions of one prepared workload.

    ``make_memory`` builds a fresh :class:`MemoryImage` per run (inputs must
    be identical across runs); ``output_region`` is the (addr, num_words)
    window of global memory whose contents define program output.
    """

    def __init__(
        self,
        kernel,
        launch: Launch,
        make_memory: Callable[[], MemoryImage],
        output_region: Tuple[int, int],
        rf_code_factory=None,
        max_instructions_per_thread: int = 2_000_000,
    ):
        self.kernel = kernel
        self.launch = launch
        self.make_memory = make_memory
        self.output_region = output_region
        self.rf_code_factory = rf_code_factory
        self.max_instructions = max_instructions_per_thread
        self._golden: Optional[List[int]] = None

    def _executor(self, fault_plan=None) -> Executor:
        kwargs = {
            "max_instructions_per_thread": self.max_instructions,
            "fault_plan": fault_plan,
        }
        if self.rf_code_factory is not None:
            kwargs["rf_code_factory"] = self.rf_code_factory
        return Executor(self.kernel, **kwargs)

    def golden_output(self) -> List[int]:
        if self._golden is None:
            mem = self.make_memory()
            self._executor().run(self.launch, mem)
            addr, count = self.output_region
            self._golden = mem.download(addr, count)
        return self._golden

    def run_one(self, plan: FaultPlan) -> InjectionResult:
        golden = self.golden_output()
        mem = self.make_memory()
        executor = self._executor(fault_plan=plan)
        try:
            result = executor.run(self.launch, mem)
        except (UnrecoverableError, SimulationError, MemoryError32):
            # Recovery failure, runaway execution, or a hardware exception
            # (e.g. an escaped corruption landing in an address register):
            # detected-unrecoverable either way.
            return InjectionResult(plan, FaultOutcome.DUE, -1, -1)
        addr, count = self.output_region
        output = mem.download(addr, count)
        if not plan.injected:
            outcome = FaultOutcome.NOT_INJECTED
        elif output == golden:
            outcome = (
                FaultOutcome.RECOVERED
                if result.recoveries > 0
                else FaultOutcome.MASKED
            )
        else:
            outcome = FaultOutcome.SDC
        return InjectionResult(
            plan, outcome, result.detections, result.recoveries
        )

    def run_random(
        self,
        num_injections: int,
        seed: int = 2020,
        bits_per_fault: int = 1,
        max_dynamic_point: Optional[int] = None,
        pattern: str = "random",
    ) -> CampaignReport:
        """Inject ``num_injections`` random faults (thread, time, register,
        bit positions all randomized).

        ``pattern`` selects how multi-bit faults are shaped: ``"random"``
        scatters the flipped bits across the codeword; ``"burst"`` flips
        ``bits_per_fault`` *adjacent* bits — the multi-bit upset mode from
        a single high-energy particle that motivates the paper's stronger
        detection codings (near-threshold operation increases these 2.6x,
        §2 footnote).
        """
        rng = random.Random(seed)
        report = CampaignReport()
        # Profile the golden run so injection points land within each
        # thread's actual lifetime (threads diverge wildly in length).
        golden_mem = self.make_memory()
        golden_exec = self._executor().run(self.launch, golden_mem)
        lifetimes = {
            key: n
            for key, n in golden_exec.thread_instructions.items()
            if n >= 2
        }
        if not lifetimes:
            raise ValueError("no thread executed enough instructions")
        keys = sorted(lifetimes)
        codeword_bits = 33
        if self.rf_code_factory is not None:
            code = self.rf_code_factory()
            if code is not None:
                codeword_bits = code.n
        if pattern not in ("random", "burst"):
            raise ValueError(f"unknown fault pattern {pattern!r}")
        for i in range(num_injections):
            ctaid, tid = keys[rng.randrange(len(keys))]
            horizon = max_dynamic_point or lifetimes[(ctaid, tid)]
            if pattern == "burst":
                start = rng.randrange(codeword_bits - bits_per_fault + 1)
                bits = tuple(range(start, start + bits_per_fault))
            else:
                bits = tuple(rng.sample(range(codeword_bits), bits_per_fault))
            plan = FaultPlan(
                ctaid=ctaid,
                tid=tid,
                after_instructions=rng.randrange(1, max(2, horizon)),
                reg_name=None,
                bits=bits,
                rng_seed=rng.getrandbits(30),
            )
            report.results.append(self.run_one(plan))
        return report
