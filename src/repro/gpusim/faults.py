"""Soft-error fault injection: plans, outcomes and the DUE taxonomy.

A *fault plan* is the executor's injection hook.  The original surface is
the register file (:class:`FaultPlan`: flip codeword bits of one register
at one dynamic point; :class:`RateFaultPlan`: continuous pressure).  The
campaign engine (:mod:`repro.gpusim.campaign`) widens it:

- :class:`CheckpointFaultPlan` strikes a checkpoint slot in shared/global
  memory under a simulated SECDED correct-or-escalate model (1 bit →
  corrected, 2 bits → poisoned/detected-uncorrectable, ≥3 bits → silent
  corruption),
- :class:`RecoveryFaultPlan` strikes *during* recovery — between restore
  actions or just before a slot load — exercising re-entrant recovery
  under the executor's ``max_recoveries_per_thread`` budget,
- :class:`ComposedFaultPlan` combines plans (e.g. an RF fault that
  triggers recovery plus a checkpoint-slot fault recovery must survive).

Each injected execution is classified:

- ``MASKED``    — corrupted state never observed (dead register, slot
  overwritten, or ECC corrected it); output matches golden.
- ``RECOVERED`` — parity fired, recovery re-executed, output matches.
- ``SDC``       — output differs from golden (silent data corruption —
  possible only when the flipped bits exceed the code's detection
  guarantee, e.g. 2 flips under single parity).
- ``DUE``       — detected but unrecoverable; every DUE additionally
  carries a :class:`DueType` label saying *why* (see below).

The campaign validates the paper's Appendix A empirically: with parity
detection + Penny recovery, single-bit faults never produce SDC and never
need in-region detection.
"""

from __future__ import annotations

import enum
import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.gpusim.executor import (
    Executor,
    Launch,
    SimulationError,
    ThreadContext,
    UnrecoverableError,
    WatchdogTimeout,
)
from repro.gpusim.memory import MemoryError32, MemoryImage


class DueType(enum.Enum):
    """Why a detected error could not be recovered.

    The single lossy ``DUE`` bucket of early campaigns hid six distinct
    failure modes; field studies (NSREC 2021) show they have different
    sources and different fixes, so the engine reports them separately.
    """

    #: detection fired on a kernel with no recovery runtime at all
    NO_RUNTIME = "no_runtime"
    #: recovery re-entered more than ``max_recoveries_per_thread`` times
    BUDGET_EXHAUSTED = "budget_exhausted"
    #: recovery table / storage map / slot lookup came up empty
    MISSING_METADATA = "missing_metadata"
    #: a recovery slice could not be evaluated
    SLICE_FAILURE = "slice_failure"
    #: a memory access faulted (bad address from corrupted state, or an
    #: ECC detected-uncorrectable word)
    MEMORY_EXCEPTION = "memory_exception"
    #: the per-injection instruction-budget watchdog fired (runaway loop,
    #: control-flow escape, barrier livelock)
    WATCHDOG_TIMEOUT = "watchdog_timeout"
    #: the *harness* worker running the injection died repeatedly
    #: (segfault, OOM-kill, wall-clock hang) and the supervised pool
    #: quarantined the index — the sweep-level DUE: the injection's
    #: outcome is unknowable, but the campaign survives and accounts it
    WORKER_CRASH = "worker_crash"


def classify_due(exc: BaseException) -> DueType:
    """Map a simulator exception to its DUE-taxonomy label.

    Every :class:`UnrecoverableError` raise site tags its own cause;
    memory faults and watchdog fires are recognized by type.  A generic
    :class:`SimulationError` (deadlock, control-flow escape off the kernel
    end) is what the harness watchdog exists to catch, so it lands in
    ``WATCHDOG_TIMEOUT``.
    """
    if isinstance(exc, UnrecoverableError):
        try:
            return DueType(exc.cause)
        except ValueError:
            return DueType.SLICE_FAILURE
    if isinstance(exc, WatchdogTimeout):
        return DueType.WATCHDOG_TIMEOUT
    if isinstance(exc, MemoryError32):
        return DueType.MEMORY_EXCEPTION
    if isinstance(exc, SimulationError):
        return DueType.WATCHDOG_TIMEOUT
    raise TypeError(f"cannot classify {exc!r} as a DUE")


def _thread_stream_seed(seed: int, ctaid: int, tid: int) -> int:
    """A per-thread RNG stream seed, stable across platforms and engines.

    Deriving one independent stream per thread (instead of consuming a
    shared RNG in hook-call order) is what makes rate-style plans
    backend-invariant: the scalar and vector engines interleave threads
    differently, but each thread's *own* hook sequence — and therefore
    its draws — is identical under both.
    """
    digest = hashlib.sha256(
        f"fault-stream:{seed}:{ctaid}:{tid}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class FaultPlan:
    """One scheduled register-file injection.

    ``HOOK_API = 2`` declares the widened executor-hook signature
    ``after_instruction(thread, env)`` (see
    :func:`repro.gpusim.executor._plan_takes_env`); plans without the
    attribute are probed by signature for backward compatibility.
    """

    ctaid: int
    tid: int
    after_instructions: int
    reg_name: Optional[str] = None  # None = random live register
    bits: Tuple[int, ...] = (0,)
    rng_seed: int = 0

    injected: bool = field(default=False, compare=False)
    hit_register: Optional[str] = field(default=None, compare=False)

    HOOK_API = 2

    def hook_threads(self) -> Optional[List[Tuple[int, int]]]:
        """The (ctaid, tid) pairs whose hooks can have any effect, or
        ``None`` for "every thread".  Lets the lane-parallel engine skip
        the per-lane hook loop for lanes a targeted plan ignores."""
        return [(self.ctaid, self.tid)]

    def after_instruction(self, t: ThreadContext, env=None) -> None:
        """Executor hook: called after each instruction of each thread."""
        if self.injected:
            return
        if t.ctaid != self.ctaid or t.tid != self.tid:
            return
        if t.executed < self.after_instructions:
            return
        reg = self.reg_name
        if reg is None:
            reg = t.rf.random_register(random.Random(self.rng_seed))
            if reg is None:
                return
        if t.rf.flip_bits(reg, self.bits):
            self.injected = True
            self.hit_register = reg


@dataclass
class RateFaultPlan:
    """Continuous fault pressure: every thread suffers a single-bit flip on
    a random live register roughly every ``interval`` dynamic instructions.

    Used to quantify the recovery procedure's cost as a function of fault
    rate (§3.1's Amdahl argument: at realistic rates — one strike per *day*
    — recovery time is invisible; this plan lets the simulator dial the
    rate up until it is not).

    Each thread draws from its own RNG stream (derived from ``seed`` and
    the thread's coordinates via :func:`_thread_stream_seed`), so the
    injection schedule depends only on per-thread execution — not on how
    an engine interleaves threads — and is identical under the scalar and
    vector backends."""

    interval: int
    seed: int = 0
    bit_range: int = 33

    injections: int = field(default=0, compare=False)

    HOOK_API = 2

    def __post_init__(self):
        if self.interval < 1:
            raise ValueError("interval must be >= 1")
        self.reset()

    def reset(self) -> None:
        """Re-arm the plan for a fresh run.  The executor calls this at
        every ``run()`` start, so reusing one plan object across runs
        cannot leak the previous run's schedule (``_streams``) or its
        ``injections`` count into the next campaign."""
        #: (ctaid, tid) -> [rng, next-due executed count]
        self._streams: Dict[Tuple[int, int], List] = {}
        self.injections = 0

    @property
    def injected(self) -> bool:
        return self.injections > 0

    def after_instruction(self, t: ThreadContext, env=None) -> None:
        key = (t.ctaid, t.tid)
        stream = self._streams.get(key)
        if stream is None:
            rng = random.Random(
                _thread_stream_seed(self.seed, t.ctaid, t.tid)
            )
            stream = self._streams[key] = [rng, rng.randint(1, self.interval)]
        rng, due = stream
        if t.executed < due:
            return
        stream[1] = t.executed + rng.randint(1, 2 * self.interval)
        reg = t.rf.random_register(rng)
        if reg is None:
            return
        if t.rf.flip_bits(reg, [rng.randrange(self.bit_range)]):
            self.injections += 1


#: SECDED(39,32) codeword width used for the memory-side ECC model
_ECC_CODEWORD_BITS = 39


@dataclass
class CheckpointFaultPlan:
    """Strike a checkpoint slot in shared/global memory at a dynamic point.

    The paper assumes checkpoint storage is ECC-protected and therefore
    fault-free; this plan models that ECC honestly instead.  ``num_bits``
    upset bits are drawn over the slot word's SECDED(39,32) codeword:

    - 1 bit  → the code corrects it; the program observes nothing
      (``effect == "corrected"``),
    - 2 bits → detected-uncorrectable; the word is poisoned and the next
      load (a recovery restore) raises ``EccUncorrectableError``
      (``effect == "poisoned"``),
    - ≥3 bits → the code can miscorrect; data bits among the upset
      positions silently flip (``effect == "corrupted"``) — or the word is
      poisoned when only check bits were hit.

    The slot struck belongs to the target thread itself (the thread whose
    recovery would read it), chosen deterministically from ``rng_seed``.
    """

    ctaid: int
    tid: int
    after_instructions: int
    num_bits: int = 1
    rng_seed: int = 0
    storage: Optional[object] = field(default=None, compare=False, repr=False)

    injected: bool = field(default=False, compare=False)
    effect: Optional[str] = field(default=None, compare=False)
    hit_slot: Optional[str] = field(default=None, compare=False)

    HOOK_API = 2

    def hook_threads(self) -> Optional[List[Tuple[int, int]]]:
        return [(self.ctaid, self.tid)]

    def after_instruction(self, t: ThreadContext, env=None) -> None:
        if self.injected or env is None:
            return
        if t.ctaid != self.ctaid or t.tid != self.tid:
            return
        if t.executed < self.after_instructions:
            return
        storage = self.storage
        if storage is None or not getattr(storage, "slots", None):
            # Nothing to strike (kernel keeps no checkpoints); mark the
            # plan spent so it does not re-fire every instruction.
            self.injected = False
            self.effect = "no_slots"
            self.after_instructions = float("inf")  # type: ignore[assignment]
            return
        from repro.gpusim.recovery import slot_location

        rng = random.Random(self.rng_seed)
        keys = sorted(storage.slots)
        reg_name, color = keys[rng.randrange(len(keys))]
        slot = storage.slots[(reg_name, color)]
        try:
            store, addr = slot_location(storage, slot, t, env)
        except KeyError:
            # No shared checkpoint area in this launch.
            self.effect = "no_slots"
            self.after_instructions = float("inf")  # type: ignore[assignment]
            return
        positions = rng.sample(range(_ECC_CODEWORD_BITS), self.num_bits)
        if len(positions) == 1:
            store.ecc_correct(addr)
            self.effect = "corrected"
        elif len(positions) == 2:
            store.poison(addr)
            self.effect = "poisoned"
        else:
            data_bits = [p for p in positions if p < 32]
            if data_bits:
                mask = 0
                for p in data_bits:
                    mask |= 1 << p
                store.corrupt(addr, mask)
                self.effect = "corrupted"
            else:
                store.poison(addr)
                self.effect = "poisoned"
        self.injected = True
        self.hit_slot = (
            f"{reg_name}/c{color}@{slot.kind.value}[{slot.index}]"
        )


@dataclass
class RecoveryFaultPlan:
    """A fault that strikes *while recovery itself is running*.

    ``primary`` is the register-file fault that triggers recovery in the
    first place.  Once the target thread's recovery executes its
    ``strike_restore``-th restore action, the secondary strike fires:

    - ``mode == "register"``: the *just-restored* register is re-corrupted
      immediately after its restore write — the nastiest re-entrancy case,
      since recovery completed "successfully" yet left poisoned state that
      the next read must re-detect and re-recover.
    - ``mode == "slot"``: the checkpoint slot the upcoming restore action
      is about to load is poisoned first (mid-slice / mid-restore ECC
      escalation), so the load itself raises.

    ``repeat=True`` re-strikes on *every* recovery, which must drive the
    thread into the recovery budget (``budget_exhausted``) or the watchdog
    — never a hang.
    """

    primary: FaultPlan
    strike_restore: int = 0
    mode: str = "register"  # "register" | "slot"
    bits: Tuple[int, ...] = (0,)
    repeat: bool = False
    storage: Optional[object] = field(default=None, compare=False, repr=False)

    strikes: int = field(default=0, compare=False)

    HOOK_API = 2

    def __post_init__(self):
        if self.mode not in ("register", "slot"):
            raise ValueError(f"unknown recovery-fault mode {self.mode!r}")

    def hook_threads(self) -> Optional[List[Tuple[int, int]]]:
        return [(self.primary.ctaid, self.primary.tid)]

    @property
    def injected(self) -> bool:
        return self.primary.injected

    @property
    def struck_recovery(self) -> bool:
        return self.strikes > 0

    def after_instruction(self, t: ThreadContext, env=None) -> None:
        self.primary.after_instruction(t, env)

    def _armed(self, t: ThreadContext, idx: int) -> bool:
        if t.ctaid != self.primary.ctaid or t.tid != self.primary.tid:
            return False
        if self.strikes and not self.repeat:
            return False
        return idx == self.strike_restore

    def before_restore(self, t: ThreadContext, env, action, idx: int) -> None:
        if self.mode != "slot" or not self._armed(t, idx):
            return
        if not action.is_slot or self.storage is None:
            return
        slot = self.storage.slots.get((action.reg_name, action.slot_color))
        if slot is None:
            return
        from repro.gpusim.recovery import slot_location

        try:
            store, addr = slot_location(self.storage, slot, t, env)
        except KeyError:
            return
        store.poison(addr)
        self.strikes += 1

    def after_restore(self, t: ThreadContext, env, action, idx: int) -> None:
        if self.mode != "register" or not self._armed(t, idx):
            return
        if t.rf.flip_bits(action.reg_name, self.bits):
            self.strikes += 1


@dataclass
class ComposedFaultPlan:
    """Run several plans in one execution (e.g. the RF fault that triggers
    recovery plus the checkpoint-slot fault recovery must then survive)."""

    plans: List[object] = field(default_factory=list)

    HOOK_API = 2

    def hook_threads(self) -> Optional[List[Tuple[int, int]]]:
        """Union of the children's targets; ``None`` (all threads) as soon
        as any child is untargeted."""
        targets: List[Tuple[int, int]] = []
        for p in self.plans:
            getter = getattr(p, "hook_threads", None)
            child = getter() if callable(getter) else None
            if child is None:
                return None
            for key in child:
                if key not in targets:
                    targets.append(key)
        return targets

    @property
    def injected(self) -> bool:
        return any(p.injected for p in self.plans)

    def reset(self) -> None:
        for p in self.plans:
            reset = getattr(p, "reset", None)
            if reset is not None:
                reset()

    def after_instruction(self, t: ThreadContext, env=None) -> None:
        for p in self.plans:
            p.after_instruction(t, env)

    def before_restore(self, t: ThreadContext, env, action, idx: int) -> None:
        for p in self.plans:
            hook = getattr(p, "before_restore", None)
            if hook is not None:
                hook(t, env, action, idx)

    def after_restore(self, t: ThreadContext, env, action, idx: int) -> None:
        for p in self.plans:
            hook = getattr(p, "after_restore", None)
            if hook is not None:
                hook(t, env, action, idx)


class FaultOutcome(enum.Enum):
    MASKED = "masked"
    RECOVERED = "recovered"
    SDC = "sdc"
    DUE = "due"
    NOT_INJECTED = "not_injected"


@dataclass
class InjectionResult:
    plan: FaultPlan
    outcome: FaultOutcome
    detections: int
    recoveries: int
    due_cause: Optional[str] = None


@dataclass
class CampaignReport:
    results: List[InjectionResult] = field(default_factory=list)

    def count(self, outcome: FaultOutcome) -> int:
        return sum(1 for r in self.results if r.outcome is outcome)

    def summary(self) -> Dict[str, int]:
        return {o.value: self.count(o) for o in FaultOutcome}

    def due_taxonomy(self) -> Dict[str, int]:
        taxonomy: Dict[str, int] = {}
        for r in self.results:
            if r.outcome is FaultOutcome.DUE and r.due_cause:
                taxonomy[r.due_cause] = taxonomy.get(r.due_cause, 0) + 1
        return taxonomy


class FaultCampaign:
    """Runs golden + injected executions of one prepared workload.

    ``make_memory`` builds a fresh :class:`MemoryImage` per run (inputs must
    be identical across runs); ``output_region`` is the (addr, num_words)
    window of global memory whose contents define program output.

    This is the serial, register-file-only campaign the repository started
    with; :class:`repro.gpusim.campaign.ParallelCampaign` supersedes it for
    large, multi-surface, journaled runs but keeps this class as its
    single-injection primitive shape.
    """

    def __init__(
        self,
        kernel,
        launch: Launch,
        make_memory: Callable[[], MemoryImage],
        output_region: Tuple[int, int],
        rf_code_factory=None,
        max_instructions_per_thread: int = 2_000_000,
        backend: str = "auto",
    ):
        self.kernel = kernel
        self.launch = launch
        self.make_memory = make_memory
        self.output_region = output_region
        self.rf_code_factory = rf_code_factory
        self.max_instructions = max_instructions_per_thread
        self.backend = backend
        self._golden: Optional[List[int]] = None

    def _executor(self, fault_plan=None):
        from repro.gpusim.backend import make_executor

        kwargs = {
            "max_instructions_per_thread": self.max_instructions,
            "fault_plan": fault_plan,
        }
        if self.rf_code_factory is not None:
            kwargs["rf_code_factory"] = self.rf_code_factory
        return make_executor(self.kernel, backend=self.backend, **kwargs)

    def golden_output(self) -> List[int]:
        if self._golden is None:
            mem = self.make_memory()
            self._executor().run(self.launch, mem)
            addr, count = self.output_region
            self._golden = mem.download(addr, count)
        return self._golden

    def run_one(self, plan: FaultPlan) -> InjectionResult:
        golden = self.golden_output()
        mem = self.make_memory()
        executor = self._executor(fault_plan=plan)
        try:
            result = executor.run(self.launch, mem)
        except (SimulationError, MemoryError32) as exc:
            # Recovery failure, runaway execution, or a hardware exception
            # (e.g. an escaped corruption landing in an address register):
            # detected-unrecoverable either way — but the taxonomy label
            # records which.
            return InjectionResult(
                plan, FaultOutcome.DUE, -1, -1, classify_due(exc).value
            )
        addr, count = self.output_region
        output = mem.download(addr, count)
        if not plan.injected:
            outcome = FaultOutcome.NOT_INJECTED
        elif output == golden:
            outcome = (
                FaultOutcome.RECOVERED
                if result.recoveries > 0
                else FaultOutcome.MASKED
            )
        else:
            outcome = FaultOutcome.SDC
        return InjectionResult(
            plan, outcome, result.detections, result.recoveries
        )

    def run_random(
        self,
        num_injections: int,
        seed: int = 2020,
        bits_per_fault: int = 1,
        max_dynamic_point: Optional[int] = None,
        pattern: str = "random",
    ) -> CampaignReport:
        """Inject ``num_injections`` random faults (thread, time, register,
        bit positions all randomized).

        ``pattern`` selects how multi-bit faults are shaped: ``"random"``
        scatters the flipped bits across the codeword; ``"burst"`` flips
        ``bits_per_fault`` *adjacent* bits — the multi-bit upset mode from
        a single high-energy particle that motivates the paper's stronger
        detection codings (near-threshold operation increases these 2.6x,
        §2 footnote).
        """
        rng = random.Random(seed)
        report = CampaignReport()
        # Profile the golden run so injection points land within each
        # thread's actual lifetime (threads diverge wildly in length).
        golden_mem = self.make_memory()
        golden_exec = self._executor().run(self.launch, golden_mem)
        lifetimes = {
            key: n
            for key, n in golden_exec.thread_instructions.items()
            if n >= 2
        }
        if not lifetimes:
            raise ValueError("no thread executed enough instructions")
        keys = sorted(lifetimes)
        codeword_bits = 33
        if self.rf_code_factory is not None:
            code = self.rf_code_factory()
            if code is not None:
                codeword_bits = code.n
        if pattern not in ("random", "burst"):
            raise ValueError(f"unknown fault pattern {pattern!r}")
        for i in range(num_injections):
            ctaid, tid = keys[rng.randrange(len(keys))]
            # Clamp the caller's horizon to this thread's actual lifetime:
            # a point past thread exit can never fire and would burn the
            # run as NOT_INJECTED.
            horizon = lifetimes[(ctaid, tid)]
            if max_dynamic_point is not None:
                horizon = min(max_dynamic_point, horizon)
            if pattern == "burst":
                start = rng.randrange(codeword_bits - bits_per_fault + 1)
                bits = tuple(range(start, start + bits_per_fault))
            else:
                bits = tuple(rng.sample(range(codeword_bits), bits_per_fault))
            plan = FaultPlan(
                ctaid=ctaid,
                tid=tid,
                after_instructions=rng.randrange(1, max(2, horizon)),
                reg_name=None,
                bits=bits,
                rng_seed=rng.getrandbits(30),
            )
            report.results.append(self.run_one(plan))
        return report
