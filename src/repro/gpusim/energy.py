"""Register-file energy accounting (GPUWattch stand-in, Fig. 14).

RF energy = (reads + writes) x per-access energy of the bank's coding
scheme, using the synthesis-calibrated costs of
:mod:`repro.coding.hwcost`.  A protected kernel performs *more* RF
accesses than the baseline (checkpoint stores read registers; address
preambles write them), so Penny's total comes out slightly above
``baseline x 1.03`` — the paper reports 7% vs SECDED's 22.4%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coding.hwcost import RegisterFileBankModel
from repro.gpusim.executor import ExecutionResult


@dataclass(frozen=True)
class RfEnergy:
    """Energy of all register-file accesses of one run, in picojoules."""

    accesses: int
    per_access_pj: float

    @property
    def total_pj(self) -> float:
        return self.accesses * self.per_access_pj


def rf_energy(
    result: ExecutionResult,
    scheme_name: str = "Parity",
    model: RegisterFileBankModel = None,
) -> RfEnergy:
    """Energy consumed by the register file during ``result``'s run under
    the given coding scheme ("None" = unprotected baseline)."""
    model = model or RegisterFileBankModel()
    cost = model.cost(scheme_name)
    return RfEnergy(
        accesses=result.rf_reads + result.rf_writes,
        per_access_pj=cost.access_energy_pj,
    )


def total_gpu_energy_norm(
    rf_energy_norm: float,
    cycles_norm: float,
    rf_fraction: float = 0.15,
) -> float:
    """Whole-GPU energy, normalized to the unprotected baseline — the
    §9.1 exploration the paper defers to future work.

    The RF contributes ``rf_fraction`` of baseline GPU energy (GPUWattch
    reports 10–20% for Fermi-class parts); the remaining energy scales with
    run time (static power and the unchanged dynamic activity of the other
    units).  Penny changes both terms — a cheaper RF but a slightly longer
    run — which is exactly why the paper stops short of claiming a total-
    energy win.
    """
    if not 0.0 < rf_fraction < 1.0:
        raise ValueError("rf_fraction must be in (0, 1)")
    return rf_fraction * rf_energy_norm + (1.0 - rf_fraction) * cycles_norm
