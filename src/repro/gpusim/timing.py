"""Analytic GPU timing model (the cycle-level half of the GPGPU-Sim
substitution; see DESIGN.md §4).

The model consumes the interpreter's per-warp dynamic instruction counts
and the kernel's occupancy, and produces a cycle estimate as the maximum of
three *monotone* bounds over each SM's assigned warps:

- **issue bound** — one instruction issue port: every assigned warp's issue
  cycles serialize (``N_warps * issue_per_warp``);
- **LSU bound**   — memory operations consume load/store-unit throughput,
  stores included: with no store buffer they occupy the pipeline, which is
  the §3.1 observation that makes checkpointing stores expensive;
- **latency bound** — warps run in occupancy-sized waves; within a wave,
  one warp's dependent-load chain (``issue + mem_latency / MLP``) cannot be
  compressed, so ``waves * chain`` lower-bounds the SM.  Low occupancy
  (fewer warps per wave → more waves) directly lengthens this bound, which
  is how register pressure and shared-memory checkpoint storage cost time.

All three bounds grow when instructions are added and when occupancy drops,
so transformed kernels are never estimated faster than their baseline.
Absolute cycles are not calibrated to silicon; the paper's figures only use
*ratios*, which these bounds drive through exactly the quantities Penny
manipulates: checkpoint-store counts, their loop depth, and occupancy.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Tuple

from repro.gpusim.config import GpuConfig
from repro.gpusim.executor import (
    CLASS_ALU,
    CLASS_ATOM,
    CLASS_BAR,
    CLASS_LD_GLOBAL,
    CLASS_LD_OTHER,
    CLASS_LD_SHARED,
    CLASS_SFU,
    CLASS_ST_GLOBAL,
    CLASS_ST_OTHER,
    CLASS_ST_SHARED,
    ExecutionResult,
)
from repro.gpusim.occupancy import Occupancy, occupancy


@dataclass
class TimingReport:
    cycles: float
    issue_cycles: float
    lsu_cycles: float
    latency_cycles: float
    waves: int
    occupancy: Occupancy

    @property
    def bound(self) -> str:
        bounds = {
            "issue": self.issue_cycles,
            "lsu": self.lsu_cycles,
            "latency": self.latency_cycles,
        }
        return max(bounds, key=lambda k: bounds[k])


class TimingModel:
    """Estimates kernel cycles from dynamic counts + occupancy."""

    #: memory-level parallelism assumed within one warp's load stream
    MLP = 4.0

    def __init__(self, config: GpuConfig):
        self.config = config

    def _per_warp(self, counts: Counter) -> Tuple[float, float, float]:
        """(issue cycles, lsu cycles, dependent-load latency chain)."""
        c = self.config
        mem_ops = (
            counts.get(CLASS_LD_GLOBAL, 0)
            + counts.get(CLASS_ST_GLOBAL, 0)
            + counts.get(CLASS_LD_SHARED, 0)
            + counts.get(CLASS_ST_SHARED, 0)
            + counts.get(CLASS_LD_OTHER, 0)
            + counts.get(CLASS_ST_OTHER, 0)
            + counts.get(CLASS_ATOM, 0)
        )
        issue = (
            counts.get(CLASS_ALU, 0) * c.issue_alu
            + counts.get(CLASS_SFU, 0) * c.issue_sfu
            + mem_ops * c.issue_mem
            + counts.get(CLASS_BAR, 0) * c.lat_barrier
        )
        lsu = (
            (counts.get(CLASS_LD_GLOBAL, 0) + counts.get(CLASS_ST_GLOBAL, 0))
            * c.lsu_global
            + (counts.get(CLASS_LD_SHARED, 0) + counts.get(CLASS_ST_SHARED, 0))
            * c.lsu_shared
            + (counts.get(CLASS_LD_OTHER, 0) + counts.get(CLASS_ST_OTHER, 0))
            * c.lsu_shared
            + counts.get(CLASS_ATOM, 0) * 2 * c.lsu_global
        )
        load_latency = (
            counts.get(CLASS_LD_GLOBAL, 0) * c.lat_global
            + counts.get(CLASS_LD_SHARED, 0) * c.lat_shared
            + counts.get(CLASS_LD_OTHER, 0) * c.lat_shared
            + counts.get(CLASS_ATOM, 0) * c.lat_global
        )
        return float(issue), float(lsu), load_latency / self.MLP

    def estimate(
        self,
        result: ExecutionResult,
        threads_per_block: int,
        num_blocks: int,
        regs_per_thread: int,
        shared_per_block: int,
    ) -> TimingReport:
        occ = occupancy(
            self.config, threads_per_block, regs_per_thread, shared_per_block
        )
        if not occ.active:
            raise ValueError(
                "kernel cannot launch: zero occupancy "
                f"(limited by {occ.limiter})"
            )

        # Average per-warp profile over the measured warps.
        if result.warp_counts:
            n = len(result.warp_counts)
            avg = Counter()
            for counts in result.warp_counts.values():
                avg.update(counts)
            per_warp = Counter({k: v / n for k, v in avg.items()})
        else:
            per_warp = Counter()
        issue, lsu, mem_chain = self._per_warp(per_warp)

        warp_size = self.config.warp_size
        warps_per_block = (threads_per_block + warp_size - 1) // warp_size

        # Work assigned to the busiest SM.
        sms_used = min(self.config.num_sms, num_blocks)
        blocks_on_sm = -(-num_blocks // sms_used)
        warps_on_sm = blocks_on_sm * warps_per_block
        resident = max(1, min(occ.warps_per_sm, warps_on_sm))
        waves = max(1, -(-warps_on_sm // resident))

        issue_bound = warps_on_sm * issue
        lsu_bound = warps_on_sm * lsu
        latency_bound = waves * (issue + mem_chain)

        return TimingReport(
            cycles=max(issue_bound, lsu_bound, latency_bound),
            issue_cycles=issue_bound,
            lsu_cycles=lsu_bound,
            latency_cycles=latency_bound,
            waves=waves,
            occupancy=occ,
        )
