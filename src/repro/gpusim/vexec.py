"""Lane-parallel NumPy execution engine.

The scalar interpreter (:mod:`repro.gpusim.executor`) walks one thread at
a time; this engine evaluates *all lanes of a thread block per
instruction* as ``(regs, lanes)`` NumPy arrays.  Control divergence is
handled with a divergence-mask worklist ordered by program position: the
engine always executes the frontier entry at the minimal ``(block,
instruction)`` pc, so lanes that branched apart re-merge (mask union) the
moment their paths rejoin — the immediate-post-dominator reconvergence a
real SIMT front-end performs with its mask stack.

The engine is a drop-in :class:`ExecutorBackend`: same constructor knobs,
same :class:`ExecutionResult`, bit-for-bit.  The contract (verified by the
differential A/B suite in ``tests/integration/test_backend_ab.py``):

- every per-thread observable — register values, executed-instruction
  counts, register-file read/write/detection counters, block visit
  counts, memory contents and access counters — equals the scalar
  interpreter's, because per-thread instruction traces of race-free
  kernels are schedule-independent and both schedulers release barriers
  only when every live thread arrived;
- float ops compute in float64 and round once to float32, which equals
  the scalar path (Python doubles + ``f2b``) exactly — fp32 is "double
  rounding safe" from fp64 for every op used here (53 >= 2*24 + 2).
  The libm-sensitive SFU ops (``sin``/``cos``/``ex2``/``lg2``) drop to
  the scalar helper per lane so both backends share one libm;
- fault-plan hooks fire after each instruction of each lane in lane
  order, i.e. with identical *per-thread* ordering and seeds, so
  campaign journals and fuzz findings are backend-invariant;
- parity detection, recovery (via the unmodified
  :class:`~repro.gpusim.recovery.RecoveryRuntime`) and the watchdog /
  recovery budgets behave identically, down to exception messages.

Vectorizing the register file: registers live in a ``(regs, lanes)``
``uint64`` codeword matrix plus a ``written`` bitmap (a read of a
never-written register implicitly writes an encoded zero, as in the
scalar file).  Parity encode/check are closed-form NumPy expressions for
:class:`~repro.coding.parity.ParityCode`; other codes (SECDED) fall back
to per-lane calls of the very same ``Code`` object, trading speed for
guaranteed equivalence.  Parity *checks* are skipped entirely until the
first fault is injected — an uncorrupted file cannot detect.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

import repro.obs as obs
from repro.coding.parity import ParityCode
from repro.gpusim.executor import (
    ExecutionResult,
    Launch,
    SimulationError,
    UnrecoverableError,
    WatchdogTimeout,
    _BlockEnv,
    _classify,
    _float_op,
    _plan_takes_env,
    _publish_counters,
    f2b,
)
from repro.gpusim.memory import MemoryImage, WordStore
from repro.gpusim.regfile import ParityError
from repro.ir.instructions import (
    Alu,
    Atom,
    Bar,
    Bra,
    Checkpoint,
    Ld,
    Membar,
    Ret,
    Selp,
    Setp,
    St,
)
from repro.ir.module import Kernel
from repro.ir.types import DType, Imm, MemSpace, Reg, Special, SymRef

_MASK32 = 0xFFFFFFFF
_U64 = np.uint64
_I64 = np.int64

#: SFU ops whose scalar semantics route through libm; evaluated per lane
#: through the scalar helper so both backends share one rounding story.
_LANE_FLOAT_OPS = frozenset({"ex2", "lg2", "sin", "cos"})


# -- vectorized detection codes -----------------------------------------------------


class _VCode:
    """Vector adapter over a :class:`repro.coding.base.Code`.

    ``kind`` selects the closed-form fast path; anything unrecognized is
    evaluated per lane through the original code object, which keeps
    arbitrary codes (SECDED, future ones) bit-identical by construction.
    """

    def __init__(self, code):
        self.code = code
        if code is None:
            self.kind = "none"
        elif isinstance(code, ParityCode) and code.k == 32:
            self.kind = "parity32"
        else:
            self.kind = "generic"

    def encode(self, data: np.ndarray) -> np.ndarray:
        if self.kind == "none":
            return data & _U64(_MASK32)
        if self.kind == "parity32":
            d = data & _U64(_MASK32)
            parity = np.bitwise_count(d).astype(_U64) & _U64(1)
            return d | (parity << _U64(32))
        enc = self.code.encode
        return np.array(
            [enc(int(v)) for v in data.tolist()], dtype=_U64
        )

    def check(self, words: np.ndarray) -> np.ndarray:
        """True where the codeword fails the code's check."""
        if self.kind == "none":
            return np.zeros(words.shape, dtype=bool)
        if self.kind == "parity32":
            return (np.bitwise_count(words) & np.uint8(1)).astype(bool)
        chk = self.code.check
        return np.array(
            [chk(int(v)) for v in words.tolist()], dtype=bool
        )

    def extract(self, words: np.ndarray) -> np.ndarray:
        if self.kind in ("none", "parity32"):
            return words & _U64(_MASK32)
        ext = self.code.extract_data
        return np.array(
            [ext(int(v)) for v in words.tolist()], dtype=_U64
        )


# -- vectorized register file -------------------------------------------------------


class VRegisterFile:
    """All lanes' registers as a ``(regs, lanes)`` codeword matrix."""

    def __init__(
        self,
        lanes: int,
        code,
        reg_names: List[str],
        protected: Optional[FrozenSet[str]] = None,
    ):
        self.lanes = lanes
        self.vcode = _VCode(code)
        self.code = code
        #: selective protection: names outside the set store bare values
        #: (meaningful only with a code installed); ``None`` = all covered
        self._protected = protected if code is not None else None
        self.rows: Dict[str, int] = {}
        for name in reg_names:
            self.rows.setdefault(name, len(self.rows))
        n = max(len(self.rows), 1)
        self.words = np.zeros((n, lanes), dtype=_U64)
        self.written = np.zeros((n, lanes), dtype=bool)
        self.row_protected = np.ones(n, dtype=bool)
        if self._protected is not None:
            for name, row in self.rows.items():
                self.row_protected[row] = name in self._protected
        self.reads = np.zeros(lanes, dtype=_I64)
        self.writes = np.zeros(lanes, dtype=_I64)
        self.detections = np.zeros(lanes, dtype=_I64)
        self.injected_faults = np.zeros(lanes, dtype=_I64)
        #: no bit was ever flipped -> checks cannot fire -> skip them
        self.dirty = False
        self._zero_codeword = int(self.vcode.encode(np.zeros(1, dtype=_U64))[0])

    def row(self, name: str) -> int:
        idx = self.rows.get(name)
        if idx is None:
            idx = self.rows[name] = len(self.rows)
            if idx >= self.words.shape[0]:
                grow = max(8, idx + 1 - self.words.shape[0])
                self.words = np.vstack(
                    [self.words, np.zeros((grow, self.lanes), dtype=_U64)]
                )
                self.written = np.vstack(
                    [self.written, np.zeros((grow, self.lanes), dtype=bool)]
                )
                self.row_protected = np.concatenate(
                    [self.row_protected, np.ones(grow, dtype=bool)]
                )
            if self._protected is not None:
                self.row_protected[idx] = name in self._protected
        return idx

    def write_masked(self, row: int, mask: np.ndarray, values) -> None:
        self.writes[mask] += 1
        vals = values[mask] if isinstance(values, np.ndarray) else values
        if not self.row_protected[row]:
            if isinstance(vals, np.ndarray):
                self.words[row, mask] = vals & _U64(_MASK32)
            else:
                self.words[row, mask] = _U64(int(vals) & _MASK32)
            self.written[row, mask] = True
            return
        if isinstance(vals, np.ndarray):
            self.words[row, mask] = self.vcode.encode(vals)
        else:
            enc = (
                self._zero_codeword
                if vals == 0
                else int(self.vcode.encode(np.array([vals], dtype=_U64))[0])
            )
            self.words[row, mask] = _U64(enc)
        self.written[row, mask] = True

    def read_masked(
        self, row: int, mask: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Masked read -> ``(data, fault_mask_or_None)``.

        Mirrors the scalar file: a never-written register is implicitly
        written as zero first (the write counter moves), the read counter
        moves *before* the check, detections are counted per faulting
        lane.  An unprotected row returns bare (possibly corrupted) data
        and can never fault — the policy's chosen SDC exposure."""
        unwritten = mask & ~self.written[row]
        if unwritten.any():
            self.write_masked(row, unwritten, 0)
        self.reads[mask] += 1
        words = self.words[row]
        if not self.row_protected[row]:
            return words & _U64(_MASK32), None
        if self.dirty:
            bad = self.vcode.check(words) & mask
            if bad.any():
                self.detections[bad] += 1
                return self.vcode.extract(words), bad
        return self.vcode.extract(words), None


class _LaneRF:
    """Scalar :class:`RegisterFile` facade over one lane of a
    :class:`VRegisterFile` — what recovery and fault plans manipulate."""

    __slots__ = ("vrf", "lane")

    def __init__(self, vrf: VRegisterFile, lane: int):
        self.vrf = vrf
        self.lane = lane

    @property
    def code(self):
        return self.vrf.code

    @property
    def reads(self) -> int:
        return int(self.vrf.reads[self.lane])

    @property
    def writes(self) -> int:
        return int(self.vrf.writes[self.lane])

    @property
    def detections(self) -> int:
        return int(self.vrf.detections[self.lane])

    @property
    def injected_faults(self) -> int:
        return int(self.vrf.injected_faults[self.lane])

    def write(self, name: str, value: int) -> None:
        vrf = self.vrf
        row = vrf.row(name)
        vrf.writes[self.lane] += 1
        value &= _MASK32
        code = vrf.code
        if code is None or not vrf.row_protected[row]:
            vrf.words[row, self.lane] = _U64(value)
        else:
            vrf.words[row, self.lane] = _U64(code.encode(value))
        vrf.written[row, self.lane] = True

    def read(self, name: str) -> int:
        vrf = self.vrf
        row = vrf.row(name)
        vrf.reads[self.lane] += 1
        if not vrf.written[row, self.lane]:
            self.write(name, 0)
        word = int(vrf.words[row, self.lane])
        code = vrf.code
        if code is None or not vrf.row_protected[row]:
            return word & _MASK32
        if code.check(word):
            vrf.detections[self.lane] += 1
            raise ParityError(name)
        return code.extract_data(word)

    def peek(self, name: str) -> Optional[int]:
        vrf = self.vrf
        row = vrf.rows.get(name)
        if row is None or not vrf.written[row, self.lane]:
            return None
        word = int(vrf.words[row, self.lane])
        if vrf.code is None or not vrf.row_protected[row]:
            return word & _MASK32
        return vrf.code.extract_data(word)

    def flip_bits(self, name: str, bit_positions) -> bool:
        vrf = self.vrf
        row = vrf.rows.get(name)
        if row is None or not vrf.written[row, self.lane]:
            return False
        word = int(vrf.words[row, self.lane])
        for bit in bit_positions:
            word ^= 1 << bit
        vrf.words[row, self.lane] = _U64(word)
        vrf.injected_faults[self.lane] += 1
        vrf.dirty = True
        return True

    def registers(self) -> List[str]:
        vrf = self.vrf
        col = vrf.written[:, self.lane]
        return [name for name, row in vrf.rows.items() if col[row]]

    def random_register(self, rng) -> Optional[str]:
        regs = sorted(self.registers())
        if not regs:
            return None
        return regs[rng.randrange(len(regs))]


class _LaneView:
    """One lane dressed up as a scalar :class:`ThreadContext`.

    The recovery runtime, the fault plans and ``slot_location`` only read
    ``tid``/``ctaid``/``rf``/``local``/``executed``/``region_label`` and
    bump ``recoveries`` — these properties bridge them onto the lane
    arrays so all three work untouched (and therefore bit-identically)."""

    __slots__ = ("state", "lane", "rf", "ctaid")

    def __init__(self, state: "_VBlockState", lane: int):
        self.state = state
        self.lane = lane
        self.rf = _LaneRF(state.vrf, lane)
        self.ctaid = state.ctaid

    @property
    def tid(self) -> int:
        return self.lane

    @property
    def local(self) -> WordStore:
        return self.state.local_store(self.lane)

    @property
    def executed(self) -> int:
        return int(self.state.executed[self.lane])

    @property
    def recoveries(self) -> int:
        return int(self.state.recoveries[self.lane])

    @recoveries.setter
    def recoveries(self, value: int) -> None:
        self.state.recoveries[self.lane] = value

    @property
    def region_label(self) -> str:
        return self.state.labels[self.state.region_block[self.lane]]


# -- decoded instruction records ----------------------------------------------------

K_ALU = 0
K_SETP = 1
K_SELP = 2
K_LD = 3
K_LD_PARAM = 4
K_ST = 5
K_ATOM = 6
K_BRA = 7
K_BAR = 8
K_MEMBAR = 9
K_RET = 10

OP_REG = 0
OP_CONST = 1
OP_SPECIAL = 2
OP_SYMREF = 3


class _DInst:
    """One pre-decoded instruction: operand descriptors resolved to
    register rows / packed constants once per kernel, not per lane-step."""

    __slots__ = (
        "kind",
        "guard",
        "op",
        "dtype",
        "cmp",
        "dst",
        "dst_name",
        "srcs",
        "pred",
        "space",
        "offset",
        "base",
        "src",
        "src2",
        "target",
        "sym",
    )

    def __init__(self):
        self.guard = None
        self.srcs = ()
        self.src2 = None


class VectorExecutor:
    """Lane-parallel executor: one kernel over a launch grid.

    Constructor-compatible with :class:`repro.gpusim.executor.Executor`;
    produces bit-identical :class:`ExecutionResult`\\ s (the A/B contract
    in the module docstring)."""

    backend_name = "vector"

    def __init__(
        self,
        kernel: Kernel,
        rf_code_factory=ParityCode,
        max_instructions_per_thread: int = 2_000_000,
        max_recoveries_per_thread: int = 1000,
        fault_plan=None,
    ):
        self.kernel = kernel
        self.rf_code_factory = rf_code_factory
        self.max_instructions = max_instructions_per_thread
        self.max_recoveries = max_recoveries_per_thread
        self.fault_plan = fault_plan
        self._plan_takes_env = _plan_takes_env(fault_plan)
        self._block_index = {blk.label: i for i, blk in enumerate(kernel.blocks)}
        self.labels = [blk.label for blk in kernel.blocks]
        self._recovery_runtime = None
        table = kernel.meta.get("recovery_table")
        if table is not None:
            from repro.gpusim.recovery import RecoveryRuntime

            self._recovery_runtime = RecoveryRuntime(kernel, table)
        self._recovery_labels = set(kernel.meta.get("region_boundaries", set()))
        self._recovery_labels |= set(kernel.meta.get("adjustment_blocks", set()))
        self._reg_names: List[str] = []
        self._decoded = [self._decode_block(blk) for blk in kernel.blocks]
        self._uses_local = any(
            getattr(inst, "space", None) is MemSpace.LOCAL
            for blk in kernel.blocks
            for inst in blk.instructions
        )
        # Targeted plans (single (ctaid, tid)) let the hook loop skip
        # every other lane; ``None`` = broadcast to all lanes.
        targets = getattr(fault_plan, "hook_threads", None)
        self._hook_targets = targets() if callable(targets) else None

    # -- decode --

    def _reg_row(self, name: str) -> int:
        # Rows are finalized here, then handed to every block's VRF.
        try:
            return self._reg_names.index(name)
        except ValueError:
            self._reg_names.append(name)
            return len(self._reg_names) - 1

    def _operand(self, op):
        if isinstance(op, Reg):
            return (OP_REG, self._reg_row(op.name), op.name)
        if isinstance(op, Imm):
            if op.dtype.is_float:
                return (OP_CONST, f2b(float(op.value)), None)
            return (OP_CONST, int(op.value) & _MASK32, None)
        if isinstance(op, Special):
            return (OP_SPECIAL, 0, op.name)
        if isinstance(op, SymRef):
            return (OP_SYMREF, 0, op.name)
        raise SimulationError(f"bad operand {op!r}")

    def _decode_block(self, blk) -> List[_DInst]:
        out = []
        for inst in blk.instructions:
            d = _DInst()
            if inst.guard is not None:
                reg, sense = inst.guard
                d.guard = (self._reg_row(reg.name), reg.name, sense)
            if isinstance(inst, Alu):
                d.kind = K_ALU
                d.op = inst.op
                d.dtype = inst.dtype
                d.dst = self._reg_row(inst.dst.name)
                d.srcs = tuple(self._operand(s) for s in inst.srcs)
            elif isinstance(inst, Setp):
                d.kind = K_SETP
                d.cmp = inst.cmp
                d.dtype = inst.dtype
                d.dst = self._reg_row(inst.dst.name)
                d.srcs = tuple(self._operand(s) for s in inst.srcs)
            elif isinstance(inst, Selp):
                d.kind = K_SELP
                d.dst = self._reg_row(inst.dst.name)
                d.srcs = tuple(self._operand(s) for s in inst.srcs)
                d.pred = (self._reg_row(inst.pred.name), inst.pred.name)
            elif isinstance(inst, Ld):
                if inst.space is MemSpace.PARAM:
                    if not isinstance(inst.base, SymRef):
                        raise SimulationError(
                            "param loads must use a symbol base"
                        )
                    d.kind = K_LD_PARAM
                    d.sym = inst.base.name
                    d.dst = self._reg_row(inst.dst.name)
                else:
                    d.kind = K_LD
                    d.space = inst.space
                    d.offset = inst.offset
                    d.base = self._operand(inst.base)
                    d.dst = self._reg_row(inst.dst.name)
            elif isinstance(inst, St):
                d.kind = K_ST
                d.space = inst.space
                d.offset = inst.offset
                d.base = self._operand(inst.base)
                d.src = self._operand(inst.src)
            elif isinstance(inst, Atom):
                d.kind = K_ATOM
                d.op = inst.op
                d.space = inst.space
                d.offset = inst.offset
                d.base = self._operand(inst.base)
                d.src = self._operand(inst.src)
                if inst.src2 is not None:
                    d.src2 = self._operand(inst.src2)
                d.dst = self._reg_row(inst.dst.name)
            elif isinstance(inst, Bra):
                d.kind = K_BRA
                d.target = inst.target
            elif isinstance(inst, Bar):
                d.kind = K_BAR
            elif isinstance(inst, Membar):
                d.kind = K_MEMBAR
            elif isinstance(inst, Ret):
                d.kind = K_RET
            elif isinstance(inst, Checkpoint):
                raise SimulationError(
                    "un-lowered cp pseudo-instruction reached the simulator"
                )
            else:
                raise SimulationError(f"cannot execute {inst!r}")
            out.append(d)
        return out

    # -- launch --

    def run(self, launch: Launch, mem: MemoryImage) -> ExecutionResult:
        with obs.span(
            "sim.run",
            kernel=self.kernel.name,
            grid=launch.grid,
            block=launch.block,
            faulted=self.fault_plan is not None,
            backend=self.backend_name,
        ):
            with np.errstate(all="ignore"):
                result = self._run(launch, mem)
        _publish_counters(result)
        return result

    def _run(self, launch: Launch, mem: MemoryImage) -> ExecutionResult:
        result = ExecutionResult(backend=self.backend_name)
        if self.fault_plan is not None:
            reset = getattr(self.fault_plan, "reset", None)
            if reset is not None:
                reset()
        ckpt_words = self.kernel.meta.get("ckpt_global_words", 0)
        ckpt_global_base = mem.alloc_global(ckpt_words) if ckpt_words else 0
        mem.params.update(launch.params)
        self._ckpt_global_base = ckpt_global_base
        mem.ckpt_global_base = ckpt_global_base  # type: ignore[attr-defined]
        mem.ckpt_global_words = ckpt_words  # type: ignore[attr-defined]

        for ctaid in range(launch.grid):
            self._run_block(launch, mem, ctaid, result)
        return result

    def _run_block(
        self,
        launch: Launch,
        mem: MemoryImage,
        ctaid: int,
        result: ExecutionResult,
    ) -> None:
        shared = WordStore(f"shared[{ctaid}]", size_bytes=1 << 20)
        shared_bases: Dict[str, int] = {}
        offset = 0
        for decl in self.kernel.shared:
            shared_bases[decl.name] = offset
            offset += decl.num_words * 4

        env = _BlockEnv(
            launch=launch,
            mem=mem,
            shared=shared,
            shared_bases=shared_bases,
            ckpt_global_base=self._ckpt_global_base,
        )
        state = _VBlockState(self, launch, env, ctaid)
        self._schedule(state)
        state.aggregate(result)

    # -- the divergence-mask scheduler --

    def _schedule(self, state: "_VBlockState") -> None:
        """Min-pc frontier scheduling.

        ``frontier`` holds ``(block, index, mask)`` entries; the entry at
        the minimal program position executes next, and entries at equal
        positions merge their masks first — that is the reconvergence
        "pop".  A divergent guarded branch pushes the taken and
        fall-through masks as two entries — the "push".  Barriers park
        their masks until the frontier drains (exactly the scalar
        scheduler's all-live-threads-blocked release)."""
        frontier = state.frontier
        while frontier or state.parked:
            if not frontier:
                # Everyone still running is parked at a barrier: release.
                frontier.extend(state.parked)
                state.parked.clear()
            pos = min((e[0], e[1]) for e in frontier)
            mask = None
            kept = []
            for e in frontier:
                if (e[0], e[1]) == pos:
                    mask = e[2] if mask is None else (mask | e[2])
                else:
                    kept.append(e)
            frontier[:] = kept
            self._run_front(state, pos[0], pos[1], mask)
        if state.done_count < state.lanes:
            blocked = 0
            live = state.lanes - state.done_count
            raise SimulationError(
                f"deadlock in block {state.ctaid}: {blocked}/{live} at barrier"
            )

    def _run_front(
        self, state: "_VBlockState", b: int, i: int, mask: np.ndarray
    ) -> None:
        """Execute from ``(b, i)`` with ``mask`` until a control event
        splits or retires every lane of the mask."""
        decoded = self._decoded
        blocks = self.kernel.blocks
        nblocks = len(blocks)
        while True:
            insts = decoded[b]
            if i >= len(insts):
                nxt = b + 1
                if nxt >= nblocks:
                    raise SimulationError(
                        f"fell off kernel end after block {self.labels[b]}"
                    )
                state.enter_block(mask, nxt)
                b, i = nxt, 0
                continue
            if np.any(state.executed[mask] >= self.max_instructions):
                lane = int(
                    np.flatnonzero(
                        mask & (state.executed >= self.max_instructions)
                    )[0]
                )
                raise WatchdogTimeout(
                    f"thread ({state.ctaid},{lane}) exceeded instruction "
                    f"budget of {self.max_instructions}"
                )
            d = insts[i]
            mask, b, i = self._step(state, d, mask, b, i)
            if mask is None or not mask.any():
                return

    def _step(self, state, d, mask, b, i):
        """One instruction for all lanes of ``mask``.  Returns the mask
        that continues in a straight line plus its next pc; diverging
        lanes are pushed onto the frontier / parked / retired."""
        fault = None  # lanes that tripped parity mid-instruction

        on = mask
        off = None
        if d.guard is not None:
            row, name, sense = d.guard
            gvals, gf = state.vrf.read_masked(row, mask)
            if gf is not None:
                state.note_fault(gf, name)
                fault = gf
                on = mask & ~gf
            truth = (gvals & _U64(_MASK32)) != 0
            pred_on = truth if sense else ~truth
            off = on & ~pred_on
            on = on & pred_on

        advance = None  # lanes that fall to (b, i+1)
        jump_target = None
        jump_mask = None
        if on.any() or fault is not None:
            kind = d.kind
            if kind == K_ALU:
                advance, fault = self._exec_alu(state, d, on, fault)
            elif kind == K_SETP:
                advance, fault = self._exec_setp(state, d, on, fault)
            elif kind == K_SELP:
                advance, fault = self._exec_selp(state, d, on, fault)
            elif kind == K_LD_PARAM:
                state.vrf.write_masked(d.dst, on, state.env.param(d.sym))
                advance = on
            elif kind == K_LD:
                advance, fault = self._exec_ld(state, d, on, fault)
            elif kind == K_ST:
                advance, fault = self._exec_st(state, d, on, fault)
            elif kind == K_ATOM:
                advance, fault = self._exec_atom(state, d, on, fault)
            elif kind == K_BRA:
                # Scalar order: _enter_block runs inside _execute, so the
                # region's entry-executed snapshot predates the executed
                # increment below.  Mirror that here.
                jump_target = self._block_index[d.target]
                jump_mask = on
                if jump_mask.any():
                    state.enter_block(jump_mask, jump_target)
            elif kind == K_BAR:
                if on.any():
                    state.parked.append((b, i + 1, on))
            elif kind == K_MEMBAR:
                advance = on
            elif kind == K_RET:
                state.retire(on)
            else:  # pragma: no cover - decode rejects unknown kinds
                raise SimulationError(f"cannot execute kind {kind}")

        # Retired work: executed++ and fault hooks for every lane that
        # completed the instruction (including predicated-off lanes —
        # they still issue), in lane order, exactly like the scalar loop.
        completed = on if d.kind in (K_BRA, K_BAR, K_RET) else advance
        if off is not None and off.any():
            completed = off if completed is None else (completed | off)
        if completed is not None and completed.any():
            state.executed[completed] += 1
            if self.fault_plan is not None:
                self._fire_hooks(state, completed)

        if fault is not None and fault.any():
            self._recover_lanes(state, fault, d)

        # Route diverging lanes.
        if jump_mask is not None and jump_mask.any():
            cont = off
            if cont is not None and cont.any():
                state.frontier.append((b, i + 1, cont))
            return jump_mask, jump_target, 0
        cont = advance
        if off is not None and off.any():
            cont = off if cont is None else (cont | off)
        return cont, b, i + 1

    # -- hook + recovery plumbing --

    def _fire_hooks(self, state: "_VBlockState", mask: np.ndarray) -> None:
        plan = self.fault_plan
        takes_env = self._plan_takes_env
        targets = self._hook_targets
        if targets is not None:
            lanes = [
                tid
                for (ctaid, tid) in targets
                if ctaid == state.ctaid and tid < state.lanes and mask[tid]
            ]
        else:
            lanes = np.flatnonzero(mask).tolist()
        for lane in lanes:
            t = state.lane_view(lane)
            if takes_env:
                plan.after_instruction(t, state.env)
            else:
                plan.after_instruction(t)

    def _recover_lanes(self, state, fault: np.ndarray, d) -> None:
        """Per-lane recovery in lane order; recovered lanes re-enter their
        region head via the frontier."""
        for lane in np.flatnonzero(fault).tolist():
            # Every masked-read fault path records the register name that
            # tripped via state.note_fault, so the error text matches the
            # scalar backend's byte for byte.
            self._recover_lane(state, lane, ParityError(state.fault_reg[lane]))
            region = int(state.region_block[lane])
            lane_mask = np.zeros(state.lanes, dtype=bool)
            lane_mask[lane] = True
            state.enter_block(lane_mask, region)
            state.frontier.append((region, 0, lane_mask))

    def _recover_lane(self, state, lane: int, err: ParityError) -> None:
        t = state.lane_view(lane)
        region_label = t.region_label
        reexec = int(state.executed[lane] - state.region_entry_executed[lane])
        obs.event(
            "sim.detect",
            region=region_label,
            ctaid=state.ctaid,
            tid=lane,
            reexec_insts=reexec,
        )
        with obs.span(
            "sim.recover",
            region=region_label,
            ctaid=state.ctaid,
            tid=lane,
            reexec_insts=reexec,
        ):
            if self._recovery_runtime is None:
                raise UnrecoverableError(
                    f"{err} in thread ({state.ctaid},{lane}) with no "
                    f"recovery runtime",
                    cause="no_runtime",
                )
            state.recoveries[lane] += 1
            if state.recoveries[lane] > self.max_recoveries:
                raise UnrecoverableError(
                    f"thread ({state.ctaid},{lane}) exceeded recovery "
                    f"budget of {self.max_recoveries}",
                    cause="budget_exhausted",
                )
            self._recovery_runtime.recover(
                t, state.env, err, fault_plan=self.fault_plan
            )
        tracer = obs.current_tracer()
        if tracer is not None:
            tracer.counters.inc("sim.reexec_insts_total", reexec)
            tracer.counters.observe_value(f"sim.reexec.{region_label}", reexec)

    # -- operand handling --

    def _read_operand(self, state, desc, mask, fault):
        """Returns ``(values, mask, fault)`` where ``values`` is a uint64
        array or a python int, and ``mask`` excludes newly faulted lanes."""
        kind = desc[0]
        if kind == OP_REG:
            vals, f = state.vrf.read_masked(desc[1], mask)
            if f is not None:
                state.note_fault(f, desc[2])
                fault = f if fault is None else (fault | f)
                mask = mask & ~f
            return vals, mask, fault
        if kind == OP_CONST:
            return desc[1], mask, fault
        if kind == OP_SPECIAL:
            return state.special(desc[2]), mask, fault
        return state.env.symbol_address(desc[2]), mask, fault

    # -- instruction semantics --

    def _exec_alu(self, state, d, mask, fault):
        vals = []
        for s in d.srcs:
            v, mask, fault = self._read_operand(state, s, mask, fault)
            vals.append(v)
        if mask.any():
            result = _valu_compute(d.op, d.dtype, vals, state)
            state.vrf.write_masked(d.dst, mask, result)
        return mask, fault

    def _exec_setp(self, state, d, mask, fault):
        a, mask, fault = self._read_operand(state, d.srcs[0], mask, fault)
        b, mask, fault = self._read_operand(state, d.srcs[1], mask, fault)
        if mask.any():
            res = _vcompare(d.cmp, d.dtype, a, b, state)
            state.vrf.write_masked(
                d.dst, mask, res.astype(_U64)
            )
        return mask, fault

    def _exec_selp(self, state, d, mask, fault):
        a, mask, fault = self._read_operand(state, d.srcs[0], mask, fault)
        b, mask, fault = self._read_operand(state, d.srcs[1], mask, fault)
        p, pf = state.vrf.read_masked(d.pred[0], mask)
        if pf is not None:
            state.note_fault(pf, d.pred[1])
            fault = pf if fault is None else (fault | pf)
            mask = mask & ~pf
        if mask.any():
            a = _bcast(a, state.lanes)
            b = _bcast(b, state.lanes)
            res = np.where((p & _U64(_MASK32)) != 0, a, b)
            state.vrf.write_masked(d.dst, mask, res)
        return mask, fault

    def _resolve_store(self, state, space):
        if space is MemSpace.GLOBAL:
            return state.env.mem.global_mem
        if space is MemSpace.SHARED:
            return state.env.shared
        if space is MemSpace.CONST:
            return state.env.mem.const_mem
        if space is MemSpace.LOCAL:
            return None  # per-lane
        raise SimulationError(f"cannot access space {space}")

    def _addrs(self, state, d, mask, fault):
        base, mask, fault = self._read_operand(state, d.base, mask, fault)
        if isinstance(base, np.ndarray):
            addrs = (base + _U64(d.offset % (1 << 64))) & _U64(_MASK32)
        else:
            addrs = np.full(
                state.lanes, (int(base) + d.offset) & _MASK32, dtype=_U64
            )
        return addrs, mask, fault

    def _exec_ld(self, state, d, mask, fault):
        addrs, mask, fault = self._addrs(state, d, mask, fault)
        if not mask.any():
            return mask, fault
        store = self._resolve_store(state, d.space)
        if store is None:
            vals = np.zeros(state.lanes, dtype=_U64)
            for lane in np.flatnonzero(mask).tolist():
                vals[lane] = state.local_store(lane).load(int(addrs[lane]))
        else:
            vals = _batch_load(store, addrs, mask, state.lanes)
        state.vrf.write_masked(d.dst, mask, vals)
        return mask, fault

    def _exec_st(self, state, d, mask, fault):
        addrs, mask, fault = self._addrs(state, d, mask, fault)
        vals, mask, fault = self._read_operand(state, d.src, mask, fault)
        if not mask.any():
            return mask, fault
        store = self._resolve_store(state, d.space)
        if store is None:
            for lane in np.flatnonzero(mask).tolist():
                state.local_store(lane).store(
                    int(addrs[lane]), int(_lane_val(vals, lane))
                )
        else:
            _batch_store(store, addrs, vals, mask)
        return mask, fault

    def _exec_atom(self, state, d, mask, fault):
        addrs, mask, fault = self._addrs(state, d, mask, fault)
        srcs, mask, fault = self._read_operand(state, d.src, mask, fault)
        if not mask.any():
            return mask, fault
        shared_store = self._resolve_store(state, d.space)
        old_vals = np.zeros(state.lanes, dtype=_U64)
        done = np.zeros(state.lanes, dtype=bool)
        for lane in np.flatnonzero(mask).tolist():
            store = (
                shared_store
                if shared_store is not None
                else state.local_store(lane)
            )
            addr = int(addrs[lane])
            src = int(_lane_val(srcs, lane))
            old = store.load(addr)
            op = d.op
            if op == "add":
                new = (old + src) & _MASK32
            elif op == "exch":
                new = src
            elif op == "max":
                new = max(_signed(old), _signed(src)) & _MASK32
            elif op == "min":
                new = min(_signed(old), _signed(src)) & _MASK32
            elif op == "cas":
                lane_mask = np.zeros(state.lanes, dtype=bool)
                lane_mask[lane] = True
                val, lm, lf = self._read_operand(
                    state, d.src2, lane_mask, None
                )
                if lf is not None and lf.any():
                    fault = lf if fault is None else (fault | lf)
                    mask = mask & ~lf
                    continue
                val = int(_lane_val(val, lane))
                new = val if old == src else old
            else:
                raise SimulationError(f"unknown atomic {op}")
            store.store(addr, new)
            old_vals[lane] = old
            done[lane] = True
        if done.any():
            state.vrf.write_masked(d.dst, done, old_vals)
        return mask, fault


# -- lane state of one thread block -------------------------------------------------


class _VBlockState:
    """Per-block lane arrays plus the shared scheduler worklists."""

    def __init__(self, ex: VectorExecutor, launch: Launch, env, ctaid: int):
        lanes = launch.block
        self.ex = ex
        self.env = env
        self.ctaid = ctaid
        self.lanes = lanes
        self.labels = ex.labels
        self.vrf = VRegisterFile(
            lanes,
            ex.rf_code_factory(),
            list(ex._reg_names),
            protected=ex.kernel.meta.get("protected_registers"),
        )
        self.executed = np.zeros(lanes, dtype=_I64)
        self.recoveries = np.zeros(lanes, dtype=_I64)
        self.region_entry_executed = np.zeros(lanes, dtype=_I64)
        entry_idx = ex._block_index[ex.kernel.entry.label]
        self.region_block = np.full(lanes, entry_idx, dtype=np.int32)
        self.visits: Dict[str, np.ndarray] = {
            ex.kernel.entry.label: np.ones(lanes, dtype=_I64)
        }
        self.done_count = 0
        self.frontier: List[Tuple[int, int, np.ndarray]] = [
            (entry_idx, 0, np.ones(lanes, dtype=bool))
        ]
        self.parked: List[Tuple[int, int, np.ndarray]] = []
        self._locals: Dict[int, WordStore] = {}
        self._lane_views: Dict[int, _LaneView] = {}
        self._specials: Dict[str, object] = {}
        self.fault_reg: List[Optional[str]] = [None] * lanes

    def lane_view(self, lane: int) -> _LaneView:
        view = self._lane_views.get(lane)
        if view is None:
            view = self._lane_views[lane] = _LaneView(self, lane)
        return view

    def local_store(self, lane: int) -> WordStore:
        store = self._locals.get(lane)
        if store is None:
            store = self._locals[lane] = WordStore(
                f"local[{self.ctaid},{lane}]", size_bytes=1 << 16
            )
        return store

    def note_fault(self, fault_mask: np.ndarray, reg_name: str) -> None:
        for lane in np.flatnonzero(fault_mask).tolist():
            self.fault_reg[lane] = reg_name

    def special(self, name: str):
        val = self._specials.get(name)
        if val is None:
            if name == "%tid.x":
                val = np.arange(self.lanes, dtype=_U64)
            elif name == "%tid.y":
                val = 0
            elif name == "%ntid.x":
                val = self.env.launch.block
            elif name == "%ntid.y":
                val = 1
            elif name == "%ctaid.x":
                val = self.ctaid
            elif name == "%ctaid.y":
                val = 0
            elif name == "%nctaid.x":
                val = self.env.launch.grid
            elif name == "%nctaid.y":
                val = 1
            else:
                raise SimulationError(f"unknown special register {name}")
            self._specials[name] = val
        return val

    def enter_block(self, mask: np.ndarray, block_idx: int) -> None:
        label = self.labels[block_idx]
        counts = self.visits.get(label)
        if counts is None:
            counts = self.visits[label] = np.zeros(self.lanes, dtype=_I64)
        counts[mask] += 1
        if label in self.ex._recovery_labels:
            self.region_block[mask] = block_idx
            self.region_entry_executed[mask] = self.executed[mask]

    def retire(self, mask: np.ndarray) -> None:
        self.done_count += int(mask.sum())

    # -- aggregation (same formulas as the scalar ``_run_block``) --

    def aggregate(self, result: ExecutionResult) -> None:
        lanes = self.lanes
        result.rf_reads += int(self.vrf.reads.sum())
        result.rf_writes += int(self.vrf.writes.sum())
        result.detections += int(self.vrf.detections.sum())
        result.recoveries += int(self.recoveries.sum())
        result.instructions += int(self.executed.sum())
        for lane in range(lanes):
            result.thread_instructions[(self.ctaid, lane)] = int(
                self.executed[lane]
            )
        result.threads += lanes

        block_classes = self._static_block_classes()
        warp_size = 32
        for w in range((lanes + warp_size - 1) // warp_size):
            lo, hi = w * warp_size, min((w + 1) * warp_size, lanes)
            merged: Counter = Counter()
            for label, counts in self.visits.items():
                entries = int(counts[lo:hi].max())
                if not entries:
                    continue
                for cls, per_visit in block_classes[label].items():
                    merged[cls] += per_visit * entries
            result.warp_counts[(self.ctaid, w)] = merged
        result.shared_accesses += self.env.shared.reads + self.env.shared.writes
        result.global_accesses = (
            self.env.mem.global_mem.reads + self.env.mem.global_mem.writes
        )

    def _static_block_classes(self) -> Dict[str, Counter]:
        cached = getattr(self.ex, "_block_classes", None)
        if cached is not None:
            return cached
        table: Dict[str, Counter] = {}
        for blk in self.ex.kernel.blocks:
            counts: Counter = Counter()
            for inst in blk.instructions:
                counts[_classify(inst)] += 1
            table[blk.label] = counts
        self.ex._block_classes = table
        return table


# -- batched memory -----------------------------------------------------------------


def _batch_load(store: WordStore, addrs: np.ndarray, mask, lanes: int):
    """Masked gather with the scalar :meth:`WordStore.load` semantics:
    counters move per lane; the first misbehaving lane (in lane order)
    raises exactly the scalar exception."""
    active = np.flatnonzero(mask).tolist()
    vals = np.zeros(lanes, dtype=_U64)
    words = store.words
    fast = not store.poisoned
    if fast:
        a = addrs[mask]
        if not (np.any(a % _U64(4)) or np.any(a + _U64(4) > store.size_bytes)):
            store.reads += len(active)
            for lane in active:
                vals[lane] = words.get(int(addrs[lane]) >> 2, 0)
            return vals
    for lane in active:  # slow path: per-lane, to fault like the scalar
        vals[lane] = store.load(int(addrs[lane]))
    return vals


def _batch_store(store: WordStore, addrs: np.ndarray, values, mask) -> None:
    active = np.flatnonzero(mask).tolist()
    a = addrs[mask]
    if not store.poisoned and not (
        np.any(a % _U64(4)) or np.any(a + _U64(4) > store.size_bytes)
    ):
        store.writes += len(active)
        words = store.words
        for lane in active:
            words[int(addrs[lane]) >> 2] = int(_lane_val(values, lane)) & _MASK32
        return
    for lane in active:
        store.store(int(addrs[lane]), int(_lane_val(values, lane)))


def _lane_val(values, lane: int) -> int:
    if isinstance(values, np.ndarray):
        return int(values[lane])
    return int(values)


def _bcast(v, lanes: int) -> np.ndarray:
    if isinstance(v, np.ndarray):
        return v
    return np.full(lanes, int(v) & _MASK32, dtype=_U64)


def _signed(b: int) -> int:
    b &= _MASK32
    return b - (1 << 32) if b & (1 << 31) else b


# -- vectorized ALU semantics -------------------------------------------------------


def _as_f64(bits) -> np.ndarray:
    """uint64 bit patterns -> float32 view -> float64 (cvtss2sd, the same
    hardware widening the scalar ``b2f`` performs via struct)."""
    b32 = (bits & _U64(_MASK32)).astype(np.uint32)
    return b32.view(np.float32).astype(np.float64)


def _to_f32_bits(f64: np.ndarray) -> np.ndarray:
    """float64 -> float32 (one rounding, as ``f2b``) -> uint64 bits."""
    return f64.astype(np.float32).view(np.uint32).astype(_U64)


def _valu_compute(op: str, dt: DType, vals, state) -> np.ndarray:
    lanes = state.lanes
    vals = [_bcast(v, lanes) for v in vals]
    if op == "cvt":
        if dt.is_float:
            s = vals[0].astype(_I64)
            s = np.where(s >= _I64(1 << 31), s - _I64(1 << 32), s)
            return _to_f32_bits(s.astype(np.float64))
        f = _as_f64(vals[0])
        out = np.zeros(lanes, dtype=_U64)
        finite = np.isfinite(f)
        big = finite & (np.abs(f) >= float(1 << 62))
        small = finite & ~big
        if small.any():
            out[small] = (
                np.trunc(f[small]).astype(_I64).astype(_U64) & _U64(_MASK32)
            )
        for lane in np.flatnonzero(big).tolist():
            out[lane] = int(f[lane]) & _MASK32
        return out
    if dt.is_float:
        return _vfloat_op(op, vals, lanes)
    return _vint_op(op, dt, vals)


def _vfloat_op(op: str, vals, lanes: int) -> np.ndarray:
    if op in _LANE_FLOAT_OPS:
        # Per-lane through the scalar helper: one libm for both backends.
        f = [_as_f64(v) for v in vals]
        out = np.zeros(lanes, dtype=_U64)
        for lane in range(lanes):
            out[lane] = f2b(_float_op(op, [float(x[lane]) for x in f]))
        return out
    a = _as_f64(vals[0])
    b = _as_f64(vals[1]) if len(vals) > 1 else None
    c = _as_f64(vals[2]) if len(vals) > 2 else None
    if op == "mov":
        r = a
    elif op == "add":
        r = a + b
    elif op == "sub":
        r = a - b
    elif op == "mul":
        r = a * b
    elif op in ("mad", "fma"):
        r = a * b + c
    elif op == "div":
        # Scalar semantics: b == 0 -> +/-inf by the *numerator's* sign
        # comparison (not IEEE's signed-zero rule), nan when a == 0 too.
        safe = np.where(b == 0.0, 1.0, b)
        r = np.where(
            b == 0.0,
            np.where(a > 0, math.inf, np.where(a < 0, -math.inf, math.nan)),
            a / safe,
        )
    elif op == "rem":
        safe = np.where(b == 0.0, 1.0, b)
        r = np.where(b == 0.0, math.nan, np.fmod(a, safe))
    elif op == "min":
        r = np.where(b < a, b, a)  # python min(): nan-keeps-a
    elif op == "max":
        r = np.where(b > a, b, a)
    elif op == "neg":
        r = -a
    elif op == "abs":
        r = np.abs(a)
    elif op == "sqrt":
        r = np.where(a >= 0, np.sqrt(np.abs(a)), math.nan)
    elif op == "rcp":
        safe = np.where(a == 0.0, 1.0, a)
        r = np.where(a == 0.0, math.inf, 1.0 / safe)
    else:
        raise SimulationError(f"unknown float op {op}")
    return _to_f32_bits(r)


def _vint_op(op: str, dt: DType, vals) -> np.ndarray:
    raw = [v & _U64(_MASK32) for v in vals]
    if op == "mov":
        return raw[0]
    if op == "and":
        return raw[0] & raw[1]
    if op == "or":
        return raw[0] | raw[1]
    if op == "xor":
        return raw[0] ^ raw[1]
    if op == "not":
        return ~raw[0] & _U64(_MASK32)
    if op == "shl":
        return (raw[0] << (raw[1] & _U64(31))) & _U64(_MASK32)
    if op == "shr":
        sh = raw[1] & _U64(31)
        if dt.is_signed:
            a = _signed_arr(raw[0])
            return (a >> sh.astype(_I64)).astype(_U64) & _U64(_MASK32)
        return raw[0] >> sh

    if dt.is_signed:
        a = _signed_arr(raw[0])
        b = _signed_arr(raw[1]) if len(raw) > 1 else None
        c = _signed_arr(raw[2]) if len(raw) > 2 else None
        if op == "add":
            r = a + b
        elif op == "sub":
            r = a - b
        elif op == "mul":
            r = a * b
        elif op == "mulhi":
            r = (a * b) >> _I64(32)
        elif op == "mad":
            r = a * b + c
        elif op == "div":
            safe = np.where(b == 0, _I64(1), b)
            q = np.abs(a) // np.abs(safe)
            q = np.where((a < 0) != (b < 0), -q, q)
            r = np.where(b == 0, _I64(0), q)
        elif op == "rem":
            safe = np.where(b == 0, _I64(1), b)
            m = np.abs(a) % np.abs(safe)
            m = np.where(a < 0, -m, m)
            r = np.where(b == 0, _I64(0), m)
        elif op == "min":
            r = np.minimum(a, b)
        elif op == "max":
            r = np.maximum(a, b)
        elif op == "neg":
            r = -a
        elif op == "abs":
            r = np.abs(a)
        else:
            raise SimulationError(f"unknown integer op {op}")
        return (r & _I64(_MASK32)).astype(_U64)

    a = raw[0]
    b = raw[1] if len(raw) > 1 else None
    c = raw[2] if len(raw) > 2 else None
    if op == "add":
        r = a + b
    elif op == "sub":
        r = a - b
    elif op == "mul":
        r = a * b
    elif op == "mulhi":
        r = (a * b) >> _U64(32)
    elif op == "mad":
        r = a * b + c
    elif op == "div":
        safe = np.where(b == _U64(0), _U64(1), b)
        r = np.where(b == _U64(0), _U64(0), a // safe)
    elif op == "rem":
        safe = np.where(b == _U64(0), _U64(1), b)
        r = np.where(b == _U64(0), _U64(0), a % safe)
    elif op == "min":
        r = np.minimum(a, b)
    elif op == "max":
        r = np.maximum(a, b)
    elif op == "neg":
        r = -a  # wraps mod 2**64; masked below
    elif op == "abs":
        r = a
    else:
        raise SimulationError(f"unknown integer op {op}")
    return r & _U64(_MASK32)


def _signed_arr(raw: np.ndarray) -> np.ndarray:
    a = raw.astype(_I64)
    return np.where(a >= _I64(1 << 31), a - _I64(1 << 32), a)


def _vcompare(cmp: str, dt: DType, a, b, state) -> np.ndarray:
    lanes = state.lanes
    a = _bcast(a, lanes)
    b = _bcast(b, lanes)
    if dt.is_float:
        fa, fb = _as_f64(a), _as_f64(b)
        anynan = np.isnan(fa) | np.isnan(fb)
        res = {
            "eq": fa == fb,
            "ne": fa != fb,
            "lt": fa < fb,
            "le": fa <= fb,
            "gt": fa > fb,
            "ge": fa >= fb,
        }[cmp]
        return np.where(anynan, cmp == "ne", res)
    if dt.is_signed:
        va, vb = _signed_arr(a), _signed_arr(b)
    else:
        va, vb = a & _U64(_MASK32), b & _U64(_MASK32)
    return {
        "eq": va == vb,
        "ne": va != vb,
        "lt": va < vb,
        "le": va <= vb,
        "gt": va > vb,
        "ge": va >= vb,
    }[cmp]
