"""Per-thread register file with EDC (parity) tracking.

Every register holds an encoded codeword of its 32-bit value.  Writes
encode; reads run the code's ``check`` — if it fires, :class:`ParityError`
is raised *before the value can be used*, which is the no-propagation
property Penny's recovery correctness depends on (Appendix A, Axiom 1).

Fault injection flips raw codeword bits.  An unprotected register file
(``code=None``) stores bare values and lets corrupted reads through — used
for SDC baselines.  Selective-protection policies pass ``protected`` (a
set of register names, from ``kernel.meta["protected_registers"]``):
registers outside the set store bare values even when a code is
installed, so faults on them go undetected exactly as the policy chose.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from repro.coding.base import Code

_MASK32 = 0xFFFFFFFF


class ParityError(RuntimeError):
    """EDC detected a corrupted register at read time."""

    def __init__(self, reg_name: str):
        super().__init__(f"parity mismatch on register {reg_name}")
        self.reg_name = reg_name


class RegisterFile:
    """One thread's registers: name -> codeword."""

    def __init__(
        self,
        code: Optional[Code] = None,
        protected: Optional[FrozenSet[str]] = None,
    ):
        self.code = code
        #: names covered by the detection code; ``None`` = every register
        self.protected = protected
        self.words: Dict[str, int] = {}
        self.reads = 0
        self.writes = 0
        self.detections = 0
        self.injected_faults = 0

    def _covered(self, name: str) -> bool:
        return self.code is not None and (
            self.protected is None or name in self.protected
        )

    def write(self, name: str, value: int) -> None:
        value &= _MASK32
        self.writes += 1
        if self._covered(name):
            self.words[name] = self.code.encode(value)
        else:
            self.words[name] = value

    def read(self, name: str) -> int:
        self.reads += 1
        word = self.words.get(name)
        if word is None:
            # Reading a never-written register: define it as zero (and
            # encode it so subsequent flips are detectable).
            self.write(name, 0)
            self.reads += 0
            word = self.words[name]
        if not self._covered(name):
            return word & _MASK32
        if self.code.check(word):
            self.detections += 1
            raise ParityError(name)
        return self.code.extract_data(word)

    def peek(self, name: str) -> Optional[int]:
        """Raw data bits without a parity check (diagnostics only)."""
        word = self.words.get(name)
        if word is None:
            return None
        if not self._covered(name):
            return word & _MASK32
        return self.code.extract_data(word)

    def flip_bits(self, name: str, bit_positions: Iterable[int]) -> bool:
        """Inject a fault: flip codeword bits of a register.  Returns False
        when the register does not exist yet (nothing to corrupt)."""
        if name not in self.words:
            return False
        word = self.words[name]
        for bit in bit_positions:
            word ^= 1 << bit
        self.words[name] = word
        self.injected_faults += 1
        return True

    def registers(self):
        return list(self.words)

    def random_register(self, rng) -> Optional[str]:
        """Deterministically pick a live register with ``rng`` (the name
        list is sorted first so the choice depends only on the rng state
        and architectural state, never on dict ordering)."""
        regs = sorted(self.words)
        if not regs:
            return None
        return regs[rng.randrange(len(regs))]
