"""GPU architecture simulator (GPGPU-Sim stand-in).

A functional SIMT interpreter for the PTX-subset IR with:

- a parity/EDC-tracked register file — every register read is checked, so
  corrupted values can never propagate (the property Penny's recovery
  correctness rests on, Appendix A),
- shared / global / local / const / param memory spaces (ECC-protected:
  fault injection never touches them),
- barrier-synchronized thread blocks with divergence (threads execute
  independently and meet at barriers),
- a recovery runtime that catches parity exceptions, restores live-ins from
  checkpoint storage or recovery slices, and re-executes the region,
- a fault injector with three surfaces — register bits at chosen dynamic
  points, checkpoint slots in shared/global memory under a SECDED
  correct-or-escalate model, and strikes during recovery itself — plus a
  parallel, journaled campaign engine with a DUE taxonomy
  (:mod:`repro.gpusim.campaign`),
- an analytic timing model (occupancy + latency hiding) and an RF energy
  model (GPUWattch stand-in) fed by the interpreter's dynamic counts.

Two interchangeable execution engines sit behind :func:`make_executor`:
the scalar interpreter (:mod:`repro.gpusim.executor`, the semantic
oracle) and a NumPy lane-parallel engine (:mod:`repro.gpusim.vexec`) that
evaluates whole thread blocks per instruction.  They are bit-for-bit
equivalent — same results, counters, fault hooks, and recovery behavior —
so ``backend="auto"`` simply picks the fast one.

Fermi (Tesla C2050) and Volta (Titan V) configurations mirror the paper's
two evaluation targets.
"""

from repro.gpusim.config import FERMI_C2050, VOLTA_TITAN_V, GpuConfig
from repro.gpusim.memory import MemoryImage
from repro.gpusim.regfile import ParityError, RegisterFile
from repro.gpusim.executor import ExecutionResult, Executor, Launch
from repro.gpusim.backend import (
    BACKEND_CHOICES,
    ExecutorBackend,
    make_executor,
    resolve_backend,
)
from repro.gpusim.occupancy import occupancy
from repro.gpusim.timing import TimingModel, TimingReport
from repro.gpusim.energy import rf_energy
from repro.gpusim.faults import (
    CheckpointFaultPlan,
    ComposedFaultPlan,
    DueType,
    FaultCampaign,
    FaultOutcome,
    FaultPlan,
    RateFaultPlan,
    RecoveryFaultPlan,
    classify_due,
)
from repro.gpusim.campaign import (
    CampaignReport,
    CampaignSpec,
    InjectionRecord,
    JournalFsck,
    ParallelCampaign,
    fsck_journal,
    run_campaign,
    wilson_interval,
)

__all__ = [
    "GpuConfig",
    "FERMI_C2050",
    "VOLTA_TITAN_V",
    "MemoryImage",
    "RegisterFile",
    "ParityError",
    "Executor",
    "ExecutorBackend",
    "make_executor",
    "resolve_backend",
    "BACKEND_CHOICES",
    "Launch",
    "ExecutionResult",
    "occupancy",
    "TimingModel",
    "TimingReport",
    "rf_energy",
    "FaultCampaign",
    "FaultOutcome",
    "FaultPlan",
    "RateFaultPlan",
    "CheckpointFaultPlan",
    "RecoveryFaultPlan",
    "ComposedFaultPlan",
    "DueType",
    "classify_due",
    "CampaignSpec",
    "CampaignReport",
    "InjectionRecord",
    "JournalFsck",
    "ParallelCampaign",
    "fsck_journal",
    "run_campaign",
    "wilson_interval",
]
