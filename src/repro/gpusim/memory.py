"""Simulated GPU memory spaces.

All spaces are word-addressed stores of 32-bit values (our IR only issues
4-byte-aligned accesses).  GPU memories are ECC-protected (the paper's
premise), so the fault injector never touches them — only the register
file.  Values are stored as raw 32-bit patterns; interpretation (int vs
float) happens in the executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

_MASK32 = 0xFFFFFFFF


class MemoryError32(RuntimeError):
    """Unaligned or out-of-space access."""


class WordStore:
    """A sparse word-addressed memory with a bump allocator."""

    def __init__(self, name: str, size_bytes: int = 1 << 24):
        self.name = name
        self.size_bytes = size_bytes
        self.words: Dict[int, int] = {}
        self._alloc_ptr = 0
        self.reads = 0
        self.writes = 0

    def _check(self, addr: int) -> int:
        if addr % 4 != 0:
            raise MemoryError32(
                f"unaligned 4-byte access at {addr:#x} in {self.name}"
            )
        if addr < 0 or addr + 4 > self.size_bytes:
            raise MemoryError32(
                f"address {addr:#x} out of bounds for {self.name}"
            )
        return addr // 4

    def load(self, addr: int) -> int:
        self.reads += 1
        return self.words.get(self._check(addr), 0)

    def store(self, addr: int, value: int) -> None:
        self.writes += 1
        self.words[self._check(addr)] = value & _MASK32

    def allocate(self, num_bytes: int, align: int = 256) -> int:
        """Reserve a region; returns its base address."""
        base = (self._alloc_ptr + align - 1) // align * align
        if base + num_bytes > self.size_bytes:
            raise MemoryError32(f"{self.name} exhausted")
        self._alloc_ptr = base + num_bytes
        return base

    def write_block(self, addr: int, values: Iterable[int]) -> None:
        for i, v in enumerate(values):
            self.store(addr + 4 * i, int(v))

    def read_block(self, addr: int, count: int) -> List[int]:
        return [self.load(addr + 4 * i) for i in range(count)]


@dataclass
class MemoryImage:
    """All memory state of one kernel launch.

    ``global_mem`` and ``const_mem`` are launch-wide; ``shared`` is per
    thread block and ``local`` per thread (created on demand by the
    executor).  ``params`` maps kernel parameter names to raw values.
    """

    global_mem: WordStore = field(default_factory=lambda: WordStore("global"))
    const_mem: WordStore = field(default_factory=lambda: WordStore("const"))
    params: Dict[str, int] = field(default_factory=dict)

    def alloc_global(self, num_words: int) -> int:
        return self.global_mem.allocate(num_words * 4)

    def set_param(self, name: str, value: int) -> None:
        self.params[name] = value & _MASK32

    def upload(self, addr: int, values: Iterable[int]) -> None:
        self.global_mem.write_block(addr, values)

    def download(self, addr: int, count: int) -> List[int]:
        return self.global_mem.read_block(addr, count)

    def snapshot_global(self) -> Dict[int, int]:
        return dict(self.global_mem.words)
