"""Simulated GPU memory spaces.

All spaces are word-addressed stores of 32-bit values (our IR only issues
4-byte-aligned accesses).  GPU memories are SECDED-ECC-protected (the
paper's premise), which the campaign engine models explicitly rather than
assuming fault-free storage: a single flipped bit in a word is corrected
in place (invisible to the program), a double flip is *detected but
uncorrectable* — the word is poisoned and the next load raises
:class:`EccUncorrectableError` — and triple-and-wider upsets can escape
the code entirely and silently corrupt the stored pattern.  Rewriting a
word re-encodes it, scrubbing any pending poison (exactly what a
checkpoint overwrite does to a struck slot).  Values are stored as raw
32-bit patterns; interpretation (int vs float) happens in the executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

_MASK32 = 0xFFFFFFFF


class MemoryError32(RuntimeError):
    """Unaligned or out-of-space access."""


class EccUncorrectableError(MemoryError32):
    """A load touched a word whose ECC reported a detected-uncorrectable
    error (the memory-side escalation path of SECDED's correct-or-escalate
    contract)."""

    def __init__(self, store_name: str, addr: int):
        super().__init__(
            f"ECC uncorrectable error at {addr:#x} in {store_name}"
        )
        self.addr = addr


class WordStore:
    """A sparse word-addressed memory with a bump allocator."""

    def __init__(self, name: str, size_bytes: int = 1 << 24):
        self.name = name
        self.size_bytes = size_bytes
        self.words: Dict[int, int] = {}
        self._alloc_ptr = 0
        self.reads = 0
        self.writes = 0
        #: word indices whose ECC state is detected-uncorrectable
        self.poisoned: Set[int] = set()
        self.ecc_corrections = 0

    def _check(self, addr: int) -> int:
        if addr % 4 != 0:
            raise MemoryError32(
                f"unaligned 4-byte access at {addr:#x} in {self.name}"
            )
        if addr < 0 or addr + 4 > self.size_bytes:
            raise MemoryError32(
                f"address {addr:#x} out of bounds for {self.name}"
            )
        return addr // 4

    def load(self, addr: int) -> int:
        self.reads += 1
        idx = self._check(addr)
        if idx in self.poisoned:
            raise EccUncorrectableError(self.name, addr)
        return self.words.get(idx, 0)

    def store(self, addr: int, value: int) -> None:
        self.writes += 1
        idx = self._check(addr)
        # A write re-encodes the word, clearing any uncorrectable state.
        self.poisoned.discard(idx)
        self.words[idx] = value & _MASK32

    # -- ECC fault model (campaign engine) -----------------------------------------

    def ecc_correct(self, addr: int) -> None:
        """A single-bit upset struck this word: SECDED corrects it in
        place.  Only the correction counter moves — the program never
        observes anything."""
        self._check(addr)
        self.ecc_corrections += 1

    def poison(self, addr: int) -> None:
        """A double-bit upset struck this word: detected, uncorrectable.
        The next load raises :class:`EccUncorrectableError`; a store
        scrubs the poison (rewrite re-encodes)."""
        self.poisoned.add(self._check(addr))

    def corrupt(self, addr: int, xor_mask: int) -> None:
        """A ≥3-bit upset escaped SECDED (possible miscorrection): the
        stored pattern silently changes."""
        idx = self._check(addr)
        self.words[idx] = (self.words.get(idx, 0) ^ xor_mask) & _MASK32

    def allocate(self, num_bytes: int, align: int = 256) -> int:
        """Reserve a region; returns its base address."""
        base = (self._alloc_ptr + align - 1) // align * align
        if base + num_bytes > self.size_bytes:
            raise MemoryError32(f"{self.name} exhausted")
        self._alloc_ptr = base + num_bytes
        return base

    def write_block(self, addr: int, values: Iterable[int]) -> None:
        for i, v in enumerate(values):
            self.store(addr + 4 * i, int(v))

    def read_block(self, addr: int, count: int) -> List[int]:
        return [self.load(addr + 4 * i) for i in range(count)]


@dataclass
class MemoryImage:
    """All memory state of one kernel launch.

    ``global_mem`` and ``const_mem`` are launch-wide; ``shared`` is per
    thread block and ``local`` per thread (created on demand by the
    executor).  ``params`` maps kernel parameter names to raw values.
    """

    global_mem: WordStore = field(default_factory=lambda: WordStore("global"))
    const_mem: WordStore = field(default_factory=lambda: WordStore("const"))
    params: Dict[str, int] = field(default_factory=dict)

    def alloc_global(self, num_words: int) -> int:
        return self.global_mem.allocate(num_words * 4)

    def set_param(self, name: str, value: int) -> None:
        self.params[name] = value & _MASK32

    def upload(self, addr: int, values: Iterable[int]) -> None:
        self.global_mem.write_block(addr, values)

    def download(self, addr: int, count: int) -> List[int]:
        return self.global_mem.read_block(addr, count)

    def snapshot_global(self) -> Dict[int, int]:
        return dict(self.global_mem.words)
