"""Functional SIMT interpreter for the PTX-subset IR.

Threads execute independently and synchronize at barriers (a cooperative
round-robin scheduler advances every thread of a block to the barrier
before releasing it).  Register reads go through the parity-tracked
register file; a detection hands control to the recovery runtime
(:mod:`repro.gpusim.recovery`) when the kernel carries a recovery table.

The interpreter also produces the dynamic instruction statistics the
timing and energy models consume: per-warp issue counts by instruction
class, memory traffic by space, and register-file access counts.
"""

from __future__ import annotations

import inspect
import math
import struct
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

import repro.obs as obs
from repro.coding.parity import ParityCode
from repro.gpusim.memory import MemoryImage, WordStore
from repro.gpusim.regfile import ParityError, RegisterFile
from repro.ir.instructions import (
    Alu,
    Atom,
    Bar,
    Bra,
    Checkpoint,
    Ld,
    Membar,
    Ret,
    Selp,
    Setp,
    St,
)
from repro.ir.module import Kernel
from repro.ir.types import DType, Imm, MemSpace, Reg, Special, SymRef

_MASK32 = 0xFFFFFFFF


def f2b(f: float) -> int:
    """Round a Python float to fp32 and return its bit pattern."""
    try:
        return struct.unpack("<I", struct.pack("<f", f))[0]
    except (OverflowError, ValueError):
        return struct.unpack("<I", struct.pack("<f", math.inf if f > 0 else -math.inf))[0]


def b2f(b: int) -> float:
    return struct.unpack("<f", struct.pack("<I", b & _MASK32))[0]


def to_signed(b: int) -> int:
    b &= _MASK32
    return b - (1 << 32) if b & (1 << 31) else b


def _plan_takes_env(fault_plan) -> bool:
    """Does this fault plan's ``after_instruction`` take ``(thread, env)``?

    Plans declare their hook surface explicitly via a ``HOOK_API`` class
    attribute (see :class:`repro.gpusim.faults.FaultPlan`): version >= 2
    means the widened ``(thread, env)`` signature, version 1 the original
    ``(thread)`` one.  Third-party plans without the attribute fall back
    to the historical ``inspect.signature`` arity probe.
    """
    if fault_plan is None:
        return False
    api = getattr(fault_plan, "HOOK_API", None)
    if api is not None:
        return int(api) >= 2
    try:
        hook_params = inspect.signature(
            fault_plan.after_instruction
        ).parameters
        return len(hook_params) >= 2
    except (TypeError, ValueError):
        return True


class SimulationError(RuntimeError):
    """The simulated program misbehaved (bad address, runaway loop, ...)."""


class UnrecoverableError(SimulationError):
    """Detection fired but recovery was impossible or diverged.

    ``cause`` is the DUE-taxonomy label the campaign engine reports
    (:class:`repro.gpusim.faults.DueType`): every raise site in the
    executor and the recovery runtime tags its failure mode explicitly
    so no DUE collapses into an undifferentiated bucket.
    """

    def __init__(self, message: str, cause: str = "slice_failure"):
        super().__init__(message)
        self.cause = cause


class WatchdogTimeout(SimulationError):
    """The per-injection instruction-budget watchdog fired: the run burned
    through its dynamic-instruction allowance without terminating (runaway
    loop from a corrupted induction variable, barrier livelock, ...)."""


@dataclass
class Launch:
    """Launch geometry + arguments.  ``params`` values are raw 32-bit ints
    (pointers are global-memory addresses; floats pre-packed via f2b)."""

    grid: int = 1
    block: int = 32
    params: Dict[str, int] = field(default_factory=dict)

    @property
    def total_threads(self) -> int:
        return self.grid * self.block


@dataclass
class ExecutionResult:
    """Aggregated dynamic statistics of one kernel run.

    Implements the :class:`repro.obs.Reportable` protocol (``to_dict``
    / ``summary``) so runs serialize to the JSONL metrics sink with the
    same key conventions as every other result type.
    """

    #: per-warp instruction-class counts: warp id -> class -> count
    warp_counts: Dict[Tuple[int, int], Counter] = field(default_factory=dict)
    rf_reads: int = 0
    rf_writes: int = 0
    detections: int = 0
    recoveries: int = 0
    threads: int = 0
    instructions: int = 0
    #: per-thread dynamic instruction counts: (ctaid, tid) -> executed
    thread_instructions: Dict[Tuple[int, int], int] = field(
        default_factory=dict
    )
    shared_accesses: int = 0
    global_accesses: int = 0
    #: which engine produced this result ("scalar" | "vector"); excluded
    #: from equality so differential A/B comparisons stay meaningful
    backend: str = field(default="scalar", compare=False)

    def total_by_class(self) -> Counter:
        total = Counter()
        for counts in self.warp_counts.values():
            total.update(counts)
        return total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "execution_result",
            "backend": self.backend,
            "threads": self.threads,
            "instructions": self.instructions,
            "detections": self.detections,
            "recoveries": self.recoveries,
            "rf_reads": self.rf_reads,
            "rf_writes": self.rf_writes,
            "shared_accesses": self.shared_accesses,
            "global_accesses": self.global_accesses,
            "inst_classes": {
                cls: n for cls, n in sorted(self.total_by_class().items())
            },
            "warp_counts": {
                f"{ctaid}:{warp}": {c: n for c, n in sorted(counts.items())}
                for (ctaid, warp), counts in sorted(self.warp_counts.items())
            },
            "thread_instructions": {
                f"{ctaid}:{tid}": n
                for (ctaid, tid), n in sorted(
                    self.thread_instructions.items()
                )
            },
        }

    def summary(self) -> Dict[str, Any]:
        return {
            "threads": self.threads,
            "instructions": self.instructions,
            "detections": self.detections,
            "recoveries": self.recoveries,
            "rf_reads": self.rf_reads,
            "rf_writes": self.rf_writes,
        }


class ThreadContext:
    """One thread's architectural state."""

    __slots__ = (
        "tid",
        "ctaid",
        "rf",
        "local",
        "label",
        "index",
        "region_label",
        "done",
        "at_barrier",
        "counts",
        "visits",
        "executed",
        "recoveries",
        "region_entry_executed",
    )

    def __init__(self, tid: int, ctaid: int, rf: RegisterFile):
        self.tid = tid
        self.ctaid = ctaid
        self.rf = rf
        self.local = WordStore(f"local[{ctaid},{tid}]", size_bytes=1 << 16)
        self.label = ""
        self.index = 0
        self.region_label = ""
        self.done = False
        self.at_barrier = False
        self.counts: Counter = Counter()
        self.visits: Counter = Counter()  # block label -> entry count
        self.executed = 0
        self.recoveries = 0
        #: ``executed`` as of the last region entry; the difference at a
        #: recovery is the work the region re-executes (obs histogram)
        self.region_entry_executed = 0


#: instruction classes for the timing model
CLASS_ALU = "alu"
CLASS_SFU = "sfu"
CLASS_LD_GLOBAL = "ld_global"
CLASS_ST_GLOBAL = "st_global"
CLASS_LD_SHARED = "ld_shared"
CLASS_ST_SHARED = "st_shared"
CLASS_LD_OTHER = "ld_other"
CLASS_ST_OTHER = "st_other"
CLASS_BAR = "bar"
CLASS_ATOM = "atom"

_SFU_OPS = frozenset({"sqrt", "rcp", "ex2", "lg2", "sin", "cos", "div", "rem"})


def _classify(inst) -> str:
    """Static instruction class for the timing model."""
    if isinstance(inst, Alu):
        return CLASS_SFU if inst.op in _SFU_OPS else CLASS_ALU
    if isinstance(inst, Ld):
        if inst.space is MemSpace.GLOBAL:
            return CLASS_LD_GLOBAL
        if inst.space is MemSpace.SHARED:
            return CLASS_LD_SHARED
        return CLASS_LD_OTHER
    if isinstance(inst, St):
        if inst.space is MemSpace.GLOBAL:
            return CLASS_ST_GLOBAL
        if inst.space is MemSpace.SHARED:
            return CLASS_ST_SHARED
        return CLASS_ST_OTHER
    if isinstance(inst, Atom):
        return CLASS_ATOM
    if isinstance(inst, Bar):
        return CLASS_BAR
    return CLASS_ALU  # setp/selp/bra/membar/ret issue like ALU ops


def _publish_counters(result: ExecutionResult) -> None:
    """Dump one run's dynamic statistics into the current tracer's
    metrics registry.  End-of-run only — no per-instruction observability
    cost in either engine's hot loop.  Shared by every backend so the
    metrics key space is identical whichever engine produced the run."""
    if obs.current_tracer() is None:
        return
    obs.inc("sim.runs")
    obs.inc("sim.instructions", result.instructions)
    obs.inc("sim.threads", result.threads)
    obs.inc("sim.detections", result.detections)
    obs.inc("sim.recoveries", result.recoveries)
    obs.inc("sim.rf_reads", result.rf_reads)
    obs.inc("sim.rf_writes", result.rf_writes)
    obs.inc("sim.shared_accesses", result.shared_accesses)
    obs.inc("sim.global_accesses", result.global_accesses)
    for cls, n in result.total_by_class().items():
        obs.inc(f"sim.inst.{cls}", n)


class Executor:
    """Executes one kernel over a launch grid."""

    backend_name = "scalar"

    def __init__(
        self,
        kernel: Kernel,
        rf_code_factory=ParityCode,
        max_instructions_per_thread: int = 2_000_000,
        max_recoveries_per_thread: int = 1000,
        fault_plan=None,
    ):
        self.kernel = kernel
        self.rf_code_factory = rf_code_factory
        self.max_instructions = max_instructions_per_thread
        self.max_recoveries = max_recoveries_per_thread
        self.fault_plan = fault_plan
        # Newer plans take (thread, env) so they can strike memory-side
        # state; plans predating the widened surface take (thread) only.
        self._plan_takes_env = _plan_takes_env(fault_plan)
        self._block_index = {blk.label: i for i, blk in enumerate(kernel.blocks)}
        self._recovery_runtime = None
        table = kernel.meta.get("recovery_table")
        if table is not None:
            from repro.gpusim.recovery import RecoveryRuntime

            self._recovery_runtime = RecoveryRuntime(kernel, table)
        self._recovery_labels = set(kernel.meta.get("region_boundaries", set()))
        self._recovery_labels |= set(kernel.meta.get("adjustment_blocks", set()))

    # -- launch ------------------------------------------------------------------

    def run(self, launch: Launch, mem: MemoryImage) -> ExecutionResult:
        with obs.span(
            "sim.run",
            kernel=self.kernel.name,
            grid=launch.grid,
            block=launch.block,
            faulted=self.fault_plan is not None,
            backend=self.backend_name,
        ):
            result = self._run(launch, mem)
        _publish_counters(result)
        return result

    def _publish_counters(self, result: ExecutionResult) -> None:
        _publish_counters(result)

    def _run(self, launch: Launch, mem: MemoryImage) -> ExecutionResult:
        result = ExecutionResult(backend=self.backend_name)
        # Stateful fault plans (rate plans, campaign plans) carry per-run
        # bookkeeping; reset it so a reused plan cannot leak injection
        # schedules or counters from a previous run into this one.
        if self.fault_plan is not None:
            reset = getattr(self.fault_plan, "reset", None)
            if reset is not None:
                reset()
        # Reserve global checkpoint storage once per launch.
        ckpt_words = self.kernel.meta.get("ckpt_global_words", 0)
        ckpt_global_base = (
            mem.alloc_global(ckpt_words) if ckpt_words else 0
        )
        mem.params.update(launch.params)
        self._ckpt_global_base = ckpt_global_base
        mem.ckpt_global_base = ckpt_global_base  # type: ignore[attr-defined]
        mem.ckpt_global_words = ckpt_words  # type: ignore[attr-defined]

        for ctaid in range(launch.grid):
            self._run_block(launch, mem, ctaid, result)
        return result

    def _run_block(
        self,
        launch: Launch,
        mem: MemoryImage,
        ctaid: int,
        result: ExecutionResult,
    ) -> None:
        shared = WordStore(f"shared[{ctaid}]", size_bytes=1 << 20)
        shared_bases: Dict[str, int] = {}
        offset = 0
        for decl in self.kernel.shared:
            shared_bases[decl.name] = offset
            offset += decl.num_words * 4

        protected = self.kernel.meta.get("protected_registers")
        threads = [
            ThreadContext(
                tid,
                ctaid,
                RegisterFile(self.rf_code_factory(), protected=protected),
            )
            for tid in range(launch.block)
        ]
        entry_label = self.kernel.entry.label
        for t in threads:
            t.label = entry_label
            t.region_label = entry_label
            t.visits[entry_label] = 1

        env = _BlockEnv(
            launch=launch,
            mem=mem,
            shared=shared,
            shared_bases=shared_bases,
            ckpt_global_base=self._ckpt_global_base,
        )

        # Cooperative scheduling: run threads round-robin in slices; a
        # barrier parks a thread until every live thread reaches it.
        live = len(threads)
        while live > 0:
            progressed = False
            waiting = 0
            for t in threads:
                if t.done:
                    continue
                if t.at_barrier:
                    waiting += 1
                    continue
                self._run_thread_slice(t, env, slice_len=256)
                progressed = True
            live = sum(1 for t in threads if not t.done)
            blocked = sum(1 for t in threads if t.at_barrier and not t.done)
            if live > 0 and blocked == live:
                for t in threads:
                    t.at_barrier = False  # release the barrier
                progressed = True
            if not progressed and live > 0:
                raise SimulationError(
                    f"deadlock in block {ctaid}: {blocked}/{live} at barrier"
                )

        # Aggregate statistics.
        warp_size = 32
        for t in threads:
            result.rf_reads += t.rf.reads
            result.rf_writes += t.rf.writes
            result.detections += t.rf.detections
            result.recoveries += t.recoveries
            result.instructions += t.executed
            result.thread_instructions[(t.ctaid, t.tid)] = t.executed
            result.threads += 1
        # Divergence-aware warp issue counts: a warp issues a basic block
        # once per entry by *any* member thread (lockstep SIMT serializes
        # divergent paths), so its issue profile is the per-block static
        # class mix weighted by the max entry count across the warp.
        block_classes = self._static_block_classes()
        for w in range((launch.block + warp_size - 1) // warp_size):
            members = threads[w * warp_size : (w + 1) * warp_size]
            merged: Counter = Counter()
            labels = set().union(*(t.visits.keys() for t in members))
            for label in labels:
                entries = max(t.visits.get(label, 0) for t in members)
                if not entries:
                    continue
                for cls, per_visit in block_classes[label].items():
                    merged[cls] += per_visit * entries
            result.warp_counts[(ctaid, w)] = merged
        result.shared_accesses += shared.reads + shared.writes
        result.global_accesses = mem.global_mem.reads + mem.global_mem.writes

    def _static_block_classes(self) -> Dict[str, Counter]:
        """Instruction-class mix of each basic block (cached)."""
        cached = getattr(self, "_block_classes", None)
        if cached is not None:
            return cached
        table: Dict[str, Counter] = {}
        for blk in self.kernel.blocks:
            counts: Counter = Counter()
            for inst in blk.instructions:
                counts[_classify(inst)] += 1
            table[blk.label] = counts
        self._block_classes = table
        return table

    # -- per-thread execution ------------------------------------------------------

    def _run_thread_slice(
        self, t: ThreadContext, env: "_BlockEnv", slice_len: int
    ) -> None:
        for _ in range(slice_len):
            if t.done or t.at_barrier:
                return
            blk = self.kernel.blocks[self._block_index[t.label]]
            if t.index >= len(blk.instructions):
                # fall through to the next block
                nxt = self._block_index[t.label] + 1
                if nxt >= len(self.kernel.blocks):
                    raise SimulationError(
                        f"fell off kernel end after block {t.label}"
                    )
                self._enter_block(t, self.kernel.blocks[nxt].label)
                continue
            inst = blk.instructions[t.index]
            if t.executed >= self.max_instructions:
                raise WatchdogTimeout(
                    f"thread ({t.ctaid},{t.tid}) exceeded instruction budget "
                    f"of {self.max_instructions}"
                )
            try:
                self._execute(t, env, inst)
            except ParityError as err:
                self._recover(t, env, err)
                continue
            t.executed += 1
            if self.fault_plan is not None:
                if self._plan_takes_env:
                    self.fault_plan.after_instruction(t, env)
                else:
                    self.fault_plan.after_instruction(t)

    def _enter_block(self, t: ThreadContext, label: str) -> None:
        t.label = label
        t.index = 0
        t.visits[label] += 1
        if label in self._recovery_labels:
            t.region_label = label
            t.region_entry_executed = t.executed

    def _recover(self, t: ThreadContext, env: "_BlockEnv", err: ParityError) -> None:
        # The instructions executed since this thread entered its current
        # region are exactly the work recovery throws away and re-executes
        # — the paper's re-execution cost, observed per region.
        reexec = t.executed - t.region_entry_executed
        obs.event(
            "sim.detect",
            region=t.region_label,
            ctaid=t.ctaid,
            tid=t.tid,
            reexec_insts=reexec,
        )
        with obs.span(
            "sim.recover",
            region=t.region_label,
            ctaid=t.ctaid,
            tid=t.tid,
            reexec_insts=reexec,
        ):
            if self._recovery_runtime is None:
                raise UnrecoverableError(
                    f"{err} in thread ({t.ctaid},{t.tid}) with no recovery "
                    f"runtime",
                    cause="no_runtime",
                )
            t.recoveries += 1
            if t.recoveries > self.max_recoveries:
                raise UnrecoverableError(
                    f"thread ({t.ctaid},{t.tid}) exceeded recovery budget "
                    f"of {self.max_recoveries}",
                    cause="budget_exhausted",
                )
            self._recovery_runtime.recover(
                t, env, err, fault_plan=self.fault_plan
            )
            self._enter_block(t, t.region_label)
        tracer = obs.current_tracer()
        if tracer is not None:
            tracer.counters.inc("sim.reexec_insts_total", reexec)
            tracer.counters.observe_value(
                f"sim.reexec.{t.region_label}", reexec
            )

    # -- instruction semantics ---------------------------------------------------------

    def _execute(self, t: ThreadContext, env: "_BlockEnv", inst) -> None:
        if inst.guard is not None:
            reg, sense = inst.guard
            value = t.rf.read(reg.name)
            if bool(value) != sense:
                t.index += 1
                t.counts[CLASS_ALU] += 1  # predicated-off still issues
                return

        if isinstance(inst, Alu):
            self._exec_alu(t, env, inst)
        elif isinstance(inst, Setp):
            self._exec_setp(t, env, inst)
        elif isinstance(inst, Selp):
            self._exec_selp(t, env, inst)
        elif isinstance(inst, Ld):
            self._exec_ld(t, env, inst)
        elif isinstance(inst, St):
            self._exec_st(t, env, inst)
        elif isinstance(inst, Atom):
            self._exec_atom(t, env, inst)
        elif isinstance(inst, Bra):
            t.counts[CLASS_ALU] += 1
            self._enter_block(t, inst.target)
            return
        elif isinstance(inst, Bar):
            t.counts[CLASS_BAR] += 1
            t.at_barrier = True
            t.index += 1
            return
        elif isinstance(inst, Membar):
            t.counts[CLASS_ALU] += 1
            t.index += 1
            return
        elif isinstance(inst, Ret):
            t.done = True
            return
        elif isinstance(inst, Checkpoint):
            raise SimulationError(
                "un-lowered cp pseudo-instruction reached the simulator"
            )
        else:
            raise SimulationError(f"cannot execute {inst!r}")
        t.index += 1

    # -- operand handling --

    def _value(self, t: ThreadContext, env: "_BlockEnv", op) -> int:
        if isinstance(op, Reg):
            return t.rf.read(op.name)
        if isinstance(op, Imm):
            if op.dtype.is_float:
                return f2b(float(op.value))
            return int(op.value) & _MASK32
        if isinstance(op, Special):
            return env.special(t, op.name)
        if isinstance(op, SymRef):
            return env.symbol_address(op.name)
        raise SimulationError(f"bad operand {op!r}")

    # -- ALU --

    def _exec_alu(self, t: ThreadContext, env: "_BlockEnv", inst: Alu) -> None:
        vals = [self._value(t, env, s) for s in inst.srcs]
        op, dt = inst.op, inst.dtype
        t.counts[CLASS_SFU if op in _SFU_OPS else CLASS_ALU] += 1
        result = _alu_compute(op, dt, vals)
        t.rf.write(inst.dst.name, result)

    def _exec_setp(self, t: ThreadContext, env, inst: Setp) -> None:
        a = self._value(t, env, inst.srcs[0])
        b = self._value(t, env, inst.srcs[1])
        t.counts[CLASS_ALU] += 1
        t.rf.write(inst.dst.name, 1 if _compare(inst.cmp, inst.dtype, a, b) else 0)

    def _exec_selp(self, t: ThreadContext, env, inst: Selp) -> None:
        a = self._value(t, env, inst.srcs[0])
        b = self._value(t, env, inst.srcs[1])
        p = t.rf.read(inst.pred.name)
        t.counts[CLASS_ALU] += 1
        t.rf.write(inst.dst.name, a if p else b)

    # -- memory --

    def _exec_ld(self, t: ThreadContext, env, inst: Ld) -> None:
        if inst.space is MemSpace.PARAM:
            if not isinstance(inst.base, SymRef):
                raise SimulationError("param loads must use a symbol base")
            t.counts[CLASS_LD_OTHER] += 1
            t.rf.write(inst.dst.name, env.param(inst.base.name))
            return
        addr = self._value(t, env, inst.base) + inst.offset
        store, cls = env.resolve(t, inst.space, is_store=False)
        t.counts[cls] += 1
        t.rf.write(inst.dst.name, store.load(addr & _MASK32))

    def _exec_st(self, t: ThreadContext, env, inst: St) -> None:
        addr = self._value(t, env, inst.base) + inst.offset
        value = self._value(t, env, inst.src)
        store, cls = env.resolve(t, inst.space, is_store=True)
        t.counts[cls] += 1
        store.store(addr & _MASK32, value)

    def _exec_atom(self, t: ThreadContext, env, inst: Atom) -> None:
        addr = self._value(t, env, inst.base) + inst.offset
        src = self._value(t, env, inst.src)
        store, _ = env.resolve(t, inst.space, is_store=True)
        t.counts[CLASS_ATOM] += 1
        old = store.load(addr & _MASK32)
        if inst.op == "add":
            new = (old + src) & _MASK32
        elif inst.op == "exch":
            new = src
        elif inst.op == "max":
            new = max(to_signed(old), to_signed(src)) & _MASK32
        elif inst.op == "min":
            new = min(to_signed(old), to_signed(src)) & _MASK32
        elif inst.op == "cas":
            cmp = src
            val = self._value(t, env, inst.src2)
            new = val if old == cmp else old
        else:
            raise SimulationError(f"unknown atomic {inst.op}")
        store.store(addr & _MASK32, new)
        t.rf.write(inst.dst.name, old)


@dataclass
class _BlockEnv:
    """Shared state of one thread block during execution."""

    launch: Launch
    mem: MemoryImage
    shared: WordStore
    shared_bases: Dict[str, int]
    ckpt_global_base: int

    def special(self, t: ThreadContext, name: str) -> int:
        if name == "%tid.x":
            return t.tid
        if name == "%tid.y":
            return 0
        if name == "%ntid.x":
            return self.launch.block
        if name == "%ntid.y":
            return 1
        if name == "%ctaid.x":
            return t.ctaid
        if name == "%ctaid.y":
            return 0
        if name == "%nctaid.x":
            return self.launch.grid
        if name == "%nctaid.y":
            return 1
        raise SimulationError(f"unknown special register {name}")

    def param(self, name: str) -> int:
        try:
            return self.mem.params[name] & _MASK32
        except KeyError:
            raise SimulationError(f"kernel param {name!r} not provided")

    def symbol_address(self, name: str) -> int:
        if name in self.shared_bases:
            return self.shared_bases[name]
        from repro.core.codegen import GLOBAL_CKPT_SYMBOL

        if name == GLOBAL_CKPT_SYMBOL:
            return self.ckpt_global_base
        if name in self.mem.params:
            return self.mem.params[name] & _MASK32
        raise SimulationError(f"unknown symbol {name!r}")

    def resolve(self, t: ThreadContext, space: MemSpace, is_store: bool):
        if space is MemSpace.GLOBAL:
            return self.mem.global_mem, (
                CLASS_ST_GLOBAL if is_store else CLASS_LD_GLOBAL
            )
        if space is MemSpace.SHARED:
            return self.shared, (
                CLASS_ST_SHARED if is_store else CLASS_LD_SHARED
            )
        if space is MemSpace.LOCAL:
            return t.local, (
                CLASS_ST_OTHER if is_store else CLASS_LD_OTHER
            )
        if space is MemSpace.CONST:
            return self.mem.const_mem, (
                CLASS_ST_OTHER if is_store else CLASS_LD_OTHER
            )
        raise SimulationError(f"cannot access space {space}")


# -- scalar ALU semantics ------------------------------------------------------------


def _alu_compute(op: str, dt: DType, vals: List[int]) -> int:
    if op == "cvt":
        # cvt.f32: fp32 destination from a signed-int source pattern;
        # cvt.u32/s32: integer destination from an fp32 source pattern.
        if dt.is_float:
            return f2b(float(to_signed(vals[0])))
        f = b2f(vals[0])
        if math.isnan(f) or math.isinf(f):
            return 0
        return int(f) & _MASK32
    if dt.is_float:
        f = [b2f(v) for v in vals]
        return f2b(_float_op(op, f))
    signed = dt.is_signed
    a = to_signed(vals[0]) if signed else vals[0]
    b = (to_signed(vals[1]) if signed else vals[1]) if len(vals) > 1 else 0
    c = (to_signed(vals[2]) if signed else vals[2]) if len(vals) > 2 else 0
    if op == "mov":
        return vals[0] & _MASK32
    if op == "add":
        return (a + b) & _MASK32
    if op == "sub":
        return (a - b) & _MASK32
    if op == "mul":
        return (a * b) & _MASK32
    if op == "mulhi":
        return ((a * b) >> 32) & _MASK32
    if op == "mad":
        return (a * b + c) & _MASK32
    if op == "div":
        if b == 0:
            return 0
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return q & _MASK32
    if op == "rem":
        if b == 0:
            return 0
        r = abs(a) % abs(b)
        if a < 0:
            r = -r
        return r & _MASK32
    if op == "min":
        return min(a, b) & _MASK32
    if op == "max":
        return max(a, b) & _MASK32
    if op == "neg":
        return (-a) & _MASK32
    if op == "abs":
        return abs(a) & _MASK32
    if op == "and":
        return (vals[0] & vals[1]) & _MASK32
    if op == "or":
        return (vals[0] | vals[1]) & _MASK32
    if op == "xor":
        return (vals[0] ^ vals[1]) & _MASK32
    if op == "not":
        return (~vals[0]) & _MASK32
    if op == "shl":
        return (vals[0] << (vals[1] & 31)) & _MASK32
    if op == "shr":
        if signed:
            return (to_signed(vals[0]) >> (vals[1] & 31)) & _MASK32
        return (vals[0] >> (vals[1] & 31)) & _MASK32
    raise SimulationError(f"unknown integer op {op}")


def _float_op(op: str, f: List[float]) -> float:
    a = f[0]
    b = f[1] if len(f) > 1 else 0.0
    c = f[2] if len(f) > 2 else 0.0
    if op == "mov":
        return a
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op in ("mad", "fma"):
        return a * b + c
    if op == "div":
        if b == 0.0:
            return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
        return a / b
    if op == "rem":
        return math.fmod(a, b) if b else math.nan
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    if op == "neg":
        return -a
    if op == "abs":
        return abs(a)
    if op == "sqrt":
        return math.sqrt(a) if a >= 0 else math.nan
    if op == "rcp":
        return 1.0 / a if a != 0 else math.inf
    if op == "ex2":
        try:
            return 2.0 ** a
        except OverflowError:
            return math.inf
    if op == "lg2":
        return math.log2(a) if a > 0 else (-math.inf if a == 0 else math.nan)
    if op == "sin":
        return math.sin(a)
    if op == "cos":
        return math.cos(a)
    raise SimulationError(f"unknown float op {op}")


def _compare(cmp: str, dt: DType, a: int, b: int) -> bool:
    if dt.is_float:
        fa, fb = b2f(a), b2f(b)
        if math.isnan(fa) or math.isnan(fb):
            return cmp == "ne"
        va, vb = fa, fb
    elif dt.is_signed:
        va, vb = to_signed(a), to_signed(b)
    else:
        va, vb = a & _MASK32, b & _MASK32
    return {
        "eq": va == vb,
        "ne": va != vb,
        "lt": va < vb,
        "le": va <= vb,
        "gt": va > vb,
        "ge": va >= vb,
    }[cmp]
